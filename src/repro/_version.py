"""Single-source version string."""

__version__ = "1.0.0"
