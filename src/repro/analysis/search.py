"""Adversarial-instance search: hunting for large normalised cover times.

The paper's closing open question is whether any graph has COBRA
(b = 2) cover time ``ω(n log n)``.  E15 checks the *known* adversarial
families; this module searches *beyond* them: a random-restart
hill-climb over connected graphs on ``n`` vertices, mutating one edge
at a time to maximise the estimated ``cover / (n ln n)`` objective.

A search like this cannot prove the conjecture either way — but it is
exactly the experiment one runs when hunting counterexample structure,
and its consistent failure to push the ratio past ~1 is (weak,
heuristic) support for the conjecture.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.cobra import cover_time_samples
from ..graphs.graph import Graph
from ..stats.rng import generator_from

__all__ = ["SearchResult", "worst_case_search", "normalized_cover"]


def normalized_cover(
    graph: Graph,
    *,
    runs: int = 24,
    rng=None,
    max_rounds: int | None = None,
) -> float:
    """The search objective: mean cover time over ``n ln n``."""
    gen = generator_from(rng)
    samples = cover_time_samples(graph, 0, runs, rng=gen, max_rounds=max_rounds)
    return float(samples.mean()) / (graph.n * math.log(graph.n))


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one hill-climb."""

    best_graph: Graph
    best_objective: float
    initial_objective: float
    steps_taken: int
    improvements: int

    @property
    def conjecture_strained(self) -> bool:
        """True iff the search found a ratio that looks super-logarithmic.

        The threshold 3.0 is far above anything known families reach
        (~0.7); crossing it would flag a structure worth studying —
        not a disproof (finite n), but a lead.
        """
        return self.best_objective > 3.0


def _mutate(graph: Graph, rng: np.random.Generator) -> Graph | None:
    """Propose a neighbour: toggle one uniformly random vertex pair.

    Returns None if the proposal disconnects the graph (rejected) or
    degenerates (no edges).
    """
    n = graph.n
    u = int(rng.integers(0, n))
    v = int(rng.integers(0, n - 1))
    if v >= u:
        v += 1
    edges = set(graph.edges())
    key = (min(u, v), max(u, v))
    if key in edges:
        if len(edges) <= n - 1:
            return None  # removing may disconnect a tree-sparse graph
        edges.remove(key)
    else:
        edges.add(key)
    candidate = Graph(n, sorted(edges), name=f"search-{n}")
    if not candidate.is_connected():
        return None
    return candidate


def worst_case_search(
    n: int = 16,
    *,
    steps: int = 120,
    runs_per_eval: int = 16,
    seed: int = 0,
    initial: Graph | None = None,
) -> SearchResult:
    """Hill-climb the normalised cover time over graphs on ``n`` vertices.

    Starts from ``initial`` (default: a random connected graph built
    from a spanning tree plus a few chords), evaluates each single-edge
    mutation with a fresh Monte-Carlo estimate, and accepts strict
    improvements.  Noise-tolerant: the incumbent is re-estimated along
    with each challenger so a lucky estimate cannot entrench itself.
    """
    if n < 4:
        raise ValueError("search needs n >= 4")
    rng = np.random.default_rng(seed)
    if initial is None:
        edges = [(int(rng.integers(0, v)), v) for v in range(1, n)]
        extra = max(2, n // 4)
        for _ in range(extra):
            u = int(rng.integers(0, n))
            w = int(rng.integers(0, n))
            if u != w:
                edges.append((min(u, w), max(u, w)))
        current = Graph(n, sorted(set(tuple(sorted(e)) for e in edges)), name=f"search-{n}")
    else:
        if initial.n != n or not initial.is_connected():
            raise ValueError("initial graph must be connected with n vertices")
        current = initial

    current_obj = normalized_cover(current, runs=runs_per_eval, rng=rng)
    initial_obj = current_obj
    improvements = 0
    for _ in range(steps):
        candidate = _mutate(current, rng)
        if candidate is None:
            continue
        cand_obj = normalized_cover(candidate, runs=runs_per_eval, rng=rng)
        # Re-estimate the incumbent to keep the comparison fair.
        current_obj = 0.5 * current_obj + 0.5 * normalized_cover(
            current, runs=runs_per_eval, rng=rng
        )
        if cand_obj > current_obj:
            current, current_obj = candidate, cand_obj
            improvements += 1
    return SearchResult(
        best_graph=current,
        best_objective=current_obj,
        initial_objective=initial_obj,
        steps_taken=steps,
        improvements=improvements,
    )
