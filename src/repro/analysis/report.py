"""EXPERIMENTS.md generation: paper-vs-measured, mechanically produced.

``generate_report`` runs (or is handed) the E1..E12 results and renders
the reproduction record: per experiment, the paper's claim, the shape
criterion, the measured outcome, every table, and the pass/fail
verdicts.  The checked-in EXPERIMENTS.md is this module's output for a
``full``-scale run, so the document can never drift from the code.
"""

from __future__ import annotations

import datetime
import time
from dataclasses import dataclass

from ..experiments.config import ExperimentConfig
from ..experiments.registry import EXPERIMENTS
from ..experiments.runner import ExperimentResult

__all__ = ["PAPER_CLAIMS", "generate_report", "render_experiment_section"]


@dataclass(frozen=True)
class PaperClaim:
    """What the paper asserts, in the form the experiment checks."""

    anchor: str
    claim: str
    shape_criterion: str


PAPER_CLAIMS: dict[str, PaperClaim] = {
    "E1": PaperClaim(
        anchor="Section 1, hypercube discussion",
        claim="On the hypercube (n = 2^d) the successive bounds are "
        "O(log^8 n) [SPAA'16], O(log^4 n) [PODC'16], O(log^3 n) [this "
        "paper]; the truth is conjectured Θ(log n).",
        shape_criterion="Bound ordering holds at every dimension; measured "
        "cover time sits below all three; fitted polylog exponent ≪ 3.",
    ),
    "E2": PaperClaim(
        anchor="Theorem 1.1",
        claim="cover(u) = O(m + dmax² log n) w.h.p. for every connected "
        "graph (improving O(n^{11/4} log n)).",
        shape_criterion="One constant ≤ 8 dominates all irregular-family "
        "instances; measured/bound ratio does not grow with n.",
    ),
    "E3": PaperClaim(
        anchor="Theorem 1.2",
        claim="cover(u) = O((r/(1−λ) + r²) log n) w.h.p. for connected "
        "r-regular graphs with 1−λ > C√(log n / n).",
        shape_criterion="One constant ≤ 8 dominates all regular instances; "
        "expander sweep shows polylog cover (n-exponent ≈ 0).",
    ),
    "E4": PaperClaim(
        anchor="Theorem 1.3 (duality)",
        claim="P̂(Hit(v) > T | C₀=C) = P(C ∩ A_T = ∅ | A₀={v}) for every "
        "v, C, T, and branching parameter b.",
        shape_criterion="Exact subset-chain evaluation agrees to ≤ 1e-9 on "
        "every tiny-graph case; Monte-Carlo sides agree within 4 joint "
        "standard errors at scale.",
    ),
    "E5": PaperClaim(
        anchor="Lemma 3.1 / Theorem 1.4",
        claim="d(A_t) ≥ d(v) + k after t(k) = 4k + C′ dmax² log n rounds, "
        "w.h.p.; with k = 2m − d(v) this is Theorem 1.4's infection bound.",
        shape_criterion="Calibrated C′ ≤ 8 suffices on every irregular "
        "family, including the full-infection endpoint.",
    ),
    "E6": PaperClaim(
        anchor="Lemmas 4.1 / 4.2",
        claim="E[|A_{t+1}| | A_t] ≥ |A_t|(1 + ρ(1−λ²)(1 − |A_t|/n)).",
        shape_criterion="Bucketed conditional means dominate the bound "
        "(within 4 SEM) for b = 2 and b = 1+ρ on all regular instances.",
    ),
    "E7": PaperClaim(
        anchor="Corollary 5.2",
        claim="|C_t| ≥ |A_{t−1}|(1−λ)/2 whenever |A_{t−1}| ≤ n/2.",
        shape_criterion="Per-sample domination (the proof's inequality is "
        "deterministic given A_{t−1}) and bucketed-mean domination.",
    ),
    "E8": PaperClaim(
        anchor="Section 6",
        claim="With branching b = 1 + ρ (0 < ρ ≤ 1 constant) the b = 2 "
        "bounds hold with schedules multiplied by 1/ρ².",
        shape_criterion="Cover time decreases in ρ; slowdown T(ρ)/T(1) "
        "stays within a constant times 1/ρ².",
    ),
    "E9": PaperClaim(
        anchor="Section 1 (motivation)",
        claim="COBRA propagates fast with ≤ b transmissions per vertex per "
        "round and one round of memory; b = 1 degenerates to a random walk "
        "with Ω(n log n) cover; max{log₂ n, Diam} lower-bounds every run.",
        shape_criterion="COBRA ≥ 10× faster than a single walk on the "
        "expander; flooding is the floor; the lower bound is respected.",
    ),
    "E10": PaperClaim(
        anchor="Lemma 2.1 / Corollary 2.2",
        claim="Supermartingale tails: P(S_q > δ√q) < e^{−δ²/2}; uniformly, "
        "P(∃q ≥ q₀: S_q > α(q−q₀) + δ√q₀) < q₀e^{−δ²/4} + (16/α²)e^{−α²q₀/4}.",
        shape_criterion="Empirical tails never exceed the analytic bounds, "
        "on synthetic supermartingales and on real serialised-BIPS Z_l "
        "streams.",
    ),
    "E11": PaperClaim(
        anchor="Section 1 (cited results)",
        claim="K_n covers in O(log n); constant-degree expanders in "
        "polylog; D-dimensional grids in Θ~(n^{1/D}).",
        shape_criterion="Fitted exponents: complete/expander below 1/3 "
        "(polylog); torus-2D ≈ 0.5 and torus-3D ≈ 1/3 (±0.18).",
    ),
    "E12": PaperClaim(
        anchor="Lemma 5.4 / Theorem 1.5",
        claim="From κ₀ = 1/(1−λ) + (C′r/4)log n at t₀ = 8rκ₀, infection "
        "doubles each 16r/(1−λ) rounds until n/4, then completes in "
        "O(log n/(1−λ)) more rounds.",
        shape_criterion="The schedule (C′ = 1) dominates every measured "
        "phase; full infection lands within schedule + O(log n/(1−λ)).",
    ),
    "E13": PaperClaim(
        anchor="Remark before Theorem 1.2 (ablation, not a paper table)",
        claim="Bipartite graphs have eigenvalue gap 0; the lazy variant "
        "(each selection stays put w.p. 1/2) restores a positive gap at "
        "the cost of wasting half the selections.",
        shape_criterion="Lazy slowdown ≈ 2× on non-bipartite instances; "
        "plain gap exactly 0 vs positive lazy gap on an even cycle.",
    ),
    "E14": PaperClaim(
        anchor="Section 1 parameter choice (ablation, not a paper table)",
        claim="The literature fixes b = 2: b = 1 is a random walk "
        "(Ω(n log n) cover), while b > 2 only compresses the doubling "
        "log-base at double the transmission budget.",
        shape_criterion="Rounds decrease in b; the 1→2 speedup dwarfs "
        "the 2→4 speedup (diminishing returns).",
    ),
    "E15": PaperClaim(
        anchor="Conclusions (open question, not a paper table)",
        claim="No graph with COBRA cover time ω(n log n) is known; the "
        "worst case is conjectured to be O(n log n).",
        shape_criterion="Across the adversarial families the normalised "
        "ratio T/(n ln n) stays bounded and does not grow with n.",
    ),
    "E16": PaperClaim(
        anchor="Extension: evolving graphs (not a paper table)",
        claim="The paper's processes are defined on static graphs; on "
        "time-evolving topologies (degree-preserving rewiring) COBRA "
        "stays fast on expanders, a rewired cycle covers faster than a "
        "static one, and the rate-0 dynamics coincide with the static "
        "engines exactly.",
        shape_criterion="Frozen-sequence runs match the static engines "
        "sample-for-sample; dynamic expander means stay within 3× "
        "static; the top-rate cycle mean drops below 0.9× static.",
    ),
    "E17": PaperClaim(
        anchor="Extension: adversarial dynamics (not a paper table)",
        claim="E16's topologies evolve obliviously; the worst case is "
        "an adaptive adversary rewiring against the observed frontier. "
        "A budgeted greedy cut severing frontier→uninformed edges "
        "(degree- and connectivity-preserving) slows COBRA cover "
        "monotonically in its budget, and the budget-0 adversary is "
        "the oblivious baseline itself.",
        shape_criterion="Budget-0 samples equal the oblivious rewiring "
        "samples bit-for-bit; mean cover is non-decreasing in the "
        "budget (small sampling slack) with the top budget ≥ 1.25× "
        "oblivious on the expander and the torus.",
    ),
}


def render_experiment_section(result: ExperimentResult) -> str:
    """Render one experiment's markdown section."""
    claim = PAPER_CLAIMS[result.experiment_id]
    lines = [
        f"## {result.experiment_id} — {result.title}",
        "",
        f"**Paper anchor.** {claim.anchor}",
        "",
        f"**Paper claim.** {claim.claim}",
        "",
        f"**Shape criterion.** {claim.shape_criterion}",
        "",
        "**Measured.**",
        "",
    ]
    for table in result.tables:
        lines.append("```")
        lines.append(table.render())
        lines.append("```")
        lines.append("")
    lines.append("**Verdicts.**")
    lines.append("")
    for check in result.checks:
        mark = "✅" if check.passed else "❌"
        lines.append(f"- {mark} {check.name} — {check.detail}")
    if result.notes:
        lines.append("")
        lines.append("**Notes.**")
        lines.append("")
        for note in result.notes:
            lines.append(f"- {note}")
    lines.append("")
    return "\n".join(lines)


def generate_report(
    config: ExperimentConfig,
    *,
    experiment_ids: list[str] | None = None,
    results: dict[str, ExperimentResult] | None = None,
) -> str:
    """Produce the full EXPERIMENTS.md text.

    Pass ``results`` to render pre-computed outcomes; otherwise each
    experiment is run under ``config``.
    """
    ids = experiment_ids or sorted(EXPERIMENTS, key=lambda k: int(k[1:]))
    sections = []
    summary_rows = []
    for experiment_id in ids:
        if results and experiment_id in results:
            result = results[experiment_id]
            elapsed = None
        else:
            started = time.perf_counter()
            result = EXPERIMENTS[experiment_id].run(config)
            elapsed = time.perf_counter() - started
        sections.append(render_experiment_section(result))
        n_pass = sum(c.passed for c in result.checks)
        elapsed_cell = "-" if elapsed is None else f"{elapsed:.1f}s"
        summary_rows.append(
            f"| {experiment_id} | {EXPERIMENTS[experiment_id].paper_anchor} "
            f"| {n_pass}/{len(result.checks)} "
            f"| {'PASS' if result.all_passed else 'FAIL'} "
            f"| {elapsed_cell} |"
        )
    today = datetime.date.today().isoformat()
    header = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Reproduction record for *Improved Cover Time Bounds for the "
        "Coalescing-Branching Random Walk on Graphs* (Cooper, Radzik, "
        "Rivera; SPAA 2017).",
        "",
        f"Generated by `repro report` on {today} at scale "
        f"`{config.scale}` with master seed {config.seed}.  The paper "
        "contains no printed tables/figures (it is a theory paper); the "
        "experiment set below is the canonical per-theorem suite defined "
        "in DESIGN.md.  Regenerate any row with "
        f"`python -m repro run <id> --scale {config.scale}`.",
        "",
        "| id | paper anchor | checks | verdict | runtime |",
        "|----|--------------|--------|---------|---------|",
        *summary_rows,
        "",
    ]
    return "\n".join(header) + "\n" + "\n".join(sections)
