"""Analysis layer: mechanical generation of the reproduction record."""

from .ascii_plots import ascii_line_chart, render_ensemble
from .report import PAPER_CLAIMS, generate_report, render_experiment_section
from .search import SearchResult, normalized_cover, worst_case_search

__all__ = [
    "ascii_line_chart",
    "render_ensemble",
    "PAPER_CLAIMS",
    "generate_report",
    "render_experiment_section",
    "SearchResult",
    "normalized_cover",
    "worst_case_search",
]
