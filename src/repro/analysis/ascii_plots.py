"""Terminal line charts for trajectory ensembles and series.

The environment is CLI-first (no plotting backend is assumed), so the
"figures" of the experiment suite are renderable as fixed-grid ASCII
charts: one character column per x bucket, ``*`` for the mean curve and
``.`` for the quantile band edges.
"""

from __future__ import annotations

import numpy as np

from ..core.trajectories import TrajectoryEnsemble

__all__ = ["ascii_line_chart", "render_ensemble"]


def ascii_line_chart(
    xs,
    curves: dict[str, np.ndarray],
    *,
    width: int = 72,
    height: int = 18,
    markers: str = "*.+ox#@",
) -> str:
    """Render one or more aligned curves as an ASCII chart.

    ``curves`` maps labels to y-arrays, all the same length as ``xs``.
    The grid is ``height`` rows by ``width`` columns; y is scaled to the
    joint min/max and each curve gets a marker from ``markers`` (legend
    appended below the axis).
    """
    xs = np.asarray(xs, dtype=np.float64)
    if xs.size < 2:
        raise ValueError("need at least two x points")
    for label, ys in curves.items():
        if np.asarray(ys).shape != xs.shape:
            raise ValueError(f"curve {label!r} length mismatch")
    if len(curves) > len(markers):
        raise ValueError("more curves than available markers")

    all_y = np.concatenate([np.asarray(ys, dtype=np.float64) for ys in curves.values()])
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    x_lo, x_hi = float(xs.min()), float(xs.max())

    grid = [[" "] * width for _ in range(height)]
    for (label, ys), marker in zip(curves.items(), markers):
        ys = np.asarray(ys, dtype=np.float64)
        cols = np.round((xs - x_lo) / (x_hi - x_lo) * (width - 1)).astype(int)
        rows = np.round((ys - y_lo) / (y_hi - y_lo) * (height - 1)).astype(int)
        for c, r in zip(cols, rows):
            grid[height - 1 - r][c] = marker

    lines = []
    for i, row in enumerate(grid):
        y_val = y_hi - (y_hi - y_lo) * i / (height - 1)
        lines.append(f"{y_val:10.2f} |{''.join(row)}")
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(f"{'':11} {x_lo:<10.0f}{'round':^{max(width - 20, 5)}}{x_hi:>9.0f}")
    legend = "   ".join(
        f"{marker} {label}" for (label, _), marker in zip(curves.items(), markers)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def render_ensemble(
    ensemble: TrajectoryEnsemble, *, width: int = 72, height: int = 18
) -> str:
    """Chart an ensemble's mean with its 5–95% quantile band."""
    xs = np.arange(ensemble.horizon + 1)
    lo, hi = ensemble.band()
    chart = ascii_line_chart(
        xs,
        {"mean": ensemble.mean(), "q05": lo, "q95": hi},
        width=width,
        height=height,
    )
    return f"{ensemble.label} ({ensemble.runs} runs)\n{chart}"
