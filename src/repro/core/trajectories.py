"""Trajectory ensembles: aligned multi-run time series with quantile bands.

The "figure"-style experiments (growth curves, phase schedules) need
many runs' ``|A_t|`` / ``|C_t|`` / visited-count series aligned on a
common round axis with mean and quantile bands.  Runs end at different
rounds, so series are padded with their terminal value (the infected
set stays full; the visited count stays ``n``), which is the correct
continuation for monotone-terminal processes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.graph import Graph
from ..stats.rng import spawn_generators
from .bips import BipsProcess
from .branching import BranchingPolicy
from .cobra import CobraProcess

__all__ = [
    "TrajectoryEnsemble",
    "bips_size_ensemble",
    "cobra_coverage_ensemble",
]


@dataclass(frozen=True)
class TrajectoryEnsemble:
    """``runs × (horizon + 1)`` aligned series plus summary accessors."""

    label: str
    series: np.ndarray  # (runs, horizon + 1)

    @property
    def runs(self) -> int:
        """Number of runs in the ensemble."""
        return self.series.shape[0]

    @property
    def horizon(self) -> int:
        """Largest round index on the common axis."""
        return self.series.shape[1] - 1

    def mean(self) -> np.ndarray:
        """Per-round ensemble mean."""
        return self.series.mean(axis=0)

    def quantile(self, q: float) -> np.ndarray:
        """Per-round ensemble quantile."""
        return np.quantile(self.series, q, axis=0)

    def band(self, lo: float = 0.05, hi: float = 0.95) -> tuple[np.ndarray, np.ndarray]:
        """A (lower, upper) quantile band — the shaded region of a figure."""
        return self.quantile(lo), self.quantile(hi)

    def first_round_reaching(self, target: float) -> np.ndarray:
        """Per-run first round with value >= target (−1 if never)."""
        hits = self.series >= target
        any_hit = hits.any(axis=1)
        firsts = np.where(any_hit, hits.argmax(axis=1), -1)
        return firsts.astype(np.int64)

    def to_rows(self, *, stride: int = 1) -> list[dict]:
        """Figure-series rows: round, mean, q05, q95 (for Table dumps)."""
        mean = self.mean()
        lo, hi = self.band()
        return [
            {
                "round": t,
                "mean": float(mean[t]),
                "q05": float(lo[t]),
                "q95": float(hi[t]),
            }
            for t in range(0, self.horizon + 1, stride)
        ]


def _align(series_list: list[np.ndarray]) -> np.ndarray:
    horizon = max(s.shape[0] for s in series_list)
    out = np.empty((len(series_list), horizon), dtype=np.float64)
    for i, s in enumerate(series_list):
        out[i, : s.shape[0]] = s
        out[i, s.shape[0] :] = s[-1]  # terminal-value padding
    return out


def bips_size_ensemble(
    graph: Graph,
    source: int = 0,
    runs: int = 50,
    *,
    branching: BranchingPolicy | int | float = 2,
    lazy: bool = False,
    seed=0,
) -> TrajectoryEnsemble:
    """Ensemble of BIPS infection-size series ``|A_t|``."""
    proc = BipsProcess(graph, source, branching, lazy=lazy)
    series = []
    for gen in spawn_generators(seed, runs):
        res = proc.run(gen)
        if not res.infected_all:
            raise RuntimeError(f"BIPS hit the round cap on {graph.name}")
        series.append(res.sizes.astype(np.float64))
    return TrajectoryEnsemble(label=f"bips-sizes:{graph.name}", series=_align(series))


def cobra_coverage_ensemble(
    graph: Graph,
    start: int = 0,
    runs: int = 50,
    *,
    branching: BranchingPolicy | int | float = 2,
    lazy: bool = False,
    seed=0,
) -> TrajectoryEnsemble:
    """Ensemble of COBRA cumulative-coverage series ``|∪_{s<=t} C_s|``."""
    proc = CobraProcess(graph, branching, lazy=lazy)
    series = []
    for gen in spawn_generators(seed, runs):
        res = proc.run(start, gen, record=True)
        if not res.covered:
            raise RuntimeError(f"COBRA hit the round cap on {graph.name}")
        series.append(res.visited_counts.astype(np.float64))
    return TrajectoryEnsemble(
        label=f"cobra-coverage:{graph.name}", series=_align(series)
    )
