"""Trajectory ensembles: aligned multi-run time series with quantile bands.

The "figure"-style experiments (growth curves, phase schedules) need
many runs' ``|A_t|`` / ``|C_t|`` / visited-count series aligned on a
common round axis with mean and quantile bands.  Runs end at different
rounds, so series are padded with their terminal value (the infected
set stays full; the visited count stays ``n``), which is the correct
continuation for monotone-terminal processes.

Collection is one pass through the batched engine: all runs advance
together with per-round recording switched on
(``record_sizes`` / ``record_visited`` in
:meth:`repro.engine.SpreadEngine.run` — merged across shards by
:meth:`~repro.engine.SpreadEngine.run_sharded`), instead of the
historical one-run-at-a-time re-execution of the process per
experiment.  The engine's freeze/padding semantics already implement
the terminal-value convention, so the recorded block *is* the aligned
ensemble.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.graph import Graph
from ..graphs.validation import check_vertex
from .bips import BipsProcess
from .branching import BranchingPolicy
from .cobra import CobraProcess

__all__ = [
    "TrajectoryEnsemble",
    "bips_size_ensemble",
    "cobra_coverage_ensemble",
]


@dataclass(frozen=True)
class TrajectoryEnsemble:
    """``runs × (horizon + 1)`` aligned series plus summary accessors."""

    label: str
    series: np.ndarray  # (runs, horizon + 1)

    @property
    def runs(self) -> int:
        """Number of runs in the ensemble."""
        return self.series.shape[0]

    @property
    def horizon(self) -> int:
        """Largest round index on the common axis."""
        return self.series.shape[1] - 1

    def mean(self) -> np.ndarray:
        """Per-round ensemble mean."""
        return self.series.mean(axis=0)

    def quantile(self, q: float) -> np.ndarray:
        """Per-round ensemble quantile."""
        return np.quantile(self.series, q, axis=0)

    def band(self, lo: float = 0.05, hi: float = 0.95) -> tuple[np.ndarray, np.ndarray]:
        """A (lower, upper) quantile band — the shaded region of a figure."""
        return self.quantile(lo), self.quantile(hi)

    def first_round_reaching(self, target: float) -> np.ndarray:
        """Per-run first round with value >= target (−1 if never)."""
        hits = self.series >= target
        any_hit = hits.any(axis=1)
        firsts = np.where(any_hit, hits.argmax(axis=1), -1)
        return firsts.astype(np.int64)

    def to_rows(self, *, stride: int = 1) -> list[dict]:
        """Figure-series rows: round, mean, q05, q95 (for Table dumps)."""
        mean = self.mean()
        lo, hi = self.band()
        return [
            {
                "round": t,
                "mean": float(mean[t]),
                "q05": float(lo[t]),
                "q95": float(hi[t]),
            }
            for t in range(0, self.horizon + 1, stride)
        ]


def bips_size_ensemble(
    graph: Graph,
    source: int = 0,
    runs: int = 50,
    *,
    branching: BranchingPolicy | int | float = 2,
    lazy: bool = False,
    seed=0,
    workers: int | None = None,
    endpoint: str | None = None,
) -> TrajectoryEnsemble:
    """Ensemble of BIPS infection-size series ``|A_t|``.

    One recorded pass of the batched engine; a finished run's row
    continues at ``n``, the engine's freeze value.  ``workers`` fans
    the pass out over processes (``None`` = serial, like the sampling
    wrappers; the series are identical at any count), ``endpoint``
    over a :mod:`repro.distributed` broker's workers.  Raises if any
    run hits the round cap.
    """
    proc = BipsProcess(graph, source, branching, lazy=lazy)
    state = np.zeros((int(runs), graph.n), dtype=bool)
    state[:, proc.source] = True
    res = proc._engine_batch.run_sharded(
        state,
        seed,
        workers=1 if workers is None else workers,
        record_sizes=True,
        endpoint=endpoint,
    )
    if not res.all_finished:
        raise RuntimeError(f"BIPS hit the round cap on {graph.name}")
    return TrajectoryEnsemble(
        label=f"bips-sizes:{graph.name}",
        series=res.sizes.astype(np.float64),
    )


def cobra_coverage_ensemble(
    graph: Graph,
    start: int = 0,
    runs: int = 50,
    *,
    branching: BranchingPolicy | int | float = 2,
    lazy: bool = False,
    seed=0,
    workers: int | None = None,
    endpoint: str | None = None,
) -> TrajectoryEnsemble:
    """Ensemble of COBRA cumulative-coverage series ``|∪_{s<=t} C_s|``.

    One recorded pass of the batched engine; the visited count is
    monotone, so terminal-value continuation at ``n`` is exact.
    ``workers`` / ``endpoint`` as in :func:`bips_size_ensemble`.
    Raises if any run hits the round cap.
    """
    proc = CobraProcess(graph, branching, lazy=lazy)
    state = np.zeros((int(runs), graph.n), dtype=bool)
    state[:, check_vertex(graph, int(start))] = True
    res = proc._engine.run_sharded(
        state,
        seed,
        workers=1 if workers is None else workers,
        record_visited=True,
        endpoint=endpoint,
    )
    if not res.all_finished:
        raise RuntimeError(f"COBRA hit the round cap on {graph.name}")
    return TrajectoryEnsemble(
        label=f"cobra-coverage:{graph.name}",
        series=res.visited_counts.astype(np.float64),
    )
