"""Cost accounting and cover-time aggregation utilities.

The paper's design goal is "propagate quickly *but with a limited
number of transmissions per vertex per round*".  This module makes the
cost side first-class: per-run message counts, per-vertex transmission
loads, and the worst-case-start aggregation ``COVER(G) = max_u
E[cover(u)]`` used in the paper's definition of cover time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.graph import Graph
from ..stats.estimators import Estimate, mean_ci
from ..stats.rng import generator_from, spawn_seeds
from .branching import BranchingPolicy, make_policy
from .cobra import CobraProcess, cover_time_samples

__all__ = [
    "TransmissionReport",
    "cobra_transmission_report",
    "per_vertex_load",
    "CoverProfile",
    "worst_start_cover",
]


@dataclass(frozen=True)
class TransmissionReport:
    """Message-cost summary of COBRA runs to coverage.

    ``total_messages`` counts every selection made by an active vertex
    (``b`` per active vertex per round for fixed-``b``); rates are per
    vertex to make graph sizes comparable.
    """

    graph_name: str
    n: int
    runs: int
    rounds: Estimate
    total_messages: Estimate
    messages_per_vertex: Estimate
    peak_active_fraction: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.graph_name}: {self.rounds} rounds, "
            f"{self.messages_per_vertex} msgs/vertex"
        )


def cobra_transmission_report(
    graph: Graph,
    start: int = 0,
    runs: int = 20,
    *,
    branching: BranchingPolicy | int | float = 2,
    lazy: bool = False,
    rng=None,
) -> TransmissionReport:
    """Run COBRA to coverage ``runs`` times and account for every message.

    For the Bernoulli policy the expected per-vertex rate ``1 + ρ`` is
    used (the engine draws counts internally; we account in
    expectation, which is exact for fixed ``b``).
    """
    gen = generator_from(rng)
    policy = make_policy(branching)
    proc = CobraProcess(graph, policy, lazy=lazy)
    rounds, totals, peaks = [], [], []
    for _ in range(runs):
        res = proc.run(start, gen, record=True)
        if not res.covered:
            raise RuntimeError(f"run hit the round cap on {graph.name}")
        rounds.append(res.cover_time)
        # Senders in round t are the active set C_{t-1}: all but the
        # last recorded size send.
        senders = int(res.active_sizes[:-1].sum())
        totals.append(policy.expected_branching * senders)
        peaks.append(int(res.active_sizes.max()))
    totals_arr = np.asarray(totals, dtype=np.float64)
    return TransmissionReport(
        graph_name=graph.name,
        n=graph.n,
        runs=runs,
        rounds=mean_ci(np.asarray(rounds, dtype=np.float64)),
        total_messages=mean_ci(totals_arr),
        messages_per_vertex=mean_ci(totals_arr / graph.n),
        peak_active_fraction=float(max(peaks)) / graph.n,
    )


def per_vertex_load(
    graph: Graph,
    start: int = 0,
    *,
    branching: BranchingPolicy | int | float = 2,
    lazy: bool = False,
    rng=None,
    max_rounds: int | None = None,
) -> np.ndarray:
    """Transmissions made by each vertex during one run to coverage.

    Returns an ``(n,)`` integer array: how many selections each vertex
    performed.  The paper's cap means no entry may exceed
    ``b · cover_time``.
    """
    gen = generator_from(rng)
    policy = make_policy(branching)
    proc = CobraProcess(graph, policy, lazy=lazy)
    load = np.zeros(graph.n, dtype=np.int64)
    active = np.array([start], dtype=np.int64)
    visited = np.zeros(graph.n, dtype=bool)
    visited[start] = True
    remaining = graph.n - 1
    from .cobra import default_round_cap

    cap = default_round_cap(graph) if max_rounds is None else int(max_rounds)
    t = 0
    while remaining > 0 and t < cap:
        t += 1
        counts = policy.draw_counts(active.shape[0], gen)
        np.add.at(load, active, counts)
        actors = np.repeat(active, counts)
        targets = graph.sample_neighbors(actors, gen)
        if lazy:
            stay = gen.random(actors.shape[0]) < 0.5
            targets = np.where(stay, actors, targets)
        active = np.unique(targets)
        fresh = active[~visited[active]]
        visited[fresh] = True
        remaining -= fresh.shape[0]
    if remaining > 0:
        raise RuntimeError(f"COBRA failed to cover {graph.name} within {cap} rounds")
    return load


@dataclass(frozen=True)
class CoverProfile:
    """Cover-time estimates per start vertex plus the worst-case maximum.

    ``COVER(G) = max_u E[cover(u)]`` — the paper's cover-time
    definition; ``worst_start`` attains the max over the sampled starts.
    """

    graph_name: str
    starts: np.ndarray
    means: np.ndarray
    worst_start: int
    cover_of_g: float

    def best_start(self) -> int:
        """The sampled start with the smallest estimated E[cover(u)]."""
        return int(self.starts[int(np.argmin(self.means))])


def worst_start_cover(
    graph: Graph,
    *,
    runs_per_start: int = 16,
    max_starts: int = 16,
    branching: BranchingPolicy | int | float = 2,
    lazy: bool = False,
    seed: int = 0,
) -> CoverProfile:
    """Estimate ``COVER(G)`` by maximising mean cover time over starts.

    All vertices are tried when ``n <= max_starts``; otherwise
    ``max_starts`` evenly-spread vertices (deterministic stride) are
    sampled, which suffices for the vertex-transitive and
    near-homogeneous families in the experiments.
    """
    if graph.n <= max_starts:
        starts = np.arange(graph.n, dtype=np.int64)
    else:
        stride = graph.n / max_starts
        starts = np.unique((np.arange(max_starts) * stride).astype(np.int64))
    seeds = spawn_seeds(seed, len(starts))
    means = np.empty(len(starts), dtype=np.float64)
    for i, (u, s) in enumerate(zip(starts.tolist(), seeds)):
        samples = cover_time_samples(
            graph,
            u,
            runs_per_start,
            branching=branching,
            lazy=lazy,
            rng=np.random.default_rng(s),
        )
        means[i] = samples.mean()
    worst = int(np.argmax(means))
    return CoverProfile(
        graph_name=graph.name,
        starts=starts,
        means=means,
        worst_start=int(starts[worst]),
        cover_of_g=float(means[worst]),
    )
