"""Serialised BIPS: the per-step martingale view of Section 3.

The paper analyses a BIPS round by pretending the candidate vertices
decide *sequentially* in a fixed global vertex order.  Step ``l``
corresponds to a candidate ``u ∈ C_t`` and carries the random variable

    ``Y_l = d(u)·X_{t,u} − d_{A_{t−1}}(u)``,

where ``X_{t,u}`` indicates that ``u`` joins the next infected set.
Equation (14) then writes ``d(A_t) = d(v) + Σ Y_l``, and the rescaled
``Z_l = (1/2 − Y_l)/d_max`` form a supermartingale (eq. (18) gives
``E[Y_l | history] ≥ 1/2``, or ``≥ ρ/2`` for branching ``1 + ρ``).

This module implements that serialisation *exactly* — each candidate's
decision is independent given ``A_{t−1}``, so stepping them one at a
time is distributionally identical to the parallel round — and records
every quantity the proof manipulates, so Lemma 3.1's machinery can be
tested and the concentration experiment (E10) can consume real ``Z_l``
streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graphs.graph import Graph
from ..graphs.validation import check_vertex, require_connected
from .branching import BernoulliBranching, BranchingPolicy, FixedBranching, make_policy

__all__ = ["StepRecord", "RoundRecord", "SerializedBips", "collect_increments"]


@dataclass(frozen=True)
class StepRecord:
    """One serialised step (one candidate vertex's decision).

    Attributes map 1:1 onto the paper's notation: ``l`` (global step
    index, 1-based), ``round_index`` (t, 1-based), ``vertex`` (u),
    ``degree`` (d(u)), ``infected_neighbors`` (d_A(u)), ``x`` (X_{t,u}),
    ``y`` (Y_l), ``z`` (Z_l), and ``conditional_mean`` (E[Y_l | history],
    which eq. (17) evaluates to ``d_A(u)(1 − d_A(u)/d(u))`` for u ≠ v).
    """

    l: int
    round_index: int
    vertex: int
    degree: int
    infected_neighbors: int
    x: int
    y: float
    z: float
    conditional_mean: float


@dataclass(frozen=True)
class RoundRecord:
    """All steps of one round plus the round-level bookkeeping.

    ``degree_before``/``degree_after`` are ``d(A_{t−1})`` and ``d(A_t)``;
    equation (12) asserts ``degree_after = degree_before + Σ_steps y``,
    which :meth:`check_identity` verifies.
    """

    round_index: int
    steps: tuple[StepRecord, ...]
    degree_before: int
    degree_after: int
    candidate_count: int
    fixed_degree: int  # d(B_fix)

    def check_identity(self) -> bool:
        """Verify eq. (12): d(B) = d(A) + Σ (d(u)X_u − d_A(u))."""
        total = sum(s.y for s in self.steps)
        return self.degree_after == self.degree_before + round(total)


@dataclass
class SerializedBips:
    """A BIPS process advanced candidate-by-candidate.

    Parameters
    ----------
    graph, source, branching, lazy:
        As in :class:`~repro.core.bips.BipsProcess`.
    order:
        The arbitrary-but-fixed vertex ordering of the serialisation;
        defaults to ascending vertex id.

    The per-step infection probability for a candidate ``u ≠ v`` with
    ``a = d_A(u)`` infected neighbours is eq. (32)/(33):

    * fixed ``b``:   ``1 − (1 − a/d)^b``
    * ``b = 1 + ρ``: ``1 − (1 − a/d)(1 − ρ·a/d)``

    (the lazy variant halves each selection's chance of leaving ``u``,
    replacing ``a/d`` by ``a/(2d)`` plus ``1/2`` self-mass that is
    infected iff ``u ∈ A``).
    """

    graph: Graph
    source: int
    branching: BranchingPolicy | int | float = 2
    lazy: bool = False
    order: np.ndarray | None = None
    _policy: BranchingPolicy = field(init=False)
    _infected: np.ndarray = field(init=False)
    _round: int = field(init=False, default=0)
    _step: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        require_connected(self.graph)
        self.source = check_vertex(self.graph, self.source)
        self._policy = make_policy(self.branching)
        if self.order is None:
            self.order = np.arange(self.graph.n, dtype=np.int64)
        else:
            self.order = np.asarray(self.order, dtype=np.int64)
            if sorted(self.order.tolist()) != list(range(self.graph.n)):
                raise ValueError("order must be a permutation of all vertices")
        self._infected = np.zeros(self.graph.n, dtype=bool)
        self._infected[self.source] = True

    # ------------------------------------------------------------------
    @property
    def infected(self) -> np.ndarray:
        """Boolean mask of the current infected set ``A_t`` (read-only view)."""
        return self._infected.copy()

    @property
    def complete(self) -> bool:
        """True iff ``A_t = V``."""
        return bool(self._infected.all())

    def _infection_probability(self, u: int, a: int, u_infected: bool) -> float:
        """P(candidate u joins the next infected set | d_A(u) = a)."""
        d = self.graph.degree(u)
        p = a / d
        if self.lazy:
            p = 0.5 * p + (0.5 if u_infected else 0.0)
        if isinstance(self._policy, FixedBranching):
            return 1.0 - (1.0 - p) ** self._policy.b
        assert isinstance(self._policy, BernoulliBranching)
        rho = self._policy.rho
        return 1.0 - (1.0 - p) * (1.0 - rho * p)

    # ------------------------------------------------------------------
    def run_round(self, rng: np.random.Generator) -> RoundRecord:
        """Serially decide every candidate; advance ``A_{t−1} → A_t``."""
        if self.complete:
            raise RuntimeError("process already complete; no further rounds")
        g = self.graph
        self._round += 1
        infected = self._infected
        counts = np.add.reduceat(
            infected[g.indices].astype(np.int64), g.indptr[:-1]
        )
        bfix = counts == g.degrees
        in_nbhd = counts > 0
        in_nbhd[self.source] = True
        candidates_mask = in_nbhd & ~bfix
        candidates = self.order[candidates_mask[self.order]]

        degree_before = int(g.degrees[infected].sum())
        fixed_degree = int(g.degrees[bfix].sum())
        dmax = g.dmax

        next_infected = bfix.copy()
        steps: list[StepRecord] = []
        for u in candidates:
            u = int(u)
            self._step += 1
            a = int(counts[u])
            d = g.degree(u)
            if u == self.source:
                # The source is in B_rand whenever it is a candidate:
                # X_v ≡ 1 and Y_l = d(v) − d_A(v) ≥ 1.
                x = 1
                cond_mean = float(d - a)
            else:
                p = self._infection_probability(u, a, bool(infected[u]))
                x = int(rng.random() < p)
                cond_mean = d * p - a
            y = float(d * x - a)
            steps.append(
                StepRecord(
                    l=self._step,
                    round_index=self._round,
                    vertex=u,
                    degree=d,
                    infected_neighbors=a,
                    x=x,
                    y=y,
                    z=(0.5 - y) / dmax,
                    conditional_mean=cond_mean,
                )
            )
            if x:
                next_infected[u] = True
        next_infected[self.source] = True
        self._infected = next_infected
        return RoundRecord(
            round_index=self._round,
            steps=tuple(steps),
            degree_before=degree_before,
            degree_after=int(g.degrees[next_infected].sum()),
            candidate_count=len(steps),
            fixed_degree=fixed_degree,
        )

    def run(
        self, rng: np.random.Generator, *, max_rounds: int = 10_000
    ) -> list[RoundRecord]:
        """Run rounds until complete infection (or the cap); return records."""
        records: list[RoundRecord] = []
        while not self.complete and len(records) < max_rounds:
            records.append(self.run_round(rng))
        return records


def collect_increments(
    records: list[RoundRecord],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flatten round records into ``(Y_l, Z_l, conditional means)`` arrays.

    The arrays follow the paper's global step index ``l = 1, 2, …`` up
    to ``ν(T)`` (no padding with the technical ``Y_l = 1`` values; tests
    that need the padded sequence append it themselves).
    """
    ys = np.array([s.y for r in records for s in r.steps], dtype=np.float64)
    zs = np.array([s.z for r in records for s in r.steps], dtype=np.float64)
    means = np.array(
        [s.conditional_mean for r in records for s in r.steps], dtype=np.float64
    )
    return ys, zs, means
