"""Hitting-time utilities and the classical random-walk cross-check.

For branching factor ``b = 1`` the COBRA process *is* a simple random
walk, so its hit times must match classical Markov-chain theory.  This
module computes exact expected hitting times ``H(u, v)`` by solving the
linear system

    ``H(u, v) = 1 + (1/d(u)) Σ_{w ∈ N(u)} H(w, v)``,   ``H(v, v) = 0``

and provides Monte-Carlo hit-time survival estimation for any branching
factor — the empirical counterpart of
:func:`repro.core.exact.cobra_hit_survival_exact` at scales where the
exact chain is out of reach.
"""

from __future__ import annotations

import numpy as np

from ..graphs.graph import Graph
from ..graphs.validation import check_vertex, require_connected
from ..stats.rng import generator_from
from ..stats.survival import SurvivalCurve, empirical_survival
from .branching import BranchingPolicy
from .cobra import CobraProcess

__all__ = [
    "random_walk_hitting_times",
    "random_walk_hitting_time",
    "cobra_hit_survival_mc",
    "commute_time",
]


def random_walk_hitting_times(graph: Graph, target: int) -> np.ndarray:
    """Exact ``E[hitting time of target]`` from every start vertex.

    Solves the ``(n−1) × (n−1)`` linear system above (dense; fine for
    the n ≤ a-few-thousand graphs the experiments use).  Entry
    ``target`` is 0.
    """
    require_connected(graph)
    target = check_vertex(graph, target)
    n = graph.n
    others = [u for u in range(n) if u != target]
    index = {u: i for i, u in enumerate(others)}
    a = np.eye(n - 1)
    rhs = np.ones(n - 1)
    for u in others:
        i = index[u]
        du = graph.degree(u)
        for w in graph.neighbors(u):
            w = int(w)
            if w != target:
                a[i, index[w]] -= 1.0 / du
    sol = np.linalg.solve(a, rhs)
    out = np.zeros(n)
    for u in others:
        out[u] = sol[index[u]]
    return out


def random_walk_hitting_time(graph: Graph, start: int, target: int) -> float:
    """Exact ``H(start, target)`` for the simple random walk."""
    return float(random_walk_hitting_times(graph, target)[check_vertex(graph, start)])


def commute_time(graph: Graph, u: int, v: int) -> float:
    """``H(u, v) + H(v, u)`` — equals ``2m · R_eff(u, v)`` classically."""
    return random_walk_hitting_time(graph, u, v) + random_walk_hitting_time(
        graph, v, u
    )


def cobra_hit_survival_mc(
    graph: Graph,
    start,
    target: int,
    *,
    branching: BranchingPolicy | int | float = 2,
    lazy: bool = False,
    runs: int = 1000,
    horizon: int = 64,
    rng=None,
) -> SurvivalCurve:
    """Monte-Carlo ``P(Hit(target) > T | C_0 = start)`` for ``T ≤ horizon``.

    Runs hitting the horizon are censored (counted as surviving), so
    the curve is exact in expectation at every ``T ≤ horizon``.
    """
    gen = generator_from(rng)
    require_connected(graph)
    target = check_vertex(graph, target)
    proc = CobraProcess(graph, branching, lazy=lazy)
    if np.ndim(start) == 0:
        start_arr = np.array([int(start)], dtype=np.int64)
    else:
        start_arr = np.asarray(sorted(set(int(s) for s in start)), dtype=np.int64)
    hits = np.empty(runs, dtype=np.int64)
    for i in range(runs):
        active = start_arr.copy()
        if np.any(active == target):
            hits[i] = 0
            continue
        t = 0
        hit_at = -1
        while t < horizon:
            t += 1
            active = proc.step(active, gen)
            if np.any(active == target):
                hit_at = t
                break
        hits[i] = hit_at
    return empirical_survival(hits, horizon=horizon)
