"""The duality proof's coupling, made executable (Theorem 1.3's engine).

The paper proves Theorem 1.3 by a time-reversal coupling: fix the
neighbour selections

    ``ω(u, t) ⊆ N(u)``  for every vertex ``u`` and round ``1 ≤ t ≤ T``,

run COBRA *forward* with them (a vertex active in round ``t − 1`` sends
along every selection in ``ω(u, t)``), and run BIPS with the *same*
selections in reverse time order (round ``s`` of BIPS uses
``ω(·, T + 1 − s)``).  Then — deterministically, for every fixed
selection table —

    vertex ``v`` is visited by COBRA within ``T`` rounds
        ⟺  ``C ∩ A_T ≠ ∅`` in BIPS,

and because the table is exchanged between the two processes with equal
probability, the distributional identity of Theorem 1.3 follows.

This module implements the selection table and both deterministic
replays, so the equivalence can be checked sample-by-sample (it is a
hypothesis property test in this repository) — a much stronger
verification than comparing Monte-Carlo estimates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.graph import Graph
from ..graphs.validation import check_vertex, check_vertex_set, require_connected
from .branching import BranchingPolicy, make_policy

__all__ = [
    "SelectionTable",
    "cobra_replay",
    "bips_replay",
    "bips_replay_multi",
    "coupling_equivalence_holds",
    "set_coupling_equivalence_holds",
]


@dataclass(frozen=True)
class SelectionTable:
    """Fixed neighbour selections ``ω(u, t)`` for all vertices and rounds.

    ``selections[t - 1][u]`` is the tuple of vertices chosen by ``u``
    for round ``t`` (length = that vertex's selection count; with
    replacement, so duplicates are allowed).
    """

    graph: Graph
    selections: tuple[tuple[tuple[int, ...], ...], ...]

    @property
    def horizon(self) -> int:
        """The number of prepared rounds ``T``."""
        return len(self.selections)

    @classmethod
    def sample(
        cls,
        graph: Graph,
        horizon: int,
        rng: np.random.Generator,
        *,
        branching: BranchingPolicy | int | float = 2,
        lazy: bool = False,
    ) -> "SelectionTable":
        """Draw a table the way both processes would draw it.

        Crucially the per-(u, t) selection law is the same for COBRA
        and BIPS, which is what makes the table exchangeable between
        the two time directions.
        """
        require_connected(graph)
        policy = make_policy(branching)
        rounds = []
        for _ in range(horizon):
            per_vertex = []
            counts = policy.draw_counts(graph.n, rng)
            for u in range(graph.n):
                picks = graph.sample_neighbors(
                    np.full(int(counts[u]), u, dtype=np.int64), rng
                )
                if lazy:
                    stay = rng.random(picks.shape[0]) < 0.5
                    picks = np.where(stay, u, picks)
                per_vertex.append(tuple(int(p) for p in picks))
            rounds.append(tuple(per_vertex))
        return cls(graph=graph, selections=tuple(rounds))


def cobra_replay(table: SelectionTable, start_set) -> np.ndarray:
    """Run COBRA deterministically on the table; return per-vertex visit flags.

    A vertex active at round ``t − 1`` sends along exactly its
    ``ω(u, t)`` selections.  Returns a boolean mask of vertices visited
    within the table's horizon (the start set counts as visited).
    """
    g = table.graph
    start = check_vertex_set(g, start_set)
    active = np.zeros(g.n, dtype=bool)
    active[start] = True
    visited = active.copy()
    for t in range(table.horizon):
        nxt = np.zeros(g.n, dtype=bool)
        row = table.selections[t]
        for u in np.nonzero(active)[0]:
            for w in row[int(u)]:
                nxt[w] = True
        active = nxt
        visited |= active
    return visited


def bips_replay(table: SelectionTable, source: int) -> np.ndarray:
    """Run BIPS deterministically on the *time-reversed* table.

    Round ``s`` of BIPS (``s = 1..T``) uses the selections
    ``ω(·, T + 1 − s)``: a vertex is infected next round iff one of its
    selections is currently infected.  Returns the mask of ``A_T``.
    """
    g = table.graph
    source = check_vertex(g, source)
    infected = np.zeros(g.n, dtype=bool)
    infected[source] = True
    horizon = table.horizon
    for s in range(1, horizon + 1):
        row = table.selections[horizon - s]
        nxt = np.zeros(g.n, dtype=bool)
        for u in range(g.n):
            for w in row[u]:
                if infected[w]:
                    nxt[u] = True
                    break
        nxt[source] = True
        infected = nxt
    return infected


def coupling_equivalence_holds(
    table: SelectionTable, start_set, source: int
) -> bool:
    """Check the proof's deterministic claim for one selection table.

    ``v`` visited by COBRA (from ``C``) within ``T``  ⟺
    ``C ∩ A_T ≠ ∅`` for BIPS from ``{v}`` on the reversed table.
    """
    g = table.graph
    source = check_vertex(g, source)
    start = check_vertex_set(g, start_set)
    visited = cobra_replay(table, start)
    infected = bips_replay(table, source)
    lhs = bool(visited[source])
    rhs = bool(infected[start].any())
    return lhs == rhs


def bips_replay_multi(table: SelectionTable, sources) -> np.ndarray:
    """BIPS replay with a *set* of persistent sources (extension).

    Identical to :func:`bips_replay` except every vertex of ``sources``
    is re-added each round.  Used by the set-duality check below.
    """
    g = table.graph
    src = check_vertex_set(g, sources)
    infected = np.zeros(g.n, dtype=bool)
    infected[src] = True
    horizon = table.horizon
    for s in range(1, horizon + 1):
        row = table.selections[horizon - s]
        nxt = np.zeros(g.n, dtype=bool)
        for u in range(g.n):
            for w in row[u]:
                if infected[w]:
                    nxt[u] = True
                    break
        nxt[src] = True
        infected = nxt
    return infected


def set_coupling_equivalence_holds(
    table: SelectionTable, start_set, target_set
) -> bool:
    """The set-generalised duality, per table (an extension of Thm 1.3).

    The same time-reversal argument gives, for any nonempty sets
    ``C`` (COBRA start) and ``S`` (BIPS persistent sources):

        some vertex of ``S`` is visited by COBRA within ``T``
            ⟺  ``C ∩ A_T ≠ ∅`` for multi-source BIPS on the
                reversed table.

    Taking probabilities over the (exchangeable) table yields
    ``P̂(Hit(S) > T | C_0 = C) = P(C ∩ A_T = ∅ | A_0 = S)`` —
    Theorem 1.3 is the ``|S| = 1`` case.  This function checks the
    deterministic per-table claim.
    """
    g = table.graph
    start = check_vertex_set(g, start_set)
    targets = check_vertex_set(g, target_set)
    visited = cobra_replay(table, start)
    infected = bips_replay_multi(table, targets)
    lhs = bool(visited[targets].any())
    rhs = bool(infected[start].any())
    return lhs == rhs
