"""Verification of the COBRA ↔ BIPS duality (Theorem 1.3).

The theorem: for any vertex ``v`` (the BIPS source), any nonempty
``C ⊆ V`` (the COBRA start set) and any ``T ≥ 0``,

    ``P̂(Hit(v) > T | C_0 = C)  =  P(C ∩ A_T = ∅ | A_0 = {v})``,

for the same branching parameter ``b`` on both sides.  The proof couples
the two processes through a time-reversed reuse of the neighbour
selections.

Two verification modes:

* :func:`verify_duality_exact` — both sides computed exactly on a tiny
  graph (via :mod:`repro.core.exact`); the theorem is an identity, so
  the difference must be numerically zero.
* :func:`verify_duality_monte_carlo` — independent empirical estimates
  of both sides with normal-approximation confidence intervals, usable
  at any graph size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.graph import Graph
from ..graphs.validation import check_vertex, check_vertex_set, require_connected
from .bips import BipsProcess
from .branching import BranchingPolicy
from .cobra import CobraProcess
from .exact import bips_exact, cobra_hit_survival_exact
from ..stats.rng import generator_from

__all__ = [
    "DualityReport",
    "verify_duality_exact",
    "verify_duality_monte_carlo",
]


@dataclass(frozen=True)
class DualityReport:
    """The two sides of Theorem 1.3 on a grid of round horizons ``T``.

    ``cobra_side[T]`` estimates ``P̂(Hit(v) > T | C_0 = C)`` and
    ``bips_side[T]`` estimates ``P(C ∩ A_T = ∅ | A_0 = {v})``.  For the
    exact mode ``stderr`` is zero and ``max_abs_diff`` should be at
    numerical noise level.
    """

    horizons: np.ndarray
    cobra_side: np.ndarray
    bips_side: np.ndarray
    cobra_stderr: np.ndarray
    bips_stderr: np.ndarray

    @property
    def max_abs_diff(self) -> float:
        """Largest pointwise discrepancy between the two sides."""
        return float(np.max(np.abs(self.cobra_side - self.bips_side)))

    def consistent(self, z: float = 4.0) -> bool:
        """True iff every horizon's difference is within ``z`` joint stderrs.

        For exact reports (zero stderr) falls back to an absolute
        tolerance of 1e-9.
        """
        joint = np.sqrt(self.cobra_stderr**2 + self.bips_stderr**2)
        tol = np.maximum(z * joint, 1e-9)
        return bool(np.all(np.abs(self.cobra_side - self.bips_side) <= tol))


def verify_duality_exact(
    graph: Graph,
    source: int,
    start_set,
    *,
    branching: BranchingPolicy | int | float = 2,
    lazy: bool = False,
    t_max: int = 24,
) -> DualityReport:
    """Exact evaluation of both sides of Theorem 1.3 on a tiny graph."""
    require_connected(graph)
    source = check_vertex(graph, source)
    c = check_vertex_set(graph, start_set)

    cobra_surv = cobra_hit_survival_exact(
        graph, c, source, branching=branching, lazy=lazy, t_max=t_max
    )
    bips = bips_exact(graph, source, branching=branching, lazy=lazy, t_max=t_max)
    bips_side = np.array(
        [bips.prob_uninfected(c, t) for t in range(t_max + 1)], dtype=np.float64
    )
    horizons = np.arange(t_max + 1)
    zeros = np.zeros(t_max + 1)
    return DualityReport(
        horizons=horizons,
        cobra_side=cobra_surv,
        bips_side=bips_side,
        cobra_stderr=zeros,
        bips_stderr=zeros.copy(),
    )


def verify_duality_monte_carlo(
    graph: Graph,
    source: int,
    start_set,
    *,
    branching: BranchingPolicy | int | float = 2,
    lazy: bool = False,
    horizons=None,
    runs: int = 2000,
    rng: np.random.Generator | int | None = None,
) -> DualityReport:
    """Monte-Carlo estimates of both sides of Theorem 1.3.

    COBRA side: fraction of runs (started from ``start_set``) in which
    the source is still unhit after ``T`` rounds.  BIPS side: fraction
    of runs (source ``source``) in which ``A_T`` misses ``start_set``
    entirely.  Both estimated from ``runs`` independent trajectories.
    """
    require_connected(graph)
    gen = generator_from(rng)
    source = check_vertex(graph, source)
    c = check_vertex_set(graph, start_set)
    if horizons is None:
        horizons = np.arange(0, 4 * max(4, int(np.ceil(np.log2(graph.n + 1)))))
    horizons = np.asarray(horizons, dtype=np.int64)
    t_top = int(horizons.max())

    # --- COBRA side: track whether the source has been hit by each T.
    cobra_proc = CobraProcess(graph, branching, lazy=lazy)
    unhit_counts = np.zeros(horizons.shape[0], dtype=np.int64)
    for _ in range(runs):
        active = c.copy()
        hit_at = 0 if source in set(c.tolist()) else -1
        t = 0
        while hit_at < 0 and t < t_top:
            t += 1
            active = cobra_proc.step(active, gen)
            if hit_at < 0 and np.any(active == source):
                hit_at = t
        for i, horizon in enumerate(horizons):
            if hit_at < 0 or hit_at > horizon:
                unhit_counts[i] += 1
    cobra_side = unhit_counts / runs

    # --- BIPS side: batch runs, check A_T ∩ C at each horizon.
    bips_proc = BipsProcess(graph, source, branching, lazy=lazy)
    miss_counts = np.zeros(horizons.shape[0], dtype=np.int64)
    infected = np.zeros((runs, graph.n), dtype=bool)
    infected[:, source] = True
    cmask = np.zeros(graph.n, dtype=bool)
    cmask[c] = True
    for i, horizon in enumerate(horizons):
        if horizon == 0:
            miss_counts[i] = runs if not cmask[source] else 0
    horizon_set = set(horizons.tolist())
    t = 0
    while t < t_top:
        t += 1
        infected = bips_proc.step_batch(infected, gen)
        if t in horizon_set:
            i = int(np.nonzero(horizons == t)[0][0])
            miss_counts[i] = int(np.sum(~(infected & cmask[None, :]).any(axis=1)))
    bips_side = miss_counts / runs

    def stderr(p: np.ndarray) -> np.ndarray:
        return np.sqrt(np.maximum(p * (1.0 - p), 1e-12) / runs)

    return DualityReport(
        horizons=horizons,
        cobra_side=cobra_side,
        bips_side=bips_side,
        cobra_stderr=stderr(cobra_side),
        bips_stderr=stderr(bips_side),
    )
