"""The BIPS (Biased Infection with Persistent Source) engine.

Process definition (paper, Section 1): ``A_0 = {v}`` and
``A_{t+1} = Infect(A_t) ∪ {v}``, where in ``Infect(S)`` every vertex
``u`` independently selects ``b`` random neighbours with replacement
and joins the next infected set iff at least one selected neighbour is
in ``S``.  The source ``v`` is persistently infected; all other
vertices refresh their status every round (SIS dynamics).

BIPS is the time-reversed dual of COBRA (Theorem 1.3); the paper's new
cover-time bounds are proven by bounding the BIPS infection time
(Theorems 1.4 and 1.5).  This module therefore exposes everything the
proofs track: ``|A_t|``, the degree ``d(A_t)`` of Section 3, and the
candidate sets ``C_t`` of eq. (6) used by Corollaries 5.2/5.3.

Execution is delegated to the unified batched engine
(:mod:`repro.engine`): :class:`BipsProcess` binds a
:class:`~repro.engine.rules.BipsRule` to a static graph.  ``run`` uses
the rule's ``"single"`` randomness discipline (the historical
single-run draw order) at ``R = 1``; ``run_batch`` uses the ``"batch"``
discipline (the historical tiled draw order).  Both are seed-for-seed
compatible with the pre-engine implementations.
"""

from __future__ import annotations

import numpy as np

from ..engine.caps import process_round_cap
from ..engine.engine import SpreadEngine
from ..engine.rules import BipsRule
from ..graphs.graph import Graph
from ..graphs.validation import check_vertex, require_connected
from ..parallel.batch import plan_batches_for
from ..stats.rng import generator_from
from .branching import BranchingPolicy, make_policy
from .state import BipsBatchResult, BipsResult

__all__ = [
    "BipsProcess",
    "default_infection_cap",
    "infection_time",
    "infection_time_samples",
    "candidate_set",
    "fixed_set",
]


def default_infection_cap(graph: Graph) -> int:
    """Round cap mirroring :func:`repro.core.cobra.default_round_cap`.

    Theorem 1.4 guarantees infection within ``O(m + dmax² log n)`` with
    probability ``1 − O(1/n³)``, so ``64×`` that is effectively certain.
    Delegates to :func:`repro.engine.caps.process_round_cap`.
    """
    return process_round_cap(graph.n, graph.m, graph.dmax)


def fixed_set(graph: Graph, infected: np.ndarray) -> np.ndarray:
    """``B_fix = {u : N(u) ⊆ A}`` — the deterministic part of the next set.

    ``infected`` is a boolean mask of ``A``.  Returns a boolean mask.
    (Paper, Section 3: these vertices will be infected regardless of
    their random selections, because every selection lands in ``A``.)
    """
    counts = np.add.reduceat(
        infected[graph.indices].astype(np.int64), graph.indptr[:-1]
    )
    return counts == graph.degrees


def candidate_set(graph: Graph, infected: np.ndarray, source: int) -> np.ndarray:
    """``C = (N(A) ∪ {v}) \\ B_fix`` — the candidates of eq. (6).

    These are exactly the vertices whose next-round status is random;
    Corollary 5.2 lower-bounds ``|C_t|`` by ``|A_{t-1}|(1-λ)/2`` for
    regular graphs with ``|A_{t-1}| <= n/2``.
    """
    counts = np.add.reduceat(
        infected[graph.indices].astype(np.int64), graph.indptr[:-1]
    )
    in_neighborhood = counts > 0
    in_neighborhood[source] = True
    bfix = counts == graph.degrees
    return in_neighborhood & ~bfix


class BipsProcess:
    """A BIPS process bound to a graph, source vertex and branching policy.

    Parameters mirror :class:`~repro.core.cobra.CobraProcess`; the extra
    ``source`` is the persistent source ``v``.  ``validate=False`` skips
    the connectivity check (see :mod:`repro.dynamics`).
    """

    def __init__(
        self,
        graph: Graph,
        source: int,
        branching: BranchingPolicy | int | float = 2,
        *,
        lazy: bool = False,
        validate: bool = True,
    ) -> None:
        if validate:
            require_connected(graph)
        self.graph = graph
        self.source = check_vertex(graph, source)
        self.policy = make_policy(branching)
        self.lazy = lazy
        self.rule_single = BipsRule(
            self.policy, self.source, lazy=self.lazy, discipline="single"
        )
        self.rule_batch = BipsRule(
            self.policy, self.source, lazy=self.lazy, discipline="batch"
        )
        self._engine_single = SpreadEngine(self.rule_single, graph)
        self._engine_batch = SpreadEngine(self.rule_batch, graph)

    # ------------------------------------------------------------------
    def step(self, infected: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """One parallel round: return the next infected boolean mask.

        Every vertex makes its selections; a vertex is infected next
        round iff some selection is currently infected.  The source is
        then forced back in.
        """
        g = self.graph
        infected = np.asarray(infected, dtype=bool)
        if infected.shape != (g.n,):
            raise ValueError(f"infected mask must have shape ({g.n},)")
        return self.rule_single.step(
            g, infected[None, :], np.ones(1, dtype=bool), rng
        )[0]

    def step_batch(
        self, infected: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """One parallel round for ``R`` runs at once: ``(R, n) → (R, n)``."""
        return self.rule_batch.step(
            self.graph, infected, np.ones(infected.shape[0], dtype=bool), rng
        )

    # ------------------------------------------------------------------
    def run(
        self,
        rng: np.random.Generator,
        *,
        max_rounds: int | None = None,
        record_degrees: bool = False,
        record_candidates: bool = False,
        initial: np.ndarray | None = None,
    ) -> BipsResult:
        """Run until the whole graph is infected (or the cap).

        ``initial`` optionally overrides ``A_0`` (must contain the
        source); the proofs' restart/monotonicity arguments use this.
        Internally the batched engine at ``R = 1`` with the single-run
        randomness discipline.
        """
        g = self.graph
        if initial is None:
            infected = np.zeros(g.n, dtype=bool)
            infected[self.source] = True
        else:
            infected = np.array(initial, dtype=bool)
            if infected.shape != (g.n,) or not infected[self.source]:
                raise ValueError("initial set must be a mask containing the source")

        degree_sizes = [] if record_degrees else None
        candidate_sizes = [] if record_candidates else None

        def observe(t: int, graph: Graph, state: np.ndarray) -> None:
            if record_degrees:
                degree_sizes.append(int(graph.degrees[state[0]].sum()))
            if record_candidates:
                candidate_sizes.append(
                    int(candidate_set(graph, state[0], self.source).sum())
                )

        res = self._engine_single.run(
            infected[None, :],
            rng,
            max_rounds=max_rounds,
            record_sizes=True,
            on_round=observe if (record_degrees or record_candidates) else None,
        )
        final = res.final_state[0]
        if record_degrees:
            degree_sizes.append(int(g.degrees[final].sum()))

        done = bool(res.finish_times[0] >= 0)
        return BipsResult(
            infected_all=done,
            infection_time=int(res.finish_times[0]) if done else -1,
            rounds_run=res.rounds_run,
            sizes=res.sizes[0].copy(),
            degree_sizes=np.asarray(
                degree_sizes if record_degrees else [], dtype=np.int64
            ),
            candidate_sizes=np.asarray(
                candidate_sizes if record_candidates else [], dtype=np.int64
            ),
            final_infected=final.copy(),
        )

    # ------------------------------------------------------------------
    def run_batch(
        self,
        runs: int,
        rng: np.random.Generator,
        *,
        max_rounds: int | None = None,
        record_sizes: bool = False,
    ) -> BipsBatchResult:
        """Advance ``runs`` independent BIPS runs together.

        All runs share the same source.  A run that has fully infected
        stops being updated (its state is frozen at all-infected).
        """
        g = self.graph
        if runs < 1:
            raise ValueError("need at least one run")
        infected = np.zeros((runs, g.n), dtype=bool)
        infected[:, self.source] = True

        res = self._engine_batch.run(
            infected, rng, max_rounds=max_rounds, record_sizes=record_sizes
        )
        return BipsBatchResult(
            infection_times=res.finish_times,
            rounds_run=res.rounds_run,
            sizes=res.sizes,
        )


# ----------------------------------------------------------------------
# Convenience wrappers
# ----------------------------------------------------------------------
def infection_time(
    graph: Graph,
    source: int = 0,
    *,
    branching: BranchingPolicy | int | float = 2,
    lazy: bool = False,
    rng: np.random.Generator | int | None = None,
    max_rounds: int | None = None,
) -> int:
    """Sample ``infec(source)`` once.  Raises if the cap is hit."""
    gen = generator_from(rng)
    res = BipsProcess(graph, source, branching, lazy=lazy).run(
        gen, max_rounds=max_rounds
    )
    if not res.infected_all:
        raise RuntimeError(
            f"BIPS did not infect {graph.name} within {res.rounds_run} rounds"
        )
    return res.infection_time


def infection_time_samples(
    graph: Graph,
    source: int = 0,
    runs: int = 32,
    *,
    branching: BranchingPolicy | int | float = 2,
    lazy: bool = False,
    rng: np.random.Generator | int | None = None,
    max_rounds: int | None = None,
    batch_size: int = 256,
    workers: int | None = None,
    endpoint: str | None = None,
) -> np.ndarray:
    """Sample ``infec(source)`` ``runs`` times via the batch engine.

    Batches are planned by :func:`repro.parallel.plan_batches_for`
    under the BIPS rule's declared state footprint, capped at
    ``batch_size`` runs each.  ``workers`` switches to the sharded
    multiprocess path and ``endpoint`` to a broker's worker fleet,
    exactly as in :func:`repro.core.cobra.cover_time_samples`.
    """
    proc = BipsProcess(graph, source, branching, lazy=lazy)
    if runs <= 0:
        return np.empty(0, dtype=np.int64)
    if workers is not None or endpoint is not None:
        from ..parallel.sharding import finished_times_or_raise

        state = np.zeros((int(runs), graph.n), dtype=bool)
        state[:, proc.source] = True
        res = proc._engine_batch.run_sharded(
            state,
            rng,
            workers=None if workers is None else int(workers),
            max_rounds=max_rounds,
            max_shard=batch_size,
            endpoint=endpoint,
        )
        return finished_times_or_raise(
            res.finish_times, f"sharded BIPS on {graph.name}"
        )
    gen = generator_from(rng)
    out = []
    for r in plan_batches_for(
        proc.rule_batch, int(runs), graph.n, max_batch=batch_size
    ):
        res = proc.run_batch(r, gen, max_rounds=max_rounds)
        if not res.all_infected:
            raise RuntimeError(
                f"{(res.infection_times < 0).sum()} of {r} BIPS runs on "
                f"{graph.name} hit the round cap"
            )
        out.append(res.infection_times)
    return np.concatenate(out)
