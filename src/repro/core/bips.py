"""The BIPS (Biased Infection with Persistent Source) engine.

Process definition (paper, Section 1): ``A_0 = {v}`` and
``A_{t+1} = Infect(A_t) ∪ {v}``, where in ``Infect(S)`` every vertex
``u`` independently selects ``b`` random neighbours with replacement
and joins the next infected set iff at least one selected neighbour is
in ``S``.  The source ``v`` is persistently infected; all other
vertices refresh their status every round (SIS dynamics).

BIPS is the time-reversed dual of COBRA (Theorem 1.3); the paper's new
cover-time bounds are proven by bounding the BIPS infection time
(Theorems 1.4 and 1.5).  This engine therefore exposes everything the
proofs track: ``|A_t|``, the degree ``d(A_t)`` of Section 3, and the
candidate sets ``C_t`` of eq. (6) used by Corollaries 5.2/5.3.

One round costs O(b·n) vectorised work; the batch runner advances ``R``
runs with (R, n) boolean state updated in place.
"""

from __future__ import annotations

import math

import numpy as np

from ..graphs.graph import Graph
from ..graphs.validation import check_vertex, require_connected
from ..stats.rng import generator_from
from .branching import BranchingPolicy, FixedBranching, make_policy
from .state import BipsBatchResult, BipsResult

__all__ = [
    "BipsProcess",
    "default_infection_cap",
    "infection_time",
    "infection_time_samples",
    "candidate_set",
    "fixed_set",
]


def default_infection_cap(graph: Graph) -> int:
    """Round cap mirroring :func:`repro.core.cobra.default_round_cap`.

    Theorem 1.4 guarantees infection within ``O(m + dmax² log n)`` with
    probability ``1 − O(1/n³)``, so ``64×`` that is effectively certain.
    """
    n = graph.n
    bound = graph.m + graph.dmax**2 * max(1.0, math.log(n))
    return int(64 * bound + 1000)


def fixed_set(graph: Graph, infected: np.ndarray) -> np.ndarray:
    """``B_fix = {u : N(u) ⊆ A}`` — the deterministic part of the next set.

    ``infected`` is a boolean mask of ``A``.  Returns a boolean mask.
    (Paper, Section 3: these vertices will be infected regardless of
    their random selections, because every selection lands in ``A``.)
    """
    counts = np.add.reduceat(
        infected[graph.indices].astype(np.int64), graph.indptr[:-1]
    )
    return counts == graph.degrees


def candidate_set(graph: Graph, infected: np.ndarray, source: int) -> np.ndarray:
    """``C = (N(A) ∪ {v}) \\ B_fix`` — the candidates of eq. (6).

    These are exactly the vertices whose next-round status is random;
    Corollary 5.2 lower-bounds ``|C_t|`` by ``|A_{t-1}|(1-λ)/2`` for
    regular graphs with ``|A_{t-1}| <= n/2``.
    """
    counts = np.add.reduceat(
        infected[graph.indices].astype(np.int64), graph.indptr[:-1]
    )
    in_neighborhood = counts > 0
    in_neighborhood[source] = True
    bfix = counts == graph.degrees
    return in_neighborhood & ~bfix


class BipsProcess:
    """A BIPS process bound to a graph, source vertex and branching policy.

    Parameters mirror :class:`~repro.core.cobra.CobraProcess`; the extra
    ``source`` is the persistent source ``v``.  ``validate=False`` skips
    the connectivity check (see :mod:`repro.dynamics`).
    """

    def __init__(
        self,
        graph: Graph,
        source: int,
        branching: BranchingPolicy | int | float = 2,
        *,
        lazy: bool = False,
        validate: bool = True,
    ) -> None:
        if validate:
            require_connected(graph)
        self.graph = graph
        self.source = check_vertex(graph, source)
        self.policy = make_policy(branching)
        self.lazy = lazy
        self._all_vertices = np.arange(graph.n, dtype=np.int64)

    # ------------------------------------------------------------------
    def _select(self, actors: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        targets = self.graph.sample_neighbors(actors, rng)
        if self.lazy:
            stay = rng.random(actors.shape[0]) < 0.5
            targets = np.where(stay, actors, targets)
        return targets

    def step(self, infected: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """One parallel round: return the next infected boolean mask.

        Every vertex makes its selections; a vertex is infected next
        round iff some selection is currently infected.  The source is
        then forced back in.
        """
        g = self.graph
        infected = np.asarray(infected, dtype=bool)
        if infected.shape != (g.n,):
            raise ValueError(f"infected mask must have shape ({g.n},)")

        pick = self._select(self._all_vertices, rng)
        nxt = infected[pick]
        if isinstance(self.policy, FixedBranching) and self.policy.b >= 2:
            for _ in range(self.policy.b - 1):
                pick = self._select(self._all_vertices, rng)
                nxt |= infected[pick]
        else:
            p2 = self.policy.second_selection_probability()
            if p2 > 0.0:
                second = rng.random(g.n) < p2
                actors = self._all_vertices[second]
                pick2 = self._select(actors, rng)
                nxt[actors] |= infected[pick2]
        nxt[self.source] = True
        return nxt

    def step_batch(
        self, infected: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """One parallel round for ``R`` runs at once: ``(R, n) → (R, n)``."""
        g = self.graph
        runs = infected.shape[0]
        verts_tile = np.tile(self._all_vertices, runs)
        pick = self._select(verts_tile, rng).reshape(runs, g.n)
        nxt = np.take_along_axis(infected, pick, axis=1)
        if isinstance(self.policy, FixedBranching):
            for _ in range(self.policy.b - 1):
                pick = self._select(verts_tile, rng).reshape(runs, g.n)
                nxt |= np.take_along_axis(infected, pick, axis=1)
        else:
            p2 = self.policy.second_selection_probability()
            if p2 > 0.0:
                pick = self._select(verts_tile, rng).reshape(runs, g.n)
                second = rng.random((runs, g.n)) < p2
                nxt |= np.take_along_axis(infected, pick, axis=1) & second
        nxt[:, self.source] = True
        return nxt

    # ------------------------------------------------------------------
    def run(
        self,
        rng: np.random.Generator,
        *,
        max_rounds: int | None = None,
        record_degrees: bool = False,
        record_candidates: bool = False,
        initial: np.ndarray | None = None,
    ) -> BipsResult:
        """Run until the whole graph is infected (or the cap).

        ``initial`` optionally overrides ``A_0`` (must contain the
        source); the proofs' restart/monotonicity arguments use this.
        """
        g = self.graph
        if initial is None:
            infected = np.zeros(g.n, dtype=bool)
            infected[self.source] = True
        else:
            infected = np.array(initial, dtype=bool)
            if infected.shape != (g.n,) or not infected[self.source]:
                raise ValueError("initial set must be a mask containing the source")
        cap = default_infection_cap(g) if max_rounds is None else int(max_rounds)

        sizes = [int(infected.sum())]
        degree_sizes = [g.degrees[infected].sum()] if record_degrees else None
        candidate_sizes = [] if record_candidates else None

        t = 0
        while not infected.all() and t < cap:
            if record_candidates:
                candidate_sizes.append(
                    int(candidate_set(g, infected, self.source).sum())
                )
            t += 1
            infected = self.step(infected, rng)
            sizes.append(int(infected.sum()))
            if record_degrees:
                degree_sizes.append(int(g.degrees[infected].sum()))

        done = bool(infected.all())
        return BipsResult(
            infected_all=done,
            infection_time=t if done else -1,
            rounds_run=t,
            sizes=np.asarray(sizes, dtype=np.int64),
            degree_sizes=np.asarray(
                degree_sizes if record_degrees else [], dtype=np.int64
            ),
            candidate_sizes=np.asarray(
                candidate_sizes if record_candidates else [], dtype=np.int64
            ),
            final_infected=infected,
        )

    # ------------------------------------------------------------------
    def run_batch(
        self,
        runs: int,
        rng: np.random.Generator,
        *,
        max_rounds: int | None = None,
        record_sizes: bool = False,
    ) -> BipsBatchResult:
        """Advance ``runs`` independent BIPS runs together.

        All runs share the same source.  A run that has fully infected
        stops being updated (its state is frozen at all-infected).
        """
        g = self.graph
        if runs < 1:
            raise ValueError("need at least one run")
        cap = default_infection_cap(g) if max_rounds is None else int(max_rounds)

        infected = np.zeros((runs, g.n), dtype=bool)
        infected[:, self.source] = True
        times = np.full(runs, -1, dtype=np.int64)
        if g.n == 1:
            times[:] = 0
        sizes = [infected.sum(axis=1)] if record_sizes else None

        t = 0
        while np.any(times < 0) and t < cap:
            t += 1
            alive = times < 0
            nxt = self.step_batch(infected, rng)
            # Freeze finished runs at all-infected.
            infected = np.where(alive[:, None], nxt, infected)
            done_now = alive & infected.all(axis=1)
            times[done_now] = t
            if record_sizes:
                sizes.append(infected.sum(axis=1))

        return BipsBatchResult(
            infection_times=times,
            rounds_run=t,
            sizes=np.column_stack(sizes) if record_sizes else None,
        )


# ----------------------------------------------------------------------
# Convenience wrappers
# ----------------------------------------------------------------------
def infection_time(
    graph: Graph,
    source: int = 0,
    *,
    branching: BranchingPolicy | int | float = 2,
    lazy: bool = False,
    rng: np.random.Generator | int | None = None,
    max_rounds: int | None = None,
) -> int:
    """Sample ``infec(source)`` once.  Raises if the cap is hit."""
    gen = generator_from(rng)
    res = BipsProcess(graph, source, branching, lazy=lazy).run(
        gen, max_rounds=max_rounds
    )
    if not res.infected_all:
        raise RuntimeError(
            f"BIPS did not infect {graph.name} within {res.rounds_run} rounds"
        )
    return res.infection_time


def infection_time_samples(
    graph: Graph,
    source: int = 0,
    runs: int = 32,
    *,
    branching: BranchingPolicy | int | float = 2,
    lazy: bool = False,
    rng: np.random.Generator | int | None = None,
    max_rounds: int | None = None,
    batch_size: int = 256,
) -> np.ndarray:
    """Sample ``infec(source)`` ``runs`` times via the batch engine."""
    gen = generator_from(rng)
    proc = BipsProcess(graph, source, branching, lazy=lazy)
    if runs <= 0:
        return np.empty(0, dtype=np.int64)
    out = []
    left = int(runs)
    while left > 0:
        r = min(left, batch_size)
        res = proc.run_batch(r, gen, max_rounds=max_rounds)
        if not res.all_infected:
            raise RuntimeError(
                f"{(res.infection_times < 0).sum()} of {r} BIPS runs on "
                f"{graph.name} hit the round cap"
            )
        out.append(res.infection_times)
        left -= r
    return np.concatenate(out)
