"""Exact finite-state analysis of COBRA and BIPS on tiny graphs.

Both processes are Markov chains on subsets of ``V``:

* **BIPS** — states are infected sets containing the source.  Given
  ``A_t``, every non-source vertex is independently infected next round
  with probability ``p_u(A_t)`` (eqs. (32)/(33)), so each transition row
  is a *product measure* which we materialise by iterated doubling in
  ``O(2^k)`` per state (``k = n − 1`` non-source vertices).

* **COBRA** — states are active sets.  The next state is the union of
  each active vertex's ``b`` selections, so each row is the
  *union-convolution* of per-source selection measures over bitmask
  subsets.

These engines make the duality theorem (Theorem 1.3) *exactly*
checkable — the headline correctness test of this reproduction — and
provide ground-truth hit/cover/infection distributions against which
the Monte-Carlo engines are validated.

Scale limits: BIPS is practical to ``n ≈ 12``; COBRA hit-time to
``n ≈ 9``; COBRA cover-time (joint active × visited state) to
``n ≈ 7``.  Limits are enforced with clear errors.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..graphs.graph import Graph
from ..graphs.validation import check_vertex, check_vertex_set, require_connected
from .branching import BernoulliBranching, BranchingPolicy, FixedBranching, make_policy

__all__ = [
    "BipsExact",
    "bips_exact",
    "bips_absorption_rate",
    "cobra_hit_survival_exact",
    "cobra_cover_survival_exact",
    "exact_cover_expectation",
    "exact_cover_of_graph",
    "expected_time_from_survival",
]

_MAX_BIPS_N = 13
_MAX_COBRA_N = 10
_MAX_COVER_N = 8


def _infection_probabilities(
    graph: Graph,
    infected: np.ndarray,
    policy: BranchingPolicy,
    lazy: bool,
) -> np.ndarray:
    """Per-vertex probability of being infected next round given mask ``A``."""
    counts = np.add.reduceat(
        infected[graph.indices].astype(np.float64), graph.indptr[:-1]
    )
    p = counts / graph.degrees
    if lazy:
        p = 0.5 * p + 0.5 * infected.astype(np.float64)
    if isinstance(policy, FixedBranching):
        return 1.0 - (1.0 - p) ** policy.b
    assert isinstance(policy, BernoulliBranching)
    return 1.0 - (1.0 - p) * (1.0 - policy.rho * p)


@dataclass(frozen=True)
class BipsExact:
    """Exact BIPS distribution over infected sets, round by round.

    ``others`` lists the non-source vertices; state mask bit ``i``
    corresponds to ``others[i]`` being infected.  ``dists[t]`` is the
    distribution over the ``2^k`` states at round ``t``; the full set is
    the all-ones mask.
    """

    graph: Graph
    source: int
    others: np.ndarray
    dists: np.ndarray  # (t_max + 1, 2^k)

    @property
    def t_max(self) -> int:
        """Largest round with a stored distribution."""
        return self.dists.shape[0] - 1

    def survival(self) -> np.ndarray:
        """``P(infec(v) > t)`` for ``t = 0 .. t_max``.

        The full state is absorbing, so this equals one minus the mass
        on the all-ones mask.
        """
        full = self.dists.shape[1] - 1
        return 1.0 - self.dists[:, full]

    def prob_uninfected(self, subset, t: int) -> float:
        """``P(A_t ∩ C = ∅)`` — the right-hand side of Theorem 1.3."""
        c = check_vertex_set(self.graph, subset)
        if self.source in set(c.tolist()):
            return 0.0  # the source is always infected
        pos = {int(v): i for i, v in enumerate(self.others)}
        cmask = 0
        for v in c.tolist():
            cmask |= 1 << pos[v]
        states = np.arange(self.dists.shape[1])
        keep = (states & cmask) == 0
        return float(self.dists[t, keep].sum())

    def expected_size(self, t: int) -> float:
        """``E|A_t|`` (including the always-infected source)."""
        k = self.others.shape[0]
        states = np.arange(self.dists.shape[1])
        pop = np.zeros_like(states)
        for i in range(k):
            pop += (states >> i) & 1
        return 1.0 + float(np.dot(self.dists[t], pop))


def bips_exact(
    graph: Graph,
    source: int,
    *,
    branching: BranchingPolicy | int | float = 2,
    lazy: bool = False,
    t_max: int = 64,
) -> BipsExact:
    """Propagate the exact BIPS state distribution for ``t_max`` rounds."""
    require_connected(graph)
    source = check_vertex(graph, source)
    if graph.n > _MAX_BIPS_N:
        raise ValueError(
            f"exact BIPS limited to n <= {_MAX_BIPS_N} (got n = {graph.n})"
        )
    policy = make_policy(branching)
    others = np.array(
        [u for u in range(graph.n) if u != source], dtype=np.int64
    )
    k = others.shape[0]
    size = 1 << k

    # Transition rows, built lazily and cached per state.
    @lru_cache(maxsize=None)
    def row(state: int) -> np.ndarray:
        infected = np.zeros(graph.n, dtype=bool)
        infected[source] = True
        for i in range(k):
            if state >> i & 1:
                infected[others[i]] = True
        p = _infection_probabilities(graph, infected, policy, lazy)[others]
        r = np.ones(1, dtype=np.float64)
        for i in range(k):
            r = np.concatenate([r * (1.0 - p[i]), r * p[i]])
        return r

    dists = np.zeros((t_max + 1, size), dtype=np.float64)
    dists[0, 0] = 1.0
    for t in range(t_max):
        cur = dists[t]
        nxt = dists[t + 1]
        for state in np.nonzero(cur > 0)[0]:
            nxt += cur[state] * row(int(state))
    return BipsExact(graph=graph, source=source, others=others, dists=dists)


def bips_absorption_rate(
    graph: Graph,
    source: int,
    *,
    branching: BranchingPolicy | int | float = 2,
    lazy: bool = False,
) -> float:
    """Geometric decay rate of the infection-time tail.

    The all-infected state is absorbing; restricted to the transient
    states the BIPS chain is substochastic, and its spectral radius
    ``γ`` governs the tail: ``P(infec(v) > t) = Θ(γ^t)``.  Returns γ.

    Builds the full ``(2^k − 1)²`` transient transition matrix, so the
    practical limit is ``n ≲ 11``.
    """
    require_connected(graph)
    source = check_vertex(graph, source)
    if graph.n > _MAX_BIPS_N - 2:
        raise ValueError(
            f"absorption rate limited to n <= {_MAX_BIPS_N - 2} "
            f"(got n = {graph.n})"
        )
    if graph.n == 1:
        return 0.0
    policy = make_policy(branching)
    others = np.array([u for u in range(graph.n) if u != source], dtype=np.int64)
    k = others.shape[0]
    size = 1 << k
    full = size - 1

    matrix = np.zeros((size - 1, size - 1), dtype=np.float64)
    for state in range(size - 1):  # transient states only
        infected = np.zeros(graph.n, dtype=bool)
        infected[source] = True
        for i in range(k):
            if state >> i & 1:
                infected[others[i]] = True
        p = _infection_probabilities(graph, infected, policy, lazy)[others]
        row = np.ones(1, dtype=np.float64)
        for i in range(k):
            row = np.concatenate([row * (1.0 - p[i]), row * p[i]])
        matrix[state, :] = row[:full]
    eigenvalues = np.linalg.eigvals(matrix)
    return float(np.max(np.abs(eigenvalues)))


# ----------------------------------------------------------------------
# COBRA exact machinery
# ----------------------------------------------------------------------
def _single_pick_measure(
    graph: Graph, u: int, lazy: bool
) -> tuple[np.ndarray, np.ndarray]:
    """Sparse measure of one selection by ``u``: (masks, probabilities)."""
    nbrs = graph.neighbors(u)
    d = nbrs.shape[0]
    masks = (np.int64(1) << nbrs.astype(np.int64)).astype(np.int64)
    probs = np.full(d, 1.0 / d, dtype=np.float64)
    if lazy:
        probs *= 0.5
        masks = np.concatenate([masks, np.array([1 << u], dtype=np.int64)])
        probs = np.concatenate([probs, np.array([0.5])])
    return masks, probs


def _union_convolve(
    masks_a: np.ndarray,
    probs_a: np.ndarray,
    masks_b: np.ndarray,
    probs_b: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Distribution of ``M_a | M_b`` for independent mask-valued variables."""
    union = masks_a[:, None] | masks_b[None, :]
    prob = probs_a[:, None] * probs_b[None, :]
    flat_masks = union.ravel()
    flat_probs = prob.ravel()
    uniq, inv = np.unique(flat_masks, return_inverse=True)
    out = np.zeros(uniq.shape[0], dtype=np.float64)
    np.add.at(out, inv, flat_probs)
    return uniq, out


def _source_measure(
    graph: Graph, u: int, policy: BranchingPolicy, lazy: bool
) -> tuple[np.ndarray, np.ndarray]:
    """Distribution over the mask of vertices chosen by active vertex ``u``."""
    m1, p1 = _single_pick_measure(graph, u, lazy)
    if isinstance(policy, FixedBranching):
        masks, probs = m1, p1
        for _ in range(policy.b - 1):
            masks, probs = _union_convolve(masks, probs, m1, p1)
        return masks, probs
    assert isinstance(policy, BernoulliBranching)
    m2, p2 = _union_convolve(m1, p1, m1, p1)
    rho = policy.rho
    masks = np.concatenate([m1, m2])
    probs = np.concatenate([(1.0 - rho) * p1, rho * p2])
    uniq, inv = np.unique(masks, return_inverse=True)
    out = np.zeros(uniq.shape[0], dtype=np.float64)
    np.add.at(out, inv, probs)
    return uniq, out


class _CobraKernel:
    """Cached transition rows of the COBRA set-chain on a tiny graph."""

    def __init__(self, graph: Graph, policy: BranchingPolicy, lazy: bool) -> None:
        self.graph = graph
        self.policy = policy
        self.lazy = lazy
        self._per_source = [
            _source_measure(graph, u, policy, lazy) for u in range(graph.n)
        ]
        self._rows: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def row(self, state: int) -> tuple[np.ndarray, np.ndarray]:
        """Sparse next-state distribution from active-set mask ``state``."""
        cached = self._rows.get(state)
        if cached is not None:
            return cached
        masks = np.zeros(1, dtype=np.int64)
        probs = np.ones(1, dtype=np.float64)
        s = state
        while s:
            u = (s & -s).bit_length() - 1
            s &= s - 1
            mu, pu = self._per_source[u]
            masks, probs = _union_convolve(masks, probs, mu, pu)
        self._rows[state] = (masks, probs)
        return masks, probs


def cobra_hit_survival_exact(
    graph: Graph,
    start,
    target: int,
    *,
    branching: BranchingPolicy | int | float = 2,
    lazy: bool = False,
    t_max: int = 64,
) -> np.ndarray:
    """Exact ``P(Hit(target) > T | C_0 = start)`` for ``T = 0 .. t_max``.

    This is the left-hand side of the duality theorem.  The target is
    made absorbing: mass reaching any state containing it is dropped,
    and the survival at ``T`` is the mass still circulating.
    """
    require_connected(graph)
    if graph.n > _MAX_COBRA_N:
        raise ValueError(
            f"exact COBRA limited to n <= {_MAX_COBRA_N} (got n = {graph.n})"
        )
    target = check_vertex(graph, target)
    if np.ndim(start) == 0:
        start_set = np.array([check_vertex(graph, int(start))], dtype=np.int64)
    else:
        start_set = check_vertex_set(graph, start)
    policy = make_policy(branching)
    kernel = _CobraKernel(graph, policy, lazy)
    tbit = np.int64(1) << target

    start_mask = 0
    for u in start_set.tolist():
        start_mask |= 1 << u
    survival = np.zeros(t_max + 1, dtype=np.float64)
    if start_mask & tbit:
        return survival  # hit at round 0: survival identically 0
    dist: dict[int, float] = {start_mask: 1.0}
    survival[0] = 1.0
    for t in range(1, t_max + 1):
        nxt: dict[int, float] = {}
        for state, w in dist.items():
            masks, probs = kernel.row(state)
            alive = (masks & tbit) == 0
            for mk, pk in zip(masks[alive].tolist(), probs[alive].tolist()):
                nxt[mk] = nxt.get(mk, 0.0) + w * pk
        dist = nxt
        survival[t] = sum(dist.values())
    return survival


def cobra_cover_survival_exact(
    graph: Graph,
    start: int,
    *,
    branching: BranchingPolicy | int | float = 2,
    lazy: bool = False,
    t_max: int = 128,
) -> np.ndarray:
    """Exact ``P(cover(start) > T)`` for ``T = 0 .. t_max``.

    Tracks the joint (active set, visited set) chain; states with
    ``visited = V`` are absorbing, and the survival is the mass still
    uncovered.  Exponential in ``n`` twice over — enforced ``n <= 8``.
    """
    require_connected(graph)
    if graph.n > _MAX_COVER_N:
        raise ValueError(
            f"exact COBRA cover limited to n <= {_MAX_COVER_N} (got n = {graph.n})"
        )
    start = check_vertex(graph, start)
    policy = make_policy(branching)
    kernel = _CobraKernel(graph, policy, lazy)
    full = (1 << graph.n) - 1

    start_mask = 1 << start
    survival = np.zeros(t_max + 1, dtype=np.float64)
    if start_mask == full:
        return survival
    dist: dict[tuple[int, int], float] = {(start_mask, start_mask): 1.0}
    survival[0] = 1.0
    for t in range(1, t_max + 1):
        nxt: dict[tuple[int, int], float] = {}
        for (state, visited), w in dist.items():
            masks, probs = kernel.row(state)
            for mk, pk in zip(masks.tolist(), probs.tolist()):
                vis = visited | mk
                if vis == full:
                    continue  # covered: absorb
                key = (mk, vis)
                nxt[key] = nxt.get(key, 0.0) + w * pk
        dist = nxt
        survival[t] = sum(dist.values())
        if not dist:
            break
    return survival


def exact_cover_expectation(
    graph: Graph,
    start: int,
    *,
    branching: BranchingPolicy | int | float = 2,
    lazy: bool = False,
    t_max: int = 400,
) -> float:
    """Exact ``COVER(start) = E[cover(start)]`` on a tiny graph."""
    surv = cobra_cover_survival_exact(
        graph, start, branching=branching, lazy=lazy, t_max=t_max
    )
    return expected_time_from_survival(surv)


def exact_cover_of_graph(
    graph: Graph,
    *,
    branching: BranchingPolicy | int | float = 2,
    lazy: bool = False,
    t_max: int = 400,
) -> tuple[int, float]:
    """Exact ``COVER(G) = max_u E[cover(u)]`` on a tiny graph.

    Returns ``(worst_start, value)`` — the paper's cover-time
    definition evaluated without Monte-Carlo error.
    """
    best_u, best_val = 0, -1.0
    for u in range(graph.n):
        val = exact_cover_expectation(
            graph, u, branching=branching, lazy=lazy, t_max=t_max
        )
        if val > best_val:
            best_u, best_val = u, val
    return best_u, best_val


def expected_time_from_survival(
    survival: np.ndarray, *, tail_tolerance: float = 1e-9
) -> float:
    """``E[T] = Σ_{t≥0} P(T > t)`` from a truncated survival sequence.

    Raises if the truncated tail mass exceeds ``tail_tolerance`` —
    callers should extend ``t_max`` rather than accept a biased mean.
    """
    survival = np.asarray(survival, dtype=np.float64)
    if survival.size == 0:
        raise ValueError("empty survival sequence")
    if survival[-1] > tail_tolerance:
        raise ValueError(
            f"survival tail {survival[-1]:.3g} exceeds tolerance "
            f"{tail_tolerance:.3g}; increase t_max"
        )
    return float(survival.sum())
