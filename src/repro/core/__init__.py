"""Core processes: COBRA, its dual BIPS, exact chains, and the duality check."""

from .bips import (
    BipsProcess,
    candidate_set,
    default_infection_cap,
    fixed_set,
    infection_time,
    infection_time_samples,
)
from .coupling import (
    SelectionTable,
    bips_replay,
    bips_replay_multi,
    cobra_replay,
    coupling_equivalence_holds,
    set_coupling_equivalence_holds,
)
from .branching import (
    BernoulliBranching,
    BranchingPolicy,
    FixedBranching,
    make_policy,
)
from .cobra import (
    CobraProcess,
    cover_time,
    cover_time_samples,
    default_round_cap,
    hit_time_samples,
)
from .duality import (
    DualityReport,
    verify_duality_exact,
    verify_duality_monte_carlo,
)
from .hitting import (
    cobra_hit_survival_mc,
    commute_time,
    random_walk_hitting_time,
    random_walk_hitting_times,
)
from .metrics import (
    CoverProfile,
    TransmissionReport,
    cobra_transmission_report,
    per_vertex_load,
    worst_start_cover,
)
from .exact import (
    BipsExact,
    bips_absorption_rate,
    bips_exact,
    cobra_cover_survival_exact,
    cobra_hit_survival_exact,
    exact_cover_expectation,
    exact_cover_of_graph,
    expected_time_from_survival,
)
from .serialization import (
    RoundRecord,
    SerializedBips,
    StepRecord,
    collect_increments,
)
from .state import BipsBatchResult, BipsResult, CobraBatchResult, CobraResult
from .trajectories import (
    TrajectoryEnsemble,
    bips_size_ensemble,
    cobra_coverage_ensemble,
)

__all__ = [
    "SelectionTable",
    "bips_replay",
    "bips_replay_multi",
    "cobra_replay",
    "coupling_equivalence_holds",
    "set_coupling_equivalence_holds",
    "BipsProcess",
    "candidate_set",
    "default_infection_cap",
    "fixed_set",
    "infection_time",
    "infection_time_samples",
    "BernoulliBranching",
    "BranchingPolicy",
    "FixedBranching",
    "make_policy",
    "CobraProcess",
    "cover_time",
    "cover_time_samples",
    "default_round_cap",
    "hit_time_samples",
    "DualityReport",
    "verify_duality_exact",
    "verify_duality_monte_carlo",
    "BipsExact",
    "bips_absorption_rate",
    "bips_exact",
    "cobra_cover_survival_exact",
    "cobra_hit_survival_exact",
    "exact_cover_expectation",
    "exact_cover_of_graph",
    "expected_time_from_survival",
    "RoundRecord",
    "SerializedBips",
    "StepRecord",
    "collect_increments",
    "BipsBatchResult",
    "BipsResult",
    "CobraBatchResult",
    "CobraResult",
    "CoverProfile",
    "TransmissionReport",
    "cobra_transmission_report",
    "per_vertex_load",
    "worst_start_cover",
    "cobra_hit_survival_mc",
    "commute_time",
    "random_walk_hitting_time",
    "random_walk_hitting_times",
    "TrajectoryEnsemble",
    "bips_size_ensemble",
    "cobra_coverage_ensemble",
]
