"""Result containers for process runs.

Plain frozen dataclasses: the engines return these instead of bare
tuples so experiment code reads like the paper ("``result.cover_time``",
"``result.infection_time``", "``result.sizes``").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "CobraResult",
    "CobraBatchResult",
    "BipsResult",
    "BipsBatchResult",
]


@dataclass(frozen=True)
class CobraResult:
    """Outcome of one COBRA run.

    Attributes
    ----------
    covered:
        True iff every vertex was visited within the round cap.
    cover_time:
        ``cover(u)`` per the paper: the first round ``T`` with
        ``union_{t<=T} C_t = V``.  Only valid when ``covered``.
    rounds_run:
        Number of rounds actually simulated.
    hit_times:
        Per-vertex first-visit round (``Hit(w)``); ``-1`` if unvisited.
    active_sizes:
        ``|C_t|`` for ``t = 0 .. rounds_run`` (empty if not recorded).
    visited_counts:
        Cumulative number of distinct visited vertices per round
        (empty if not recorded).
    """

    covered: bool
    cover_time: int
    rounds_run: int
    hit_times: np.ndarray
    active_sizes: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    visited_counts: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))

    def hit_time(self, v: int) -> int:
        """First round vertex ``v`` received a particle; -1 if never."""
        return int(self.hit_times[v])


@dataclass(frozen=True)
class CobraBatchResult:
    """Outcome of ``R`` independent COBRA runs advanced together.

    ``cover_times[i] == -1`` marks a run that hit the round cap without
    covering.  ``hit_times`` has shape ``(R, n)`` with ``-1`` for
    unvisited, and is only populated when requested.
    """

    cover_times: np.ndarray
    rounds_run: int
    hit_times: np.ndarray | None = None

    @property
    def all_covered(self) -> bool:
        """True iff every run covered the graph within the cap."""
        return bool(np.all(self.cover_times >= 0))

    def covered_fraction(self) -> float:
        """Fraction of runs that covered within the cap."""
        return float(np.mean(self.cover_times >= 0))


@dataclass(frozen=True)
class BipsResult:
    """Outcome of one BIPS run.

    Attributes
    ----------
    infected_all:
        True iff the whole graph was infected within the round cap.
    infection_time:
        ``infec(v)``: the first round at which ``A_t = V``.
    rounds_run:
        Number of rounds simulated.
    sizes:
        ``|A_t|`` for ``t = 0 .. rounds_run``.
    degree_sizes:
        ``d(A_t)`` (the quantity tracked in Section 3), same indexing;
        empty unless recorded.
    candidate_sizes:
        ``|C_t|`` for ``t = 1 .. rounds_run`` (the candidate sets of
        eq. (6)); empty unless recorded.
    final_infected:
        Boolean mask of the infected set at the last simulated round.
    """

    infected_all: bool
    infection_time: int
    rounds_run: int
    sizes: np.ndarray
    degree_sizes: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    candidate_sizes: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    final_infected: np.ndarray = field(default_factory=lambda: np.empty(0, bool))


@dataclass(frozen=True)
class BipsBatchResult:
    """Outcome of ``R`` independent BIPS runs advanced together.

    ``infection_times[i] == -1`` marks a run that hit the round cap.
    ``sizes`` has shape ``(R, rounds_run + 1)`` when recorded.
    """

    infection_times: np.ndarray
    rounds_run: int
    sizes: np.ndarray | None = None

    @property
    def all_infected(self) -> bool:
        """True iff every run fully infected within the cap."""
        return bool(np.all(self.infection_times >= 0))
