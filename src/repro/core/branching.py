"""Branching-factor policies for COBRA and BIPS.

The paper studies three regimes, all expressible as "how many uniform
neighbour selections does an acting vertex make this round":

* **Fixed integer** ``b >= 1`` — the main object of study is ``b = 2``;
  ``b = 1`` degenerates to a simple random walk.
* **Bernoulli** ``b = 1 + ρ`` for constant ``0 < ρ <= 1`` (Section 6):
  a vertex makes two selections with probability ρ and one otherwise.
* Either of the above in a **lazy** variant where each individual
  selection returns the vertex itself with probability 1/2 (the fix the
  paper proposes for bipartite graphs before Theorem 1.2).

A policy is a small frozen object; engines call
:meth:`BranchingPolicy.draw_counts` once per round.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "BranchingPolicy",
    "FixedBranching",
    "BernoulliBranching",
    "make_policy",
]


@dataclass(frozen=True)
class BranchingPolicy:
    """Base class: number of neighbour selections per acting vertex."""

    def draw_counts(self, k: int, rng: np.random.Generator) -> np.ndarray:
        """Return an int64 array of length ``k`` of selection counts."""
        raise NotImplementedError

    @property
    def expected_branching(self) -> float:
        """The expected number of selections, ``b`` in the paper."""
        raise NotImplementedError

    @property
    def max_branching(self) -> int:
        """The maximum possible number of selections in one round."""
        raise NotImplementedError

    def fixed_selection_count(self) -> int | None:
        """``b`` if every vertex makes exactly ``b`` selections, else None.

        The engine kernels in :mod:`repro.engine.rules` dispatch on
        this instead of ``isinstance`` checks, so the engine package
        stays import-free of :mod:`repro.core`.
        """
        raise NotImplementedError


@dataclass(frozen=True)
class FixedBranching(BranchingPolicy):
    """Every acting vertex makes exactly ``b`` selections per round."""

    b: int = 2

    def __post_init__(self) -> None:
        if self.b < 1:
            raise ValueError(f"branching factor must be >= 1, got {self.b}")

    def draw_counts(self, k: int, rng: np.random.Generator) -> np.ndarray:
        """Constant array of ``b`` selections per acting vertex."""
        return np.full(k, self.b, dtype=np.int64)

    @property
    def expected_branching(self) -> float:
        return float(self.b)

    @property
    def max_branching(self) -> int:
        return self.b

    def second_selection_probability(self) -> float:
        """P(a vertex makes a 2nd selection); 1.0 for b >= 2 (used by BIPS)."""
        return 1.0 if self.b >= 2 else 0.0

    def fixed_selection_count(self) -> int | None:
        """Always exactly ``b`` selections."""
        return self.b

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"b={self.b}"


@dataclass(frozen=True)
class BernoulliBranching(BranchingPolicy):
    """The Section-6 policy: two selections w.p. ρ, one w.p. 1 − ρ.

    Expected branching factor ``b = 1 + ρ``.  The paper's bounds for
    this regime are the ``b = 2`` bounds multiplied by ``1/ρ²``.
    """

    rho: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.rho <= 1.0:
            raise ValueError(f"rho must be in (0, 1], got {self.rho}")

    def draw_counts(self, k: int, rng: np.random.Generator) -> np.ndarray:
        """One selection, plus a second independently w.p. ρ, per vertex."""
        return 1 + (rng.random(k) < self.rho).astype(np.int64)

    @property
    def expected_branching(self) -> float:
        return 1.0 + self.rho

    @property
    def max_branching(self) -> int:
        return 2

    def second_selection_probability(self) -> float:
        """P(a vertex makes a 2nd selection) = ρ."""
        return self.rho

    def fixed_selection_count(self) -> int | None:
        """The selection count is random, so None."""
        return None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"b=1+{self.rho:g}"


def make_policy(branching: "BranchingPolicy | int | float") -> BranchingPolicy:
    """Coerce a user argument into a policy.

    Integers become :class:`FixedBranching`; floats in ``(1, 2)`` become
    :class:`BernoulliBranching` with ``ρ = b − 1``; policies pass
    through unchanged.
    """
    if isinstance(branching, BranchingPolicy):
        return branching
    if isinstance(branching, (int, np.integer)):
        return FixedBranching(int(branching))
    if isinstance(branching, float):
        if branching.is_integer():
            return FixedBranching(int(branching))
        if 1.0 < branching < 2.0:
            return BernoulliBranching(branching - 1.0)
        raise ValueError(
            f"fractional branching factor must lie in (1, 2), got {branching}"
        )
    raise TypeError(f"cannot interpret branching spec {branching!r}")
