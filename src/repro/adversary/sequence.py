"""The adaptive topology source: a graph sequence that fights back.

:class:`AdversarialSequence` is a drop-in
:class:`~repro.dynamics.GraphSequence` whose transitions have two
phases per round:

1. an **oblivious phase** — ``swaps_per_round`` degree-preserving
   double-edge swaps, drawn exactly as
   :class:`~repro.dynamics.RewiringSequence` draws them (shared
   machinery, shared round-seed discipline), and then
2. an **adversary phase** — the bound
   :class:`~repro.adversary.AdversaryPolicy` reacts to the engine's
   :class:`~repro.engine.FrontierObservation` for the round, under its
   per-round budget.

Because the adversary draws only *after* the oblivious phase consumed
its share of the round generator, a budget-0 adversary replays the
oblivious :class:`RewiringSequence` realisation **bit-for-bit** under
the same seed — the anchoring contract of experiment E17.

Determinism and replay: the sequence digests every observation into a
compact :class:`~repro.adversary.FrontierDigest` log.  Snapshots are
therefore a pure function of ``(seed, digest log)``, and the digest
log itself is a pure function of ``(rule, seeds, initial state)`` —
so seeking backwards replays the identical realisation, a pickled
copy resumes it, and a wire-shipped *replay spec* (constructor
parameters + master seed, see :mod:`repro.distributed.wire`)
regenerates it on another machine while the remote engine re-delivers
the same observations.  One sequence serves one engine invocation;
reusing it under a different process stream raises (use
:meth:`fresh_replay`).
"""

from __future__ import annotations

import numpy as np

from ..dynamics.providers import advance_swap_state
from ..dynamics.sequence import MarkovGraphSequence
from ..graphs.graph import Graph
from ..graphs.validation import require_connected
from .policies import AdversaryPolicy, FrontierDigest
from .state import MutableTopology

__all__ = ["AdversarialSequence"]


class AdversarialSequence(MarkovGraphSequence):
    """A rewiring sequence with a frontier-observing adversary on top.

    Parameters
    ----------
    base:
        Round-0 topology (shared vertex set for every snapshot).
    adversary:
        The :class:`~repro.adversary.AdversaryPolicy` reacting each
        round.  Budget 0 turns the policy off entirely.
    seed:
        Master seed of the topology stream (as
        :class:`~repro.dynamics.RewiringSequence`).
    swaps_per_round:
        Oblivious double-edge-swap attempts per round (0 = the base
        graph only changes through the adversary).
    keep_connected / max_retries:
        The oblivious phase's connectivity contract, exactly as in
        :class:`~repro.dynamics.RewiringSequence`.
    """

    observes_process = True

    def __init__(
        self,
        base: Graph,
        adversary: AdversaryPolicy,
        seed: int | np.random.SeedSequence | None = None,
        *,
        swaps_per_round: int = 0,
        keep_connected: bool = True,
        max_retries: int = 20,
        cache_size: int = 8,
    ) -> None:
        if swaps_per_round < 0:
            raise ValueError("swaps_per_round must be >= 0")
        if base.m < 2 and (swaps_per_round > 0 or adversary.budget > 0):
            raise ValueError("adversarial rewiring needs at least two edges")
        if keep_connected:
            require_connected(base)
        self.adversary = adversary
        self.swaps_per_round = int(swaps_per_round)
        self.keep_connected = bool(keep_connected)
        self.max_retries = int(max_retries)
        super().__init__(
            base,
            f"adversarial-{adversary.name}-{base.name}",
            seed,
            cache_size=cache_size,
        )
        self._log: list[FrontierDigest] = []
        self._edges = base.edge_array()
        self._keys = set(self._edge_keys(self._edges).tolist())
        self._active = np.ones(base.n, dtype=bool)
        self._built: Graph | None = None

    # -- bookkeeping ----------------------------------------------------
    def _edge_keys(self, edges: np.ndarray) -> np.ndarray:
        lo = np.minimum(edges[:, 0], edges[:, 1])
        hi = np.maximum(edges[:, 0], edges[:, 1])
        return lo * np.int64(self.n) + hi

    def _mutable(self) -> MutableTopology:
        return MutableTopology(self.n, self._edges, self._keys, self._active)

    # -- observation protocol -------------------------------------------
    def observe(self, observation) -> None:
        """Record one engine observation (contiguous round delivery).

        A redelivery of an already-logged round must match the logged
        digest exactly — a mismatch means two different engine runs are
        driving one sequence, which would silently corrupt the replay
        log, so it raises instead (see :meth:`fresh_replay`).
        """
        digest = FrontierDigest.from_observation(observation)
        t = digest.t
        if t < len(self._log):
            if not self._log[t].matches(digest):
                raise ValueError(
                    f"{self.name}: conflicting observation for round {t}; "
                    "an AdversarialSequence serves one engine invocation — "
                    "use fresh_replay() for a new run"
                )
            return
        if t != len(self._log):
            raise ValueError(
                f"{self.name}: observation gap — expected round "
                f"{len(self._log)}, got {t}"
            )
        self._log.append(digest)

    def fresh_replay(self) -> "AdversarialSequence":
        """An unused sequence replaying this seed from a pristine state.

        Same base, same parameters, a reset copy of the policy, and the
        master seed re-rooted (spawn counter cleared) — the object the
        sharded and per-run samplers hand to each new engine
        invocation, and the exact semantics of the wire replay spec.
        """
        seed = np.random.SeedSequence(
            self._master.entropy,
            spawn_key=self._master.spawn_key,
            pool_size=self._master.pool_size,
        )
        return AdversarialSequence(
            self.base,
            self.adversary.fresh(),
            seed,
            swaps_per_round=self.swaps_per_round,
            keep_connected=self.keep_connected,
            max_retries=self.max_retries,
            cache_size=self._cache.capacity,
        )

    # -- MarkovGraphSequence hooks --------------------------------------
    def _reset_state(self) -> None:
        self._edges = self.base.edge_array()
        self._keys = set(self._edge_keys(self._edges).tolist())
        self._active = np.ones(self.n, dtype=bool)
        self._built = None
        self.adversary.reset()
        self.adversary.initialize(self._mutable())

    def _advance_state(self, rng: np.random.Generator) -> bool:
        into_round = self._state_t + 1
        # Phase 1: the oblivious swaps — identical draws, identical
        # accept/reject path as RewiringSequence (the budget-0 anchor).
        changed = advance_swap_state(self, rng)
        # Phase 2: the adversary, fed the digest of the state entering
        # the round it is rewiring against (absent digest = the round
        # is being realised without a driving engine: no reaction).
        digest = (
            self._log[into_round] if into_round < len(self._log) else None
        )
        if digest is not None and self.adversary.budget > 0:
            if self.adversary.adapt(self._mutable(), digest, rng):
                self._built = None
                changed = True
        return changed

    def _build_graph(self) -> Graph:
        if self._active.all():
            if self._built is not None:
                return self._built
            return Graph(self.n, self._edges, name=self.name)
        e = self._edges
        both = self._active[e[:, 0]] & self._active[e[:, 1]]
        return Graph(self.n, e[both], name=self.name)

    # -- introspection ---------------------------------------------------
    def active_at(self, t: int) -> np.ndarray:
        """Active-vertex mask of the round-``t`` snapshot (for audits)."""
        if t < 0:
            raise ValueError("round index must be >= 0")
        self._materialize(int(t))
        return self._active.copy()

    @property
    def observed_rounds(self) -> int:
        """Rounds the driving engine has delivered observations for."""
        return len(self._log)
