"""State-aware adversarial dynamics: topology sources that fight back.

The oblivious providers of :mod:`repro.dynamics` evolve blind to the
process; this subsystem supplies the other regime of worst-case
dynamic cover — an **adaptive adversary** rewiring against the
observed frontier through the engine's observation protocol
(:mod:`repro.engine.observation`):

* :class:`AdversarialSequence` — a drop-in
  :class:`~repro.dynamics.GraphSequence` combining an oblivious
  rewiring phase (draw-for-draw the
  :class:`~repro.dynamics.RewiringSequence` machinery, so budget 0
  anchors bit-for-bit against the oblivious baseline) with a budgeted
  adversary reaction per round;
* the policy catalogue — :class:`GreedyCutAdversary` (sever
  frontier→uninformed edges, degree- and connectivity-preserving),
  :class:`IsolatingChurnAdversary` (churn out the vertices most
  exposed to the frontier), :class:`MovingSourceAdversary` (waste a
  persistent BIPS source inside the informed region), and
  :class:`AdaptiveRRIPolicy` (re-randomization bursts fired by
  observed frontier growth);
* :class:`MutableTopology` / :class:`FrontierDigest` — the exact
  integer state policies mutate and the compact per-round record they
  react to.

Everything stays deterministic from ``(topo_seed, proc_seed)``:
sequences are shard-locally realizable (:meth:`GraphSequence.
fresh_replay`) and wire-encodable as seeded replay specs, so serial,
sharded and distributed execution agree bit-for-bit.
"""

from .policies import (
    ADVERSARY_KINDS,
    AdaptiveRRIPolicy,
    AdversaryPolicy,
    FrontierDigest,
    GreedyCutAdversary,
    IsolatingChurnAdversary,
    MovingSourceAdversary,
    make_adversary,
)
from .sequence import AdversarialSequence
from .state import MutableTopology

__all__ = [
    "AdversarialSequence",
    "AdversaryPolicy",
    "GreedyCutAdversary",
    "IsolatingChurnAdversary",
    "MovingSourceAdversary",
    "AdaptiveRRIPolicy",
    "FrontierDigest",
    "MutableTopology",
    "make_adversary",
    "ADVERSARY_KINDS",
]
