"""Adversary policies: budgeted reactions to the observed frontier.

Each policy consumes one :class:`FrontierDigest` per round (the
compact record an :class:`~repro.adversary.AdversarialSequence` keeps
of an engine :class:`~repro.engine.FrontierObservation`) and mutates
the sequence's :class:`~repro.adversary.MutableTopology` under a
per-round **budget** — the number of edges it may rewire, or vertices
it may churn.  Budget 0 makes every policy a strict no-op that is
never even consulted, which is the bit-for-bit anchor against the
oblivious providers of :mod:`repro.dynamics`; constructors reject
configurations that would still need to act at budget 0 (e.g. an
``initially_out`` churn that could never be readmitted).

The catalogue:

* :class:`GreedyCutAdversary` — pairs frontier→uninformed boundary
  edges and double-swaps them into frontier–frontier plus
  uninformed–uninformed edges: each accepted swap removes two escape
  routes while preserving every degree (and, by per-swap check,
  connectivity).
* :class:`IsolatingChurnAdversary` — churns out the vertices with the
  highest degree into the observed frontier; churned vertices rejoin
  after ``downtime`` rounds, and a protected set (the source/anchor)
  is never removed nor cut off.
* :class:`MovingSourceAdversary` — relocates a persistent BIPS
  source's *useful* edges: source→uninformed edges are swapped so the
  source sits entirely inside the already-informed region, wasting its
  forced re-infection.
* :class:`AdaptiveRRIPolicy` — the frontier-driven re-randomization
  interval: an oblivious burst of double-edge swaps fired only on
  rounds whose observed frontier growth exceeds a threshold (the
  adaptive-RRI selection idea, driven by observations instead of a
  fixed per-round rate).

Replayability contract: a policy's internal state (churn clocks,
growth trackers) must be a pure function of the digests it has seen,
so ``reset()`` plus an identical digest stream reproduces identical
behaviour — the property the wire format relies on to ship adversarial
sequences as seeded replay specs.
"""

from __future__ import annotations

import abc
import copy
from dataclasses import dataclass

import numpy as np

from ..dynamics.providers import try_swap_round
from ..telemetry import get_telemetry
from .state import MutableTopology

__all__ = [
    "FrontierDigest",
    "AdversaryPolicy",
    "GreedyCutAdversary",
    "IsolatingChurnAdversary",
    "MovingSourceAdversary",
    "AdaptiveRRIPolicy",
    "make_adversary",
    "ADVERSARY_KINDS",
]


@dataclass(frozen=True)
class FrontierDigest:
    """Compact per-round record of a :class:`FrontierObservation`.

    Union masks over the *alive* runs only — finished runs no longer
    move, so they are not worth attacking.  Small by construction
    (two ``(n,)`` booleans plus two ints per round), which is what
    makes logging every round for deterministic replay affordable.
    """

    t: int
    occupied: np.ndarray  # (n,) union of occupancy over alive runs
    informed: np.ndarray  # (n,) union of cumulative knowledge (⊇ occupied)
    total_occupied: int  # occupancy mass summed over alive runs
    alive_runs: int

    @classmethod
    def from_observation(cls, observation) -> "FrontierDigest":
        """Digest an engine observation (copies what it keeps)."""
        occupied = observation.union_occupied()
        informed = observation.union_informed() | occupied
        alive = observation.alive
        total = int(observation.occupied[alive].sum()) if alive.any() else 0
        return cls(
            t=int(observation.t),
            occupied=occupied,
            informed=informed,
            total_occupied=total,
            alive_runs=int(alive.sum()),
        )

    def matches(self, other: "FrontierDigest") -> bool:
        """Field-for-field equality (replayed-delivery detection)."""
        return (
            self.t == other.t
            and self.total_occupied == other.total_occupied
            and self.alive_runs == other.alive_runs
            and np.array_equal(self.occupied, other.occupied)
            and np.array_equal(self.informed, other.informed)
        )


class AdversaryPolicy(abc.ABC):
    """One adaptive reaction per round, under a rewiring/churn budget.

    Attributes
    ----------
    name:
        Registry key (stable across the wire format).
    budget:
        Edges the policy may rewire (or vertices it may churn) per
        round.  A budget of 0 means the owning sequence never calls
        :meth:`adapt` at all — the oblivious anchor.
    """

    name: str = "adversary"
    budget: int = 0

    def reset(self) -> None:
        """Clear replay state (called when the sequence restarts)."""

    def initialize(self, topo: MutableTopology) -> None:
        """Adjust the round-0 topology state (e.g. initial churn)."""

    def fresh(self) -> "AdversaryPolicy":
        """An unused copy of this policy (same parameters, reset state)."""
        clone = copy.deepcopy(self)
        clone.reset()
        return clone

    @abc.abstractmethod
    def adapt(
        self,
        topo: MutableTopology,
        digest: FrontierDigest,
        rng: np.random.Generator,
    ) -> bool:
        """React to one digest; return True iff the topology changed.

        Draws (if any) come from the sequence's round generator *after*
        the oblivious phase consumed its share, so a zero-budget round
        never perturbs the oblivious stream.
        """


def _check_budget(budget: int) -> int:
    budget = int(budget)
    if budget < 0:
        raise ValueError(f"adversary budget must be >= 0, got {budget}")
    return budget


def _trace_adapt(policy: "AdversaryPolicy", t: int, spent: int, **fields) -> None:
    """Emit one per-round adaptation record (no-op when tracing is off).

    ``spent`` is the budget actually consumed this round (edges rewired
    or vertices churned); extra ``fields`` carry the policy-specific
    applied/rejected tallies.  Pure observation — policies never read
    telemetry state, so replay behaviour is untouched.
    """
    tel = get_telemetry()
    if not tel.enabled:
        return
    tel.event(
        "adversary.adapt",
        policy=policy.name,
        t=int(t),
        budget=int(policy.budget),
        spent=int(spent),
        **fields,
    )
    tel.observe(f"adversary.{policy.name}.spent", float(spent))


class GreedyCutAdversary(AdversaryPolicy):
    """Sever frontier→uninformed edges by pairing them into swaps.

    Boundary edges (one endpoint in the observed frontier, the other
    not yet informed) are shuffled and paired; each pair
    ``{h1, c1}, {h2, c2}`` is replaced by ``{h1, h2}, {c1, c2}`` —
    both replacement edges are *internal* to their side, so every
    accepted swap removes exactly two escape routes from the frontier
    while preserving all degrees.  ``budget`` counts rewired edges
    (two per swap).  With ``keep_connected`` each swap is checked and
    retracted if it would disconnect the active subgraph.
    """

    name = "greedy-cut"

    def __init__(self, budget: int, *, keep_connected: bool = True) -> None:
        self.budget = _check_budget(budget)
        self.keep_connected = bool(keep_connected)

    def adapt(
        self,
        topo: MutableTopology,
        digest: FrontierDigest,
        rng: np.random.Generator,
    ) -> bool:
        """Pair boundary edges into degree-preserving severing swaps."""
        hot = digest.occupied & topo.active
        cold = topo.active & ~digest.informed
        e = topo.edges
        u, v = e[:, 0], e[:, 1]
        act = topo.active[u] & topo.active[v]
        fwd = act & hot[u] & cold[v]
        bwd = act & hot[v] & cold[u]
        boundary = np.nonzero(fwd | bwd)[0]
        if boundary.size < 2:
            _trace_adapt(
                self, digest.t, 0, applied=0, rejected=0,
                boundary=int(boundary.size),
            )
            return False
        boundary = boundary[rng.permutation(boundary.size)]
        hot_end = np.where(fwd[boundary], u[boundary], v[boundary])
        cold_end = np.where(fwd[boundary], v[boundary], u[boundary])
        used = 0
        rejected = 0
        changed = False
        for k in range(0, boundary.size - 1, 2):
            if used + 2 > self.budget:
                break
            h1, c1 = int(hot_end[k]), int(cold_end[k])
            h2, c2 = int(hot_end[k + 1]), int(cold_end[k + 1])
            token = topo.replace_pair(
                int(boundary[k]), int(boundary[k + 1]), (h1, h2), (c1, c2)
            )
            if token is None:
                rejected += 1
                continue
            if self.keep_connected and not topo.connected():
                topo.undo(token)
                rejected += 1
                continue
            used += 2
            changed = True
        _trace_adapt(
            self, digest.t, used, applied=used // 2, rejected=rejected,
            boundary=int(boundary.size),
        )
        return changed


class IsolatingChurnAdversary(AdversaryPolicy):
    """Churn out the vertices most exposed to the observed frontier.

    Per round, the ``budget`` active unprotected vertices with the
    highest degree into the frontier (ties broken by vertex id) are
    deactivated; vertices churned out ``downtime`` rounds ago rejoin
    first.  The protected set is never deactivated — not by the
    greedy wave, and not by the separation sweep below.  With
    ``keep_connected`` a wave that would strand the anchor
    (``protected[0]``) or cut a protected vertex off it is cancelled;
    *unprotected* active vertices separated from the anchor count as
    churned out, mirroring the :class:`~repro.dynamics.ChurnSequence`
    contract (a protected vertex separated by the oblivious phase
    simply stays active until rewiring reconnects it).

    ``initially_out`` vertices start churned out at round 0 — the
    "COBRA restarted from a churned-out vertex" scenario: particles on
    a departed start vertex hold position until it rejoins.
    """

    name = "isolating-churn"

    def __init__(
        self,
        budget: int,
        *,
        downtime: int = 8,
        protected: tuple = (0,),
        keep_connected: bool = True,
        initially_out: tuple = (),
    ) -> None:
        self.budget = _check_budget(budget)
        self.downtime = int(downtime)
        if self.downtime < 1:
            raise ValueError("downtime must be >= 1")
        self.protected = tuple(int(p) for p in protected)
        if not self.protected:
            raise ValueError("isolating churn needs a protected anchor")
        self.keep_connected = bool(keep_connected)
        self.initially_out = tuple(int(p) for p in initially_out)
        if set(self.initially_out) & set(self.protected):
            raise ValueError("initially_out vertices cannot be protected")
        if self.initially_out and self.budget == 0:
            # A budget-0 policy is never consulted after round 0, so
            # the initial churn could never be readmitted — and the
            # budget-0 oblivious anchor would silently break.
            raise ValueError("initially_out requires a positive budget")
        self._down: dict[int, int] = {}

    def reset(self) -> None:
        """Forget the churn clocks (fresh replay)."""
        self._down = {}

    def initialize(self, topo: MutableTopology) -> None:
        """Apply the initial churn (the ``initially_out`` vertices)."""
        if self.initially_out:
            topo.deactivate(self.initially_out)
            for vtx in self.initially_out:
                self._down[vtx] = 0

    def _protected_mask(self, n: int) -> np.ndarray:
        mask = np.zeros(n, dtype=bool)
        mask[list(self.protected)] = True
        return mask

    def adapt(
        self,
        topo: MutableTopology,
        digest: FrontierDigest,
        rng: np.random.Generator,
    ) -> bool:
        """Readmit elapsed departures, churn out the most exposed."""
        t = digest.t
        changed = False
        # Readmit vertices whose downtime elapsed.
        back = sorted(v for v, t0 in self._down.items() if t - t0 >= self.downtime)
        if back:
            topo.reactivate(back)
            for vtx in back:
                del self._down[vtx]
            changed = True
        # Greedy isolation: deactivate the highest frontier-degree
        # vertices (deterministic — no draws, so replay is exact).
        protected = self._protected_mask(topo.n)
        fdeg = topo.frontier_degrees(digest.occupied)
        idx = np.nonzero(topo.active & ~protected & (fdeg > 0))[0]
        victims: list[int] = []
        if idx.size:
            order = np.lexsort((idx, -fdeg[idx]))
            victims = [int(v) for v in idx[order][: self.budget]]
            topo.deactivate(victims)
        cancelled = False
        cut_out = 0
        if self.keep_connected:
            anchor = self.protected[0]
            comp = topo.component_of(anchor)
            if not comp[protected].all():
                # The wave strands the anchor or severs a protected
                # vertex: cancel this round's departures.  (The
                # oblivious phase checks full-graph connectivity only,
                # so a protected vertex can arrive here already
                # separated — cancelling is best-effort, never a
                # guarantee that comp covers the protected set.)
                topo.reactivate(victims)
                victims = []
                cancelled = True
                comp = topo.component_of(anchor)
            # Unprotected active vertices cut off from the anchor
            # churn out too; protected ones always stay active.
            cut = np.nonzero(topo.active & ~comp & ~protected)[0]
            if cut.size:
                topo.deactivate(cut)
                for vtx in cut:
                    self._down[int(vtx)] = t
                cut_out = int(cut.size)
                changed = True
        for vtx in victims:
            self._down[vtx] = t
        _trace_adapt(
            self, t, len(victims), churned=len(victims),
            readmitted=len(back), separated=cut_out, cancelled=cancelled,
        )
        return changed or bool(victims)


class MovingSourceAdversary(AdversaryPolicy):
    """Relocate a persistent source into the already-informed region.

    BIPS forces its source back into the infected set every round; the
    worst case for the process is a source whose entire neighbourhood
    is already informed, because its persistence then contributes
    nothing.  Whenever at least a ``trigger`` fraction of the source's
    active edges lead to uninformed vertices, those edges are swapped
    against informed–informed edges: ``{s, v}, {c, d}`` becomes
    ``{s, c}, {v, d}`` with ``c, d`` informed — the source's edge now
    points at old news.  Degrees are preserved and (with
    ``keep_connected``) each swap is retracted if it disconnects.
    """

    name = "moving-source"

    def __init__(
        self,
        source: int,
        budget: int,
        *,
        trigger: float = 0.0,
        keep_connected: bool = True,
    ) -> None:
        self.source = int(source)
        self.budget = _check_budget(budget)
        self.trigger = float(trigger)
        if not 0.0 <= self.trigger <= 1.0:
            raise ValueError("trigger must be a fraction in [0, 1]")
        self.keep_connected = bool(keep_connected)

    def adapt(
        self,
        topo: MutableTopology,
        digest: FrontierDigest,
        rng: np.random.Generator,
    ) -> bool:
        """Swap the source's uninformed edges into the informed region."""
        s = self.source
        if not topo.active[s]:
            return False
        e = topo.edges
        u, v = e[:, 0], e[:, 1]
        act = topo.active[u] & topo.active[v]
        inc = (u == s) | (v == s)
        other = np.where(u == s, v, u)
        cold_inc = np.nonzero(inc & act & ~digest.informed[other])[0]
        live_inc = int((inc & act).sum())
        if cold_inc.size == 0 or live_inc == 0:
            return False
        if cold_inc.size < self.trigger * live_inc:
            return False
        partners = np.nonzero(
            act & ~inc & digest.informed[u] & digest.informed[v]
        )[0]
        if partners.size == 0:
            return False
        cold_inc = cold_inc[rng.permutation(cold_inc.size)]
        partners = partners[rng.permutation(partners.size)]
        used = 0
        rejected = 0
        changed = False
        pi = 0
        for i in cold_inc:
            if used + 2 > self.budget or pi >= partners.size:
                break
            j = int(partners[pi])
            pi += 1
            vcold = int(other[i])
            c, d = int(e[j, 0]), int(e[j, 1])
            token = topo.replace_pair(int(i), j, (s, c), (vcold, d))
            if token is None:
                token = topo.replace_pair(int(i), j, (s, d), (vcold, c))
            if token is None:
                rejected += 1
                continue
            if self.keep_connected and not topo.connected():
                topo.undo(token)
                rejected += 1
                continue
            used += 2
            changed = True
        _trace_adapt(
            self, digest.t, used, applied=used // 2, rejected=rejected,
            cold_edges=int(cold_inc.size),
        )
        return changed


class AdaptiveRRIPolicy(AdversaryPolicy):
    """Frontier-driven re-randomization bursts (adaptive RRI).

    Instead of a fixed per-round rewiring rate, the topology fires a
    burst of ``burst_swaps`` oblivious double-edge swaps only on
    rounds whose observed frontier mass grew by at least
    ``growth_threshold``× since the previous observation — the
    re-randomization interval shortens exactly when the process
    accelerates.  The burst uses the shared
    :func:`~repro.dynamics.try_swap_round` machinery, so a burst round
    is distributionally one :class:`~repro.dynamics.RewiringSequence`
    round.
    """

    name = "adaptive-rri"

    def __init__(
        self,
        burst_swaps: int,
        *,
        growth_threshold: float = 1.5,
        keep_connected: bool = True,
        max_retries: int = 20,
    ) -> None:
        self.budget = _check_budget(burst_swaps)
        self.growth_threshold = float(growth_threshold)
        if self.growth_threshold <= 0:
            raise ValueError("growth_threshold must be positive")
        self.keep_connected = bool(keep_connected)
        self.max_retries = int(max_retries)
        self._prev: int | None = None

    @property
    def burst_swaps(self) -> int:
        """Swap attempts per triggered burst (alias of ``budget``)."""
        return self.budget

    def reset(self) -> None:
        """Forget the previous frontier mass (fresh replay)."""
        self._prev = None

    def adapt(
        self,
        topo: MutableTopology,
        digest: FrontierDigest,
        rng: np.random.Generator,
    ) -> bool:
        """Fire an oblivious swap burst when frontier growth triggers."""
        total = digest.total_occupied
        prev, self._prev = self._prev, total
        if prev is None or prev <= 0:
            return False
        if total < self.growth_threshold * prev:
            return False
        attempts = self.max_retries + 1 if self.keep_connected else 1
        for attempt in range(attempts):
            edges, keys, changed = try_swap_round(
                topo.edges, topo.keys, topo.n, self.budget, rng
            )
            if not changed:
                _trace_adapt(self, digest.t, 0, fired=False, rejected=attempt)
                return False
            if self.keep_connected:
                probe = MutableTopology(topo.n, edges, keys, topo.active)
                if not probe.connected():
                    continue
            topo.commit_edges(edges, keys)
            _trace_adapt(
                self, digest.t, self.budget, fired=True, rejected=attempt
            )
            return True
        _trace_adapt(self, digest.t, 0, fired=False, rejected=attempts)
        return False


#: Registry of adversary kinds (CLI spellings and wire format keys).
ADVERSARY_KINDS = (
    "greedy-cut",
    "isolating-churn",
    "moving-source",
    "adaptive-rri",
)


def make_adversary(
    kind: str,
    budget: int,
    *,
    source: int = 0,
    keep_connected: bool = True,
) -> AdversaryPolicy:
    """Build a catalogue policy from its registry name.

    The convenience constructor used by the CLI and the experiment
    sweeps; policies needing richer parameters (churn downtimes,
    initial churn, RRI thresholds) are constructed directly.
    ``source`` seeds both the moving-source target and the churn
    adversary's protected anchor.
    """
    if kind == "greedy-cut":
        return GreedyCutAdversary(budget, keep_connected=keep_connected)
    if kind == "isolating-churn":
        return IsolatingChurnAdversary(
            budget, protected=(source,), keep_connected=keep_connected
        )
    if kind == "moving-source":
        return MovingSourceAdversary(
            source, budget, keep_connected=keep_connected
        )
    if kind == "adaptive-rri":
        return AdaptiveRRIPolicy(budget, keep_connected=keep_connected)
    raise ValueError(
        f"unknown adversary kind {kind!r}: expected one of {ADVERSARY_KINDS}"
    )
