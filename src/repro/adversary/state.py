"""Mutable topology state handed to adversary policies.

An :class:`~repro.adversary.AdversarialSequence` owns three pieces of
state — the current edge rows, the parallel-edge key set, and the
active-vertex mask.  :class:`MutableTopology` wraps *references* to all
three so a policy's mutations are visible to the sequence, and bundles
the operations every policy needs:

* validated double-edge-swap replacement with an undo token (so a
  policy can retract a swap that disconnects the graph),
* connectivity / component queries on the **active-induced** subgraph
  (departed vertices keep their edge rows but do not count),
* frontier-degree counting against an observed mask.

Everything here is exact integer bookkeeping — no randomness — so a
policy's effect is a pure function of (topology state, digest, the
draws it takes from the round generator).
"""

from __future__ import annotations

import numpy as np

__all__ = ["MutableTopology"]


class MutableTopology:
    """In-place view of an adversarial sequence's topology state.

    Parameters
    ----------
    n:
        Vertex count.
    edges:
        ``(m, 2)`` int64 edge rows — mutated in place.
    keys:
        Set of ``lo * n + hi`` edge keys mirroring ``edges`` — mutated
        in place.
    active:
        ``(n,)`` boolean active-vertex mask — mutated in place.
    """

    __slots__ = ("n", "edges", "keys", "active")

    def __init__(
        self, n: int, edges: np.ndarray, keys: set, active: np.ndarray
    ) -> None:
        self.n = int(n)
        self.edges = edges
        self.keys = keys
        self.active = active

    # -- keys -----------------------------------------------------------
    def edge_key(self, u: int, v: int) -> int:
        """The canonical ``lo * n + hi`` key of an undirected edge."""
        lo, hi = (u, v) if u <= v else (v, u)
        return int(lo) * self.n + int(hi)

    def has_edge(self, u: int, v: int) -> bool:
        """True iff the (undirected) edge is currently present."""
        return self.edge_key(u, v) in self.keys

    # -- swaps ----------------------------------------------------------
    def replace_pair(self, i: int, j: int, e1, e2):
        """Replace edge rows ``i`` / ``j`` with ``e1`` / ``e2``.

        The proposal is rejected (returns None, state untouched) if it
        creates a self-loop or a parallel edge, or if it is the
        identity.  On success the rows and keys are updated and an
        opaque undo token is returned for :meth:`undo`.
        """
        if i == j:
            return None
        a1, b1 = (int(e1[0]), int(e1[1]))
        a2, b2 = (int(e2[0]), int(e2[1]))
        if a1 == b1 or a2 == b2:
            return None  # self-loop
        old_i = (int(self.edges[i, 0]), int(self.edges[i, 1]))
        old_j = (int(self.edges[j, 0]), int(self.edges[j, 1]))
        k1 = self.edge_key(a1, b1)
        k2 = self.edge_key(a2, b2)
        o1 = self.edge_key(*old_i)
        o2 = self.edge_key(*old_j)
        if {k1, k2} == {o1, o2}:
            return None  # identity proposal
        self.keys.discard(o1)
        self.keys.discard(o2)
        if k1 == k2 or k1 in self.keys or k2 in self.keys:
            self.keys.add(o1)
            self.keys.add(o2)
            return None  # parallel edge
        self.keys.add(k1)
        self.keys.add(k2)
        self.edges[i] = (min(a1, b1), max(a1, b1))
        self.edges[j] = (min(a2, b2), max(a2, b2))
        return (i, j, old_i, old_j, k1, k2, o1, o2)

    def undo(self, token) -> None:
        """Retract a successful :meth:`replace_pair`."""
        i, j, old_i, old_j, k1, k2, o1, o2 = token
        self.keys.discard(k1)
        self.keys.discard(k2)
        self.keys.add(o1)
        self.keys.add(o2)
        self.edges[i] = old_i
        self.edges[j] = old_j

    def commit_edges(self, edges: np.ndarray, keys: set) -> None:
        """Adopt a whole proposed edge state (in place, same arrays)."""
        self.edges[:] = edges
        self.keys.clear()
        self.keys.update(keys)

    # -- activity -------------------------------------------------------
    def deactivate(self, vertices) -> None:
        """Churn vertices out (their edge rows stay, filtered at build)."""
        self.active[np.asarray(list(vertices), dtype=np.int64)] = False

    def reactivate(self, vertices) -> None:
        """Readmit churned-out vertices."""
        self.active[np.asarray(list(vertices), dtype=np.int64)] = True

    def _live_edges(self) -> tuple[np.ndarray, np.ndarray]:
        """Endpoint columns of edges with both endpoints active."""
        e = self.edges
        keep = self.active[e[:, 0]] & self.active[e[:, 1]]
        return e[keep, 0], e[keep, 1]

    # -- queries --------------------------------------------------------
    def component_of(self, start: int) -> np.ndarray:
        """Boolean mask of ``start``'s component in the active subgraph."""
        seen = np.zeros(self.n, dtype=bool)
        if not self.active[start]:
            return seen
        u, v = self._live_edges()
        seen[start] = True
        while True:
            su, sv = seen[u], seen[v]
            fwd = su & ~sv
            bwd = sv & ~su
            if not (fwd.any() or bwd.any()):
                return seen
            seen[v[fwd]] = True
            seen[u[bwd]] = True

    def connected(self) -> bool:
        """Is the active-induced subgraph connected? (Vacuously True
        with at most one active vertex.)"""
        idx = np.nonzero(self.active)[0]
        if idx.size <= 1:
            return True
        comp = self.component_of(int(idx[0]))
        return bool(comp[self.active].all())

    def active_degrees(self) -> np.ndarray:
        """Per-vertex degree in the active-induced subgraph."""
        deg = np.zeros(self.n, dtype=np.int64)
        u, v = self._live_edges()
        np.add.at(deg, u, 1)
        np.add.at(deg, v, 1)
        return deg

    def frontier_degrees(self, mask: np.ndarray) -> np.ndarray:
        """Per-vertex count of active neighbours inside ``mask``.

        The greedy-isolation score: a vertex with many neighbours in
        the observed frontier is the most valuable one to churn out.
        """
        deg = np.zeros(self.n, dtype=np.int64)
        u, v = self._live_edges()
        np.add.at(deg, u, mask[v].astype(np.int64))
        np.add.at(deg, v, mask[u].astype(np.int64))
        return deg
