"""Seeded chaos harness: every fault class, every tier, bit-identical.

The matrix behind ``repro chaos``: for each fault class in
:data:`FAULT_CLASSES` a small COBRA workload runs three times — serial
(``workers=1``), sharded (``workers=2``) and distributed (a real
localhost broker with two worker processes, faults installed on both
ends of the wire) — and every run must return a
:class:`~repro.engine.SpreadResult` bit-identical to the fault-free
reference.  The serial and sharded legs double as a zero-interference
check: their code paths never reach an injection site, so an installed
plan must not perturb them at all.

``--smoke`` (:func:`run_chaos_smoke`) is the CI leg: two distributed
fault cases plus the two recovery drills — dead-broker fallback to
local execution, and a client killed mid-job resuming from its
checkpoint manifest without recomputing completed shards (verified via
the ``client.cache.hits`` counter).

Everything is driven by one seed: the workload seed, the fault plans
and the retry jitter all derive from it, so a failing cell replays
exactly with ``repro chaos --seed N``.
"""

from __future__ import annotations

import multiprocessing as mp
import socket
import tempfile
from pathlib import Path

import numpy as np

from ..core.branching import make_policy
from ..distributed import Broker, ResultCache, run_worker
from ..engine import CobraRule, SpreadEngine
from ..graphs import random_regular_graph
from ..telemetry import get_telemetry
from .faults import FaultPlan, FaultRule, InjectedCrash, fault_injection
from .retry import RetryPolicy, reset_breakers

__all__ = [
    "FAULT_CLASSES",
    "chaos_case",
    "run_chaos_matrix",
    "run_chaos_smoke",
    "format_report",
]

#: The fault classes the matrix exercises, one row each.
FAULT_CLASSES = (
    "frame-drop",
    "frame-corrupt",
    "worker-kill",
    "heartbeat-stall",
    "connection-refusal",
)

_CTX = mp.get_context("fork")

# Small but multi-shard: 16 nodes, 16 runs, max_shard=4 gives four
# shards, enough for requeues and kills to actually reorder work.
_RUNS = 16
_MAX_SHARD = 4

# Chaos runs dial through injected refusals; keep the backoff tight so
# the matrix stays interactive.
_FAST_RETRY = RetryPolicy(attempts=6, base_delay_s=0.02, max_delay_s=0.1)


def _cell(seed: int):
    """Build the (engine, state) workload every matrix cell runs."""
    graph = random_regular_graph(16, 4, rng=7)
    rule = CobraRule(make_policy(2))
    engine = SpreadEngine(rule, graph)
    state = np.zeros((_RUNS, graph.n), dtype=bool)
    state[:, 0] = True
    return engine, state


def _reference(engine, state, seed: int):
    """The fault-free serial result every chaos run must reproduce."""
    return engine.run_sharded(
        state, seed, workers=1, track_hits=True, max_shard=_MAX_SHARD
    )


def _identical(got, want) -> bool:
    """Bit-identity between two SpreadResults (the acceptance check)."""
    return (
        got.rounds_run == want.rounds_run
        and np.array_equal(got.finish_times, want.finish_times)
        and np.array_equal(got.final_state, want.final_state)
        and (got.hit_times is None) == (want.hit_times is None)
        and (
            got.hit_times is None
            or np.array_equal(got.hit_times, want.hit_times)
        )
    )


def plans_for(fault: str, seed: int):
    """The (client plan, per-worker plans) a fault class installs.

    Worker plans are passed to the two worker processes via
    ``run_worker(..., faults=)``; the client plan is installed in the
    driving process around the run.  Either may be None.
    """
    if fault == "frame-drop":
        client = FaultPlan(
            seed=seed,
            drop=FaultRule(rate=1.0, limit=1, sites=("client.send",)),
        )
        worker = FaultPlan(
            seed=seed + 1,
            drop=FaultRule(rate=0.5, limit=3, sites=("worker.send",)),
        )
        return client, [worker, None]
    if fault == "frame-corrupt":
        client = FaultPlan(
            seed=seed,
            corrupt=FaultRule(rate=1.0, limit=1, sites=("client.send",)),
        )
        worker = FaultPlan(
            seed=seed + 1,
            corrupt=FaultRule(rate=0.5, limit=2, sites=("worker.send",)),
        )
        return client, [worker, None]
    if fault == "worker-kill":
        return None, [FaultPlan(seed=seed, kill_worker_after_leases=1), None]
    if fault == "heartbeat-stall":
        stall = FaultPlan(
            seed=seed, stall_heartbeats=FaultRule(rate=1.0, limit=8)
        )
        return None, [stall, stall]
    if fault == "connection-refusal":
        client = FaultPlan(
            seed=seed,
            refuse_connections=FaultRule(
                rate=1.0, limit=2, sites=("client.connect",)
            ),
        )
        return client, [None, None]
    raise ValueError(f"unknown fault class {fault!r}")


def _spawn_workers(address, plans):
    """Start one worker process per plan (None = healthy worker)."""
    procs = []
    for plan in plans:
        proc = _CTX.Process(
            target=run_worker,
            args=(address,),
            kwargs={"poll_interval": 0.05, "faults": plan},
            daemon=True,
        )
        proc.start()
        procs.append(proc)
    return procs


def _reap(procs) -> None:
    """Terminate and join worker processes."""
    for proc in procs:
        if proc.is_alive():
            proc.terminate()
    for proc in procs:
        proc.join(timeout=5)


def chaos_case(fault: str, seed: int = 0) -> dict:
    """Run one fault class across all three tiers.

    Returns ``{"serial": bool, "sharded": bool, "distributed": bool}``
    — True means the faulted run completed bit-identical to the
    fault-free reference.
    """
    engine, state = _cell(seed)
    reference = _reference(engine, state, seed)
    client_plan, worker_plans = plans_for(fault, seed)
    report = {}

    # Serial and sharded tiers never reach an injection site: an
    # installed plan must be a strict no-op there.
    for tier, workers in (("serial", 1), ("sharded", 2)):
        plan = client_plan if client_plan is not None else worker_plans[0]
        with fault_injection(plan):
            got = engine.run_sharded(
                state, seed, workers=workers, track_hits=True,
                max_shard=_MAX_SHARD,
            )
        report[tier] = _identical(got, reference)

    reset_breakers()
    with Broker(lease_timeout=5.0) as broker:
        procs = _spawn_workers(broker.address, worker_plans)
        try:
            with fault_injection(client_plan):
                got = engine.run_distributed(
                    state,
                    seed,
                    endpoint=broker.address,
                    track_hits=True,
                    max_shard=_MAX_SHARD,
                    cache=None,
                    retry=_FAST_RETRY,
                    checkpoint=None,
                    fallback="none",
                )
            report["distributed"] = _identical(got, reference)
        except Exception:  # noqa: BLE001 - a red cell, not a crash
            report["distributed"] = False
        finally:
            _reap(procs)
    reset_breakers()
    return report


def run_chaos_matrix(seed: int = 0, emit=None) -> dict:
    """Every fault class x every tier; the full ``repro chaos`` run.

    Returns ``{"ok": bool, "seed": seed, "cases": {fault: {tier: bool}}}``.
    ``emit`` (e.g. ``print``) receives one progress line per fault class.
    """
    cases = {}
    for fault in FAULT_CLASSES:
        report = chaos_case(fault, seed=seed)
        cases[fault] = report
        if emit is not None:
            status = "ok" if all(report.values()) else "FAIL"
            emit(f"chaos {fault:<20s} {status}  {report}")
    return {
        "ok": all(all(r.values()) for r in cases.values()),
        "seed": seed,
        "cases": cases,
    }


def _dead_endpoint() -> str:
    """An endpoint with nothing listening (bound, then released)."""
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    _, port = sock.getsockname()
    sock.close()
    return f"127.0.0.1:{port}"


def fallback_drill(seed: int = 0) -> dict:
    """Dead broker + ``fallback='local'`` must equal the reference.

    Returns ``{"ok", "fallbacks"}`` where ``fallbacks`` is the number of
    ``client.fallbacks`` telemetry counts the drill added.
    """
    engine, state = _cell(seed)
    reference = _reference(engine, state, seed)
    tel = get_telemetry()
    before = tel.counters().get("client.fallbacks", 0)
    reset_breakers()
    got = engine.run_sharded(
        state,
        seed,
        workers=2,
        track_hits=True,
        max_shard=_MAX_SHARD,
        endpoint=_dead_endpoint(),
        cache=None,
        retry=RetryPolicy(attempts=2, base_delay_s=0.01, max_delay_s=0.02),
        fallback="local",
    )
    reset_breakers()
    fallbacks = tel.counters().get("client.fallbacks", 0) - before
    return {"ok": _identical(got, reference) and fallbacks >= 1,
            "fallbacks": fallbacks}


def checkpoint_drill(seed: int = 0) -> dict:
    """Kill the client mid-job; resume from the manifest without rework.

    Phase one runs distributed with ``crash_client_after_done=2``
    installed, so the driver aborts (``InjectedCrash``) once two shard
    results are checkpointed.  Phase two resumes *locally* from the
    same manifest and cache — no broker needed — and must (a) serve the
    checkpointed shards from cache (``client.cache.hits`` grows) and
    (b) finish bit-identical to the reference.
    """
    engine, state = _cell(seed)
    reference = _reference(engine, state, seed)
    tel = get_telemetry()
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        store = ResultCache(Path(tmp) / "cache", max_bytes=None)
        manifest = str(Path(tmp) / "job.ckpt.json")
        crash_plan = FaultPlan(seed=seed, crash_client_after_done=2)
        crashed = False
        reset_breakers()
        with Broker(lease_timeout=5.0) as broker:
            procs = _spawn_workers(broker.address, [None, None])
            try:
                with fault_injection(crash_plan):
                    try:
                        engine.run_distributed(
                            state,
                            seed,
                            endpoint=broker.address,
                            track_hits=True,
                            max_shard=_MAX_SHARD,
                            cache=store,
                            retry=_FAST_RETRY,
                            checkpoint=manifest,
                            fallback="none",
                        )
                    except InjectedCrash:
                        crashed = True
            finally:
                _reap(procs)
        reset_breakers()
        hits_before = tel.counters().get("client.cache.hits", 0)
        got = engine.run_sharded(
            state,
            seed,
            workers=1,
            track_hits=True,
            max_shard=_MAX_SHARD,
            cache=store,
            checkpoint=manifest,
        )
        resumed = tel.counters().get("client.cache.hits", 0) - hits_before
    return {
        "ok": crashed and resumed >= 2 and _identical(got, reference),
        "crashed": crashed,
        "resumed_from_cache": resumed,
    }


def run_chaos_smoke(seed: int = 0, emit=None) -> dict:
    """The CI smoke leg: two fault cases plus both recovery drills.

    Returns ``{"ok": bool, "seed": seed, "cases": {...}}`` in under a
    minute; the full matrix is :func:`run_chaos_matrix`.
    """
    cases = {}
    for fault in ("worker-kill", "frame-drop"):
        report = chaos_case(fault, seed=seed)
        cases[fault] = report
        if emit is not None:
            status = "ok" if all(report.values()) else "FAIL"
            emit(f"chaos {fault:<20s} {status}  {report}")
    cases["fallback-local"] = fallback_drill(seed=seed)
    if emit is not None:
        emit(f"chaos fallback-local       "
             f"{'ok' if cases['fallback-local']['ok'] else 'FAIL'}  "
             f"{cases['fallback-local']}")
    cases["checkpoint-resume"] = checkpoint_drill(seed=seed)
    if emit is not None:
        emit(f"chaos checkpoint-resume    "
             f"{'ok' if cases['checkpoint-resume']['ok'] else 'FAIL'}  "
             f"{cases['checkpoint-resume']}")
    ok = all(
        all(v for k, v in c.items() if isinstance(v, bool)) and c.get("ok", True)
        for c in cases.values()
    )
    return {"ok": ok, "seed": seed, "cases": cases}


def format_report(report: dict) -> str:
    """Render a matrix/smoke report as aligned text for the CLI."""
    lines = [f"chaos seed={report['seed']}  "
             f"{'ALL GREEN' if report['ok'] else 'FAILURES'}"]
    for fault, cells in report["cases"].items():
        parts = []
        for key, value in cells.items():
            if isinstance(value, bool):
                parts.append(f"{key}={'ok' if value else 'FAIL'}")
            else:
                parts.append(f"{key}={value}")
        lines.append(f"  {fault:<20s} " + "  ".join(parts))
    return "\n".join(lines)
