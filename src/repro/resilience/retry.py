"""Retry policies and circuit breakers for flaky transports.

:class:`RetryPolicy` retries a callable under capped exponential
backoff with *deterministic* seeded jitter — two processes given the
same seed sleep identical schedules, so chaos runs replay exactly.
:class:`CircuitBreaker` counts consecutive failures per broker endpoint
and, once tripped, fail-fasts further attempts until a cooldown lapses,
which is what lets ``fallback="local"`` detect a dead broker quickly
instead of grinding through full retry schedules per shard batch.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.resilience.faults import _hash01
from repro.telemetry import get_telemetry

__all__ = [
    "RetryPolicy",
    "RetryError",
    "CircuitBreaker",
    "CircuitOpenError",
    "BREAKER_STATE_VALUES",
    "breaker_for",
    "breaker_states",
    "reset_breakers",
]

#: Gauge encoding of breaker states on ``/metrics``
#: (``retry.breaker.state``): closed=0, half-open=1, open=2.
BREAKER_STATE_VALUES = {"closed": 0.0, "half-open": 1.0, "open": 2.0}


class RetryError(ConnectionError):
    """Raised when a retry budget is exhausted; chains the last error."""

    def __init__(self, what: str, attempts: int, last: BaseException):
        super().__init__(
            f"{what}: giving up after {attempts} attempt(s): {last!r}"
        )
        self.what = what
        self.attempts = attempts
        self.last = last


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic seeded jitter.

    ``attempts`` bounds total tries (1 = no retries).  Delay before
    retry *k* (1-based) is ``base_delay_s * multiplier**(k-1)`` capped
    at ``max_delay_s``, scaled by a jitter factor in
    ``[1-jitter, 1+jitter]`` derived from ``sha256(seed, attempt)``.
    ``budget_s`` optionally bounds cumulative sleep.  Only exceptions
    matching ``retry_on`` are retried; everything else propagates.
    """

    attempts: int = 4
    base_delay_s: float = 0.1
    max_delay_s: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5
    budget_s: float | None = None
    retry_on: tuple[type[BaseException], ...] = (
        ConnectionError,
        TimeoutError,
        OSError,
    )

    def delay_s(self, attempt: int, seed: int = 0) -> float:
        """Backoff before retry *attempt* (1-based), jittered by *seed*."""
        raw = self.base_delay_s * self.multiplier ** (attempt - 1)
        capped = min(raw, self.max_delay_s)
        if self.jitter <= 0.0:
            return capped
        u = _hash01(seed, "retry-jitter", "delay", attempt)
        return capped * (1.0 + self.jitter * (2.0 * u - 1.0))

    def run(
        self,
        fn,
        *,
        seed: int = 0,
        what: str = "operation",
        sleep=time.sleep,
        on_retry=None,
    ):
        """Call *fn* until it succeeds or the policy is exhausted.

        Raises :class:`RetryError` (chaining the final exception) once
        ``attempts`` tries or the sleep ``budget_s`` is spent.
        Non-retryable exceptions propagate immediately.  ``on_retry``
        (if given) is called with ``(attempt, delay, error)`` before
        each sleep.
        """
        tel = get_telemetry()
        slept = 0.0
        last: BaseException | None = None
        for attempt in range(1, max(1, self.attempts) + 1):
            try:
                return fn()
            except self.retry_on as exc:
                last = exc
            if attempt >= max(1, self.attempts):
                break
            delay = self.delay_s(attempt, seed)
            if self.budget_s is not None and slept + delay > self.budget_s:
                break
            tel.count("retry.retries")
            if tel.enabled:
                tel.event(
                    "retry.attempt", what=what, attempt=attempt, delay_s=delay
                )
            if on_retry is not None:
                on_retry(attempt, delay, last)
            sleep(delay)
            slept += delay
        tel.count("retry.giveups")
        assert last is not None
        raise RetryError(what, attempt, last) from last


class CircuitOpenError(ConnectionError):
    """Raised when an operation is refused because the breaker is open."""

    def __init__(self, key: str):
        super().__init__(f"circuit breaker open for {key}")
        self.key = key


class CircuitBreaker:
    """Consecutive-failure circuit breaker with half-open probing.

    Closed → (``failure_threshold`` consecutive failures) → open →
    (after ``cooldown_s``) → half-open, which admits a single probe:
    success closes the breaker, failure reopens it for another
    cooldown.
    """

    def __init__(
        self,
        key: str = "",
        *,
        failure_threshold: int = 5,
        cooldown_s: float = 5.0,
        clock=time.monotonic,
    ):
        self.key = key
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_at: float | None = None
        self._probing = False

    @property
    def state(self) -> str:
        """Current state: ``"closed"``, ``"open"``, or ``"half-open"``."""
        with self._lock:
            if self._opened_at is None:
                return "closed"
            if self._clock() - self._opened_at >= self.cooldown_s:
                return "half-open"
            return "open"

    def allow(self) -> bool:
        """True if a call may proceed (closed, or the half-open probe)."""
        with self._lock:
            if self._opened_at is None:
                return True
            if self._clock() - self._opened_at < self.cooldown_s:
                return False
            if self._probing:
                return False
            self._probing = True
            return True

    def _publish_state(self, value: float) -> None:
        """Publish the state gauge the ``/metrics`` exporter scrapes."""
        get_telemetry().gauge("retry.breaker.state", value, key=self.key)

    def record_success(self) -> None:
        """Note a successful call: closes the breaker."""
        with self._lock:
            self._failures = 0
            self._opened_at = None
            self._probing = False
        self._publish_state(BREAKER_STATE_VALUES["closed"])

    def record_failure(self) -> None:
        """Note a failed call; trips the breaker at the threshold."""
        tel = get_telemetry()
        with self._lock:
            self._probing = False
            if self._opened_at is not None:
                # Failed probe: restart the cooldown window.
                self._opened_at = self._clock()
                reopened = True
                tripped = False
            else:
                reopened = False
                self._failures += 1
                if self._failures >= self.failure_threshold:
                    self._opened_at = self._clock()
                    tripped = True
                else:
                    tripped = False
        if tripped or reopened:
            self._publish_state(BREAKER_STATE_VALUES["open"])
        if tripped:
            tel.count("retry.breaker_trips")
            if tel.enabled:
                tel.event("retry.breaker_open", key=self.key)


_BREAKERS: dict[str, CircuitBreaker] = {}
_BREAKERS_LOCK = threading.Lock()


def breaker_for(key: str, **kwargs) -> CircuitBreaker:
    """Return the process-wide breaker for *key*, creating it on demand."""
    with _BREAKERS_LOCK:
        breaker = _BREAKERS.get(key)
        if breaker is None:
            breaker = CircuitBreaker(key, **kwargs)
            _BREAKERS[key] = breaker
        return breaker


def breaker_states() -> dict[str, str]:
    """A snapshot of every registered breaker's current state by key."""
    with _BREAKERS_LOCK:
        breakers = list(_BREAKERS.items())
    return {key: breaker.state for key, breaker in breakers}


def reset_breakers() -> None:
    """Drop all registered breakers (test isolation helper)."""
    with _BREAKERS_LOCK:
        _BREAKERS.clear()
