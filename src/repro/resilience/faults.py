"""Deterministic, seed-driven fault injection for the distributed tier.

A :class:`FaultPlan` describes *which* faults to inject (frame drops,
payload corruption, duplicated/delayed frames, worker kills, heartbeat
stalls, connection refusals, client crashes) and *when*, using nothing
but a seed and monotonically increasing per-site counters.  Every
decision is a pure function ``sha256(seed, kind, site, counter)`` so a
chaos run is replayable bit-for-bit from the single seed — no RNG
streams to interleave, no wall-clock dependence.

The hooks in ``repro.distributed`` consult :func:`active_fault_plan`,
which returns ``None`` unless a plan was explicitly installed; the
default path is a single module-global identity check, so production
runs pay nothing.
"""

from __future__ import annotations

import hashlib
import json
import struct
import threading
from dataclasses import dataclass, field

__all__ = [
    "InjectedFault",
    "InjectedCrash",
    "FaultRule",
    "FaultPlan",
    "install_fault_plan",
    "active_fault_plan",
    "clear_fault_plan",
    "fault_injection",
    "FAULT_PLAN_ENV_VAR",
]

FAULT_PLAN_ENV_VAR = "REPRO_FAULT_PLAN"

_FRAME_HEADER = struct.Struct(">I")


class InjectedFault(ConnectionError):
    """A fault injected by an active :class:`FaultPlan`.

    Subclasses :class:`ConnectionError` so the recovery machinery
    (worker reconnect loops, client retries) treats an injected fault
    exactly like the real transport failure it simulates.
    """

    def __init__(self, kind: str, site: str):
        super().__init__(f"injected fault: {kind} at {site}")
        self.kind = kind
        self.site = site


class InjectedCrash(RuntimeError):
    """An injected client-process crash (abort, not a transport error).

    Deliberately *not* a :class:`ConnectionError`: retry policies must
    not swallow it.  The chaos harness uses it to simulate a client
    killed mid-job so checkpoint resume can be exercised
    deterministically.
    """

    def __init__(self, site: str, done: int):
        super().__init__(f"injected client crash at {site} after {done} shards")
        self.site = site
        self.done = done


@dataclass(frozen=True)
class FaultRule:
    """When a single fault kind fires.

    ``rate`` is the probability each eligible event trips the fault,
    decided deterministically from the plan seed.  ``after`` skips the
    first N eligible events, ``limit`` caps the total number of
    injections, and ``sites`` (if given) restricts the rule to the named
    injection sites (e.g. ``("worker.send",)``).
    """

    rate: float = 1.0
    limit: int | None = None
    after: int = 0
    sites: tuple[str, ...] | None = None

    def spec(self) -> dict:
        """Return a JSON-serialisable description of this rule."""
        out: dict = {"rate": self.rate, "after": self.after}
        if self.limit is not None:
            out["limit"] = self.limit
        if self.sites is not None:
            out["sites"] = list(self.sites)
        return out

    @classmethod
    def from_spec(cls, spec: dict) -> "FaultRule":
        """Rebuild a rule from :meth:`spec` output."""
        sites = spec.get("sites")
        return cls(
            rate=float(spec.get("rate", 1.0)),
            limit=spec.get("limit"),
            after=int(spec.get("after", 0)),
            sites=tuple(sites) if sites is not None else None,
        )


def _hash01(seed: int, kind: str, site: str, counter: int) -> float:
    """Map (seed, kind, site, counter) to a uniform float in [0, 1)."""
    token = f"{seed}|{kind}|{site}|{counter}".encode()
    digest = hashlib.sha256(token).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


# Frame-level fault kinds, in priority order: the first rule that fires
# for a given frame wins, so a plan mixing several frame faults is still
# deterministic.
_FRAME_KINDS = ("drop", "corrupt", "duplicate", "delay")


@dataclass
class FaultPlan:
    """A replayable chaos schedule, parameterised by a single seed.

    Frame faults (``drop``, ``corrupt``, ``duplicate``, ``delay``)
    apply to outbound frames at instrumented sites.  ``kill_worker_after_leases``
    hard-kills the worker process after it has accepted that many tasks.
    ``stall_heartbeats`` suppresses heartbeat sends.  ``refuse_connections``
    rejects dial attempts.  ``crash_client_after_done`` aborts the
    client (raises :class:`InjectedCrash`) once that many shards have
    been checkpointed — it fires at most once.
    """

    seed: int = 0
    drop: FaultRule | None = None
    corrupt: FaultRule | None = None
    duplicate: FaultRule | None = None
    delay: FaultRule | None = None
    delay_s: float = 0.05
    kill_worker_after_leases: int | None = None
    stall_heartbeats: FaultRule | None = None
    refuse_connections: FaultRule | None = None
    crash_client_after_done: int | None = None
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )
    _counters: dict = field(default_factory=dict, repr=False, compare=False)
    _fired: dict = field(default_factory=dict, repr=False, compare=False)
    _crashed: bool = field(default=False, repr=False, compare=False)

    def _rule(self, kind: str) -> FaultRule | None:
        if kind == "drop":
            return self.drop
        if kind == "corrupt":
            return self.corrupt
        if kind == "duplicate":
            return self.duplicate
        if kind == "delay":
            return self.delay
        if kind == "stall_heartbeat":
            return self.stall_heartbeats
        if kind == "refuse":
            return self.refuse_connections
        return None

    def _decide(self, kind: str, site: str) -> bool:
        """Deterministically decide whether *kind* fires at *site* now."""
        rule = self._rule(kind)
        if rule is None:
            return False
        if rule.sites is not None and site not in rule.sites:
            return False
        with self._lock:
            key = (kind, site)
            counter = self._counters.get(key, 0)
            self._counters[key] = counter + 1
            if counter < rule.after:
                return False
            fired = self._fired.get(key, 0)
            if rule.limit is not None and fired >= rule.limit:
                return False
            hit = _hash01(self.seed, kind, site, counter) < rule.rate
            if hit:
                self._fired[key] = fired + 1
            return hit

    def frame_fault(self, site: str) -> str | None:
        """Return the frame fault to apply at *site*, or ``None``.

        At most one frame fault fires per frame; kinds are consulted in
        fixed priority order (drop, corrupt, duplicate, delay).
        """
        for kind in _FRAME_KINDS:
            if self._decide(kind, site):
                return kind
        return None

    def corrupt_payload(self, payload: bytes, site: str) -> bytes:
        """Deterministically flip bytes in an encoded frame.

        The 4-byte length header is preserved so the receiver reads the
        right number of bytes and fails in *decode*, not in framing —
        the interesting failure mode for :class:`WireDecodeError` paths.
        """
        if len(payload) <= _FRAME_HEADER.size:
            return payload
        body = bytearray(payload[_FRAME_HEADER.size:])
        with self._lock:
            counter = self._counters.get(("corrupt-bytes", site), 0)
            self._counters[("corrupt-bytes", site)] = counter + 1
        nflips = 1 + int(_hash01(self.seed, "corrupt-n", site, counter) * 3)
        for i in range(nflips):
            u = _hash01(self.seed, f"corrupt-pos-{i}", site, counter)
            pos = int(u * len(body))
            body[pos] ^= 0xFF
        return payload[: _FRAME_HEADER.size] + bytes(body)

    def refuse_connection(self, site: str) -> bool:
        """True if a dial attempt at *site* should be refused."""
        return self._decide("refuse", site)

    def stall_heartbeat(self) -> bool:
        """True if the next heartbeat send should be suppressed."""
        return self._decide("stall_heartbeat", "worker.heartbeat")

    def kill_worker(self, leases: int) -> bool:
        """True once the worker has accepted ``kill_worker_after_leases`` tasks."""
        k = self.kill_worker_after_leases
        return k is not None and leases >= k

    def crash_client(self, done: int) -> bool:
        """True (once) when the client has checkpointed *done* shards."""
        k = self.crash_client_after_done
        if k is None or done < k:
            return False
        with self._lock:
            if self._crashed:
                return False
            self._crashed = True
            return True

    def spec(self) -> dict:
        """Return a JSON-serialisable description of this plan."""
        out: dict = {"seed": self.seed, "delay_s": self.delay_s}
        for kind in ("drop", "corrupt", "duplicate", "delay"):
            rule = self._rule(kind)
            if rule is not None:
                out[kind] = rule.spec()
        if self.stall_heartbeats is not None:
            out["stall_heartbeats"] = self.stall_heartbeats.spec()
        if self.refuse_connections is not None:
            out["refuse_connections"] = self.refuse_connections.spec()
        if self.kill_worker_after_leases is not None:
            out["kill_worker_after_leases"] = self.kill_worker_after_leases
        if self.crash_client_after_done is not None:
            out["crash_client_after_done"] = self.crash_client_after_done
        return out

    def to_json(self) -> str:
        """Serialise the plan for transport via ``REPRO_FAULT_PLAN``."""
        return json.dumps(self.spec(), sort_keys=True)

    @classmethod
    def from_spec(cls, spec: dict) -> "FaultPlan":
        """Rebuild a plan from :meth:`spec` output."""

        def rule(key: str) -> FaultRule | None:
            raw = spec.get(key)
            return FaultRule.from_spec(raw) if raw is not None else None

        return cls(
            seed=int(spec.get("seed", 0)),
            drop=rule("drop"),
            corrupt=rule("corrupt"),
            duplicate=rule("duplicate"),
            delay=rule("delay"),
            delay_s=float(spec.get("delay_s", 0.05)),
            kill_worker_after_leases=spec.get("kill_worker_after_leases"),
            stall_heartbeats=rule("stall_heartbeats"),
            refuse_connections=rule("refuse_connections"),
            crash_client_after_done=spec.get("crash_client_after_done"),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Rebuild a plan serialised with :meth:`to_json`."""
        return cls.from_spec(json.loads(text))


_ACTIVE: FaultPlan | None = None


def install_fault_plan(plan: FaultPlan | None) -> None:
    """Install *plan* process-wide (``None`` disables injection)."""
    global _ACTIVE
    _ACTIVE = plan


def active_fault_plan() -> FaultPlan | None:
    """Return the installed plan, or ``None`` when chaos is off."""
    return _ACTIVE


def clear_fault_plan() -> None:
    """Remove any installed plan."""
    install_fault_plan(None)


class fault_injection:
    """Context manager installing a plan for the duration of a block."""

    def __init__(self, plan: FaultPlan):
        self._plan = plan
        self._previous: FaultPlan | None = None

    def __enter__(self) -> FaultPlan:
        """Install the plan and return it."""
        self._previous = active_fault_plan()
        install_fault_plan(self._plan)
        return self._plan

    def __exit__(self, *exc) -> None:
        """Restore the previously installed plan (usually ``None``)."""
        install_fault_plan(self._previous)
