"""repro.resilience — chaos engineering and recovery for the distributed tier.

Four pieces, layered under :mod:`repro.distributed`:

* :mod:`~repro.resilience.faults` — a deterministic, seed-driven
  :class:`FaultPlan` (frame drop/corrupt/duplicate/delay, worker kill,
  heartbeat stall, connection refusal, client crash) whose injection
  hooks sit behind a zero-cost no-op default, so any chaos run replays
  bit-for-bit from one seed;
* :mod:`~repro.resilience.retry` — :class:`RetryPolicy` (capped
  exponential backoff with deterministic seeded jitter, error-class
  filters, a sleep budget) plus a per-endpoint :class:`CircuitBreaker`
  that fail-fasts once a broker is plainly dead;
* :mod:`~repro.resilience.checkpoint` — atomic job manifests over the
  content-addressed result cache, so interrupted runs resume without
  recomputing completed shards;
* :mod:`~repro.resilience.chaos` — the seeded fault-matrix harness
  behind ``repro chaos``, asserting bit-identity between every faulted
  run and the fault-free reference.

Module-level :func:`configure` installs process defaults (retry policy,
fallback mode, checkpoint path) that ``endpoint=`` entry points pick up
when their keyword arguments are left at the sentinel defaults — this
is how the CLI's ``--retry-*``/``--fallback``/``--checkpoint`` flags
reach :func:`repro.distributed.execute_shards_remote` without threading
every knob through every signature.
"""

from __future__ import annotations

import os

from .checkpoint import JobCheckpoint, execute_shards_checkpointed
from .faults import (
    FAULT_PLAN_ENV_VAR,
    FaultPlan,
    FaultRule,
    InjectedCrash,
    InjectedFault,
    active_fault_plan,
    clear_fault_plan,
    fault_injection,
    install_fault_plan,
)
from .retry import (
    CircuitBreaker,
    CircuitOpenError,
    RetryError,
    RetryPolicy,
    breaker_for,
    breaker_states,
    reset_breakers,
)

__all__ = [
    "FaultPlan",
    "FaultRule",
    "InjectedCrash",
    "InjectedFault",
    "FAULT_PLAN_ENV_VAR",
    "active_fault_plan",
    "clear_fault_plan",
    "fault_injection",
    "install_fault_plan",
    "RetryPolicy",
    "RetryError",
    "CircuitBreaker",
    "CircuitOpenError",
    "breaker_for",
    "breaker_states",
    "reset_breakers",
    "JobCheckpoint",
    "execute_shards_checkpointed",
    "configure",
    "resolve_retry",
    "resolve_fallback",
    "resolve_checkpoint",
    "FALLBACK_ENV_VAR",
]

#: Environment variable selecting the degradation mode for ``endpoint=``
#: callers: ``local`` falls back to in-process sharded execution when
#: the broker is unreachable; unset/``none`` propagates the error.
FALLBACK_ENV_VAR = "REPRO_FALLBACK"

_DEFAULT_RETRY = RetryPolicy()
_DEFAULTS: dict = {"retry": None, "fallback": None, "checkpoint": None}
_UNSET = object()


def configure(*, retry=_UNSET, fallback=_UNSET, checkpoint=_UNSET) -> None:
    """Install process-wide resilience defaults for ``endpoint=`` callers.

    Any argument left unset keeps its current value; pass ``None`` to
    reset one to the built-in default.  ``retry`` is a
    :class:`RetryPolicy`, ``fallback`` is ``"local"``/``"none"``/None,
    ``checkpoint`` is a manifest path.
    """
    if retry is not _UNSET:
        _DEFAULTS["retry"] = retry
    if fallback is not _UNSET:
        _DEFAULTS["fallback"] = fallback
    if checkpoint is not _UNSET:
        _DEFAULTS["checkpoint"] = checkpoint


def resolve_retry(spec) -> RetryPolicy:
    """Coerce a retry spec into a :class:`RetryPolicy`.

    ``"default"`` consults :func:`configure`'s installed policy, else
    the built-in ``RetryPolicy()``; ``None`` disables retries (a
    single-attempt policy); a policy instance passes through.
    """
    if spec == "default":
        configured = _DEFAULTS["retry"]
        return configured if configured is not None else _DEFAULT_RETRY
    if spec is None:
        return RetryPolicy(attempts=1)
    if isinstance(spec, RetryPolicy):
        return spec
    raise TypeError(f"expected a RetryPolicy, 'default' or None, got {spec!r}")


def resolve_fallback(spec) -> str | None:
    """Coerce a fallback spec into ``"local"`` or ``None``.

    ``"default"`` consults :func:`configure`, then the
    :data:`FALLBACK_ENV_VAR` environment variable; ``"none"`` and
    ``None`` disable fallback.
    """
    if spec == "default":
        spec = _DEFAULTS["fallback"]
        if spec is None:
            spec = os.environ.get(FALLBACK_ENV_VAR)
    if spec is None or spec == "none" or spec == "":
        return None
    if spec == "local":
        return "local"
    raise ValueError(f"unknown fallback mode {spec!r}: expected 'local' or 'none'")


def resolve_checkpoint(spec):
    """Coerce a checkpoint spec into a manifest path (or None).

    ``"default"`` consults :func:`configure`; ``None`` disables
    checkpointing; anything else is used as the manifest path.
    """
    if spec == "default":
        spec = _DEFAULTS["checkpoint"]
    return spec
