"""Job checkpoints: resumable manifests over the content-addressed cache.

A :class:`JobCheckpoint` records, for one shard plan, which shard
indices have completed.  The completed *results* themselves live in the
existing content-addressed :class:`~repro.distributed.cache.ResultCache`
(keyed by canonical task digest), so the manifest only needs the task
key list and a set of done indices — a few hundred bytes, written
atomically after every completion.  An interrupted
``run_sharded``/``run_distributed`` pointed at the same manifest path
resumes bit-identically: completed shards are served from the cache
(observable via its hit counters) and only the remainder is recomputed
or re-submitted.

Manifests are keyed to the shard plan: reopening a manifest whose
stored task keys do not match the current plan starts fresh rather
than resuming the wrong job.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path

from repro.telemetry import get_telemetry

__all__ = ["JobCheckpoint", "execute_shards_checkpointed"]

_MANIFEST_VERSION = 1


class JobCheckpoint:
    """An atomic, resumable manifest of completed shard indices.

    Construct via :meth:`open`, which resumes a compatible existing
    manifest or starts a fresh one.  :meth:`mark_done` + :meth:`save`
    after each completion keeps the on-disk state at most one shard
    behind reality; a crash between the two merely recomputes (or
    re-fetches from cache) that one shard.
    """

    def __init__(self, path, keys: list[str], done=()):
        self.path = Path(path)
        self.keys = list(keys)
        self._done: set[int] = {int(i) for i in done}
        self._lock = threading.Lock()

    @classmethod
    def open(cls, path, keys: list[str]) -> "JobCheckpoint":
        """Open (resuming) or create the manifest at *path* for *keys*.

        A readable manifest whose key list matches resumes; anything
        else — missing file, torn JSON, mismatched plan — starts a
        fresh manifest (resume of a *different* job would be silently
        wrong, so plan identity is checked, not assumed).
        """
        tel = get_telemetry()
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            payload = None
        if (
            isinstance(payload, dict)
            and payload.get("v") == _MANIFEST_VERSION
            and payload.get("kind") == "checkpoint"
            and payload.get("keys") == list(keys)
        ):
            done = [
                i
                for i in payload.get("done", ())
                if isinstance(i, int) and 0 <= i < len(keys)
            ]
            manifest = cls(path, keys, done)
            tel.count("checkpoint.resumes")
            if tel.enabled:
                tel.event(
                    "checkpoint.resume", path=str(path), done=len(done),
                    total=len(keys),
                )
            return manifest
        return cls(path, keys)

    def mark_done(self, index: int) -> None:
        """Record shard *index* as completed (in memory; call save())."""
        with self._lock:
            self._done.add(int(index))

    def done_indices(self) -> list[int]:
        """Sorted list of completed shard indices."""
        with self._lock:
            return sorted(self._done)

    def pending(self) -> list[int]:
        """Sorted list of shard indices still to run."""
        with self._lock:
            return [i for i in range(len(self.keys)) if i not in self._done]

    @property
    def complete(self) -> bool:
        """True once every shard index is marked done."""
        with self._lock:
            return len(self._done) == len(self.keys)

    def save(self) -> None:
        """Atomically write the manifest (temp file + ``os.replace``)."""
        with self._lock:
            payload = {
                "v": _MANIFEST_VERSION,
                "kind": "checkpoint",
                "keys": self.keys,
                "done": sorted(self._done),
            }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.parent / (
            f".{self.path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
        )
        tmp.write_text(json.dumps(payload, sort_keys=True))
        os.replace(tmp, self.path)
        get_telemetry().count("checkpoint.saves")


def execute_shards_checkpointed(
    tasks,
    *,
    workers: int = 1,
    cache="auto",
    checkpoint=None,
    mp_context=None,
):
    """Run shard tasks locally with checkpoint/resume over the cache.

    The local-tier analogue of the checkpointed remote path: completed
    shards recorded in the manifest are served from the content-addressed
    cache (counted as ``client.cache.hits``), only the remainder is
    executed, and each fresh completion is stored + checkpointed before
    the next one starts.  Results come back in task order, bit-identical
    to :func:`repro.parallel.execute_shards` on the same plan.
    """
    # Lazy: keep repro.resilience importable without dragging in the
    # distributed package (which imports this module via the client).
    from repro.distributed.cache import resolve_cache
    from repro.distributed.wire import encode_result, encode_task, task_key
    from repro.parallel.sharding import _run_shard_indexed, run_shard

    tel = get_telemetry()
    tasks = list(tasks)
    store = resolve_cache(cache)
    if store is None:
        raise ValueError(
            "checkpointed execution needs a result cache; pass cache='auto' "
            "or a cache path (the manifest stores digests, the cache stores "
            "results)"
        )
    keys = [task_key(encode_task(t)) for t in tasks]
    manifest = (
        checkpoint
        if isinstance(checkpoint, JobCheckpoint)
        else JobCheckpoint.open(checkpoint, keys)
    )
    if manifest.keys != keys:
        manifest = JobCheckpoint(manifest.path, keys)

    results: list = [None] * len(tasks)
    pending: list[int] = []
    for i in manifest.done_indices():
        cached = store.get(keys[i])
        if cached is not None:
            tel.count("client.cache.hits")
            results[i] = cached
        # A checkpointed shard whose cache entry was evicted or
        # quarantined just recomputes: correctness over bookkeeping.
    for i in range(len(tasks)):
        if results[i] is None:
            pending.append(i)

    def _finish(index: int, result) -> None:
        results[index] = result
        store.put(keys[index], encode_result(result))
        manifest.mark_done(index)
        manifest.save()

    if pending:
        if workers <= 1 or len(pending) == 1:
            for i in pending:
                _finish(i, run_shard(tasks[i]))
        else:
            from repro.parallel.sharding import _mp_context

            ctx = _mp_context(mp_context)
            with ctx.Pool(min(workers, len(pending))) as pool:
                indexed = [(i, tasks[i]) for i in pending]
                for i, result in pool.imap_unordered(
                    _run_shard_indexed, indexed, chunksize=1
                ):
                    _finish(i, result)
    if tel.enabled:
        tel.event(
            "checkpoint.complete",
            path=str(manifest.path),
            shards=len(tasks),
            resumed=len(tasks) - len(pending),
        )
    return results
