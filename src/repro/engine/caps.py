"""Centralised round-cap derivation for every spread engine.

Before the engine layer existed, each module hand-rolled its own
"generous upper bound on how long this process could possibly take":
:func:`repro.core.cobra.default_round_cap` used the Theorem 1.1 form
``64·(m + dmax²·ln n) + 1000`` while ``baselines/push.py`` and
``baselines/pull.py`` used an inconsistent ``64·(n + dmax·ln n)``-style
formula that was *smaller* than the coupon-collector worst case on
stars.  All cap derivation now lives here; the per-rule choice is made
by :meth:`repro.engine.rules.SpreadRule.default_cap`.

Hitting a cap signals a bug or a genuinely pathological
parameterisation (e.g. an ``all-vertices`` completion target under
heavy churn) rather than bad luck: every formula is a ``64×`` multiple
of a proven w.h.p. bound plus a constant floor.
"""

from __future__ import annotations

import math

__all__ = ["process_round_cap", "walk_round_cap", "flooding_round_cap"]


def process_round_cap(n: int, m: int, dmax: int) -> int:
    """Cap for epidemic-style rounds (COBRA, BIPS, push, pull, push-pull).

    ``64 · (m + dmax² · max(1, ln n)) + 1000`` — the Theorem 1.1 /
    Theorem 1.4 bound shape with a 64× safety factor.  For the gossip
    baselines this dominates their coupon-collector worst cases (e.g.
    push on a star needs ``Θ(n log n)`` rounds; here ``m + dmax² ln n =
    Θ(n² log n)``), so one formula safely serves every per-vertex
    selection process.
    """
    bound = m + dmax**2 * max(1.0, math.log(n))
    return int(64 * bound + 1000)


def walk_round_cap(n: int, dmax: int) -> int:
    """Cap for fixed-population walk rounds (single and multi walks).

    ``64 · n · max(1, ln n) · dmax + 1000`` — the classical
    ``O(n·m)``-flavoured cover-time bound with the same 64× factor.
    Walks have no branching, so the epidemic cap shape does not apply.
    """
    return int(64 * n * max(1.0, math.log(n)) * dmax + 1000)


def flooding_round_cap(n: int) -> int:
    """Cap for deterministic flooding: the eccentricity is below ``n``."""
    return int(n)
