"""The unified batched round engine: one ``(R, n)`` state machine.

:class:`SpreadEngine` advances ``R`` independent runs of any
:class:`~repro.engine.rules.SpreadRule` over any topology source — a
static :class:`~repro.graphs.Graph` or a time-evolving
:class:`~repro.dynamics.GraphSequence` — until a
:class:`~repro.engine.completion.CompletionCriterion` is met or a
round cap is hit.  Every process in the repo (COBRA, BIPS, push, pull,
push–pull, flooding, k walks, and their dynamic variants) is a thin
wrapper over this one loop::

    engine = SpreadEngine(CobraRule(policy), graph)          # static
    engine = SpreadEngine(BipsRule(policy, 0), sequence,      # dynamic
                          completion="all-active")
    result = engine.run(state0, rng, track_hits=True)

The engine owns everything the wrappers used to duplicate: the round
loop, the cumulative visited set, per-vertex hit times, per-round size
and coverage recording, completion testing, and cap derivation (rules
declare their cap through :mod:`repro.engine.caps`).  Randomness flows
through the rule kernels in the historical order, so wrappers retain
their seed-for-seed behaviour (see :mod:`repro.engine.rules`).

Topology duck-typing: any object with ``.n`` and ``.graph_at(t)`` is a
topology source; plain graphs are wrapped in :class:`StaticTopology`
(equivalent to, but dependency-free of,
:class:`repro.dynamics.FrozenSequence`).
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, replace
from typing import Callable

import numpy as np

from ..graphs.graph import Graph
from ..telemetry import get_telemetry
from .completion import AllVertices, CompletionCriterion, make_completion
from .observation import FrontierObservation
from .rules import SpreadRule

__all__ = ["SpreadEngine", "SpreadResult", "StaticTopology", "as_topology"]


class StaticTopology:
    """Adapter presenting a static :class:`Graph` as a snapshot source.

    Behaviourally identical to
    :class:`repro.dynamics.FrozenSequence`, but defined here so the
    engine package has no dependency on :mod:`repro.dynamics`.
    """

    def __init__(self, graph: Graph) -> None:
        self.base = graph
        self.n = graph.n
        self.name = graph.name

    def graph_at(self, t: int) -> Graph:
        """Every round sees the same static graph."""
        return self.base


def as_topology(source):
    """Coerce a topology source: graphs are wrapped, sequences pass through.

    Any object exposing ``.n`` and ``.graph_at(t)`` (in particular every
    :class:`repro.dynamics.GraphSequence`) is accepted as-is.
    """
    if isinstance(source, Graph):
        return StaticTopology(source)
    if hasattr(source, "graph_at") and hasattr(source, "n"):
        return source
    raise TypeError(
        f"expected a Graph or a graph-sequence-like object, got {source!r}"
    )


@dataclass(frozen=True)
class SpreadResult:
    """Outcome of ``R`` engine runs advanced together.

    Attributes
    ----------
    finish_times:
        ``(R,)`` first round at which each run met the completion
        criterion; ``-1`` for runs that hit the round cap.
    rounds_run:
        Number of rounds actually simulated (the max over runs).
    final_state:
        The rule-specific state array after the last simulated round.
    hit_times:
        ``(R, n)`` per-vertex first-visit round (``-1`` = never), when
        requested via ``track_hits``.
    sizes:
        ``(R, rounds_run + 1)`` per-round occupancy counts, when
        requested via ``record_sizes``.
    visited_counts:
        ``(R, rounds_run + 1)`` per-round cumulative distinct-visited
        counts, when requested via ``record_visited``.
    meta:
        Observability side-channel (never part of the scientific
        payload): the sharded runner records per-shard wall/CPU
        timings and skew here (see
        :func:`repro.parallel.merge_shard_results`).  Excluded from
        the wire encoding and from every bit-identity comparison —
        two runs of the same seed are equal in all other fields even
        though their ``meta`` timings differ.
    """

    finish_times: np.ndarray
    rounds_run: int
    final_state: np.ndarray
    hit_times: np.ndarray | None = None
    sizes: np.ndarray | None = None
    visited_counts: np.ndarray | None = None
    meta: dict | None = None

    @property
    def all_finished(self) -> bool:
        """True iff every run completed within the round cap."""
        return bool(np.all(self.finish_times >= 0))

    def finished_fraction(self) -> float:
        """Fraction of runs that completed within the round cap."""
        return float(np.mean(self.finish_times >= 0))


class SpreadEngine:
    """A spread rule bound to a topology source and completion criterion.

    Parameters
    ----------
    rule:
        The per-round kernel (see :mod:`repro.engine.rules`).
    topology:
        A static :class:`~repro.graphs.Graph` or any object with
        ``.n`` / ``.graph_at(t)`` (e.g. a
        :class:`repro.dynamics.GraphSequence`).
    completion:
        ``"all-vertices"`` (default), ``"all-active"``,
        ``"target-hit"`` (with ``target=``), or a
        :class:`~repro.engine.completion.CompletionCriterion`.
    """

    def __init__(
        self,
        rule: SpreadRule,
        topology,
        completion: "CompletionCriterion | str" = "all-vertices",
        *,
        target: int | None = None,
    ) -> None:
        self.rule = rule
        self.topology = as_topology(topology)
        self.completion = make_completion(completion, target=target)
        validate = getattr(rule, "validate_topology", None)
        if validate is not None:
            validate(self.topology)

    # ------------------------------------------------------------------
    def default_cap(self) -> int:
        """The rule's round cap derived from the round-0 snapshot."""
        return self.rule.default_cap(self.topology.graph_at(0))

    # ------------------------------------------------------------------
    def run(
        self,
        state: np.ndarray,
        rng: np.random.Generator,
        *,
        max_rounds: int | None = None,
        track_hits: bool = False,
        record_sizes: bool = False,
        record_visited: bool = False,
        on_round: Callable[[int, Graph, np.ndarray], None] | None = None,
        backend: str | None = None,
    ) -> SpreadResult:
        """Advance all runs until completion or the round cap.

        ``state`` is the rule-specific initial state (round-0); it is
        not mutated.  ``on_round(t, graph, state)`` is called before
        each executed round with the snapshot in force and the
        (read-only) state entering the round — the hook BIPS candidate
        and degree recording is built on.  Transition ``t → t+1`` uses
        ``topology.graph_at(t)``, so round counting matches both the
        historical static and dynamic loops.

        Topologies with ``observes_process = True`` (adaptive
        adversaries, see :mod:`repro.engine.observation`) receive one
        :class:`FrontierObservation` per round, delivered before the
        round's ``graph_at(t)`` call, so the snapshot may react to the
        state about to act on it.

        ``backend`` selects the per-round kernel via
        :mod:`repro.kernels.dispatch`: ``"numpy"`` (reference, the
        default resolution), ``"numba"`` / ``"auto"`` (fused compiled
        kernels where available — bit-identical to numpy), or
        ``"bitplane"`` (word-packed gossip — distribution-equivalent
        only).  ``None`` defers to the ``REPRO_KERNEL_BACKEND``
        environment variable, then ``"auto"``.  When a backend was
        explicitly requested, or resolution picked a non-numpy kernel,
        the choice is recorded as ``meta["kernel_backend"]``; the
        untouched default leaves ``meta`` None, preserving the
        meta-is-observability-only contract.

        With telemetry enabled (see :mod:`repro.telemetry`) the run is
        wrapped in an ``engine.run`` span, and every sampled round
        emits an ``engine.round`` progress event plus
        ``engine.round.seconds`` / ``engine.round.occupied``
        histogram observations.  Instrumentation only *reads* state
        and clocks — it draws no randomness — so traced and untraced
        runs are bit-identical.
        """
        from ..kernels import dispatch

        topo = self.topology
        observer = (
            topo.observe if getattr(topo, "observes_process", False) else None
        )
        n = topo.n
        # Rules with non-row-per-run state (bit-packed flooding) publish
        # their run count through runs_of; the default is one state row
        # per run.
        runs_of = getattr(self.rule, "runs_of", None)
        runs = runs_of(state) if runs_of is not None else state.shape[0]
        cap = self.default_cap() if max_rounds is None else int(max_rounds)

        requested = dispatch.requested_backend(backend)
        binding = dispatch.resolve(
            self.rule, n=n, runs=runs, requested=requested
        )
        rule = binding.rule
        if binding.pack is not None:
            state = binding.pack(state)

        tel = get_telemetry()
        trace = tel.enabled
        span = (
            tel.span(
                "engine.run",
                rule=type(self.rule).__name__,
                topology=getattr(topo, "name", type(topo).__name__),
                runs=int(runs),
                n=int(n),
                cap=int(cap),
                backend=binding.backend,
            )
            if trace
            else None
        )
        with span if span is not None else contextlib.nullcontext():
            result = self._run_loop(
                rule,
                binding.step,
                topo,
                observer,
                state,
                rng,
                runs=runs,
                n=n,
                cap=cap,
                track_hits=track_hits,
                record_sizes=record_sizes,
                record_visited=record_visited,
                on_round=on_round,
                tel=tel,
                trace=trace,
            )
            if span is not None:
                span.annotate(
                    rounds_run=int(result.rounds_run),
                    finished=int((result.finish_times >= 0).sum()),
                )
        if binding.unpack is not None:
            result = replace(result, final_state=binding.unpack(result.final_state))
        if requested is not None or binding.backend != "numpy":
            result = replace(
                result,
                meta={**(result.meta or {}), "kernel_backend": binding.backend},
            )
        return result

    def _run_loop(
        self,
        rule,
        step,
        topo,
        observer,
        state: np.ndarray,
        rng: np.random.Generator,
        *,
        runs: int,
        n: int,
        cap: int,
        track_hits: bool,
        record_sizes: bool,
        record_visited: bool,
        on_round,
        tel,
        trace: bool,
    ) -> SpreadResult:
        """The round loop proper (see :meth:`run` for the contract)."""
        occ = rule.occupancy(state, n)
        monotone = rule.completion_basis == "visited"
        visited = remaining = None
        if monotone or track_hits or record_visited:
            visited = occ.copy()
            remaining = n - visited.sum(axis=1)
        hits = None
        if track_hits:
            hits = np.full((runs, n), -1, dtype=np.int64)
            hits[occ] = 0

        times = np.full(runs, -1, dtype=np.int64)
        if observer is not None:
            observer(
                FrontierObservation(
                    t=0,
                    occupied=occ,
                    visited=visited,
                    alive=np.ones(runs, dtype=bool),
                )
            )
        graph = topo.graph_at(0)
        basis = visited if monotone else occ
        times[self.completion.done(basis, graph, remaining if monotone else None)] = 0

        sizes = [occ.sum(axis=1)] if record_sizes else None
        visited_counts = [n - remaining] if record_visited else None

        # Rules touching only a few vertices per round (walks) publish
        # sparse (run, vertex) coordinates; updating visited from those
        # avoids the O(R·n) dense scan per round.
        touched = getattr(rule, "touched", None)
        use_sparse = (
            touched is not None
            and visited is not None
            and monotone
            and not record_sizes
        )
        # Bit-packed rules (flooding) answer all-vertices completion on
        # their packed planes, skipping the dense unpack per round.
        finished = getattr(rule, "finished", None)
        use_packed_done = (
            finished is not None
            and isinstance(self.completion, AllVertices)
            and visited is None
            and not record_sizes
        )

        t = 0
        while np.any(times < 0) and t < cap:
            alive = times < 0
            if observer is not None and t > 0:
                observer(
                    FrontierObservation(
                        t=t,
                        occupied=rule.occupancy(state, n),
                        visited=visited,
                        alive=alive,
                    )
                )
            # Sampled per-round progress: read-only aggregates of the
            # state entering round t (no draws, so traced == untraced).
            emit = trace and tel.sampled(t)
            if emit:
                alive_count = int(alive.sum())
                occupied_now = int(rule.occupancy(state, n).sum())
                tel.event(
                    "engine.round",
                    t=t,
                    alive=alive_count,
                    finished=int(runs - alive_count),
                    occupied=occupied_now,
                    informed=(
                        None if visited is None else int(visited.sum())
                    ),
                )
                tel.observe("engine.round.occupied", float(occupied_now))
                round_wall0 = time.perf_counter()
            graph = topo.graph_at(t)
            if on_round is not None:
                on_round(t, graph, state)
            state = step(graph, state, alive, rng)
            if emit:
                tel.observe(
                    "engine.round.seconds", time.perf_counter() - round_wall0
                )
            t += 1
            if use_packed_done:
                times[alive & finished(state)] = t
                continue
            if use_sparse:
                rows, verts = touched(state, n)
                keep = alive[rows] & ~visited[rows, verts]
                rows, verts = rows[keep], verts[keep]
                visited[rows, verts] = True
                if hits is not None:
                    hits[rows, verts] = t
                remaining -= np.bincount(rows, minlength=runs)
                basis = visited
            else:
                occ = rule.occupancy(state, n)
                if visited is not None:
                    fresh = occ & ~visited
                    fresh &= alive[:, None]
                    visited |= fresh
                    if hits is not None:
                        hits[fresh] = t
                    remaining -= fresh.sum(axis=1)
                basis = visited if monotone else occ
            done_now = alive & self.completion.done(
                basis, graph, remaining if monotone else None
            )
            times[done_now] = t
            if record_sizes:
                sizes.append(occ.sum(axis=1))
            if record_visited:
                visited_counts.append(n - remaining)

        return SpreadResult(
            finish_times=times,
            rounds_run=t,
            final_state=state,
            hit_times=hits,
            sizes=np.column_stack(sizes) if record_sizes else None,
            visited_counts=(
                np.column_stack(visited_counts) if record_visited else None
            ),
        )

    # ------------------------------------------------------------------
    def run_sharded(
        self,
        state: np.ndarray,
        seed,
        *,
        workers: int | None = None,
        max_rounds: int | None = None,
        track_hits: bool = False,
        record_sizes: bool = False,
        record_visited: bool = False,
        budget_bytes: int | None = None,
        max_shard: int | None = None,
        mp_context: str | None = None,
        schedule: str = "static",
        endpoint: str | None = None,
        cache="auto",
        backend: str | None = None,
        retry="default",
        checkpoint="default",
        fallback="default",
    ) -> SpreadResult:
        """Advance the runs sharded across worker processes.

        The multiprocess counterpart of :meth:`run`: ``state`` (one row
        per run) is split into deterministic shards (sized by
        :func:`repro.parallel.plan_shards` under a fixed per-shard
        memory budget), each driven by a generator spawned from
        ``seed``, and the shards execute across ``workers`` processes —
        a static topology's CSR arrays travel through shared memory
        (:meth:`repro.graphs.Graph.to_shared`), attached zero-copy per
        worker.  Because the shard plan and the spawned seeds never
        depend on the worker count, the merged :class:`SpreadResult` is
        bit-for-bit identical for every ``workers`` value, including
        the ``workers=1`` in-process fallback.  Note the contract
        difference from :meth:`run`: randomness comes from a spawnable
        ``seed``, not a shared ``Generator`` stream.

        Recorded trajectories (``record_sizes`` / ``record_visited``)
        are merged across shards on a common round axis with
        terminal-value padding — the engine-level one-pass recorder the
        analysis ensembles are built on.

        ``backend`` is the kernel-backend request, resolved here (so
        the environment variable crosses process and wire boundaries)
        and stamped on every shard task; each shard's engine honours it
        exactly as :meth:`run` does.

        ``schedule="completion"`` switches the local pool to
        completion-order dispatch (idle workers steal the next shard
        immediately; results re-keyed by shard index, so output is
        unchanged).  ``endpoint`` routes the same shard plan through a
        :mod:`repro.distributed` broker instead of a local pool — see
        :meth:`run_distributed`.  ``retry`` / ``checkpoint`` /
        ``fallback`` are the resilience knobs threaded to
        :func:`repro.parallel.run_sharded` (transport retries,
        resumable manifests, graceful degradation to the local tier).
        """
        from ..parallel import sharding

        kwargs = {}
        if budget_bytes is not None:
            kwargs["budget_bytes"] = int(budget_bytes)
        if max_shard is not None:
            kwargs["max_shard"] = int(max_shard)
        return sharding.run_sharded(
            self.rule,
            self.topology,
            self.completion,
            state,
            seed,
            workers=workers,
            max_rounds=max_rounds,
            track_hits=track_hits,
            record_sizes=record_sizes,
            record_visited=record_visited,
            mp_context=mp_context,
            schedule=schedule,
            endpoint=endpoint,
            cache=cache,
            backend=backend,
            retry=retry,
            checkpoint=checkpoint,
            fallback=fallback,
            **kwargs,
        )

    # ------------------------------------------------------------------
    def run_distributed(
        self,
        state: np.ndarray,
        seed,
        *,
        endpoint: str,
        max_rounds: int | None = None,
        track_hits: bool = False,
        record_sizes: bool = False,
        record_visited: bool = False,
        budget_bytes: int | None = None,
        max_shard: int | None = None,
        cache="auto",
        backend: str | None = None,
        retry="default",
        checkpoint="default",
        fallback="default",
    ) -> SpreadResult:
        """Advance the runs sharded across a broker's worker fleet.

        The multi-host counterpart of :meth:`run_sharded`: the same
        deterministic shard plan and per-shard spawned seeds, but the
        tasks travel to a :mod:`repro.distributed` broker at
        ``endpoint`` (``host:port``) over the versioned wire format,
        are leased to whatever workers are attached (surviving worker
        death through lease-timeout requeue), and the results are
        content-address cached (``cache="auto"`` honours
        ``REPRO_CACHE_DIR``; ``None`` disables).  The merged
        :class:`SpreadResult` is bit-for-bit identical to
        ``run_sharded(workers=1)`` regardless of worker count, arrival
        order, or requeues.  ``retry`` / ``checkpoint`` / ``fallback``
        govern transport retries, resumable manifests, and graceful
        degradation to local execution when the broker is unreachable.
        """
        return self.run_sharded(
            state,
            seed,
            max_rounds=max_rounds,
            track_hits=track_hits,
            record_sizes=record_sizes,
            record_visited=record_visited,
            budget_bytes=budget_bytes,
            max_shard=max_shard,
            endpoint=endpoint,
            cache=cache,
            backend=backend,
            retry=retry,
            checkpoint=checkpoint,
            fallback=fallback,
        )
