"""The observation protocol: topology sources that see the process.

The engine's topology sources are normally *oblivious* — a
:class:`~repro.dynamics.GraphSequence` evolves from its own seed,
blind to where the spread process actually is.  Worst-case dynamic
cover needs the other regime: an **adaptive adversary** that rewires
against the observed frontier.  This module defines the handshake.

A topology source opts in by setting ``observes_process = True`` and
implementing ``observe(observation)``.  The engine then delivers one
:class:`FrontierObservation` per round — *before* it asks the source
for that round's snapshot — carrying the state entering the round:

* round 0: the initial state, before the pre-loop ``graph_at(0)``;
* round ``t >= 1``: the state produced by round ``t - 1``, before the
  loop's ``graph_at(t)``.

So ``graph_at(t)`` may react to exactly the process state that is
about to act on snapshot ``t`` — full information, zero lookahead.

Determinism contract: the observation stream is a pure function of
``(rule, topology seed, process seed, initial state)``, so an adaptive
source remains replayable — re-running the same engine invocation
regenerates the identical observation sequence and therefore the
identical topology realisation.  This is what keeps adversarial
sequences shard-locally realizable and wire-encodable as seeded replay
specs (see :mod:`repro.adversary`).

The arrays inside an observation are engine-owned views, valid only
for the duration of the ``observe`` call — observers must copy (or
digest) what they keep.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FrontierObservation"]


@dataclass(frozen=True)
class FrontierObservation:
    """Per-round snapshot of the process state, as shown to a topology.

    Attributes
    ----------
    t:
        Round index the state is entering (the snapshot ``graph_at(t)``
        requested next is the one this state will act on).
    occupied:
        ``(R, n)`` boolean occupancy entering round ``t`` — the active
        set for COBRA, the infected set for BIPS, the informed set for
        the broadcast baselines, walker positions scattered for walks.
    visited:
        ``(R, n)`` cumulative visited mask when the engine maintains
        one (cover-type rules, or ``track_hits``/``record_visited``);
        None otherwise — observers should fall back to ``occupied``,
        which for the monotone rules coincides with it.
    alive:
        ``(R,)`` boolean mask of runs that have not yet completed.
    """

    t: int
    occupied: np.ndarray
    visited: np.ndarray | None
    alive: np.ndarray

    @property
    def runs(self) -> int:
        """Number of runs the engine is advancing."""
        return int(self.occupied.shape[0])

    @property
    def n(self) -> int:
        """Vertex count of the fixed vertex set."""
        return int(self.occupied.shape[1])

    @property
    def informed(self) -> np.ndarray:
        """The best cumulative-knowledge mask available.

        ``visited`` when the engine tracks it, else ``occupied``.
        """
        return self.occupied if self.visited is None else self.visited

    def frontier_sizes(self) -> np.ndarray:
        """``(R,)`` per-run occupancy counts entering the round."""
        return self.occupied.sum(axis=1)

    def union_occupied(self) -> np.ndarray:
        """``(n,)`` union of occupancy over the alive runs."""
        if not self.alive.any():
            return np.zeros(self.n, dtype=bool)
        return self.occupied[self.alive].any(axis=0)

    def union_informed(self) -> np.ndarray:
        """``(n,)`` union of cumulative knowledge over the alive runs."""
        if not self.alive.any():
            return np.zeros(self.n, dtype=bool)
        return self.informed[self.alive].any(axis=0)
