"""Completion criteria: when is a run of the batched engine finished?

A criterion maps the engine's ``(R, n)`` boolean *basis* array (the
cumulative visited set for cover-type rules, the instantaneous state
for infection-type rules — see
:attr:`repro.engine.rules.SpreadRule.completion_basis`) to a length-
``R`` boolean "done" vector.  Criteria also see the snapshot in force,
which is what makes churn-aware completion possible: under vertex
churn, "all ``n`` vertices at once" is unreachable at moderate leave
rates, but "every currently-present vertex" is a meaningful target.

The three built-ins mirror the ISSUE/ROADMAP taxonomy:

* ``all-vertices`` — every vertex of the fixed vertex set;
* ``all-active``  — every vertex present in the current snapshot
  (degree > 0); departed vertices are excused;
* ``target-hit``  — a designated vertex has been reached (the
  hitting-time criterion used by duality audits).
"""

from __future__ import annotations

import abc

import numpy as np

from ..graphs.graph import Graph

__all__ = [
    "CompletionCriterion",
    "AllVertices",
    "AllActive",
    "TargetHit",
    "make_completion",
]


class CompletionCriterion(abc.ABC):
    """Abstract completion test evaluated once per engine round."""

    @abc.abstractmethod
    def done(
        self,
        basis: np.ndarray,
        graph: Graph,
        remaining: np.ndarray | None = None,
    ) -> np.ndarray:
        """Return a ``(R,)`` boolean vector of finished runs.

        ``basis`` is the ``(R, n)`` boolean array the owning rule
        declared as its completion basis; ``graph`` is the snapshot in
        force during the round just executed; ``remaining`` (when the
        engine maintains it) counts not-yet-visited vertices per run
        and enables an O(R) fast path for monotone bases.
        """


class AllVertices(CompletionCriterion):
    """Done when every vertex of the fixed vertex set is covered."""

    def done(
        self,
        basis: np.ndarray,
        graph: Graph,
        remaining: np.ndarray | None = None,
    ) -> np.ndarray:
        """``basis`` rows must be all-True (O(R) when ``remaining`` given)."""
        if remaining is not None:
            return remaining == 0
        return basis.all(axis=1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "AllVertices()"


class AllActive(CompletionCriterion):
    """Done when every *currently-present* vertex is covered.

    A vertex is present iff it has positive degree in the round's
    snapshot — the convention of :mod:`repro.dynamics`, whose churn
    provider models departed peers as degree-zero vertices.  On a
    static connected graph this degenerates to :class:`AllVertices`.
    """

    def done(
        self,
        basis: np.ndarray,
        graph: Graph,
        remaining: np.ndarray | None = None,
    ) -> np.ndarray:
        """All degree-positive vertices of ``graph`` must be covered."""
        present = graph.degrees > 0
        if not present.any():
            # An empty snapshot excuses everyone.
            return np.ones(basis.shape[0], dtype=bool)
        return basis[:, present].all(axis=1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "AllActive()"


class TargetHit(CompletionCriterion):
    """Done when the designated target vertex is covered."""

    def __init__(self, target: int) -> None:
        self.target = int(target)

    def done(
        self,
        basis: np.ndarray,
        graph: Graph,
        remaining: np.ndarray | None = None,
    ) -> np.ndarray:
        """The target's basis column decides completion directly."""
        return basis[:, self.target].copy()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TargetHit({self.target})"


def make_completion(
    spec: "CompletionCriterion | str",
    *,
    target: int | None = None,
) -> CompletionCriterion:
    """Coerce a completion spec into a :class:`CompletionCriterion`.

    Accepts a criterion instance, or one of the strings
    ``"all-vertices"``, ``"all-active"``, ``"target-hit"`` (the latter
    requires ``target=``).
    """
    if isinstance(spec, CompletionCriterion):
        return spec
    if spec == "all-vertices":
        return AllVertices()
    if spec == "all-active":
        return AllActive()
    if spec == "target-hit":
        if target is None:
            raise ValueError("completion 'target-hit' requires target=")
        return TargetHit(target)
    raise ValueError(
        f"unknown completion spec {spec!r}: expected 'all-vertices', "
        "'all-active', 'target-hit', or a CompletionCriterion"
    )
