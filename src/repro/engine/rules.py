"""Spread rules: the per-round gather/scatter kernels of the engine.

A :class:`SpreadRule` advances ``R`` independent runs one round inside
a single flattened index program over the CSR arrays (reusing
:meth:`repro.graphs.Graph.sample_neighbors` for every random neighbour
draw).  The engine layer owns the loop, the visited set, hit times and
completion; a rule owns only its state array and one ``step``.

Seed-for-seed contract
----------------------
The kernels here are the pre-refactor engines' inner loops moved
verbatim, so the thin wrappers in :mod:`repro.core`,
:mod:`repro.baselines` and :mod:`repro.dynamics` reproduce the seed
engines' samples bit-for-bit under identical generators (the
regression tests in ``tests/engine/test_seed_equivalence.py`` pin
this).  In particular:

* ``CobraRule`` consumes randomness only for *alive* runs (finished
  rows are dropped from the work list before any draw), matching the
  original ``CobraProcess.run_batch``;
* ``BipsRule`` in its ``"batch"`` discipline draws for *every* row and
  freezes finished rows afterwards, matching the original
  ``BipsProcess.run_batch``; its ``"single"`` discipline reproduces the
  original single-run ``step`` (whose Bernoulli second-selection draws
  come in a different order than the batch kernel's);
* degree-zero vertices (churned-out peers in dynamic snapshots) are
  handled exactly as :mod:`repro.dynamics` did: COBRA particles and
  walkers hold their position, BIPS restricts selections to present
  vertices.

Rules are deliberately policy-agnostic about branching: they duck-type
:class:`repro.core.branching.BranchingPolicy` through its
``draw_counts`` / ``fixed_selection_count`` /
``second_selection_probability`` methods, keeping this package free of
imports from :mod:`repro.core`.

Compiled backends
-----------------
The kernels in this module are the reference (``numpy``) backend of
the dispatch tier in :mod:`repro.kernels`.  Per rule, the cross-backend
equivalence contract is:

* **bit-identical** under the ``numba`` backend: :class:`CobraRule`,
  and :class:`BipsRule` with ``discipline="batch"``.  The compiled
  kernels pre-draw the same uniforms from the same Generator in the
  same order and reproduce the numpy index arithmetic exactly, so
  ``backend="numba"`` (or ``"auto"``) changes wall-clock only — never
  a sample.
* **distribution-equivalent** under the ``bitplane`` backend:
  :class:`PushRule`, :class:`PullRule`, :class:`PushPullRule`.  The
  word-packed twins share neighbour draws across the runs of a machine
  word, so per-run cover/broadcast laws are exact but the draw stream
  (and cross-run independence within a word) differs — compare
  distributions, never bits, across that boundary.
* **numpy-only**: :class:`FloodingRule` (already bit-parallel),
  :class:`WalkRule`, and ``BipsRule(discipline="single")`` have no
  compiled twin; every backend request other than ``numpy``/``auto``
  is rejected for them.
"""

from __future__ import annotations

import abc

import numpy as np

from ..graphs.graph import Graph, _ragged_arange
from .caps import flooding_round_cap, process_round_cap, walk_round_cap

__all__ = [
    "SpreadRule",
    "CobraRule",
    "BipsRule",
    "PushRule",
    "PullRule",
    "PushPullRule",
    "FloodingRule",
    "WalkRule",
]


def select_targets(
    graph: Graph, actors: np.ndarray, rng: np.random.Generator, lazy: bool
) -> np.ndarray:
    """One uniform neighbour per actor; lazy selections keep the actor.

    The draw order (neighbour uniforms first, then the lazy coin) is
    part of the seed-for-seed contract — every engine in the repo has
    always consumed randomness in this order.
    """
    targets = graph.sample_neighbors(actors, rng)
    if lazy:
        stay = rng.random(actors.shape[0]) < 0.5
        targets = np.where(stay, actors, targets)
    return targets


class SpreadRule(abc.ABC):
    """One round of a spread process as a vectorised ``(R, n)`` kernel.

    Class attributes
    ----------------
    completion_basis:
        ``"visited"`` if completion is judged on the cumulative visited
        set (cover-type processes: COBRA, walks), ``"state"`` if on the
        instantaneous state (infection/broadcast-type: BIPS, push,
        pull, flooding — for the monotone broadcasts the two coincide).
    state_arrays:
        How many ``(R, n)``-byte boolean-array equivalents the engine
        keeps live per run while stepping this rule; used by
        :func:`repro.parallel.plan_batches_for` to split trial budgets
        under a memory cap.
    """

    completion_basis: str = "visited"
    state_arrays: int = 4

    @abc.abstractmethod
    def step(
        self,
        graph: Graph,
        state: np.ndarray,
        alive: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Advance every run one round on ``graph``; return the new state.

        ``state`` is the rule-specific per-run state (a boolean
        ``(R, n)`` mask for set processes, an int ``(R, k)`` position
        array for walks); ``alive`` flags runs that have not yet
        completed.  Implementations must not mutate ``state``.
        """

    @abc.abstractmethod
    def occupancy(self, state: np.ndarray, n: int) -> np.ndarray:
        """Return the ``(R, n)`` boolean mask of vertices occupied now."""

    @abc.abstractmethod
    def default_cap(self, graph: Graph) -> int:
        """Return this rule's generous round cap for ``graph``."""


class CobraRule(SpreadRule):
    """COBRA branching-choose-``b``: each active vertex picks ``b``
    random neighbours; the chosen vertices form the next active set
    (coalescing is implicit in the boolean scatter).

    Degree-zero active vertices (possible only on dynamic snapshots)
    hold their position for the round, per the
    :mod:`repro.dynamics` convention.
    """

    completion_basis = "visited"
    state_arrays = 4

    def __init__(self, policy, lazy: bool = False) -> None:
        self.policy = policy
        self.lazy = bool(lazy)

    def step(
        self,
        graph: Graph,
        state: np.ndarray,
        alive: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """One branching round; finished runs are dropped from the work."""
        work = state & alive[:, None]
        if graph.dmin == 0:
            can_move = graph.degrees > 0
            movers = work & can_move[None, :]
            stranded = work & ~can_move[None, :]
        else:
            movers, stranded = work, None
        rows, verts = np.nonzero(movers)
        counts = self.policy.draw_counts(verts.shape[0], rng)
        rows_rep = np.repeat(rows, counts)
        actors = np.repeat(verts, counts)
        targets = select_targets(graph, actors, rng, self.lazy)
        nxt = np.zeros_like(state)
        nxt[rows_rep, targets] = True
        if stranded is not None:
            nxt |= stranded
        return nxt

    def occupancy(self, state: np.ndarray, n: int) -> np.ndarray:
        """The active mask *is* the occupancy."""
        return state

    def default_cap(self, graph: Graph) -> int:
        """Theorem 1.1-shaped cap (see :func:`process_round_cap`)."""
        return process_round_cap(graph.n, graph.m, graph.dmax)


class BipsRule(SpreadRule):
    """BIPS pull: every vertex samples ``b`` neighbours and joins the
    next infected set iff some sample is currently infected; the
    persistent source is forced back in (SIS dynamics).

    ``discipline`` selects the randomness layout: ``"batch"`` tiles all
    runs into one draw per selection round (the historical
    ``step_batch`` stream, drawn for finished runs too and frozen
    afterwards); ``"single"`` reproduces the historical single-run
    ``step`` stream, whose Bernoulli second selections draw the
    participation mask *before* the neighbour picks and only for the
    participating vertices.  ``"single"`` requires ``R == 1``.
    """

    completion_basis = "state"
    state_arrays = 12  # state + next + the (R, n) int64 pick buffer

    def __init__(
        self, policy, source: int, lazy: bool = False, discipline: str = "batch"
    ) -> None:
        if discipline not in ("batch", "single"):
            raise ValueError(f"unknown BIPS discipline {discipline!r}")
        self.policy = policy
        self.source = int(source)
        self.lazy = bool(lazy)
        self.discipline = discipline

    # -- kernels --------------------------------------------------------
    def _select(
        self, graph: Graph, actors: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        return select_targets(graph, actors, rng, self.lazy)

    def _next_single(
        self, graph: Graph, infected: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Historical single-run round on a length-``n`` mask."""
        n = graph.n
        fixed_b = self.policy.fixed_selection_count()
        if graph.dmin >= 1:
            all_vertices = np.arange(n, dtype=np.int64)
            pick = self._select(graph, all_vertices, rng)
            nxt = infected[pick]
            if fixed_b is not None and fixed_b >= 2:
                for _ in range(fixed_b - 1):
                    pick = self._select(graph, all_vertices, rng)
                    nxt |= infected[pick]
            elif fixed_b is None:
                p2 = self.policy.second_selection_probability()
                if p2 > 0.0:
                    second = rng.random(n) < p2
                    actors = all_vertices[second]
                    pick2 = self._select(graph, actors, rng)
                    nxt[actors] |= infected[pick2]
        else:
            live = np.nonzero(graph.degrees > 0)[0]
            nxt = np.zeros(n, dtype=bool)
            if live.size:
                pick = self._select(graph, live, rng)
                nxt[live] = infected[pick]
                if fixed_b is not None and fixed_b >= 2:
                    for _ in range(fixed_b - 1):
                        pick = self._select(graph, live, rng)
                        nxt[live] |= infected[pick]
                elif fixed_b is None:
                    p2 = self.policy.second_selection_probability()
                    if p2 > 0.0:
                        actors = live[rng.random(live.shape[0]) < p2]
                        if actors.size:
                            picks = self._select(graph, actors, rng)
                            nxt[actors] |= infected[picks]
        nxt[self.source] = True
        return nxt

    def _next_batch(
        self, graph: Graph, infected: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Historical batch round on an ``(R, n)`` mask (all rows drawn)."""
        runs, n = infected.shape
        fixed_b = self.policy.fixed_selection_count()
        if graph.dmin >= 1:
            verts_tile = np.tile(np.arange(n, dtype=np.int64), runs)
            pick = self._select(graph, verts_tile, rng).reshape(runs, n)
            nxt = np.take_along_axis(infected, pick, axis=1)
            if fixed_b is not None:
                for _ in range(fixed_b - 1):
                    pick = self._select(graph, verts_tile, rng).reshape(runs, n)
                    nxt |= np.take_along_axis(infected, pick, axis=1)
            else:
                p2 = self.policy.second_selection_probability()
                if p2 > 0.0:
                    pick = self._select(graph, verts_tile, rng).reshape(runs, n)
                    second = rng.random((runs, n)) < p2
                    nxt |= np.take_along_axis(infected, pick, axis=1) & second
        else:
            live = np.nonzero(graph.degrees > 0)[0]
            nxt = np.zeros_like(infected)
            if live.size:
                k = live.shape[0]
                live_tile = np.tile(live, runs)
                pick = self._select(graph, live_tile, rng).reshape(runs, k)
                nxt[:, live] = np.take_along_axis(infected, pick, axis=1)
                if fixed_b is not None:
                    for _ in range(fixed_b - 1):
                        pick = self._select(graph, live_tile, rng).reshape(runs, k)
                        nxt[:, live] |= np.take_along_axis(infected, pick, axis=1)
                else:
                    p2 = self.policy.second_selection_probability()
                    if p2 > 0.0:
                        pick = self._select(graph, live_tile, rng).reshape(runs, k)
                        second = rng.random((runs, k)) < p2
                        sel = np.take_along_axis(infected, pick, axis=1) & second
                        nxt[:, live] |= sel
        nxt[:, self.source] = True
        return nxt

    # -- SpreadRule API -------------------------------------------------
    def step(
        self,
        graph: Graph,
        state: np.ndarray,
        alive: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """One infection round; finished runs are frozen afterwards."""
        if self.discipline == "single":
            if state.shape[0] != 1:
                raise ValueError("BIPS 'single' discipline requires R == 1")
            nxt = self._next_single(graph, state[0], rng)[None, :]
        else:
            nxt = self._next_batch(graph, state, rng)
        return np.where(alive[:, None], nxt, state)

    def occupancy(self, state: np.ndarray, n: int) -> np.ndarray:
        """The infected mask *is* the occupancy."""
        return state

    def default_cap(self, graph: Graph) -> int:
        """Theorem 1.4-shaped cap (see :func:`process_round_cap`)."""
        return process_round_cap(graph.n, graph.m, graph.dmax)


class _BroadcastRule(SpreadRule):
    """Shared shape for the monotone gossip baselines (push/pull/both).

    State is the informed ``(R, n)`` mask; informed vertices never
    forget, so state and visited coincide and completion is judged on
    the state.  Degree-zero vertices neither send nor ask.
    """

    completion_basis = "state"
    state_arrays = 3

    def occupancy(self, state: np.ndarray, n: int) -> np.ndarray:
        """The informed mask *is* the occupancy."""
        return state

    def default_cap(self, graph: Graph) -> int:
        """Shared epidemic cap (see :func:`process_round_cap`)."""
        return process_round_cap(graph.n, graph.m, graph.dmax)

    @staticmethod
    def _acting(
        mask: np.ndarray, alive: np.ndarray, graph: Graph
    ) -> tuple[np.ndarray, np.ndarray]:
        """Row/vertex indices of degree-positive actors among ``mask``."""
        work = mask & alive[:, None]
        if graph.dmin == 0:
            work &= (graph.degrees > 0)[None, :]
        return np.nonzero(work)


class PushRule(_BroadcastRule):
    """Push gossip: every informed vertex pushes to ``fanout`` uniform
    random neighbours per round."""

    def __init__(self, fanout: int = 1) -> None:
        if fanout < 1:
            raise ValueError("fanout must be >= 1")
        self.fanout = int(fanout)

    def step(
        self,
        graph: Graph,
        state: np.ndarray,
        alive: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Informed vertices scatter the rumour to sampled neighbours."""
        rows, verts = self._acting(state, alive, graph)
        rows_rep = np.repeat(rows, self.fanout)
        senders = np.repeat(verts, self.fanout)
        targets = graph.sample_neighbors(senders, rng)
        nxt = state.copy()
        nxt[rows_rep, targets] = True
        return nxt


class PullRule(_BroadcastRule):
    """Pull gossip: every uninformed vertex asks one uniform random
    neighbour and learns the rumour if the neighbour knows it."""

    def step(
        self,
        graph: Graph,
        state: np.ndarray,
        alive: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Uninformed vertices gather from sampled neighbours."""
        rows, askers = self._acting(~state, alive, graph)
        answers = graph.sample_neighbors(askers, rng)
        learned = state[rows, answers]
        nxt = state.copy()
        nxt[rows[learned], askers[learned]] = True
        return nxt


class PushPullRule(_BroadcastRule):
    """Push–pull gossip: informed vertices push and uninformed vertices
    pull in the same round, both acting on the start-of-round state."""

    state_arrays = 4

    def step(
        self,
        graph: Graph,
        state: np.ndarray,
        alive: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Simultaneous push and pull halves (push draws first)."""
        rows_s, senders = self._acting(state, alive, graph)
        rows_a, askers = self._acting(~state, alive, graph)
        pushed = graph.sample_neighbors(senders, rng)
        answers = graph.sample_neighbors(askers, rng)
        nxt = state.copy()
        nxt[rows_s, pushed] = True
        learned = state[rows_a, answers]
        nxt[rows_a[learned], askers[learned]] = True
        return nxt


class FloodingRule(SpreadRule):
    """Deterministic flooding: every informed vertex transmits to *all*
    neighbours each round, so the informed set after ``t`` rounds is the
    BFS ball of radius ``t``.  Consumes no randomness.

    This is the engine's one bit-parallel rule: the ``R`` runs are
    packed into uint8 bitplanes, so state is ``(2·ceil(R/8), n)`` —
    the first half holds the informed bits, the second half the
    frontier bits (vertices first informed last round).  One round is a
    single CSR gather plus a ``bitwise_or.reduceat``, advancing all
    runs 8-per-byte: a full broadcast costs O(m · R/8) byte-ops, the
    bit-parallel analogue of one BFS.  Use :meth:`pack` to build the
    initial state from a boolean mask.

    On a static topology only the frontier transmits (interior vertices
    already reached all their neighbours).  On a *time-evolving*
    topology an interior vertex can gain new neighbours, so pass
    ``reflood=True`` to re-transmit from the whole informed set every
    round (the literal protocol, correct on dynamic snapshots).
    """

    completion_basis = "state"
    state_arrays = 1  # packed bits: n/4 bytes per run in state

    def __init__(self, runs: int = 1, reflood: bool = False) -> None:
        if runs < 1:
            raise ValueError("need at least one run")
        self.runs = int(runs)
        self.reflood = bool(reflood)

    # -- packing --------------------------------------------------------
    def pack(self, mask: np.ndarray) -> np.ndarray:
        """Pack an ``(R, n)`` boolean informed mask into rule state."""
        if mask.shape[0] != self.runs:
            raise ValueError(f"mask must have {self.runs} rows")
        informed = np.packbits(mask, axis=0, bitorder="little")
        return np.concatenate([informed, informed.copy()], axis=0)

    def runs_of(self, state: np.ndarray) -> int:
        """The run count is fixed at construction (bits hide ``R``)."""
        return self.runs

    def validate_topology(self, topology) -> None:
        """Refuse frontier-only flooding on a non-static topology.

        The frontier optimisation assumes interior vertices never gain
        new neighbours; on a time-evolving topology that silently
        inflates broadcast times, so the engine demands
        ``reflood=True`` there (checked at engine construction).
        """
        from .engine import StaticTopology

        if not self.reflood and not isinstance(topology, StaticTopology):
            raise ValueError(
                "frontier-only flooding is wrong on a time-evolving "
                "topology: construct FloodingRule(..., reflood=True) to "
                "re-transmit from the whole informed set each round"
            )

    # -- kernel ---------------------------------------------------------
    @staticmethod
    def _or_over_neighbors(
        graph: Graph, bits: np.ndarray, verts: np.ndarray
    ) -> np.ndarray:
        """OR the ``bits`` planes over each vertex's neighbourhood.

        Returns the ``(Wb, len(verts))`` OR-reduction of ``bits`` over
        the neighbours of each vertex in ``verts`` (every vertex must
        have positive degree).
        """
        counts = graph.degrees[verts]
        flat = np.repeat(graph.indptr[verts], counts) + _ragged_arange(counts)
        gathered = bits[:, graph.indices[flat]]
        seg_starts = np.cumsum(counts) - counts
        return np.bitwise_or.reduceat(gathered, seg_starts, axis=1)

    def step(
        self,
        graph: Graph,
        state: np.ndarray,
        alive: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Expand each run's informed set by one BFS level (no RNG)."""
        wb = state.shape[0] // 2
        informed, frontier = state[:wb], state[wb:]
        plane = informed if self.reflood else frontier
        sources = np.nonzero(plane.any(axis=0) & (graph.degrees > 0))[0]
        if sources.size == 0:
            return np.concatenate([informed, np.zeros_like(frontier)], axis=0)
        # Recompute exactly the columns reachable from the sources
        # (scatter-dedup: cheaper than sorting the neighbour multiset).
        counts = graph.degrees[sources]
        flat = np.repeat(graph.indptr[sources], counts) + _ragged_arange(counts)
        is_target = np.zeros(graph.n, dtype=bool)
        is_target[graph.indices[flat]] = True
        targets = np.nonzero(is_target)[0]
        arrived = self._or_over_neighbors(graph, plane, targets)
        nxt_informed = informed.copy()
        new_bits = arrived & ~informed[:, targets]
        nxt_informed[:, targets] |= new_bits
        nxt_frontier = np.zeros_like(frontier)
        nxt_frontier[:, targets] = new_bits
        return np.concatenate([nxt_informed, nxt_frontier], axis=0)

    def occupancy(self, state: np.ndarray, n: int) -> np.ndarray:
        """Unpack the informed bitplanes into an ``(R, n)`` boolean mask."""
        wb = state.shape[0] // 2
        return np.unpackbits(
            state[:wb], axis=0, count=self.runs, bitorder="little"
        ).view(bool)

    def finished(self, state: np.ndarray) -> np.ndarray:
        """All-vertices completion evaluated on the packed bitplanes.

        AND-reducing the informed planes over the vertex axis answers
        "which runs cover everything" in O(n·R/8) byte-ops without
        unpacking the ``(R, n)`` mask — the engine's fast path when no
        dense per-round tracking is requested.
        """
        wb = state.shape[0] // 2
        cols = np.bitwise_and.reduce(state[:wb], axis=1)
        return np.unpackbits(cols, count=self.runs, bitorder="little").view(bool)

    def default_cap(self, graph: Graph) -> int:
        """Static flooding finishes within ``ecc < n`` rounds; dynamic
        flooding (``reflood=True``) can stall while vertices are
        churned out, so it gets the generous epidemic cap instead."""
        if self.reflood:
            return process_round_cap(graph.n, graph.m, graph.dmax)
        return flooding_round_cap(graph.n)


class WalkRule(SpreadRule):
    """``k`` independent random walkers per run, one step per round.

    State is an ``(R, k)`` int64 position array — the one rule whose
    state is not a boolean mask (a boolean encoding would coalesce
    co-located walkers and change the process).  Walkers stranded on a
    degree-zero vertex hold their position for the round.
    """

    completion_basis = "visited"
    state_arrays = 3

    def __init__(self, k: int, lazy: bool = False) -> None:
        if k < 1:
            raise ValueError("need at least one walker")
        self.k = int(k)
        self.lazy = bool(lazy)

    def step(
        self,
        graph: Graph,
        state: np.ndarray,
        alive: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Advance the walkers of every alive run by one step."""
        all_alive = bool(alive.all())
        positions = state.ravel() if all_alive else state[alive].ravel()
        if graph.dmin == 0:
            can_move = graph.degrees[positions] > 0
            movers = positions[can_move]
            moved = positions.copy()
            moved[can_move] = select_targets(graph, movers, rng, self.lazy)
        else:
            moved = select_targets(graph, positions, rng, self.lazy)
        if all_alive:
            return moved.reshape(state.shape)
        nxt = state.copy()
        nxt[alive] = moved.reshape(-1, self.k)
        return nxt

    def occupancy(self, state: np.ndarray, n: int) -> np.ndarray:
        """Scatter walker positions into an ``(R, n)`` boolean mask."""
        occ = np.zeros((state.shape[0], n), dtype=bool)
        occ[np.arange(state.shape[0])[:, None], state] = True
        return occ

    def touched(self, state: np.ndarray, n: int) -> tuple[np.ndarray, np.ndarray]:
        """Sparse occupancy: unique (run, vertex) pairs under the walkers.

        Walks touch only ``R·k`` vertices per round, so the engine
        updates its visited set from these coordinates instead of
        scanning a dense ``(R, n)`` mask — without this, a long walk
        pays O(R·n) per round for O(R·k) of actual work.
        """
        runs, k = state.shape
        if k == 1:
            return np.arange(runs, dtype=np.int64), state.ravel()
        rows = np.repeat(np.arange(runs, dtype=np.int64), k)
        flat = np.unique(rows * n + state.ravel())
        return flat // n, flat % n

    def default_cap(self, graph: Graph) -> int:
        """Walk-shaped cap (see :func:`walk_round_cap`)."""
        return walk_round_cap(graph.n, graph.dmax)
