"""Unified batched engine: spread rule × topology source × completion.

One vectorised ``(R, n)`` state machine advances ``R`` independent runs
of any spread process over any topology source.  The three axes are
independent and freely composable:

* **Spread rule** (:mod:`~repro.engine.rules`) — COBRA
  branching-choose-``b``, BIPS pull, push, pull, push–pull, flooding,
  and ``k`` independent walks, each a small gather/scatter kernel over
  the CSR arrays;
* **Topology source** (:class:`~repro.engine.engine.StaticTopology` or
  any :class:`repro.dynamics.GraphSequence`) — static and
  time-evolving graphs share one step loop;
* **Completion criterion** (:mod:`~repro.engine.completion`) —
  ``all-vertices``, churn-aware ``all-active``, or ``target-hit``.

:mod:`repro.core`, :mod:`repro.baselines` and :mod:`repro.dynamics`
are thin wrappers over this layer; round caps are centralised in
:mod:`~repro.engine.caps` and per-rule memory footprints feed
:func:`repro.parallel.plan_batches_for`.
"""

from .caps import flooding_round_cap, process_round_cap, walk_round_cap
from .completion import (
    AllActive,
    AllVertices,
    CompletionCriterion,
    TargetHit,
    make_completion,
)
from .engine import SpreadEngine, SpreadResult, StaticTopology, as_topology
from .observation import FrontierObservation
from .rules import (
    BipsRule,
    CobraRule,
    FloodingRule,
    PullRule,
    PushPullRule,
    PushRule,
    SpreadRule,
    WalkRule,
)

__all__ = [
    # engine
    "SpreadEngine",
    "SpreadResult",
    "StaticTopology",
    "as_topology",
    # observation protocol
    "FrontierObservation",
    # rules
    "SpreadRule",
    "CobraRule",
    "BipsRule",
    "PushRule",
    "PullRule",
    "PushPullRule",
    "FloodingRule",
    "WalkRule",
    # completion
    "CompletionCriterion",
    "AllVertices",
    "AllActive",
    "TargetHit",
    "make_completion",
    # caps
    "process_round_cap",
    "walk_round_cap",
    "flooding_round_cap",
]
