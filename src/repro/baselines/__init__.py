"""Baseline propagation processes COBRA is compared against (E9).

Every baseline executes through the unified batched engine
(:mod:`repro.engine`); the samplers advance all their runs inside one
``(R, n)`` boolean program.
"""

from .flooding import (
    flooding_broadcast_time,
    flooding_broadcast_times,
    flooding_frontier_sizes,
)
from .multi_walk import multi_walk_cover_samples, multi_walk_cover_time
from .pull import (
    pull_broadcast_samples,
    pull_broadcast_time,
    push_pull_broadcast_samples,
    push_pull_broadcast_time,
)
from .push import push_broadcast_samples, push_broadcast_time
from .random_walk import (
    random_walk_cover_samples,
    random_walk_cover_time,
    walk_trajectory,
)

__all__ = [
    "flooding_broadcast_time",
    "flooding_broadcast_times",
    "flooding_frontier_sizes",
    "multi_walk_cover_samples",
    "multi_walk_cover_time",
    "pull_broadcast_samples",
    "pull_broadcast_time",
    "push_pull_broadcast_samples",
    "push_pull_broadcast_time",
    "push_broadcast_samples",
    "push_broadcast_time",
    "random_walk_cover_samples",
    "random_walk_cover_time",
    "walk_trajectory",
]
