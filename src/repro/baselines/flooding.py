"""Deterministic flooding — the information-propagation speed limit.

Every informed vertex transmits to *all* neighbours each round, so the
informed set after ``t`` rounds is exactly the BFS ball of radius ``t``
and broadcast completes in ``ecc(start)`` rounds (``<= Diam(G)``).
Flooding spends ``d(u)`` transmissions per vertex per round — the
budget COBRA caps at ``b`` — and realises the ``Diam(G)`` part of the
paper's universal lower bound ``max{log₂ n, Diam(G)}``.
"""

from __future__ import annotations

import numpy as np

from ..graphs.graph import Graph
from ..graphs.properties import eccentricity
from ..graphs.validation import check_vertex, require_connected

__all__ = ["flooding_broadcast_time", "flooding_frontier_sizes"]


def flooding_broadcast_time(graph: Graph, start: int = 0) -> int:
    """Rounds for flooding to inform everyone — equals ``ecc(start)``."""
    require_connected(graph)
    return eccentricity(graph, check_vertex(graph, start))


def flooding_frontier_sizes(graph: Graph, start: int = 0) -> np.ndarray:
    """``|informed after t rounds|`` for ``t = 0 .. ecc(start)``.

    The deterministic trajectory COBRA's ``|⋃ C_t|`` curve is bounded
    above by (COBRA can never beat flooding pointwise).
    """
    require_connected(graph)
    dist = graph.bfs_distances(check_vertex(graph, start))
    ecc = int(dist.max())
    counts = np.bincount(dist, minlength=ecc + 1)
    return np.cumsum(counts)
