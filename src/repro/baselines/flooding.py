"""Deterministic flooding — the information-propagation speed limit.

Every informed vertex transmits to *all* neighbours each round, so the
informed set after ``t`` rounds is exactly the BFS ball of radius ``t``
and broadcast completes in ``ecc(start)`` rounds (``<= Diam(G)``).
Flooding spends ``d(u)`` transmissions per vertex per round — the
budget COBRA caps at ``b`` — and realises the ``Diam(G)`` part of the
paper's universal lower bound ``max{log₂ n, Diam(G)}``.

Flooding executes through the unified batched engine
(:class:`repro.engine.SpreadEngine` with a
:class:`~repro.engine.rules.FloodingRule`, which consumes no
randomness): :func:`flooding_broadcast_times` expands the BFS balls of
``R`` start vertices inside one ``(R, n)`` boolean program, which is
also what makes flooding available on time-evolving topologies.
"""

from __future__ import annotations

import numpy as np

from ..engine.engine import SpreadEngine
from ..engine.rules import FloodingRule
from ..graphs.graph import Graph
from ..graphs.validation import check_vertex, require_connected

__all__ = [
    "flooding_broadcast_time",
    "flooding_broadcast_times",
    "flooding_frontier_sizes",
]


def _flooding_run(graph: Graph, starts: np.ndarray, record_sizes: bool):
    """Run the engine from each start vertex (no randomness consumed)."""
    rule = FloodingRule(runs=starts.shape[0])
    engine = SpreadEngine(rule, graph)
    mask = np.zeros((starts.shape[0], graph.n), dtype=bool)
    mask[np.arange(starts.shape[0]), starts] = True
    return engine.run(
        rule.pack(mask), np.random.default_rng(0), record_sizes=record_sizes
    )


def flooding_broadcast_time(graph: Graph, start: int = 0) -> int:
    """Rounds for flooding to inform everyone — equals ``ecc(start)``."""
    require_connected(graph)
    start = check_vertex(graph, start)
    res = _flooding_run(graph, np.array([start], dtype=np.int64), False)
    return int(res.finish_times[0])


def flooding_broadcast_times(graph: Graph, starts) -> np.ndarray:
    """Flooding broadcast times (eccentricities) for many start vertices.

    All starts advance together in one ``(R, n)`` program; the result
    is ``[ecc(s) for s in starts]``.
    """
    require_connected(graph)
    starts = np.asarray(starts, dtype=np.int64)
    if starts.ndim != 1 or starts.size == 0:
        raise ValueError("starts must be a 1-D nonempty array of vertices")
    if starts.min() < 0 or starts.max() >= graph.n:
        raise ValueError(f"start vertex out of range [0, {graph.n})")
    return _flooding_run(graph, starts, False).finish_times.copy()


def flooding_frontier_sizes(graph: Graph, start: int = 0) -> np.ndarray:
    """``|informed after t rounds|`` for ``t = 0 .. ecc(start)``.

    The deterministic trajectory COBRA's ``|⋃ C_t|`` curve is bounded
    above by (COBRA can never beat flooding pointwise).
    """
    require_connected(graph)
    start = check_vertex(graph, start)
    res = _flooding_run(graph, np.array([start], dtype=np.int64), True)
    return res.sizes[0].copy()
