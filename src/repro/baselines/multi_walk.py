"""Multiple independent random walks (the [Alon et al.; Elsässer–Sauerwald]
comparison point).

``k`` walkers move simultaneously and independently, one step per
round; the cover time is the first round by which every vertex has been
visited by some walker.  Unlike COBRA the walker population is fixed —
no branching, no coalescing — which is exactly the dependence structure
the paper contrasts COBRA against.
"""

from __future__ import annotations

import numpy as np

from ..graphs.graph import Graph
from ..graphs.validation import check_vertex, require_connected
from ..stats.rng import generator_from

__all__ = ["multi_walk_cover_time", "multi_walk_cover_samples"]


def multi_walk_cover_time(
    graph: Graph,
    k: int,
    start: int | np.ndarray = 0,
    *,
    rng: np.random.Generator | int | None = None,
    lazy: bool = False,
    max_rounds: int | None = None,
) -> int:
    """Cover time of ``k`` independent walkers (all from ``start`` if scalar).

    Each round advances all ``k`` walkers with one vectorised
    neighbour-sample; visitation is tracked with a boolean mask.
    """
    gen = generator_from(rng)
    require_connected(graph)
    if k < 1:
        raise ValueError("need at least one walker")
    n = graph.n
    if np.ndim(start) == 0:
        positions = np.full(k, check_vertex(graph, int(start)), dtype=np.int64)
    else:
        positions = np.asarray(start, dtype=np.int64).copy()
        if positions.shape != (k,):
            raise ValueError(f"start array must have shape ({k},)")
    # Multiple walks speed up cover by between Θ(log k) and Θ(k)
    # depending on the graph (Elsässer–Sauerwald), so the safe cap is
    # the single-walk one — finishing early costs nothing.
    cap = (
        max_rounds
        if max_rounds is not None
        else int(64 * n * max(1, np.log(n)) * graph.dmax + 1000)
    )
    seen = np.zeros(n, dtype=bool)
    seen[positions] = True
    remaining = n - int(seen.sum())
    t = 0
    while remaining > 0 and t < cap:
        t += 1
        nxt = graph.sample_neighbors(positions, gen)
        if lazy:
            stay = gen.random(k) < 0.5
            nxt = np.where(stay, positions, nxt)
        positions = nxt
        fresh = positions[~seen[positions]]
        if fresh.size:
            seen[fresh] = True
            remaining = n - int(seen.sum())
    if remaining > 0:
        raise RuntimeError(
            f"{k} walks failed to cover {graph.name} within {cap} rounds"
        )
    return t


def multi_walk_cover_samples(
    graph: Graph,
    k: int,
    start: int = 0,
    runs: int = 16,
    *,
    rng: np.random.Generator | int | None = None,
    lazy: bool = False,
    max_rounds: int | None = None,
) -> np.ndarray:
    """Sample the ``k``-walk cover time ``runs`` times."""
    gen = generator_from(rng)
    return np.array(
        [
            multi_walk_cover_time(
                graph, k, start, rng=gen, lazy=lazy, max_rounds=max_rounds
            )
            for _ in range(runs)
        ],
        dtype=np.int64,
    )
