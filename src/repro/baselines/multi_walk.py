"""Multiple independent random walks (the [Alon et al.; Elsässer–Sauerwald]
comparison point).

``k`` walkers move simultaneously and independently, one step per
round; the cover time is the first round by which every vertex has been
visited by some walker.  Unlike COBRA the walker population is fixed —
no branching, no coalescing — which is exactly the dependence structure
the paper contrasts COBRA against.

Execution goes through the unified batched engine
(:class:`repro.engine.SpreadEngine` with a
:class:`~repro.engine.rules.WalkRule`): one run keeps an ``(1, k)``
position row, and the sampler advances ``R`` runs (``R × k`` walkers)
per flattened neighbour-sample.
"""

from __future__ import annotations

import numpy as np

from ..engine.engine import SpreadEngine
from ..engine.rules import WalkRule
from ..graphs.graph import Graph
from ..graphs.validation import check_vertex, require_connected
from ..parallel.batch import plan_batches_for
from ..stats.rng import generator_from

__all__ = ["multi_walk_cover_time", "multi_walk_cover_samples"]


def multi_walk_cover_time(
    graph: Graph,
    k: int,
    start: int | np.ndarray = 0,
    *,
    rng: np.random.Generator | int | None = None,
    lazy: bool = False,
    max_rounds: int | None = None,
) -> int:
    """Cover time of ``k`` independent walkers (all from ``start`` if scalar).

    Each round advances all ``k`` walkers with one vectorised
    neighbour-sample; visitation is tracked by the engine's ``(R, n)``
    visited mask.
    """
    gen = generator_from(rng)
    require_connected(graph)
    rule = WalkRule(k, lazy=lazy)
    if np.ndim(start) == 0:
        positions = np.full(k, check_vertex(graph, int(start)), dtype=np.int64)
    else:
        positions = np.asarray(start, dtype=np.int64).copy()
        if positions.shape != (k,):
            raise ValueError(f"start array must have shape ({k},)")
    # Multiple walks speed up cover by between Θ(log k) and Θ(k)
    # depending on the graph (Elsässer–Sauerwald), so the safe cap is
    # the single-walk one — finishing early costs nothing.
    engine = SpreadEngine(rule, graph)
    res = engine.run(positions[None, :], gen, max_rounds=max_rounds)
    if not res.all_finished:
        cap = engine.default_cap() if max_rounds is None else int(max_rounds)
        raise RuntimeError(
            f"{k} walks failed to cover {graph.name} within {cap} rounds"
        )
    return int(res.finish_times[0])


def multi_walk_cover_samples(
    graph: Graph,
    k: int,
    start: int = 0,
    runs: int = 16,
    *,
    rng: np.random.Generator | int | None = None,
    lazy: bool = False,
    max_rounds: int | None = None,
    batch_size: int = 256,
) -> np.ndarray:
    """Sample the ``k``-walk cover time ``runs`` times (batched engine)."""
    gen = generator_from(rng)
    require_connected(graph)
    if runs <= 0:
        return np.empty(0, dtype=np.int64)
    rule = WalkRule(k, lazy=lazy)
    engine = SpreadEngine(rule, graph)
    v = check_vertex(graph, int(start))
    out = []
    for r in plan_batches_for(rule, int(runs), graph.n, max_batch=batch_size):
        state = np.full((r, k), v, dtype=np.int64)
        res = engine.run(state, gen, max_rounds=max_rounds)
        if not res.all_finished:
            cap = engine.default_cap() if max_rounds is None else int(max_rounds)
            raise RuntimeError(
                f"{k} walks failed to cover {graph.name} within {cap} rounds"
            )
        out.append(res.finish_times)
    return np.concatenate(out)
