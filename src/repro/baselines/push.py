"""Push rumour spreading — the classic epidemic broadcast baseline.

Every round, every *informed* vertex pushes the rumour to one uniformly
random neighbour; informed vertices stay informed forever.  This is the
natural memory-ful counterpart of COBRA: same per-vertex transmission
budget as ``b = 1``, but without COBRA's "forget unless re-hit" rule.
On expanders push completes in ``Θ(log n)`` rounds — the target COBRA
aspires to with only one round of memory.

Both entry points execute through the unified batched engine
(:class:`repro.engine.SpreadEngine` with a
:class:`~repro.engine.rules.PushRule`): a single broadcast is the
``R = 1`` case, and the sampler advances all runs inside one ``(R, n)``
boolean program instead of the historical one-run-at-a-time Python
loop.  Measured against the replaced samplers (which revalidated the
graph and re-dispatched per run): 2–4× faster at experiment scale
(``n ≤ 1024``) and parity at ``n = 4096``, where both are bound by the
same neighbour-sampling work; against per-selection scalar loops the
batched engine is ≥10× — ``benchmarks/bench_baselines.py`` holds the
measured numbers for all three rungs.
"""

from __future__ import annotations

import numpy as np

from ..engine.engine import SpreadEngine
from ..engine.rules import PushRule
from ..graphs.graph import Graph
from ..graphs.validation import check_vertex, require_connected
from ..parallel.batch import plan_batches_for
from ..stats.rng import generator_from

__all__ = ["push_broadcast_time", "push_broadcast_samples"]


def push_broadcast_time(
    graph: Graph,
    start: int = 0,
    *,
    rng: np.random.Generator | int | None = None,
    fanout: int = 1,
    max_rounds: int | None = None,
) -> int:
    """Rounds until all vertices are informed under push with ``fanout``.

    ``fanout`` is the number of random neighbours each informed vertex
    pushes to per round (1 is the classic protocol; 2 matches COBRA's
    transmission budget at ``b = 2``).
    """
    gen = generator_from(rng)
    require_connected(graph)
    rule = PushRule(fanout)
    engine = SpreadEngine(rule, graph)
    state = np.zeros((1, graph.n), dtype=bool)
    state[0, check_vertex(graph, start)] = True
    res = engine.run(state, gen, max_rounds=max_rounds)
    if not res.all_finished:
        cap = engine.default_cap() if max_rounds is None else int(max_rounds)
        raise RuntimeError(f"push failed to inform {graph.name} within {cap} rounds")
    return int(res.finish_times[0])


def push_broadcast_samples(
    graph: Graph,
    start: int = 0,
    runs: int = 16,
    *,
    rng: np.random.Generator | int | None = None,
    fanout: int = 1,
    max_rounds: int | None = None,
    batch_size: int = 256,
) -> np.ndarray:
    """Sample the push broadcast time ``runs`` times (batched engine)."""
    gen = generator_from(rng)
    require_connected(graph)
    if runs <= 0:
        return np.empty(0, dtype=np.int64)
    rule = PushRule(fanout)
    engine = SpreadEngine(rule, graph)
    v = check_vertex(graph, start)
    out = []
    for r in plan_batches_for(rule, int(runs), graph.n, max_batch=batch_size):
        state = np.zeros((r, graph.n), dtype=bool)
        state[:, v] = True
        res = engine.run(state, gen, max_rounds=max_rounds)
        if not res.all_finished:
            cap = engine.default_cap() if max_rounds is None else int(max_rounds)
            raise RuntimeError(
                f"push failed to inform {graph.name} within {cap} rounds"
            )
        out.append(res.finish_times)
    return np.concatenate(out)
