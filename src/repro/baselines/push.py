"""Push rumour spreading — the classic epidemic broadcast baseline.

Every round, every *informed* vertex pushes the rumour to one uniformly
random neighbour; informed vertices stay informed forever.  This is the
natural memory-ful counterpart of COBRA: same per-vertex transmission
budget as ``b = 1``, but without COBRA's "forget unless re-hit" rule.
On expanders push completes in ``Θ(log n)`` rounds — the target COBRA
aspires to with only one round of memory.
"""

from __future__ import annotations

import numpy as np

from ..graphs.graph import Graph
from ..graphs.validation import check_vertex, require_connected
from ..stats.rng import generator_from

__all__ = ["push_broadcast_time", "push_broadcast_samples"]


def push_broadcast_time(
    graph: Graph,
    start: int = 0,
    *,
    rng: np.random.Generator | int | None = None,
    fanout: int = 1,
    max_rounds: int | None = None,
) -> int:
    """Rounds until all vertices are informed under push with ``fanout``.

    ``fanout`` is the number of random neighbours each informed vertex
    pushes to per round (1 is the classic protocol; 2 matches COBRA's
    transmission budget at ``b = 2``).
    """
    gen = generator_from(rng)
    require_connected(graph)
    if fanout < 1:
        raise ValueError("fanout must be >= 1")
    n = graph.n
    cap = max_rounds if max_rounds is not None else int(64 * (n + graph.dmax * np.log(n + 1)) + 1000)
    informed = np.zeros(n, dtype=bool)
    informed[check_vertex(graph, start)] = True
    count = 1
    t = 0
    while count < n and t < cap:
        t += 1
        senders = np.repeat(np.nonzero(informed)[0], fanout)
        targets = graph.sample_neighbors(senders, gen)
        informed[targets] = True
        count = int(informed.sum())
    if count < n:
        raise RuntimeError(f"push failed to inform {graph.name} within {cap} rounds")
    return t


def push_broadcast_samples(
    graph: Graph,
    start: int = 0,
    runs: int = 16,
    *,
    rng: np.random.Generator | int | None = None,
    fanout: int = 1,
    max_rounds: int | None = None,
) -> np.ndarray:
    """Sample the push broadcast time ``runs`` times."""
    gen = generator_from(rng)
    return np.array(
        [
            push_broadcast_time(
                graph, start, rng=gen, fanout=fanout, max_rounds=max_rounds
            )
            for _ in range(runs)
        ],
        dtype=np.int64,
    )
