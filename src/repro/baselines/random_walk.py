"""Simple random walk baseline (COBRA with branching factor ``b = 1``).

The paper's motivation: a single random walk achieves the minimal
transmission rate but covers any graph only in ``Ω(n log n)`` expected
rounds, whereas COBRA with ``b = 2`` targets polylogarithmic cover on
good graphs.  This module provides the walk itself plus cover/hitting
time samplers used in the E9 comparison table.

Cover sampling executes through the unified batched engine
(:class:`repro.engine.SpreadEngine` with a single-walker
:class:`~repro.engine.rules.WalkRule`): ``R`` independent walks advance
one step per round inside one flattened neighbour-sample.  The engine
draws one uniform per walker per step via
:meth:`~repro.graphs.Graph.sample_neighbors` (the historical scalar
loop drew its uniforms in blocks of 4096, an implementation detail that
is *not* preserved bit-for-bit; distributions are identical).
:func:`walk_trajectory` keeps the block-drawing fast path for
single-trajectory inspection.
"""

from __future__ import annotations

import numpy as np

from ..engine.engine import SpreadEngine
from ..engine.rules import WalkRule
from ..graphs.graph import Graph
from ..graphs.validation import check_vertex, require_connected
from ..parallel.batch import plan_batches_for
from ..stats.rng import generator_from

__all__ = ["random_walk_cover_time", "random_walk_cover_samples", "walk_trajectory"]


def walk_trajectory(
    graph: Graph,
    start: int,
    steps: int,
    rng: np.random.Generator,
    *,
    lazy: bool = False,
) -> np.ndarray:
    """Simulate ``steps`` steps; return positions (length ``steps + 1``).

    Vectorised trick: at each step the walker needs one uniform
    neighbour, but drawing per-step from Python is slow, so we draw
    uniforms in blocks and resolve the CSR lookups per step (the state
    dependency forbids full vectorisation across time).
    """
    require_connected(graph)
    pos = check_vertex(graph, start)
    out = np.empty(steps + 1, dtype=np.int64)
    out[0] = pos
    uniforms = rng.random(steps)
    if lazy:
        stays = rng.random(steps) < 0.5
    indptr, indices, degrees = graph.indptr, graph.indices, graph.degrees
    for i in range(steps):
        if lazy and stays[i]:
            out[i + 1] = pos
            continue
        pos = indices[indptr[pos] + int(uniforms[i] * degrees[pos])]
        out[i + 1] = pos
    return out


def random_walk_cover_time(
    graph: Graph,
    start: int = 0,
    *,
    rng: np.random.Generator | int | None = None,
    lazy: bool = False,
    max_steps: int | None = None,
) -> int:
    """Number of *rounds* for one walk to visit every vertex.

    A round here is one step, matching COBRA's round at ``b = 1``.
    """
    gen = generator_from(rng)
    require_connected(graph)
    rule = WalkRule(1, lazy=lazy)
    engine = SpreadEngine(rule, graph)
    state = np.array([[check_vertex(graph, start)]], dtype=np.int64)
    res = engine.run(state, gen, max_rounds=max_steps)
    if not res.all_finished:
        cap = engine.default_cap() if max_steps is None else int(max_steps)
        raise RuntimeError(f"random walk failed to cover {graph.name} in {cap} steps")
    return int(res.finish_times[0])


def random_walk_cover_samples(
    graph: Graph,
    start: int = 0,
    runs: int = 16,
    *,
    rng: np.random.Generator | int | None = None,
    lazy: bool = False,
    max_steps: int | None = None,
    batch_size: int = 256,
) -> np.ndarray:
    """Sample the walk's cover time ``runs`` times (batched engine)."""
    gen = generator_from(rng)
    require_connected(graph)
    if runs <= 0:
        return np.empty(0, dtype=np.int64)
    rule = WalkRule(1, lazy=lazy)
    engine = SpreadEngine(rule, graph)
    v = check_vertex(graph, start)
    out = []
    for r in plan_batches_for(rule, int(runs), graph.n, max_batch=batch_size):
        state = np.full((r, 1), v, dtype=np.int64)
        res = engine.run(state, gen, max_rounds=max_steps)
        if not res.all_finished:
            cap = engine.default_cap() if max_steps is None else int(max_steps)
            raise RuntimeError(
                f"random walk failed to cover {graph.name} in {cap} steps"
            )
        out.append(res.finish_times)
    return np.concatenate(out)
