"""Simple random walk baseline (COBRA with branching factor ``b = 1``).

The paper's motivation: a single random walk achieves the minimal
transmission rate but covers any graph only in ``Ω(n log n)`` expected
rounds, whereas COBRA with ``b = 2`` targets polylogarithmic cover on
good graphs.  This module provides the walk itself plus cover/hitting
time samplers used in the E9 comparison table.
"""

from __future__ import annotations

import numpy as np

from ..graphs.graph import Graph
from ..graphs.validation import check_vertex, require_connected
from ..stats.rng import generator_from

__all__ = ["random_walk_cover_time", "random_walk_cover_samples", "walk_trajectory"]


def walk_trajectory(
    graph: Graph,
    start: int,
    steps: int,
    rng: np.random.Generator,
    *,
    lazy: bool = False,
) -> np.ndarray:
    """Simulate ``steps`` steps; return positions (length ``steps + 1``).

    Vectorised trick: at each step the walker needs one uniform
    neighbour, but drawing per-step from Python is slow, so we draw
    uniforms in blocks and resolve the CSR lookups per step (the state
    dependency forbids full vectorisation across time).
    """
    require_connected(graph)
    pos = check_vertex(graph, start)
    out = np.empty(steps + 1, dtype=np.int64)
    out[0] = pos
    uniforms = rng.random(steps)
    if lazy:
        stays = rng.random(steps) < 0.5
    indptr, indices, degrees = graph.indptr, graph.indices, graph.degrees
    for i in range(steps):
        if lazy and stays[i]:
            out[i + 1] = pos
            continue
        pos = indices[indptr[pos] + int(uniforms[i] * degrees[pos])]
        out[i + 1] = pos
    return out


def random_walk_cover_time(
    graph: Graph,
    start: int = 0,
    *,
    rng: np.random.Generator | int | None = None,
    lazy: bool = False,
    max_steps: int | None = None,
) -> int:
    """Number of *rounds* for one walk to visit every vertex.

    A round here is one step, matching COBRA's round at ``b = 1``.
    """
    gen = generator_from(rng)
    require_connected(graph)
    n = graph.n
    cap = max_steps if max_steps is not None else int(64 * n * max(1, np.log(n)) * graph.dmax + 1000)
    pos = check_vertex(graph, start)
    seen = np.zeros(n, dtype=bool)
    seen[pos] = True
    remaining = n - 1
    indptr, indices, degrees = graph.indptr, graph.indices, graph.degrees
    t = 0
    block = 4096
    while remaining > 0 and t < cap:
        uniforms = gen.random(block)
        stays = gen.random(block) < 0.5 if lazy else None
        for i in range(block):
            t += 1
            if not (lazy and stays[i]):
                pos = indices[indptr[pos] + int(uniforms[i] * degrees[pos])]
                if not seen[pos]:
                    seen[pos] = True
                    remaining -= 1
                    if remaining == 0:
                        break
            if t >= cap:
                break
    if remaining > 0:
        raise RuntimeError(f"random walk failed to cover {graph.name} in {cap} steps")
    return t


def random_walk_cover_samples(
    graph: Graph,
    start: int = 0,
    runs: int = 16,
    *,
    rng: np.random.Generator | int | None = None,
    lazy: bool = False,
    max_steps: int | None = None,
) -> np.ndarray:
    """Sample the walk's cover time ``runs`` times."""
    gen = generator_from(rng)
    return np.array(
        [
            random_walk_cover_time(
                graph, start, rng=gen, lazy=lazy, max_steps=max_steps
            )
            for _ in range(runs)
        ],
        dtype=np.int64,
    )
