"""Pull and push–pull rumour spreading.

Complements :mod:`repro.baselines.push`: in **pull**, every *uninformed*
vertex asks one random neighbour per round and learns the rumour if the
neighbour knows it; **push–pull** does both.  Push–pull is the
fastest memory-ful gossip primitive (Θ(log n) on much wider graph
classes than push alone) and is the strongest same-budget comparison
point for COBRA.

Note the structural kinship: a BIPS round *is* a pull round with ``b``
requests and SIS forgetting — pull is what BIPS becomes if vertices
never lose the infection.

All entry points execute through the unified batched engine
(:class:`repro.engine.SpreadEngine` with
:class:`~repro.engine.rules.PullRule` /
:class:`~repro.engine.rules.PushPullRule`); the samplers advance all
runs inside one ``(R, n)`` boolean program.
"""

from __future__ import annotations

import numpy as np

from ..engine.engine import SpreadEngine
from ..engine.rules import PullRule, PushPullRule
from ..graphs.graph import Graph
from ..graphs.validation import check_vertex, require_connected
from ..parallel.batch import plan_batches_for
from ..stats.rng import generator_from

__all__ = [
    "pull_broadcast_time",
    "push_pull_broadcast_time",
    "pull_broadcast_samples",
    "push_pull_broadcast_samples",
]


def _broadcast_batches(
    rule,
    label: str,
    graph: Graph,
    start: int,
    runs: int,
    gen: np.random.Generator,
    max_rounds: int | None,
    batch_size: int,
) -> np.ndarray:
    """Shared batched-sampling loop for the gossip baselines."""
    require_connected(graph)
    if runs <= 0:
        return np.empty(0, dtype=np.int64)
    engine = SpreadEngine(rule, graph)
    v = check_vertex(graph, start)
    out = []
    for r in plan_batches_for(rule, int(runs), graph.n, max_batch=batch_size):
        state = np.zeros((r, graph.n), dtype=bool)
        state[:, v] = True
        res = engine.run(state, gen, max_rounds=max_rounds)
        if not res.all_finished:
            cap = engine.default_cap() if max_rounds is None else int(max_rounds)
            raise RuntimeError(
                f"{label} failed to inform {graph.name} within {cap} rounds"
            )
        out.append(res.finish_times)
    return np.concatenate(out)


def pull_broadcast_time(
    graph: Graph,
    start: int = 0,
    *,
    rng: np.random.Generator | int | None = None,
    max_rounds: int | None = None,
) -> int:
    """Rounds until everyone is informed under pull-only gossip."""
    gen = generator_from(rng)
    samples = _broadcast_batches(
        PullRule(), "pull", graph, start, 1, gen, max_rounds, 1
    )
    return int(samples[0])


def push_pull_broadcast_time(
    graph: Graph,
    start: int = 0,
    *,
    rng: np.random.Generator | int | None = None,
    max_rounds: int | None = None,
) -> int:
    """Rounds to inform everyone when informed push and uninformed pull.

    Both halves act on the start-of-round state (simultaneity); the
    push half draws its neighbours first.
    """
    gen = generator_from(rng)
    samples = _broadcast_batches(
        PushPullRule(), "push-pull", graph, start, 1, gen, max_rounds, 1
    )
    return int(samples[0])


def pull_broadcast_samples(
    graph: Graph,
    start: int = 0,
    runs: int = 16,
    *,
    rng: np.random.Generator | int | None = None,
    max_rounds: int | None = None,
    batch_size: int = 256,
) -> np.ndarray:
    """Sample the pull broadcast time ``runs`` times (batched engine)."""
    gen = generator_from(rng)
    return _broadcast_batches(
        PullRule(), "pull", graph, start, runs, gen, max_rounds, batch_size
    )


def push_pull_broadcast_samples(
    graph: Graph,
    start: int = 0,
    runs: int = 16,
    *,
    rng: np.random.Generator | int | None = None,
    max_rounds: int | None = None,
    batch_size: int = 256,
) -> np.ndarray:
    """Sample the push–pull broadcast time ``runs`` times (batched)."""
    gen = generator_from(rng)
    return _broadcast_batches(
        PushPullRule(), "push-pull", graph, start, runs, gen, max_rounds, batch_size
    )
