"""Pull and push–pull rumour spreading.

Complements :mod:`repro.baselines.push`: in **pull**, every *uninformed*
vertex asks one random neighbour per round and learns the rumour if the
neighbour knows it; **push–pull** does both.  Push–pull is the
fastest memory-ful gossip primitive (Θ(log n) on much wider graph
classes than push alone) and is the strongest same-budget comparison
point for COBRA.

Note the structural kinship: a BIPS round *is* a pull round with ``b``
requests and SIS forgetting — pull is what BIPS becomes if vertices
never lose the infection.
"""

from __future__ import annotations

import numpy as np

from ..graphs.graph import Graph
from ..graphs.validation import check_vertex, require_connected
from ..stats.rng import generator_from

__all__ = ["pull_broadcast_time", "push_pull_broadcast_time", "pull_broadcast_samples"]


def pull_broadcast_time(
    graph: Graph,
    start: int = 0,
    *,
    rng: np.random.Generator | int | None = None,
    max_rounds: int | None = None,
) -> int:
    """Rounds until everyone is informed under pull-only gossip."""
    gen = generator_from(rng)
    require_connected(graph)
    n = graph.n
    cap = max_rounds if max_rounds is not None else int(64 * (n + graph.dmax * np.log(n + 1)) + 1000)
    informed = np.zeros(n, dtype=bool)
    informed[check_vertex(graph, start)] = True
    count = 1
    t = 0
    while count < n and t < cap:
        t += 1
        askers = np.nonzero(~informed)[0]
        answers = graph.sample_neighbors(askers, gen)
        informed[askers] |= informed[answers]
        count = int(informed.sum())
    if count < n:
        raise RuntimeError(f"pull failed to inform {graph.name} within {cap} rounds")
    return t


def push_pull_broadcast_time(
    graph: Graph,
    start: int = 0,
    *,
    rng: np.random.Generator | int | None = None,
    max_rounds: int | None = None,
) -> int:
    """Rounds to inform everyone when informed push and uninformed pull."""
    gen = generator_from(rng)
    require_connected(graph)
    n = graph.n
    cap = max_rounds if max_rounds is not None else int(64 * (n + graph.dmax * np.log(n + 1)) + 1000)
    informed = np.zeros(n, dtype=bool)
    informed[check_vertex(graph, start)] = True
    count = 1
    t = 0
    while count < n and t < cap:
        t += 1
        # Both halves act on the start-of-round state (simultaneity).
        before = informed.copy()
        senders = np.nonzero(before)[0]
        askers = np.nonzero(~before)[0]
        pushed = graph.sample_neighbors(senders, gen)
        answers = graph.sample_neighbors(askers, gen)
        informed[pushed] = True
        informed[askers] |= before[answers]
        count = int(informed.sum())
    if count < n:
        raise RuntimeError(
            f"push-pull failed to inform {graph.name} within {cap} rounds"
        )
    return t


def pull_broadcast_samples(
    graph: Graph,
    start: int = 0,
    runs: int = 16,
    *,
    rng: np.random.Generator | int | None = None,
    max_rounds: int | None = None,
) -> np.ndarray:
    """Sample the pull broadcast time ``runs`` times."""
    gen = generator_from(rng)
    return np.array(
        [
            pull_broadcast_time(graph, start, rng=gen, max_rounds=max_rounds)
            for _ in range(runs)
        ],
        dtype=np.int64,
    )
