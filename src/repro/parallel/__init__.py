"""Parallel execution substrate: process pools and memory-bounded batching."""

from .batch import (
    DEFAULT_STATE_BUDGET_BYTES,
    plan_batches,
    plan_batches_for,
    run_batched,
)
from .pool import default_workers, parallel_map

__all__ = [
    "DEFAULT_STATE_BUDGET_BYTES",
    "plan_batches",
    "plan_batches_for",
    "run_batched",
    "default_workers",
    "parallel_map",
]
