"""Parallel execution substrate: pools, batching, and R-axis sharding."""

from .batch import (
    DEFAULT_STATE_BUDGET_BYTES,
    plan_batches,
    plan_batches_for,
    run_batched,
)
from .pool import default_workers, parallel_map, pool_chunk_size
from .sharding import (
    DEFAULT_MAX_SHARD,
    DEFAULT_SHARD_STATE_BUDGET_BYTES,
    ShardTask,
    execute_shards,
    finished_times_or_raise,
    merge_shard_results,
    plan_shards,
    run_shard,
    run_sharded,
)

__all__ = [
    "DEFAULT_STATE_BUDGET_BYTES",
    "plan_batches",
    "plan_batches_for",
    "run_batched",
    "default_workers",
    "parallel_map",
    "pool_chunk_size",
    "DEFAULT_MAX_SHARD",
    "DEFAULT_SHARD_STATE_BUDGET_BYTES",
    "ShardTask",
    "execute_shards",
    "finished_times_or_raise",
    "merge_shard_results",
    "plan_shards",
    "run_shard",
    "run_sharded",
]
