"""Memory-bounded batching for the vectorised multi-run engines.

The batch engines hold ``(R, n)`` boolean state; for large graphs the
number of simultaneous runs must be capped.  ``plan_batches`` splits a
trial budget into batch sizes under a byte budget, and ``run_batched``
drives a sampler batch-by-batch, concatenating results.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = [
    "plan_batches",
    "plan_batches_for",
    "run_batched",
    "DEFAULT_STATE_BUDGET_BYTES",
]

#: Default cap on per-batch boolean state: 256 MiB across the ~4 (R, n)
#: arrays the engines keep live.
DEFAULT_STATE_BUDGET_BYTES = 256 * 1024 * 1024


def plan_batches(
    total_runs: int,
    n_vertices: int,
    *,
    state_arrays: int = 4,
    budget_bytes: int = DEFAULT_STATE_BUDGET_BYTES,
    max_batch: int = 4096,
) -> list[int]:
    """Split ``total_runs`` into batch sizes fitting the memory budget.

    Each run costs ``state_arrays * n_vertices`` bytes of boolean state.
    """
    if total_runs < 1:
        raise ValueError("need at least one run")
    if n_vertices < 1:
        raise ValueError("need at least one vertex")
    per_run = state_arrays * n_vertices
    cap = max(1, min(max_batch, budget_bytes // per_run))
    full, rem = divmod(total_runs, cap)
    return [cap] * full + ([rem] if rem else [])


def plan_batches_for(
    rule,
    total_runs: int,
    n_vertices: int,
    *,
    budget_bytes: int = DEFAULT_STATE_BUDGET_BYTES,
    max_batch: int = 4096,
) -> list[int]:
    """Plan batches using a spread rule's declared live-array count.

    ``rule`` is any :class:`repro.engine.rules.SpreadRule` (duck-typed
    through its ``state_arrays`` attribute — the number of
    ``(R, n)``-byte boolean-array equivalents the engine keeps live per
    run while stepping it).  This keeps the memory accounting of
    :func:`plan_batches` in sync with what the engine actually
    allocates, instead of the historical hard-coded ``4``.
    """
    return plan_batches(
        total_runs,
        n_vertices,
        state_arrays=int(getattr(rule, "state_arrays", 4)),
        budget_bytes=budget_bytes,
        max_batch=max_batch,
    )


def run_batched(
    sampler: Callable[[int], np.ndarray],
    total_runs: int,
    n_vertices: int,
    **plan_kwargs,
) -> np.ndarray:
    """Drive ``sampler(batch_size) -> samples`` across planned batches."""
    parts = [sampler(b) for b in plan_batches(total_runs, n_vertices, **plan_kwargs)]
    return np.concatenate(parts)
