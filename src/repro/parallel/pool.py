"""Process-pool trial execution (the sweep-level parallel substrate).

Per the hpc-parallel guides: the inner loops are already vectorised, so
the remaining parallelism is *across* independent trials/parameter
points.  ``parallel_map`` distributes picklable task descriptions over
a ``multiprocessing`` pool with chunked scheduling and falls back to
serial execution for ``n_workers <= 1`` (or when the platform forbids
forking) so results never depend on the execution mode.

Determinism contract: tasks must carry their own spawned seeds (see
:mod:`repro.stats.rng`); the pool itself introduces no randomness and
preserves input order in its output.
"""

from __future__ import annotations

import math
import multiprocessing as mp
import os
from typing import Callable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["parallel_map", "default_workers", "pool_chunk_size"]

#: Environment variable overriding :func:`default_workers` (documented
#: in the README).  Deployments set it once instead of threading a
#: ``--workers`` flag through every entry point.
WORKERS_ENV_VAR = "REPRO_WORKERS"


def default_workers() -> int:
    """The default worker count for every parallel entry point.

    Honours the ``REPRO_WORKERS`` environment variable when set (any
    integer >= 1); otherwise falls back to the conservative
    ``min(cpu_count, 8)``, at least 1.
    """
    env = os.environ.get(WORKERS_ENV_VAR)
    if env is not None and env.strip():
        try:
            value = int(env)
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV_VAR} must be an integer, got {env!r}"
            ) from None
        if value < 1:
            raise ValueError(f"{WORKERS_ENV_VAR} must be >= 1, got {value}")
        return value
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cpus = os.cpu_count() or 1
    return max(1, min(cpus, 8))


def pool_chunk_size(n_items: int, workers: int) -> int:
    """Default ``chunksize`` for ``Pool.map``: ~4 chunks per worker.

    Uses ``ceil`` so the chunk count never *exceeds* ``4 * workers``:
    the historical ``n_items // (workers * 4)`` rounded down, which for
    task counts just above a multiple of ``4 * workers`` produced one
    extra full-size chunk whose worker finished last while the rest of
    the pool sat idle (and degenerated to chunks of 1 — pure IPC
    overhead — for any ``n_items < 4 * workers``).
    """
    if n_items < 1:
        raise ValueError("need at least one item")
    if workers < 1:
        raise ValueError("need at least one worker")
    return max(1, math.ceil(n_items / (workers * 4)))


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    n_workers: int | None = None,
    chunk_size: int | None = None,
) -> list[R]:
    """Apply ``fn`` to each item, optionally across worker processes.

    Preserves input order.  ``fn`` and every item must be picklable when
    ``n_workers > 1``.  ``chunk_size`` defaults to
    :func:`pool_chunk_size`, which gives each worker a handful of
    chunks (amortising IPC without starving the pool).
    """
    items = list(items)
    if not items:
        return []
    workers = default_workers() if n_workers is None else int(n_workers)
    if workers <= 1 or len(items) == 1:
        return [fn(item) for item in items]
    workers = min(workers, len(items))
    if chunk_size is None:
        chunk_size = pool_chunk_size(len(items), workers)
    ctx = mp.get_context("spawn" if os.name == "nt" else "fork")
    with ctx.Pool(processes=workers) as pool:
        return pool.map(fn, items, chunksize=chunk_size)
