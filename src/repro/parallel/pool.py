"""Process-pool trial execution (the sweep-level parallel substrate).

Per the hpc-parallel guides: the inner loops are already vectorised, so
the remaining parallelism is *across* independent trials/parameter
points.  ``parallel_map`` distributes picklable task descriptions over
a ``multiprocessing`` pool with chunked scheduling and falls back to
serial execution for ``n_workers <= 1`` (or when the platform forbids
forking) so results never depend on the execution mode.

Determinism contract: tasks must carry their own spawned seeds (see
:mod:`repro.stats.rng`); the pool itself introduces no randomness and
preserves input order in its output.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from typing import Callable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["parallel_map", "default_workers"]


def default_workers() -> int:
    """A conservative worker count: ``min(cpu_count, 8)``, at least 1."""
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cpus = os.cpu_count() or 1
    return max(1, min(cpus, 8))


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    n_workers: int | None = None,
    chunk_size: int | None = None,
) -> list[R]:
    """Apply ``fn`` to each item, optionally across worker processes.

    Preserves input order.  ``fn`` and every item must be picklable when
    ``n_workers > 1``.  ``chunk_size`` defaults to a value that gives
    each worker a handful of chunks (amortising IPC without starving the
    pool).
    """
    items = list(items)
    if not items:
        return []
    workers = default_workers() if n_workers is None else int(n_workers)
    if workers <= 1 or len(items) == 1:
        return [fn(item) for item in items]
    workers = min(workers, len(items))
    if chunk_size is None:
        chunk_size = max(1, len(items) // (workers * 4))
    ctx = mp.get_context("spawn" if os.name == "nt" else "fork")
    with ctx.Pool(processes=workers) as pool:
        return pool.map(fn, items, chunksize=chunk_size)
