"""Sharded engine execution: multiprocess fan-out over the R axis.

One :class:`~repro.engine.SpreadEngine` invocation advances ``R``
independent runs, but on one core.  This module splits the R axis into
*shards* — contiguous run blocks sized by
:func:`repro.parallel.plan_batches_for` under a fixed per-shard state
budget — and executes the shards across worker processes:

* **Topology ships once.**  A static graph's CSR arrays are exported
  into POSIX shared memory (:meth:`repro.graphs.Graph.to_shared`), so
  every worker maps the same physical ``indptr`` / ``indices`` /
  ``degrees`` instead of unpickling a private copy per task; dynamic
  sequences are constructed per shard (see
  :func:`repro.dynamics.dynamic_cover_time_batch`) or shipped as the
  small seeded objects they are and realised lazily in the worker.
* **Randomness is per shard.**  Each shard's generator is spawned from
  the caller's master seed via :mod:`repro.stats.rng`, and the shard
  plan is a pure function of ``(rule, runs, n, budget, max_shard)`` —
  never of the worker count — so the merged result is bit-for-bit
  identical at any ``workers`` (``workers=1`` runs the same shards
  serially in-process).

The per-shard streams intentionally differ from the single-stream
``run_batch`` path: sharded determinism is seed × shard-plan, not
seed × interleaving.  ``tests/parallel/test_sharding.py`` pins the
worker-count invariance and the serial shard-by-shard reference.

Shard sizing uses a deliberately smaller default budget than the
single-process batch planner (:data:`DEFAULT_SHARD_STATE_BUDGET_BYTES`
per shard, at most :data:`DEFAULT_MAX_SHARD` runs): shards are the
unit of load balancing, so there should be at least a few of them per
worker.
"""

from __future__ import annotations

import contextlib
import multiprocessing as mp
import os
import time
from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from ..graphs.graph import Graph, SharedGraph
from ..stats.rng import seed_sequence_from, spawn_seeds
from ..telemetry import (
    TraceContext,
    get_telemetry,
    max_rss_bytes,
    seed_id_parts,
    span_id_from,
    summarize_values,
)
from .batch import plan_batches_for
from .pool import default_workers

__all__ = [
    "ShardTask",
    "plan_shards",
    "run_shard",
    "execute_shards",
    "merge_shard_results",
    "run_sharded",
    "finished_times_or_raise",
    "DEFAULT_SHARD_STATE_BUDGET_BYTES",
    "DEFAULT_MAX_SHARD",
]


def finished_times_or_raise(finish_times: np.ndarray, what: str) -> np.ndarray:
    """Return a copy of ``finish_times``, raising if any run hit the cap.

    The shared tail of every sharded sampling wrapper: ``what`` names
    the process/graph for the error message (e.g. ``"sharded COBRA on
    hypercube-6"``).
    """
    capped = int((finish_times < 0).sum())
    if capped:
        raise RuntimeError(
            f"{capped} of {finish_times.shape[0]} {what} runs hit the "
            "round cap"
        )
    return finish_times.copy()

#: Per-shard boolean-state budget (64 MiB).  Intentionally well below
#: :data:`repro.parallel.batch.DEFAULT_STATE_BUDGET_BYTES`: a shard is
#: both a memory unit *and* a load-balancing unit, and the plan must
#: not depend on the worker count, so it is sized for "a few shards
#: per worker" on any reasonable machine.
DEFAULT_SHARD_STATE_BUDGET_BYTES = 64 * 1024 * 1024

#: Hard cap on runs per shard (keeps several shards in flight even on
#: small graphs, where the byte budget alone would allow one giant
#: shard).
DEFAULT_MAX_SHARD = 256

# Worker-side cache of attached shared graphs, keyed by segment name.
# Pool workers survive across tasks, so each worker maps a segment at
# most once; the mapping is released when the worker exits (attaching
# per task would leak one file descriptor each time instead).
_ATTACHED_GRAPHS: dict[str, Graph] = {}


def plan_shards(
    rule,
    total_runs: int,
    n_vertices: int,
    *,
    budget_bytes: int = DEFAULT_SHARD_STATE_BUDGET_BYTES,
    max_shard: int = DEFAULT_MAX_SHARD,
) -> list[int]:
    """Split ``total_runs`` into deterministic shard sizes.

    Delegates to :func:`repro.parallel.plan_batches_for` (the rule's
    declared per-run state footprint under ``budget_bytes``), capped at
    ``max_shard`` runs per shard.  The result depends only on the
    arguments — never on the machine or the worker count — which is
    what makes sharded execution seed-stable.  ``total_runs == 0``
    yields the empty plan (zero shards) rather than an error.
    """
    if total_runs == 0:
        return []
    return plan_batches_for(
        rule,
        total_runs,
        n_vertices,
        budget_bytes=budget_bytes,
        max_batch=max_shard,
    )


@dataclass(frozen=True)
class ShardTask:
    """One shard of an engine invocation, picklable for pool dispatch.

    Attributes
    ----------
    rule:
        The :class:`~repro.engine.rules.SpreadRule` (small, picklable).
    topology:
        Either a :class:`~repro.graphs.SharedGraph` handle (static
        graphs: workers attach zero-copy) or any topology-source object
        the engine accepts (graph sequences ship as their small seeded
        selves and materialise snapshots lazily in the worker).
    completion:
        A :class:`~repro.engine.completion.CompletionCriterion`.
    state:
        The shard's rule-specific initial state (rows = this shard's
        runs).
    seed:
        The shard's spawned :class:`numpy.random.SeedSequence`; the
        worker builds its process stream from exactly this.
    backend:
        Kernel-backend request forwarded to the worker's
        ``engine.run`` (see :mod:`repro.kernels.dispatch`).  Resolved
        caller-side from parameter/environment so the choice crosses
        process and wire boundaries; None means auto-resolve in the
        worker.
    """

    rule: object
    topology: object
    completion: object
    state: np.ndarray
    seed: np.random.SeedSequence
    max_rounds: int | None = None
    track_hits: bool = False
    record_sizes: bool = False
    record_visited: bool = False
    backend: str | None = None


def run_shard(task: ShardTask):
    """Execute one shard in the current process; returns a SpreadResult.

    Module-level (and so picklable) on purpose: this is the pool worker
    entry point, but the serial fallback calls it too, so both paths
    run literally the same code.

    Observability: the execution is wrapped in a ``shard.run``
    telemetry span whose id derives from the shard's spawned seed
    (deterministic across machines and worker counts — the spawn key
    encodes the shard index), and the returned result carries its
    wall/CPU timings in ``meta["shard"]`` — always, telemetry sink or
    not, so :func:`merge_shard_results` can report shard skew.
    """
    from ..engine.engine import SpreadEngine

    topology = task.topology
    if isinstance(topology, SharedGraph):
        graph = _ATTACHED_GRAPHS.get(topology.shm_name)
        if graph is None:
            graph = topology.attach()
            # Release the handle immediately: the graph's zero-copy
            # views keep the mapping alive for this process's lifetime,
            # and a closed handle garbage-collects silently.
            topology.close()
            _ATTACHED_GRAPHS[topology.shm_name] = graph
        topology = graph
    engine = SpreadEngine(task.rule, topology, task.completion)
    tel = get_telemetry()
    span = (
        tel.span(
            "shard.run",
            id_parts=seed_id_parts(task.seed),
            runs=int(task.state.shape[0]),
        )
        if tel.enabled
        else None
    )
    wall0, cpu0 = time.perf_counter(), time.process_time()
    with span if span is not None else contextlib.nullcontext():
        result = engine.run(
            task.state,
            np.random.default_rng(task.seed),
            max_rounds=task.max_rounds,
            track_hits=task.track_hits,
            record_sizes=task.record_sizes,
            record_visited=task.record_visited,
            backend=task.backend,
        )
        if span is not None:
            span.annotate(rounds_run=int(result.rounds_run))
    return replace(
        result,
        meta={
            **(result.meta or {}),
            "shard": {
                "runs": int(task.state.shape[0]),
                "rounds_run": int(result.rounds_run),
                "wall_s": time.perf_counter() - wall0,
                "cpu_s": time.process_time() - cpu0,
                "pid": os.getpid(),
                "max_rss": max_rss_bytes(),
            }
        },
    )


def _mp_context(spec: str | None = None):
    """Pick a start method: ``fork`` where cheap and safe, else spawn."""
    if spec is None:
        spec = "fork" if os.name != "nt" else "spawn"
    return mp.get_context(spec)


def _run_shard_indexed(item: tuple[int, ShardTask]):
    """Pool entry point for completion-order scheduling: keep the index.

    ``imap_unordered`` yields results in finish order, so each one must
    carry its shard index home for re-keying before the merge.
    """
    index, task = item
    return index, run_shard(task)


def execute_shards(
    tasks: Sequence[ShardTask],
    workers: int | None = None,
    *,
    mp_context: str | None = None,
    schedule: str = "static",
) -> list:
    """Run shard tasks, serially or across a process pool.

    ``workers=None`` uses :func:`repro.parallel.default_workers`;
    ``workers <= 1`` (or a single task) runs in-process, and a worker
    count above the task count is clamped (fewer shards than workers is
    fine — the surplus workers are simply never spawned).  Output order
    matches input order, and because every task carries its own spawned
    seed the results are identical either way.  ``chunksize`` is pinned
    to 1: shards are few and heavy, so eager redistribution beats
    amortised IPC.

    ``schedule`` selects the dispatch discipline: ``"static"`` is
    ``Pool.map`` (results retrieved in order); ``"completion"`` is
    ``Pool.imap_unordered`` — shards stream back the moment they
    finish, and idle workers steal the next shard immediately, which
    helps when cover times are heavy-tailed and one shard dominates.
    Results are re-keyed by shard index before returning, so the two
    schedules are observably identical apart from wall-clock.
    """
    if schedule not in ("static", "completion"):
        raise ValueError(
            f"unknown schedule {schedule!r}: expected 'static' or 'completion'"
        )
    tasks = list(tasks)
    if not tasks:
        return []
    workers = default_workers() if workers is None else int(workers)
    workers = min(workers, len(tasks))
    if workers <= 1:
        return [run_shard(task) for task in tasks]
    ctx = _mp_context(mp_context)
    with ctx.Pool(processes=workers) as pool:
        if schedule == "completion":
            results: list = [None] * len(tasks)
            for index, result in pool.imap_unordered(
                _run_shard_indexed, list(enumerate(tasks)), chunksize=1
            ):
                results[index] = result
            return results
        return pool.map(run_shard, tasks, chunksize=1)


def _pad_trajectories(parts: list[np.ndarray], width: int) -> np.ndarray:
    """Stack per-shard ``(R_i, T_i + 1)`` series on a common round axis.

    Shards stop recording when their last run completes, so a shard
    shorter than ``width`` is continued with its final column — the
    terminal-value convention of
    :class:`repro.core.trajectories.TrajectoryEnsemble` (correct for
    the monotone visited counts; for occupancy sizes it holds each
    run's last recorded value).
    """
    padded = []
    for part in parts:
        if part.shape[1] < width:
            tail = np.repeat(part[:, -1:], width - part.shape[1], axis=1)
            part = np.concatenate([part, tail], axis=1)
        padded.append(part)
    return np.concatenate(padded, axis=0)


def _merge_meta(results: Sequence) -> dict | None:
    """Aggregate per-shard timing metas into the merged result's meta.

    Shards that carry no timings (results decoded from the wire, which
    deliberately strips ``meta``) are skipped; with none at all the
    merged meta is None.  ``skew`` is max/median shard wall time — the
    load-balance figure the ROADMAP's bench caveat asks for.
    """
    shards = []
    kernel_backend = None
    for index, result in enumerate(results):
        meta = getattr(result, "meta", None)
        if not meta:
            continue
        kernel_backend = meta.get("kernel_backend", kernel_backend)
        if "shard" not in meta:
            continue
        shards.append({"index": index, **meta["shard"]})
    if not shards:
        if kernel_backend is not None:
            return {"kernel_backend": kernel_backend}
        return None
    walls = [s["wall_s"] for s in shards]
    wall_stats = summarize_values(walls)
    rss = [s["max_rss"] for s in shards if s.get("max_rss")]
    return {
        **({"kernel_backend": kernel_backend} if kernel_backend else {}),
        "shards": shards,
        "wall_s": wall_stats,
        "cpu_s": summarize_values([s["cpu_s"] for s in shards]),
        "skew": (
            wall_stats["max"] / wall_stats["p50"]
            if wall_stats["p50"] > 0
            else 1.0
        ),
        "workers": len({s["pid"] for s in shards}),
        # Peak RSS over the contributing processes (observability only,
        # like everything else in meta): the memory-pressure signal
        # ROADMAP item 2's million-vertex scenarios need.
        "max_rss": max(rss) if rss else None,
    }


def merge_shard_results(results: Sequence):
    """Merge per-shard SpreadResults into one, in shard order.

    ``finish_times`` / ``final_state`` / ``hit_times`` concatenate
    along the run axis; ``rounds_run`` is the max over shards; recorded
    trajectories are aligned with terminal-value padding (see
    :func:`_pad_trajectories`).  An empty sequence (the R = 0 plan)
    merges into a well-formed zero-run result rather than raising, so
    callers need no guard around degenerate plans.

    The merged ``meta`` aggregates whatever per-shard timings the
    results carry (see :func:`_merge_meta`): the shard table, wall/CPU
    summaries, and the max/median wall-time ``skew``.
    """
    from ..engine.engine import SpreadResult

    results = list(results)
    if not results:
        return SpreadResult(
            finish_times=np.empty(0, dtype=np.int64),
            rounds_run=0,
            final_state=np.empty((0, 0), dtype=bool),
        )
    if len(results) == 1:
        return replace(results[0], meta=_merge_meta(results))
    width = max(r.rounds_run for r in results) + 1
    return SpreadResult(
        finish_times=np.concatenate([r.finish_times for r in results]),
        rounds_run=max(r.rounds_run for r in results),
        final_state=np.concatenate([r.final_state for r in results], axis=0),
        hit_times=(
            np.concatenate([r.hit_times for r in results], axis=0)
            if results[0].hit_times is not None
            else None
        ),
        sizes=(
            _pad_trajectories([r.sizes for r in results], width)
            if results[0].sizes is not None
            else None
        ),
        visited_counts=(
            _pad_trajectories([r.visited_counts for r in results], width)
            if results[0].visited_counts is not None
            else None
        ),
        meta=_merge_meta(results),
    )


def _empty_result(
    state: np.ndarray,
    n: int,
    *,
    track_hits: bool,
    record_sizes: bool,
    record_visited: bool,
):
    """A well-formed SpreadResult for an R = 0 invocation."""
    from ..engine.engine import SpreadResult

    return SpreadResult(
        finish_times=np.empty(0, dtype=np.int64),
        rounds_run=0,
        final_state=state.copy(),
        hit_times=np.empty((0, n), dtype=np.int64) if track_hits else None,
        sizes=np.empty((0, 1), dtype=np.int64) if record_sizes else None,
        visited_counts=(
            np.empty((0, 1), dtype=np.int64) if record_visited else None
        ),
    )


def run_sharded(
    rule,
    topology,
    completion,
    state: np.ndarray,
    seed,
    *,
    workers: int | None = None,
    max_rounds: int | None = None,
    track_hits: bool = False,
    record_sizes: bool = False,
    record_visited: bool = False,
    budget_bytes: int = DEFAULT_SHARD_STATE_BUDGET_BYTES,
    max_shard: int = DEFAULT_MAX_SHARD,
    mp_context: str | None = None,
    schedule: str = "static",
    endpoint: str | None = None,
    cache="auto",
    backend: str | None = None,
    retry="default",
    checkpoint="default",
    fallback="default",
):
    """Shard one engine invocation's R axis across worker processes.

    ``state`` is the full rule-specific initial state (one row per
    run); it is split into :func:`plan_shards` row blocks, each driven
    by a generator spawned from ``seed`` (anything
    :func:`repro.stats.rng.seed_sequence_from` accepts).  Static
    topologies are exported to shared memory for the parallel case —
    created, closed and unlinked here, so callers manage nothing.
    Returns a merged :class:`~repro.engine.SpreadResult`; results are
    identical for every ``workers`` value (an ``R = 0`` state merges
    into a well-formed empty result).  ``schedule`` selects the pool
    dispatch discipline (see :func:`execute_shards`).

    With ``endpoint`` set (a broker's ``host:port``) the same tasks —
    same plan, same spawned seeds — go through
    :func:`repro.distributed.execute_shards_remote` instead of a local
    pool: the topology ships by value over the versioned wire format
    (no shared memory), results are content-address cached per
    ``cache``, and the merged output stays bit-for-bit identical to
    every local execution mode.

    ``retry``, ``checkpoint`` and ``fallback`` are the resilience knobs
    (see :mod:`repro.resilience`): ``retry`` governs transport retries
    on the broker path, ``checkpoint`` names a manifest that makes the
    run resumable (local *and* remote — completed shards are served
    from the content-addressed cache on re-invocation), and
    ``fallback="local"`` completes an ``endpoint=`` run in-process when
    the broker is unreachable, bit-identically.  All three default to
    the process-wide :func:`repro.resilience.configure` settings, which
    default to no checkpoint, no fallback, and a small capped
    exponential-backoff retry.

    ``backend`` is the kernel-backend request (see
    :mod:`repro.kernels.dispatch`); it is resolved here against the
    parameter-then-environment precedence — so a caller-side
    ``REPRO_KERNEL_BACKEND`` reaches workers that may not inherit the
    environment — and stamped on every shard task.

    Bit-packed rules (flooding) fold all runs into shared byte planes,
    so their state cannot be row-sharded; they are rejected.
    """
    from ..engine.engine import StaticTopology, as_topology
    from ..kernels.dispatch import requested_backend

    backend = requested_backend(backend)

    if getattr(rule, "runs_of", None) is not None:
        raise ValueError(
            f"{type(rule).__name__} packs multiple runs per state row and "
            "cannot be sharded along the run axis; shard it manually by "
            "constructing one rule per shard"
        )
    topo = as_topology(topology)
    runs = state.shape[0]
    if runs == 0:
        return _empty_result(
            state,
            topo.n,
            track_hits=track_hits,
            record_sizes=record_sizes,
            record_visited=record_visited,
        )
    shard_sizes = plan_shards(
        rule, runs, topo.n, budget_bytes=budget_bytes, max_shard=max_shard
    )
    master = seed_sequence_from(seed)
    seeds = spawn_seeds(master, len(shard_sizes))
    workers = default_workers() if workers is None else int(workers)
    workers = min(workers, len(shard_sizes))

    tel = get_telemetry()
    span = (
        tel.span(
            "engine.run_sharded",
            id_parts=seed_id_parts(master),
            runs=int(runs),
            shards=len(shard_sizes),
            workers=int(workers),
            transport="broker" if endpoint is not None else "pool",
        )
        if tel.enabled
        else None
    )
    # Install a trace context for the span's duration: its trace id is a
    # pure function of the master seed (same derivation machinery as the
    # span ids), and its parent is this span — so spans opened in
    # processes with no local stack (remote workers via the wire's
    # optional trace key, the broker's job span) stitch under this tree.
    scope = contextlib.ExitStack()
    if span is not None:
        ctx = tel.current_context()
        trace_id = (
            ctx.trace_id
            if ctx is not None
            else span_id_from("trace", *seed_id_parts(master))
        )
        prev_ctx = tel.install_context(
            TraceContext(trace_id=trace_id, parent_span_id=span.span_id)
        )
        scope.callback(tel.install_context, prev_ctx)
        scope.enter_context(span)
    with scope:
        checkpoint_path = None
        if endpoint is None:
            from ..resilience import resolve_checkpoint

            checkpoint_path = resolve_checkpoint(checkpoint)
        shared: SharedGraph | None = None
        ship: object = topo
        # Checkpointed local runs content-address their tasks through
        # the wire encoding, which a process-local SharedGraph handle
        # cannot cross: ship by value instead (same keys as the
        # distributed tier, so a resume can switch tiers freely).
        if (
            endpoint is None
            and checkpoint_path is None
            and workers > 1
            and isinstance(topo, StaticTopology)
        ):
            shared = topo.base.to_shared()
            ship = shared
        # Observing topologies (adaptive adversaries) accumulate a per-run
        # observation log, so one instance cannot serve several engine
        # invocations: every shard gets its own pristine replay.  Oblivious
        # sequences return themselves and still ship as one object.
        fresh = getattr(topo, "fresh_replay", None)
        per_shard_topo = (
            fresh if getattr(topo, "observes_process", False) and fresh else None
        )
        try:
            bounds = np.concatenate([[0], np.cumsum(shard_sizes)])
            tasks = [
                ShardTask(
                    rule=rule,
                    topology=ship if per_shard_topo is None else per_shard_topo(),
                    completion=completion,
                    state=state[lo:hi],
                    seed=s,
                    max_rounds=max_rounds,
                    track_hits=track_hits,
                    record_sizes=record_sizes,
                    record_visited=record_visited,
                    backend=backend,
                )
                for lo, hi, s in zip(bounds[:-1], bounds[1:], seeds)
            ]
            if endpoint is not None:
                from ..distributed.client import execute_shards_resilient

                results = execute_shards_resilient(
                    tasks,
                    endpoint,
                    workers=workers,
                    cache=cache,
                    retry=retry,
                    checkpoint=checkpoint,
                    fallback=fallback,
                    mp_context=mp_context,
                    schedule=schedule,
                )
            else:
                if checkpoint_path is not None:
                    from ..resilience import execute_shards_checkpointed

                    results = execute_shards_checkpointed(
                        tasks,
                        workers=workers,
                        cache=cache,
                        checkpoint=checkpoint_path,
                        mp_context=mp_context,
                    )
                else:
                    results = execute_shards(
                        tasks, workers, mp_context=mp_context, schedule=schedule
                    )
        finally:
            if shared is not None:
                # Unlink first: through the still-open creator handle it
                # also drops the resource-tracker registration on every
                # Python version (see SharedGraph.unlink).
                shared.unlink()
                shared.close()
        merged = merge_shard_results(results)
        if span is not None:
            skew = (merged.meta or {}).get("skew")
            span.annotate(rounds_run=int(merged.rounds_run), skew=skew)
    return merged
