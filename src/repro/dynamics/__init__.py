"""Time-evolving graphs: sequences of snapshots and dynamic COBRA/BIPS.

The subsystem splits into a topology layer and a process layer:

* :class:`GraphSequence` — deterministic random-access snapshot
  sequences, with :class:`FrozenSequence` (static limit),
  :class:`SnapshotSchedule` (replay, eager or lazy), and the stochastic
  providers :class:`EdgeMarkovianSequence`, :class:`RewiringSequence`,
  :class:`ChurnSequence`;
* :class:`DynamicCobraProcess` / :class:`DynamicBipsProcess` — runners
  that drive the static vectorised kernels over the per-round
  snapshots, with one seed stream for topology and one for the process.
"""

from .process import (
    DynamicBipsProcess,
    DynamicCobraProcess,
    dynamic_cover_time_samples,
    dynamic_infection_time_samples,
    run_seed_pairs,
)
from .providers import ChurnSequence, EdgeMarkovianSequence, RewiringSequence
from .sequence import (
    FrozenSequence,
    GraphSequence,
    MarkovGraphSequence,
    SnapshotSchedule,
)

__all__ = [
    "GraphSequence",
    "MarkovGraphSequence",
    "FrozenSequence",
    "SnapshotSchedule",
    "EdgeMarkovianSequence",
    "RewiringSequence",
    "ChurnSequence",
    "DynamicCobraProcess",
    "DynamicBipsProcess",
    "dynamic_cover_time_samples",
    "dynamic_infection_time_samples",
    "run_seed_pairs",
]
