"""Time-evolving graphs: sequences of snapshots and dynamic COBRA/BIPS.

The subsystem splits into a topology layer and a process layer:

* :class:`GraphSequence` — deterministic random-access snapshot
  sequences, with :class:`FrozenSequence` (static limit),
  :class:`SnapshotSchedule` (replay, eager or lazy), and the stochastic
  providers :class:`EdgeMarkovianSequence`, :class:`RewiringSequence`,
  :class:`ChurnSequence`;
* :class:`DynamicCobraProcess` / :class:`DynamicBipsProcess` — thin
  wrappers over the unified batched engine (:mod:`repro.engine`) that
  drive the static kernels over the per-round snapshots, with one seed
  stream for topology and one for the process.  Both offer single-run
  ``run`` and shared-realisation ``run_batch`` execution, and
  churn-aware completion criteria (``"all-active"``).
"""

from .process import (
    DynamicBipsProcess,
    DynamicCobraProcess,
    batch_seed_pair,
    dynamic_cover_time_batch,
    dynamic_cover_time_samples,
    dynamic_infection_time_batch,
    dynamic_infection_time_samples,
    run_seed_pairs,
)
from .providers import ChurnSequence, EdgeMarkovianSequence, RewiringSequence
from .sequence import (
    FrozenSequence,
    GraphSequence,
    MarkovGraphSequence,
    SnapshotSchedule,
)

__all__ = [
    "GraphSequence",
    "MarkovGraphSequence",
    "FrozenSequence",
    "SnapshotSchedule",
    "EdgeMarkovianSequence",
    "RewiringSequence",
    "ChurnSequence",
    "DynamicCobraProcess",
    "DynamicBipsProcess",
    "dynamic_cover_time_samples",
    "dynamic_infection_time_samples",
    "dynamic_cover_time_batch",
    "dynamic_infection_time_batch",
    "run_seed_pairs",
    "batch_seed_pair",
]
