"""Graph sequences: the substrate for time-evolving-graph processes.

A :class:`GraphSequence` is a deterministic, random-access sequence of
graph snapshots ``G_0, G_1, ...`` over a fixed vertex set ``0 .. n-1``.
``graph_at(t)`` is a pure function of the sequence's seed, so replaying
a sequence — in any access order — always yields the same topology
realisation.  This is what keeps dynamic-process experiments and the
duality/coupling audits reproducible: topology randomness lives in its
own stream, entirely separate from the process randomness.

Two mechanisms keep per-round :class:`~repro.graphs.Graph` construction
off the simulation hot path:

* an LRU snapshot cache (recently queried rounds return the cached
  object, so runners that revisit a round pay nothing), and
* state-change tracking in :class:`MarkovGraphSequence` — rounds whose
  transition left the topology untouched (zero accepted swaps, no edge
  flips) reuse the previous ``Graph`` object instead of rebuilding.

Concrete stochastic providers live in
:mod:`repro.dynamics.providers`; :class:`FrozenSequence` (a constant
sequence) and :class:`SnapshotSchedule` (replay of a precomputed list,
eager or lazily materialised) are defined here.
"""

from __future__ import annotations

import abc
from collections import OrderedDict
from typing import Callable, Sequence

import numpy as np

from ..graphs.graph import Graph

__all__ = [
    "GraphSequence",
    "MarkovGraphSequence",
    "FrozenSequence",
    "SnapshotSchedule",
]

# Round seeds are spawned from the master SeedSequence in blocks, so a
# long run does not pay one ``spawn`` call per round.
_SEED_BLOCK = 64


class _LRUCache:
    """A tiny LRU mapping (OrderedDict-based) with hit/miss counters."""

    __slots__ = ("capacity", "hits", "misses", "_data")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._data: OrderedDict = OrderedDict()

    def get(self, key):
        if key in self._data:
            self._data.move_to_end(key)
            self.hits += 1
            return self._data[key]
        self.misses += 1
        return None

    def put(self, key, value) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)

    def __len__(self) -> int:
        return len(self._data)


class GraphSequence(abc.ABC):
    """Abstract random-access sequence of graph snapshots.

    Parameters
    ----------
    n:
        Vertex count, shared by every snapshot (vertices never change
        identity; "departed" vertices appear with degree zero).
    name:
        Human-readable label used in reports.
    cache_size:
        Capacity of the LRU snapshot cache.
    """

    #: Oblivious by default.  Sequences that react to process state
    #: (see :mod:`repro.engine.observation`) set this True and
    #: implement ``observe(observation)``; the engine then delivers one
    #: :class:`~repro.engine.FrontierObservation` per round.
    observes_process = False

    def __init__(self, n: int, name: str, *, cache_size: int = 8) -> None:
        if n < 1:
            raise ValueError("sequence needs at least one vertex")
        self.n = int(n)
        self.name = name
        self._cache = _LRUCache(cache_size)

    # ------------------------------------------------------------------
    def fresh_replay(self) -> "GraphSequence":
        """A sequence replaying this realisation from a pristine state.

        Oblivious sequences are already pure functions of their seed,
        so sharing one instance is safe and the default returns
        ``self``.  Observing sequences (``observes_process = True``)
        accumulate an observation log and therefore *must* override
        this to return an unused clone — sharding and the per-run
        samplers call it before handing a sequence to a new engine
        invocation.
        """
        if self.observes_process:
            raise NotImplementedError(
                f"{type(self).__name__} observes the process and must "
                "implement fresh_replay()"
            )
        return self

    # ------------------------------------------------------------------
    def graph_at(self, t: int) -> Graph:
        """Return the snapshot in force during round ``t`` (cached)."""
        t = int(t)
        if t < 0:
            raise ValueError("round index must be >= 0")
        key = self._cache_key(t)
        graph = self._cache.get(key)
        if graph is None:
            graph = self._materialize(t)
            if graph.n != self.n:
                raise ValueError(
                    f"{self.name}: snapshot at t={t} has n={graph.n}, "
                    f"expected {self.n}"
                )
            self._cache.put(key, graph)
        return graph

    @property
    def cache_info(self) -> dict:
        """Snapshot-cache statistics (for tests and benchmarks)."""
        return {
            "hits": self._cache.hits,
            "misses": self._cache.misses,
            "size": len(self._cache),
            "capacity": self._cache.capacity,
        }

    # ------------------------------------------------------------------
    def _cache_key(self, t: int):
        """Cache key for round ``t`` (rounds sharing a snapshot share it)."""
        return t

    @abc.abstractmethod
    def _materialize(self, t: int) -> Graph:
        """Build (or fetch) the snapshot for round ``t``."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r}, n={self.n})"


class MarkovGraphSequence(GraphSequence):
    """Base class for sequences evolving as a Markov chain on topologies.

    Subclasses implement three hooks operating on internal state:

    * ``_reset_state()`` — (re)initialise the round-0 state;
    * ``_advance_state(rng)`` — one transition; returns True iff the
      topology actually changed;
    * ``_build_graph()`` — materialise a :class:`Graph` from the state.

    The base class owns reproducibility: the transition into round ``t``
    is driven by the ``t``-th child of the master
    :class:`numpy.random.SeedSequence`, so recomputing from round 0 (the
    slow path taken when a caller seeks backwards past the cache)
    regenerates the identical realisation.
    """

    def __init__(
        self,
        base: Graph,
        name: str,
        seed: int | np.random.SeedSequence | None = None,
        *,
        cache_size: int = 8,
    ) -> None:
        super().__init__(base.n, name, cache_size=cache_size)
        self.base = base
        self._master = (
            seed
            if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed)
        )
        self._round_seeds: list[np.random.SeedSequence] = []
        self._state_t = -1  # -1: state not yet initialised
        self._graph: Graph | None = None
        self._graph_stale = True

    # -- subclass hooks -------------------------------------------------
    @abc.abstractmethod
    def _reset_state(self) -> None:
        """(Re)initialise the round-0 topology state."""

    @abc.abstractmethod
    def _advance_state(self, rng: np.random.Generator) -> bool:
        """Advance one round; return True iff the topology changed."""

    @abc.abstractmethod
    def _build_graph(self) -> Graph:
        """Materialise the current state as a :class:`Graph`."""

    # -- machinery ------------------------------------------------------
    def _round_rng(self, t: int) -> np.random.Generator:
        """The generator driving the transition into round ``t`` (t >= 1)."""
        while len(self._round_seeds) < t:
            self._round_seeds.extend(self._master.spawn(_SEED_BLOCK))
        return np.random.default_rng(self._round_seeds[t - 1])

    def _materialize(self, t: int) -> Graph:
        if self._state_t < 0 or t < self._state_t:
            # Seeking backwards past the cache: deterministic restart.
            self._reset_state()
            self._state_t = 0
            self._graph_stale = True
        while self._state_t < t:
            nxt = self._state_t + 1
            if self._advance_state(self._round_rng(nxt)):
                self._graph_stale = True
            self._state_t = nxt
        if self._graph is None or self._graph_stale:
            self._graph = self._build_graph()
            self._graph_stale = False
        return self._graph


class FrozenSequence(GraphSequence):
    """A constant sequence: every round sees the same static graph.

    The rate-0 limit of every provider; dynamic runners on a frozen
    sequence reproduce their static counterparts sample-for-sample
    under the same process seed.
    """

    def __init__(self, graph: Graph) -> None:
        super().__init__(graph.n, f"frozen-{graph.name}", cache_size=1)
        self.base = graph

    def _cache_key(self, t: int):
        return 0

    def _materialize(self, t: int) -> Graph:
        return self.base


class SnapshotSchedule(GraphSequence):
    """Replay a precomputed list of snapshots on a round schedule.

    Parameters
    ----------
    snapshots:
        Graphs, or zero-argument callables producing graphs ("lazy"
        entries, materialised on first use and retained only by the LRU
        cache — a schedule of thousands of large snapshots never holds
        more than ``cache_size`` of them in memory).
    durations:
        Rounds each snapshot stays in force (default: 1 each).
    cycle:
        After the schedule's last round, wrap around (True) or hold the
        final snapshot forever (False, the default).
    """

    def __init__(
        self,
        snapshots: Sequence[Graph | Callable[[], Graph]],
        *,
        durations: Sequence[int] | None = None,
        cycle: bool = False,
        name: str = "schedule",
        cache_size: int = 8,
    ) -> None:
        if not snapshots:
            raise ValueError("schedule needs at least one snapshot")
        self._snapshots = list(snapshots)
        if durations is None:
            durations = [1] * len(self._snapshots)
        durations = [int(d) for d in durations]
        if len(durations) != len(self._snapshots):
            raise ValueError("durations must match snapshots one-to-one")
        if any(d < 1 for d in durations):
            raise ValueError("every duration must be >= 1")
        self._ends = np.cumsum(np.asarray(durations, dtype=np.int64))
        self.cycle = bool(cycle)
        self.materializations = 0
        first = self._entry(0)
        super().__init__(first.n, name, cache_size=cache_size)
        self._cache.put(0, first)

    def _entry(self, index: int) -> Graph:
        entry = self._snapshots[index]
        if callable(entry):
            self.materializations += 1
            entry = entry()
        if not isinstance(entry, Graph):
            raise TypeError("snapshot entries must be Graphs or Graph factories")
        return entry

    def snapshot_index(self, t: int) -> int:
        """Map a round index to the index of the snapshot in force."""
        total = int(self._ends[-1])
        t = t % total if self.cycle else min(t, total - 1)
        return int(np.searchsorted(self._ends, t, side="right"))

    def _cache_key(self, t: int):
        return self.snapshot_index(t)

    def _materialize(self, t: int) -> Graph:
        return self._entry(self.snapshot_index(t))
