"""Dynamic COBRA / BIPS runners over a :class:`GraphSequence`.

The runners are thin wrappers over the unified batched engine
(:mod:`repro.engine`): a :class:`~repro.dynamics.sequence.GraphSequence`
is a topology source, so the static and dynamic step loops are the
same ``(R, n)`` boolean program — ``run`` is the ``R = 1`` case and
``run_batch`` advances ``R`` runs sharing one topology realisation
(the ROADMAP's "batched dynamic runner").

Randomness contract: a runner consumes exactly one
:class:`numpy.random.Generator` for *process* randomness, while the
sequence owns its private *topology* stream.  On a
:class:`~repro.dynamics.sequence.FrozenSequence` the per-round draws
are bit-identical to the static engines', so frozen dynamic runs
reproduce static cover/infection samples exactly under the same seed —
the regression anchor for duality/coupling audits on dynamic graphs.

Snapshots may be momentarily disconnected or contain degree-zero
vertices (churned-out peers, edge-Markovian lulls).  COBRA particles
on an isolated vertex hold their position for the round; an isolated
vertex cannot be infected by BIPS (its selections are empty) and drops
out of the infected set unless it is the persistent source.  Because
"all ``n`` at once" is unreachable at moderate churn rates, every
runner and sampler accepts a churn-aware ``completion`` criterion:
``"all-vertices"`` (default), ``"all-active"`` (every currently-present
vertex), or ``"target-hit"`` via the engine layer.
"""

from __future__ import annotations

import numpy as np

from ..core.branching import BranchingPolicy, make_policy
from ..core.state import BipsResult, CobraResult
from ..engine.engine import SpreadEngine
from ..engine.rules import BipsRule, CobraRule, select_targets
from ..graphs.graph import Graph
from ..stats.rng import spawn_seeds
from .sequence import GraphSequence

__all__ = [
    "DynamicCobraProcess",
    "DynamicBipsProcess",
    "dynamic_cover_time_samples",
    "dynamic_infection_time_samples",
    "dynamic_cover_time_batch",
    "dynamic_infection_time_batch",
    "run_seed_pairs",
    "batch_seed_pair",
]


def _check_start(sequence: GraphSequence, vertex: int) -> int:
    vertex = int(vertex)
    if not 0 <= vertex < sequence.n:
        raise ValueError(f"vertex {vertex} out of range [0, {sequence.n})")
    return vertex


class DynamicCobraProcess:
    """COBRA on a time-evolving graph.

    The round-``t`` active set makes its selections on snapshot
    ``sequence.graph_at(t)``, producing ``C_{t+1}``.  Parameters mirror
    :class:`~repro.core.cobra.CobraProcess` with the graph replaced by
    a :class:`~repro.dynamics.sequence.GraphSequence`.
    """

    def __init__(
        self,
        sequence: GraphSequence,
        branching: BranchingPolicy | int | float = 2,
        *,
        lazy: bool = False,
    ) -> None:
        self.sequence = sequence
        self.policy = make_policy(branching)
        self.lazy = lazy
        self.rule = CobraRule(self.policy, lazy=self.lazy)

    # ------------------------------------------------------------------
    def step_at(
        self, t: int, active: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Advance the active set one round on the round-``t`` snapshot.

        ``active`` is an array of vertex ids; duplicate ids act as
        separate particles (the :meth:`CobraProcess.step
        <repro.core.cobra.CobraProcess.step>` contract).  The result is
        the sorted unique next active set; isolated particles hold
        their position.
        """
        graph = self.sequence.graph_at(t)
        active = np.asarray(active, dtype=np.int64)
        stranded = graph.degrees[active] == 0
        movers = active[~stranded]
        if movers.size == 0:
            return active.copy()
        counts = self.policy.draw_counts(movers.shape[0], rng)
        actors = np.repeat(movers, counts)
        targets = np.unique(select_targets(graph, actors, rng, self.lazy))
        if not stranded.any():
            return targets
        return np.union1d(targets, active[stranded])

    # ------------------------------------------------------------------
    def run(
        self,
        start: int | np.ndarray,
        rng: np.random.Generator,
        *,
        max_rounds: int | None = None,
        record: bool = False,
        completion: str = "all-vertices",
        target: int | None = None,
    ) -> CobraResult:
        """Run until the completion criterion holds (or the cap).

        The default criterion requires all ``n`` vertices visited;
        ``completion="all-active"`` requires only the vertices present
        in the current snapshot (churn-aware cover).
        """
        n = self.sequence.n
        if np.ndim(start) == 0:
            active = np.array([_check_start(self.sequence, start)], dtype=np.int64)
        else:
            active = np.unique(np.asarray(list(start), dtype=np.int64))
            if active.size == 0 or active[0] < 0 or active[-1] >= n:
                raise ValueError(f"start set must be nonempty within [0, {n})")
        state = np.zeros((1, n), dtype=bool)
        state[0, active] = True

        engine = SpreadEngine(self.rule, self.sequence, completion, target=target)
        res = engine.run(
            state,
            rng,
            max_rounds=max_rounds,
            track_hits=True,
            record_sizes=record,
            record_visited=record,
        )
        covered = bool(res.finish_times[0] >= 0)
        return CobraResult(
            covered=covered,
            cover_time=int(res.finish_times[0]) if covered else -1,
            rounds_run=res.rounds_run,
            hit_times=res.hit_times[0].copy(),
            active_sizes=(
                res.sizes[0].copy() if record else np.empty(0, np.int64)
            ),
            visited_counts=(
                res.visited_counts[0].copy() if record else np.empty(0, np.int64)
            ),
        )

    # ------------------------------------------------------------------
    def run_batch(
        self,
        starts: np.ndarray,
        rng: np.random.Generator,
        *,
        max_rounds: int | None = None,
        track_hits: bool = False,
        completion: str = "all-vertices",
        target: int | None = None,
    ):
        """Advance ``R`` dynamic runs sharing one topology realisation.

        All runs see the same snapshot sequence but use independent
        process randomness inside one ``(R, n)`` boolean program — the
        batched counterpart of :meth:`run`.  Returns a
        :class:`~repro.core.state.CobraBatchResult`.
        """
        from ..core.state import CobraBatchResult

        n = self.sequence.n
        starts = np.asarray(starts, dtype=np.int64)
        if starts.ndim != 1 or starts.size == 0:
            raise ValueError("starts must be a 1-D nonempty array of vertices")
        if starts.min() < 0 or starts.max() >= n:
            raise ValueError(f"start vertex out of range [0, {n})")
        state = np.zeros((starts.shape[0], n), dtype=bool)
        state[np.arange(starts.shape[0]), starts] = True

        engine = SpreadEngine(self.rule, self.sequence, completion, target=target)
        res = engine.run(state, rng, max_rounds=max_rounds, track_hits=track_hits)
        return CobraBatchResult(
            cover_times=res.finish_times,
            rounds_run=res.rounds_run,
            hit_times=res.hit_times,
        )


class DynamicBipsProcess:
    """BIPS with a persistent source on a time-evolving graph.

    The round-``t`` infection step runs on ``sequence.graph_at(t)``.
    Snapshots with isolated vertices restrict the selection kernel to
    degree-positive vertices with otherwise identical semantics.
    """

    def __init__(
        self,
        sequence: GraphSequence,
        source: int,
        branching: BranchingPolicy | int | float = 2,
        *,
        lazy: bool = False,
    ) -> None:
        self.sequence = sequence
        self.source = _check_start(sequence, source)
        self.policy = make_policy(branching)
        self.lazy = lazy
        self.rule_single = BipsRule(
            self.policy, self.source, lazy=self.lazy, discipline="single"
        )
        self.rule_batch = BipsRule(
            self.policy, self.source, lazy=self.lazy, discipline="batch"
        )

    # ------------------------------------------------------------------
    def step_at(
        self, t: int, infected: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """One infection round on the round-``t`` snapshot."""
        graph = self.sequence.graph_at(t)
        infected = np.asarray(infected, dtype=bool)
        if infected.shape != (graph.n,):
            raise ValueError(f"infected mask must have shape ({graph.n},)")
        return self.rule_single.step(
            graph, infected[None, :], np.ones(1, dtype=bool), rng
        )[0]

    # ------------------------------------------------------------------
    def run(
        self,
        rng: np.random.Generator,
        *,
        max_rounds: int | None = None,
        record_degrees: bool = False,
        completion: str = "all-vertices",
        target: int | None = None,
    ) -> BipsResult:
        """Run until the completion criterion holds (or the cap).

        ``completion="all-active"`` declares the run finished once
        every *currently-present* (degree-positive) vertex is infected
        — the reachable target under vertex churn.
        """
        n = self.sequence.n
        infected = np.zeros(n, dtype=bool)
        infected[self.source] = True

        degree_sizes = [] if record_degrees else None

        def observe(t: int, graph: Graph, state: np.ndarray) -> None:
            degree_sizes.append(int(graph.degrees[state[0]].sum()))

        engine = SpreadEngine(
            self.rule_single, self.sequence, completion, target=target
        )
        res = engine.run(
            infected[None, :],
            rng,
            max_rounds=max_rounds,
            record_sizes=True,
            on_round=observe if record_degrees else None,
        )
        final = res.final_state[0]
        if record_degrees:
            final_graph = self.sequence.graph_at(res.rounds_run)
            degree_sizes.append(int(final_graph.degrees[final].sum()))

        done = bool(res.finish_times[0] >= 0)
        return BipsResult(
            infected_all=done,
            infection_time=int(res.finish_times[0]) if done else -1,
            rounds_run=res.rounds_run,
            sizes=res.sizes[0].copy(),
            degree_sizes=np.asarray(
                degree_sizes if record_degrees else [], dtype=np.int64
            ),
            candidate_sizes=np.asarray([], dtype=np.int64),
            final_infected=final.copy(),
        )

    # ------------------------------------------------------------------
    def run_batch(
        self,
        runs: int,
        rng: np.random.Generator,
        *,
        max_rounds: int | None = None,
        record_sizes: bool = False,
        completion: str = "all-vertices",
        target: int | None = None,
    ):
        """Advance ``runs`` dynamic BIPS runs sharing one realisation.

        Returns a :class:`~repro.core.state.BipsBatchResult`; a
        finished run is frozen at its completion state.
        """
        from ..core.state import BipsBatchResult

        if runs < 1:
            raise ValueError("need at least one run")
        n = self.sequence.n
        infected = np.zeros((int(runs), n), dtype=bool)
        infected[:, self.source] = True

        engine = SpreadEngine(
            self.rule_batch, self.sequence, completion, target=target
        )
        res = engine.run(
            infected, rng, max_rounds=max_rounds, record_sizes=record_sizes
        )
        return BipsBatchResult(
            infection_times=res.finish_times,
            rounds_run=res.rounds_run,
            sizes=res.sizes,
        )


# ----------------------------------------------------------------------
# Seeding and sampling helpers
# ----------------------------------------------------------------------
def run_seed_pairs(
    seed: int | np.random.SeedSequence, runs: int
) -> list[tuple[np.random.SeedSequence, np.random.SeedSequence]]:
    """Spawn ``(topology, process)`` seed pairs, one per run.

    This is the published spawning discipline of the per-run samplers
    below: one child per run, each split into a topology stream (fed to
    the sequence factory) and a process stream (fed to the runner) — so
    audits can regenerate either stream independently.
    """
    return [tuple(child.spawn(2)) for child in spawn_seeds(seed, runs)]


def batch_seed_pair(
    seed: int | np.random.SeedSequence,
) -> tuple[np.random.SeedSequence, np.random.SeedSequence]:
    """Split a master seed into one ``(topology, process)`` pair.

    The batched samplers use a single pair for the whole batch: one
    topology realisation shared by all runs, one process stream driving
    the ``(R, n)`` program.  Published so experiment code (e.g. E16's
    static-anchor checks) can regenerate either stream independently.
    """
    ss = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    topo, proc = ss.spawn(2)
    return topo, proc


def _resolve_sequence(sequence, topology_seed, *, fresh: bool = False) -> GraphSequence:
    """Coerce a sequence-or-factory argument into a :class:`GraphSequence`.

    With ``fresh=True`` the result goes through
    :meth:`GraphSequence.fresh_replay` — a no-op for oblivious
    sequences, but mandatory before handing an *observing* sequence
    (``observes_process = True``, e.g. an adversarial topology) to a
    new engine invocation: each invocation must drive its own pristine
    replay log.
    """
    if isinstance(sequence, GraphSequence):
        return sequence.fresh_replay() if fresh else sequence
    if callable(sequence):
        made = sequence(topology_seed)
        if not isinstance(made, GraphSequence):
            raise TypeError("sequence factory must return a GraphSequence")
        return made.fresh_replay() if fresh else made
    raise TypeError("expected a GraphSequence or a factory seed -> GraphSequence")


def _sharded_dynamic_times(
    sequence,
    runs: int,
    rule,
    start_column: int,
    seed,
    *,
    max_rounds: int | None,
    completion: str,
    workers: int | None,
    endpoint: str | None = None,
    cache="auto",
    what: str,
) -> np.ndarray:
    """Shard a dynamic batched sampler over worker processes.

    Each shard realises its *own* :class:`GraphSequence` from the
    topology half of its spawned seed pair (so a factory argument
    yields one independent realisation per shard — between the single
    shared realisation of the plain batch path and the one-per-run of
    the scalar samplers); a plain :class:`GraphSequence` argument is
    shared by every shard, preserving quenched semantics.  The shard
    plan and seeds are independent of ``workers``, so the returned
    samples are identical at any worker count.  With ``endpoint`` set,
    the same tasks go to a :mod:`repro.distributed` broker — each
    remote worker re-realises its shard's sequence from the wire-
    encoded seed pair — and the samples stay identical.
    """
    from ..engine.completion import make_completion
    from ..parallel.sharding import (
        ShardTask,
        execute_shards,
        finished_times_or_raise,
        merge_shard_results,
        plan_shards,
    )

    # A probe realisation pins n (and validates the start vertex)
    # without consuming any shard's seeds.
    probe_topo, _ = batch_seed_pair(seed)
    n = _resolve_sequence(sequence, probe_topo).n
    start_column = int(start_column)
    if not 0 <= start_column < n:
        raise ValueError(f"vertex {start_column} out of range [0, {n})")

    shard_sizes = plan_shards(rule, int(runs), n)
    criterion = make_completion(completion)
    tasks = []
    for shard_seed, r in zip(spawn_seeds(seed, len(shard_sizes)), shard_sizes):
        topo_seed, proc_seed = batch_seed_pair(shard_seed)
        state = np.zeros((r, n), dtype=bool)
        state[:, start_column] = True
        tasks.append(
            ShardTask(
                rule=rule,
                topology=_resolve_sequence(sequence, topo_seed, fresh=True),
                completion=criterion,
                state=state,
                seed=proc_seed,
                max_rounds=max_rounds,
            )
        )
    if endpoint is not None:
        # The resilient entry point inherits the process-wide retry /
        # checkpoint / fallback configuration, so a dying broker
        # degrades a dynamic sweep exactly like a static one.
        from ..distributed.client import execute_shards_resilient

        results = execute_shards_resilient(
            tasks, endpoint, workers=workers, cache=cache
        )
    else:
        results = execute_shards(tasks, workers)
    res = merge_shard_results(results)
    return finished_times_or_raise(res.finish_times, f"sharded dynamic {what}")


def dynamic_cover_time_samples(
    sequence,
    runs: int = 32,
    *,
    start: int = 0,
    branching: BranchingPolicy | int | float = 2,
    lazy: bool = False,
    seed: int | np.random.SeedSequence = 0,
    max_rounds: int | None = None,
    completion: str = "all-vertices",
) -> np.ndarray:
    """Sample dynamic COBRA cover times, one run at a time.

    ``sequence`` is either a shared :class:`GraphSequence` (every run
    replays the same topology realisation) or a factory
    ``topology_seed -> GraphSequence`` (every run draws an independent
    realisation).  Raises if any run hits the round cap.  For the
    hardware-speed shared-realisation variant see
    :func:`dynamic_cover_time_batch`.
    """
    times = np.empty(int(runs), dtype=np.int64)
    for i, (topo_seed, proc_seed) in enumerate(run_seed_pairs(seed, int(runs))):
        seq = _resolve_sequence(sequence, topo_seed, fresh=True)
        proc = DynamicCobraProcess(seq, branching, lazy=lazy)
        result = proc.run(
            start,
            np.random.default_rng(proc_seed),
            max_rounds=max_rounds,
            completion=completion,
        )
        if not result.covered:
            raise RuntimeError(
                f"dynamic COBRA run {i} on {seq.name} hit the round cap "
                f"({result.rounds_run} rounds)"
            )
        times[i] = result.cover_time
    return times


def dynamic_infection_time_samples(
    sequence,
    runs: int = 32,
    *,
    source: int = 0,
    branching: BranchingPolicy | int | float = 2,
    lazy: bool = False,
    seed: int | np.random.SeedSequence = 0,
    max_rounds: int | None = None,
    completion: str = "all-vertices",
) -> np.ndarray:
    """Sample dynamic BIPS infection times, one run at a time (see above)."""
    times = np.empty(int(runs), dtype=np.int64)
    for i, (topo_seed, proc_seed) in enumerate(run_seed_pairs(seed, int(runs))):
        seq = _resolve_sequence(sequence, topo_seed, fresh=True)
        proc = DynamicBipsProcess(seq, source, branching, lazy=lazy)
        result = proc.run(
            np.random.default_rng(proc_seed),
            max_rounds=max_rounds,
            completion=completion,
        )
        if not result.infected_all:
            raise RuntimeError(
                f"dynamic BIPS run {i} on {seq.name} hit the round cap "
                f"({result.rounds_run} rounds)"
            )
        times[i] = result.infection_time
    return times


def dynamic_cover_time_batch(
    sequence,
    runs: int = 32,
    *,
    start: int = 0,
    branching: BranchingPolicy | int | float = 2,
    lazy: bool = False,
    seed: int | np.random.SeedSequence = 0,
    max_rounds: int | None = None,
    completion: str = "all-vertices",
    workers: int | None = None,
    endpoint: str | None = None,
    cache="auto",
) -> np.ndarray:
    """Sample dynamic COBRA cover times with the batched runner.

    By default all ``runs`` share one topology realisation (drawn from
    the topology half of :func:`batch_seed_pair`) and advance together
    in one ``(R, n)`` boolean program — the hardware-speed estimator
    for quenched (per-realisation) statistics.  Raises if any run hits
    the round cap.

    ``workers`` (any int >= 1) switches to sharded execution: the R
    axis splits into deterministic shards fanned out over worker
    processes, each shard realising its sequence locally from a
    spawned seed (see :func:`repro.parallel.run_sharded`).  Sharded
    samples are identical at every worker count but are a different —
    equally valid — stream than the default single-batch path.
    ``endpoint`` sends the same shards to a :mod:`repro.distributed`
    broker instead (``cache`` as in
    :func:`repro.distributed.execute_shards_remote`); samples match
    the local sharded path bit-for-bit.
    """
    if workers is not None or endpoint is not None:
        return _sharded_dynamic_times(
            sequence,
            runs,
            CobraRule(make_policy(branching), lazy=lazy),
            int(start),
            seed,
            max_rounds=max_rounds,
            completion=completion,
            workers=None if workers is None else int(workers),
            endpoint=endpoint,
            cache=cache,
            what="COBRA",
        )
    topo_seed, proc_seed = batch_seed_pair(seed)
    seq = _resolve_sequence(sequence, topo_seed, fresh=True)
    proc = DynamicCobraProcess(seq, branching, lazy=lazy)
    res = proc.run_batch(
        np.full(int(runs), _check_start(seq, start), dtype=np.int64),
        np.random.default_rng(proc_seed),
        max_rounds=max_rounds,
        completion=completion,
    )
    if not res.all_covered:
        raise RuntimeError(
            f"{(res.cover_times < 0).sum()} of {int(runs)} batched dynamic "
            f"COBRA runs on {seq.name} hit the round cap"
        )
    return res.cover_times.copy()


def dynamic_infection_time_batch(
    sequence,
    runs: int = 32,
    *,
    source: int = 0,
    branching: BranchingPolicy | int | float = 2,
    lazy: bool = False,
    seed: int | np.random.SeedSequence = 0,
    max_rounds: int | None = None,
    completion: str = "all-vertices",
    workers: int | None = None,
    endpoint: str | None = None,
    cache="auto",
) -> np.ndarray:
    """Sample dynamic BIPS infection times with the batched runner.

    The BIPS counterpart of :func:`dynamic_cover_time_batch`: one
    shared topology realisation, one ``(R, n)`` program — or, with
    ``workers`` / ``endpoint`` set, deterministic shards over worker
    processes or a broker's worker fleet with shard-local
    realisations (see :func:`dynamic_cover_time_batch`).
    """
    if workers is not None or endpoint is not None:
        return _sharded_dynamic_times(
            sequence,
            runs,
            BipsRule(make_policy(branching), int(source), lazy=lazy),
            int(source),
            seed,
            max_rounds=max_rounds,
            completion=completion,
            workers=None if workers is None else int(workers),
            endpoint=endpoint,
            cache=cache,
            what="BIPS",
        )
    topo_seed, proc_seed = batch_seed_pair(seed)
    seq = _resolve_sequence(sequence, topo_seed, fresh=True)
    proc = DynamicBipsProcess(seq, source, branching, lazy=lazy)
    res = proc.run_batch(
        int(runs),
        np.random.default_rng(proc_seed),
        max_rounds=max_rounds,
        completion=completion,
    )
    if not res.all_infected:
        raise RuntimeError(
            f"{(res.infection_times < 0).sum()} of {int(runs)} batched dynamic "
            f"BIPS runs on {seq.name} hit the round cap"
        )
    return res.infection_times.copy()
