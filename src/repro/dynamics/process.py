"""Dynamic COBRA / BIPS runners over a :class:`GraphSequence`.

The runners reuse the static vectorised kernels unchanged: each round
``t`` fetches the snapshot ``G_t`` and calls the corresponding static
``step`` (:meth:`repro.core.cobra.CobraProcess.step` /
:meth:`repro.core.bips.BipsProcess.step`) against it, so per-round cost
is identical to the static engines plus the sequence's advance cost.
Per-snapshot process objects are memoised in a small LRU keyed on the
snapshot object, so sequences that reuse snapshots (frozen, schedules,
quiet rounds) skip process re-construction entirely.

Randomness contract: a runner consumes exactly one
:class:`numpy.random.Generator` for *process* randomness, while the
sequence owns its private *topology* stream.  On a
:class:`~repro.dynamics.sequence.FrozenSequence` the per-round draws
are bit-identical to the static engines', so frozen dynamic runs
reproduce static cover/infection samples exactly under the same seed —
the regression anchor for duality/coupling audits on dynamic graphs.

Snapshots may be momentarily disconnected or contain degree-zero
vertices (churned-out peers, edge-Markovian lulls).  COBRA particles
on an isolated vertex hold their position for the round; an isolated
vertex cannot be infected by BIPS (its selections are empty) and drops
out of the infected set unless it is the persistent source.
"""

from __future__ import annotations

import numpy as np

from ..core.bips import BipsProcess, default_infection_cap
from ..core.branching import BranchingPolicy, FixedBranching, make_policy
from ..core.cobra import CobraProcess, default_round_cap
from ..core.state import BipsResult, CobraResult
from ..graphs.graph import Graph
from ..stats.rng import spawn_seeds
from .sequence import GraphSequence, _LRUCache

__all__ = [
    "DynamicCobraProcess",
    "DynamicBipsProcess",
    "dynamic_cover_time_samples",
    "dynamic_infection_time_samples",
    "run_seed_pairs",
]


def _check_start(sequence: GraphSequence, vertex: int) -> int:
    vertex = int(vertex)
    if not 0 <= vertex < sequence.n:
        raise ValueError(f"vertex {vertex} out of range [0, {sequence.n})")
    return vertex


class _SnapshotProcessCache:
    """LRU of per-snapshot process objects, keyed on snapshot identity.

    Keys are ``id(graph)``; every cached value holds a strong reference
    to its graph (``proc.graph``), so a live key can never be recycled
    for a different snapshot.
    """

    def __init__(self, build, capacity: int) -> None:
        self._build = build
        self._lru = _LRUCache(capacity)

    def get(self, graph: Graph):
        proc = self._lru.get(id(graph))
        if proc is None or proc.graph is not graph:
            proc = self._build(graph)
            self._lru.put(id(graph), proc)
        return proc


class DynamicCobraProcess:
    """COBRA on a time-evolving graph.

    The round-``t`` active set makes its selections on snapshot
    ``sequence.graph_at(t)``, producing ``C_{t+1}``.  Parameters mirror
    :class:`~repro.core.cobra.CobraProcess` with the graph replaced by
    a :class:`~repro.dynamics.sequence.GraphSequence`.
    """

    def __init__(
        self,
        sequence: GraphSequence,
        branching: BranchingPolicy | int | float = 2,
        *,
        lazy: bool = False,
        cache_size: int = 8,
    ) -> None:
        self.sequence = sequence
        self.policy = make_policy(branching)
        self.lazy = lazy
        self._procs = _SnapshotProcessCache(
            lambda g: CobraProcess(g, self.policy, lazy=self.lazy, validate=False),
            cache_size,
        )

    # ------------------------------------------------------------------
    def step_at(
        self, t: int, active: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Advance the active set one round on the round-``t`` snapshot."""
        graph = self.sequence.graph_at(t)
        proc = self._procs.get(graph)
        active = np.asarray(active, dtype=np.int64)
        stranded = graph.degrees[active] == 0
        if not stranded.any():
            return proc.step(active, rng)
        movers = active[~stranded]
        if movers.size == 0:
            return active.copy()
        return np.union1d(proc.step(movers, rng), active[stranded])

    # ------------------------------------------------------------------
    def run(
        self,
        start: int | np.ndarray,
        rng: np.random.Generator,
        *,
        max_rounds: int | None = None,
        record: bool = False,
    ) -> CobraResult:
        """Run until all ``n`` vertices have been visited (or the cap)."""
        n = self.sequence.n
        if np.ndim(start) == 0:
            active = np.array([_check_start(self.sequence, start)], dtype=np.int64)
        else:
            active = np.unique(np.asarray(list(start), dtype=np.int64))
            if active.size == 0 or active[0] < 0 or active[-1] >= n:
                raise ValueError(f"start set must be nonempty within [0, {n})")
        cap = (
            default_round_cap(self.sequence.graph_at(0))
            if max_rounds is None
            else int(max_rounds)
        )

        hit = np.full(n, -1, dtype=np.int64)
        hit[active] = 0
        uncovered = n - active.shape[0]
        sizes = [active.shape[0]] if record else None
        visited_counts = [n - uncovered] if record else None

        t = 0
        while uncovered > 0 and t < cap:
            active = self.step_at(t, active, rng)
            t += 1
            fresh = active[hit[active] < 0]
            hit[fresh] = t
            uncovered -= fresh.shape[0]
            if record:
                sizes.append(active.shape[0])
                visited_counts.append(n - uncovered)

        return CobraResult(
            covered=(uncovered == 0),
            cover_time=t if uncovered == 0 else -1,
            rounds_run=t,
            hit_times=hit,
            active_sizes=np.asarray(sizes if record else [], dtype=np.int64),
            visited_counts=np.asarray(
                visited_counts if record else [], dtype=np.int64
            ),
        )


class DynamicBipsProcess:
    """BIPS with a persistent source on a time-evolving graph.

    The round-``t`` infection step runs on ``sequence.graph_at(t)``.
    Snapshots with isolated vertices take a masked fallback path with
    the same selection semantics restricted to degree-positive vertices.
    """

    def __init__(
        self,
        sequence: GraphSequence,
        source: int,
        branching: BranchingPolicy | int | float = 2,
        *,
        lazy: bool = False,
        cache_size: int = 8,
    ) -> None:
        self.sequence = sequence
        self.source = _check_start(sequence, source)
        self.policy = make_policy(branching)
        self.lazy = lazy
        self._procs = _SnapshotProcessCache(
            lambda g: BipsProcess(
                g, self.source, self.policy, lazy=self.lazy, validate=False
            ),
            cache_size,
        )

    # ------------------------------------------------------------------
    def _select(
        self, graph: Graph, actors: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        targets = graph.sample_neighbors(actors, rng)
        if self.lazy:
            stay = rng.random(actors.shape[0]) < 0.5
            targets = np.where(stay, actors, targets)
        return targets

    def _step_with_isolated(
        self, graph: Graph, infected: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        live = np.nonzero(graph.degrees > 0)[0]
        nxt = np.zeros(graph.n, dtype=bool)
        if live.size:
            pick = self._select(graph, live, rng)
            nxt[live] = infected[pick]
            if isinstance(self.policy, FixedBranching) and self.policy.b >= 2:
                for _ in range(self.policy.b - 1):
                    pick = self._select(graph, live, rng)
                    nxt[live] |= infected[pick]
            else:
                p2 = self.policy.second_selection_probability()
                if p2 > 0.0:
                    actors = live[rng.random(live.shape[0]) < p2]
                    if actors.size:
                        nxt[actors] |= infected[self._select(graph, actors, rng)]
        nxt[self.source] = True
        return nxt

    def step_at(
        self, t: int, infected: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """One infection round on the round-``t`` snapshot."""
        graph = self.sequence.graph_at(t)
        infected = np.asarray(infected, dtype=bool)
        if infected.shape != (graph.n,):
            raise ValueError(f"infected mask must have shape ({graph.n},)")
        if graph.dmin >= 1:
            return self._procs.get(graph).step(infected, rng)
        return self._step_with_isolated(graph, infected, rng)

    # ------------------------------------------------------------------
    def run(
        self,
        rng: np.random.Generator,
        *,
        max_rounds: int | None = None,
        record_degrees: bool = False,
    ) -> BipsResult:
        """Run until all ``n`` vertices are infected at once (or the cap)."""
        n = self.sequence.n
        infected = np.zeros(n, dtype=bool)
        infected[self.source] = True
        cap = (
            default_infection_cap(self.sequence.graph_at(0))
            if max_rounds is None
            else int(max_rounds)
        )

        sizes = [int(infected.sum())]
        degree_sizes = (
            [int(self.sequence.graph_at(0).degrees[infected].sum())]
            if record_degrees
            else None
        )

        t = 0
        while not infected.all() and t < cap:
            infected = self.step_at(t, infected, rng)
            t += 1
            sizes.append(int(infected.sum()))
            if record_degrees:
                degree_sizes.append(
                    int(self.sequence.graph_at(t).degrees[infected].sum())
                )

        done = bool(infected.all())
        return BipsResult(
            infected_all=done,
            infection_time=t if done else -1,
            rounds_run=t,
            sizes=np.asarray(sizes, dtype=np.int64),
            degree_sizes=np.asarray(
                degree_sizes if record_degrees else [], dtype=np.int64
            ),
            candidate_sizes=np.asarray([], dtype=np.int64),
            final_infected=infected,
        )


# ----------------------------------------------------------------------
# Seeding and sampling helpers
# ----------------------------------------------------------------------
def run_seed_pairs(
    seed: int | np.random.SeedSequence, runs: int
) -> list[tuple[np.random.SeedSequence, np.random.SeedSequence]]:
    """Spawn ``(topology, process)`` seed pairs, one per run.

    This is the published spawning discipline of the samplers below:
    one child per run, each split into a topology stream (fed to the
    sequence factory) and a process stream (fed to the runner) — so
    audits can regenerate either stream independently.
    """
    return [tuple(child.spawn(2)) for child in spawn_seeds(seed, runs)]


def _resolve_sequence(sequence, topology_seed) -> GraphSequence:
    if isinstance(sequence, GraphSequence):
        return sequence
    if callable(sequence):
        made = sequence(topology_seed)
        if not isinstance(made, GraphSequence):
            raise TypeError("sequence factory must return a GraphSequence")
        return made
    raise TypeError("expected a GraphSequence or a factory seed -> GraphSequence")


def dynamic_cover_time_samples(
    sequence,
    runs: int = 32,
    *,
    start: int = 0,
    branching: BranchingPolicy | int | float = 2,
    lazy: bool = False,
    seed: int | np.random.SeedSequence = 0,
    max_rounds: int | None = None,
) -> np.ndarray:
    """Sample dynamic COBRA cover times ``runs`` times.

    ``sequence`` is either a shared :class:`GraphSequence` (every run
    replays the same topology realisation) or a factory
    ``topology_seed -> GraphSequence`` (every run draws an independent
    realisation).  Raises if any run hits the round cap.
    """
    times = np.empty(int(runs), dtype=np.int64)
    for i, (topo_seed, proc_seed) in enumerate(run_seed_pairs(seed, int(runs))):
        seq = _resolve_sequence(sequence, topo_seed)
        proc = DynamicCobraProcess(seq, branching, lazy=lazy)
        result = proc.run(
            start, np.random.default_rng(proc_seed), max_rounds=max_rounds
        )
        if not result.covered:
            raise RuntimeError(
                f"dynamic COBRA run {i} on {seq.name} hit the round cap "
                f"({result.rounds_run} rounds)"
            )
        times[i] = result.cover_time
    return times


def dynamic_infection_time_samples(
    sequence,
    runs: int = 32,
    *,
    source: int = 0,
    branching: BranchingPolicy | int | float = 2,
    lazy: bool = False,
    seed: int | np.random.SeedSequence = 0,
    max_rounds: int | None = None,
) -> np.ndarray:
    """Sample dynamic BIPS infection times ``runs`` times (see above)."""
    times = np.empty(int(runs), dtype=np.int64)
    for i, (topo_seed, proc_seed) in enumerate(run_seed_pairs(seed, int(runs))):
        seq = _resolve_sequence(sequence, topo_seed)
        proc = DynamicBipsProcess(seq, source, branching, lazy=lazy)
        result = proc.run(np.random.default_rng(proc_seed), max_rounds=max_rounds)
        if not result.infected_all:
            raise RuntimeError(
                f"dynamic BIPS run {i} on {seq.name} hit the round cap "
                f"({result.rounds_run} rounds)"
            )
        times[i] = result.infection_time
    return times
