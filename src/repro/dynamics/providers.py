"""Stochastic evolving-graph providers.

Three canonical dynamics from the evolving-graph literature, each a
:class:`~repro.dynamics.sequence.MarkovGraphSequence`:

* :class:`EdgeMarkovianSequence` — every potential edge is an
  independent two-state Markov chain (absent --birth--> present,
  present --death--> absent), the edge-Markovian model of Clementi et
  al. used for dynamic flooding/rumour-spreading bounds.
* :class:`RewiringSequence` — degree-preserving double-edge swaps
  ("k-swap") per round, the standard Markov chain on the set of simple
  graphs with a fixed degree sequence; applied to
  :func:`~repro.graphs.generators.random_regular_graph` it walks the
  space of random regular graphs (expanders w.h.p.).
* :class:`ChurnSequence` — vertices leave and rejoin a fixed base
  topology (peer-to-peer churn); departed vertices keep their identity
  but appear with degree zero, and the active part is kept connected
  around a protected anchor (the infection source).

All three are deterministic functions of their seed (see the module
docstring of :mod:`repro.dynamics.sequence`).
"""

from __future__ import annotations

import numpy as np

from ..graphs.graph import Graph, _ragged_arange
from ..graphs.validation import check_vertex_set, require_connected
from .sequence import MarkovGraphSequence

__all__ = [
    "EdgeMarkovianSequence",
    "RewiringSequence",
    "ChurnSequence",
    "try_swap_round",
    "advance_swap_state",
]


def _check_probability(value: float, label: str) -> float:
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{label} must be a probability in [0, 1], got {value}")
    return value


def try_swap_round(
    edges: np.ndarray,
    keys: set,
    n: int,
    swaps: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, set, bool]:
    """One round of double-edge-swap attempts on copies of the state.

    The exact draw order of :class:`RewiringSequence` (shared with
    :class:`repro.adversary.AdversarialSequence`'s oblivious phase, so
    a budget-0 adversary replays the oblivious realisation
    bit-for-bit): ``swaps`` edge-index pairs first, then the mirror
    coins, then a sequential accept/reject loop rejecting self-loops,
    parallel edges and identity proposals.
    """
    edges = edges.copy()
    keys = set(keys)
    m = edges.shape[0]
    pairs = rng.integers(0, m, size=(swaps, 2))
    mirror = rng.random(swaps) < 0.5
    n = np.int64(n)
    changed = False
    for (i, j), flip in zip(pairs.tolist(), mirror.tolist()):
        if i == j:
            continue
        a, b = edges[i]
        c, d = edges[j]
        if flip:
            c, d = d, c
        if a == c or b == d:
            continue  # proposal creates a self-loop
        new1 = (min(a, c), max(a, c))
        new2 = (min(b, d), max(b, d))
        k1 = new1[0] * n + new1[1]
        k2 = new2[0] * n + new2[1]
        old1 = min(a, b) * n + max(a, b)
        old2 = min(c, d) * n + max(c, d)
        if {k1, k2} == {old1, old2}:
            continue  # identity proposal (edges share a vertex)
        keys.discard(old1)
        keys.discard(old2)
        if k1 == k2 or k1 in keys or k2 in keys:
            keys.add(old1)
            keys.add(old2)
            continue  # proposal creates a parallel edge
        keys.add(k1)
        keys.add(k2)
        edges[i] = new1
        edges[j] = new2
        changed = True
    return edges, keys, changed


def advance_swap_state(owner, rng: np.random.Generator) -> bool:
    """One RewiringSequence-style round on ``owner``'s edge state.

    ``owner`` carries ``_edges`` / ``_keys`` / ``_built`` plus the
    ``swaps_per_round`` / ``keep_connected`` / ``max_retries`` knobs —
    :class:`RewiringSequence` itself, and the oblivious phase of
    :class:`repro.adversary.AdversarialSequence`.  A round whose
    accepted swaps disconnect the graph is re-drawn from the same
    round stream (up to ``max_retries`` times, then the round leaves
    the topology unchanged).
    """
    if owner.swaps_per_round == 0:
        return False
    attempts = owner.max_retries + 1 if owner.keep_connected else 1
    for _ in range(attempts):
        edges, keys, changed = try_swap_round(
            owner._edges, owner._keys, owner.n, owner.swaps_per_round, rng
        )
        if not changed:
            return False
        graph = Graph(owner.n, edges, name=owner.name)
        if owner.keep_connected and not graph.is_connected():
            continue
        owner._edges = edges
        owner._keys = keys
        owner._built = graph
        return True
    return False  # no connected proposal found; hold the topology


class EdgeMarkovianSequence(MarkovGraphSequence):
    """Each potential edge flips on/off with birth/death rates.

    State: one boolean per potential edge (all ``n(n-1)/2`` vertex
    pairs, so memory is quadratic in ``n`` — intended for the
    experiment sizes, up to a few thousand vertices).  An absent edge
    appears next round with probability ``birth``; a present edge
    disappears with probability ``death``.  The stationary edge density
    is ``birth / (birth + death)``; starting from ``base`` the chain
    mixes toward it at rate ``1 - birth - death`` per round.
    """

    def __init__(
        self,
        base: Graph,
        birth: float,
        death: float,
        seed: int | np.random.SeedSequence | None = None,
        *,
        cache_size: int = 8,
    ) -> None:
        if base.n < 2:
            raise ValueError("edge-Markovian dynamics need n >= 2")
        self.birth = _check_probability(birth, "birth")
        self.death = _check_probability(death, "death")
        super().__init__(
            base, f"edge-markovian-{base.name}", seed, cache_size=cache_size
        )
        iu, iv = np.triu_indices(base.n, k=1)
        self._iu = iu.astype(np.int64)
        self._iv = iv.astype(np.int64)
        # triu_indices enumerates pairs in ascending (u, v) order, so the
        # encoded keys are sorted and searchsorted gives the pair index.
        keys = self._iu * np.int64(base.n) + self._iv
        base_edges = base.edge_array()
        base_keys = base_edges[:, 0] * np.int64(base.n) + base_edges[:, 1]
        self._initial = np.zeros(keys.shape[0], dtype=bool)
        self._initial[np.searchsorted(keys, base_keys)] = True
        self._mask = self._initial.copy()

    def _reset_state(self) -> None:
        self._mask = self._initial.copy()

    def _advance_state(self, rng: np.random.Generator) -> bool:
        u = rng.random(self._mask.shape[0])
        nxt = np.where(self._mask, u >= self.death, u < self.birth)
        changed = bool(np.any(nxt != self._mask))
        self._mask = nxt
        return changed

    def _build_graph(self) -> Graph:
        edges = np.column_stack([self._iu[self._mask], self._iv[self._mask]])
        return Graph(self.n, edges, name=self.name)


class RewiringSequence(MarkovGraphSequence):
    """Degree-preserving double-edge swaps each round.

    Every round attempts ``swaps_per_round`` swaps: two edges
    ``{a, b}``, ``{c, d}`` are replaced by ``{a, c}``, ``{b, d}`` (or
    the mirrored pairing, chosen uniformly), rejecting proposals that
    would create a self-loop or a parallel edge.  Degrees — hence
    regularity — are invariant; the vertex set never changes.

    With ``keep_connected=True`` (default) a round whose accepted swaps
    disconnect the graph is re-drawn from the same round stream (up to
    ``max_retries`` times, then the round leaves the topology
    unchanged), so every snapshot stays connected.
    """

    def __init__(
        self,
        base: Graph,
        swaps_per_round: int,
        seed: int | np.random.SeedSequence | None = None,
        *,
        keep_connected: bool = True,
        max_retries: int = 20,
        cache_size: int = 8,
    ) -> None:
        if swaps_per_round < 0:
            raise ValueError("swaps_per_round must be >= 0")
        if base.m < 2 and swaps_per_round > 0:
            raise ValueError("rewiring needs at least two edges")
        if keep_connected:
            require_connected(base)
        self.swaps_per_round = int(swaps_per_round)
        self.keep_connected = bool(keep_connected)
        self.max_retries = int(max_retries)
        super().__init__(base, f"rewiring-{base.name}", seed, cache_size=cache_size)
        self._edges = base.edge_array()
        self._keys = set(self._edge_keys(self._edges).tolist())
        self._built: Graph | None = None

    def _edge_keys(self, edges: np.ndarray) -> np.ndarray:
        lo = np.minimum(edges[:, 0], edges[:, 1])
        hi = np.maximum(edges[:, 0], edges[:, 1])
        return lo * np.int64(self.n) + hi

    def _reset_state(self) -> None:
        self._edges = self.base.edge_array()
        self._keys = set(self._edge_keys(self._edges).tolist())
        self._built = None

    def _advance_state(self, rng: np.random.Generator) -> bool:
        return advance_swap_state(self, rng)

    def _build_graph(self) -> Graph:
        if self._built is not None:
            return self._built
        return Graph(self.n, self._edges, name=self.name)


class ChurnSequence(MarkovGraphSequence):
    """Vertices leave and rejoin a fixed base topology.

    Per round, each active unprotected vertex leaves with probability
    ``leave``; each inactive vertex attempts to rejoin with probability
    ``rejoin`` and succeeds if it has an active base-neighbour to
    attach to.  A snapshot is the subgraph of ``base`` induced by the
    active set; departed vertices remain in the vertex numbering with
    degree zero.

    Connectivity contract: protected vertices are never deactivated
    and the active subgraph always is a single connected component
    containing all of them — vertices a round would cut off from the
    anchor (``protected[0]``) are counted as churned out as well, and
    a departure wave that would isolate the anchor or sever any
    protected vertex from it is cancelled for that round.  This is the
    invariant the dynamic BIPS runner relies on: churn never
    disconnects the infected source.
    """

    def __init__(
        self,
        base: Graph,
        leave: float,
        rejoin: float,
        seed: int | np.random.SeedSequence | None = None,
        *,
        protected: tuple[int, ...] = (0,),
        cache_size: int = 8,
    ) -> None:
        require_connected(base)
        self.leave = _check_probability(leave, "leave")
        self.rejoin = _check_probability(rejoin, "rejoin")
        protected_arr = check_vertex_set(base, protected)
        super().__init__(base, f"churn-{base.name}", seed, cache_size=cache_size)
        self._protected = np.zeros(base.n, dtype=bool)
        self._protected[protected_arr] = True
        self.anchor = int(protected_arr[0])
        self._base_edges = base.edge_array()
        self._active = np.ones(base.n, dtype=bool)

    def _reset_state(self) -> None:
        self._active = np.ones(self.n, dtype=bool)

    def _anchor_component(self, active: np.ndarray) -> np.ndarray:
        """Boolean mask of the anchor's component in the induced subgraph."""
        base = self.base
        seen = np.zeros(self.n, dtype=bool)
        seen[self.anchor] = True
        frontier = np.array([self.anchor], dtype=np.int64)
        while frontier.size:
            starts = base.indptr[frontier]
            counts = base.degrees[frontier]
            flat = np.repeat(starts, counts) + _ragged_arange(counts)
            nxt = base.indices[flat]
            nxt = nxt[active[nxt] & ~seen[nxt]]
            if nxt.size == 0:
                break
            nxt = np.unique(nxt)
            seen[nxt] = True
            frontier = nxt
        return seen

    def _advance_state(self, rng: np.random.Generator) -> bool:
        previous = self._active
        leave_draw = rng.random(self.n)
        rejoin_draw = rng.random(self.n)

        departing = previous & ~self._protected & (leave_draw < self.leave)
        rejoining = ~previous & (rejoin_draw < self.rejoin)
        active = self._settle(previous & ~departing, rejoining)
        if active is None:
            # The wave would isolate the anchor or cut a protected
            # vertex off it: cancel this round's departures.  The
            # previous active set satisfies the invariant by induction,
            # so the fallback always settles.
            active = self._settle(previous, rejoining)
            if active is None:  # pragma: no cover - defensive
                active = previous.copy()

        changed = bool(np.any(active != previous))
        self._active = active
        return changed

    def _settle(
        self, kept: np.ndarray, rejoining: np.ndarray
    ) -> np.ndarray | None:
        """Attach rejoiners and prune to the anchor's component.

        Returns None when ``kept`` violates the connectivity contract
        (anchor left without a neighbour, or a protected vertex cut off
        from the anchor) — the caller then cancels the departure wave.
        """
        base = self.base
        if self.n > 1 and not np.any(kept[base.neighbors(self.anchor)]):
            return None
        if np.any(rejoining):
            # Rejoiners need an active base-neighbour to attach to.
            has_active_nbr = (
                np.add.reduceat(
                    kept[base.indices].astype(np.int64), base.indptr[:-1]
                )
                > 0
            )
            kept = kept | (rejoining & has_active_nbr)
        component = self._anchor_component(kept)
        if not np.all(component[self._protected]):
            return None
        # Vertices cut off from the anchor count as churned out.
        return kept & component

    def _build_graph(self) -> Graph:
        e = self._base_edges
        both = self._active[e[:, 0]] & self._active[e[:, 1]]
        return Graph(self.n, e[both], name=self.name)

    def active_at(self, t: int) -> np.ndarray:
        """Boolean mask of active vertices in the round-``t`` snapshot."""
        if t < 0:
            raise ValueError("round index must be >= 0")
        # Sync the chain state to round t directly — the LRU snapshot
        # cache serves graph_at() without touching the chain state, so
        # a cached lookup must not be trusted to have advanced it.
        self._materialize(int(t))
        return self._active.copy()
