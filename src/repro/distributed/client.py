"""Client side of the shard queue: submit, wait, merge, cache.

:func:`execute_shards_remote` is the distributed mirror of
:func:`repro.parallel.execute_shards` — same input (a list of
:class:`~repro.parallel.ShardTask`), same output (per-task results in
input order) — so :func:`repro.parallel.run_sharded` can swap one for
the other and keep its planning, seeding and merging untouched.  That
is the determinism argument in one line: the shard plan and the
spawned seeds are computed *before* the transport is chosen, so
``run_distributed`` over any broker, any worker count and any arrival
order is bit-for-bit identical to ``run_sharded(workers=1)``.

Before contacting the broker the client consults the content-addressed
:class:`~repro.distributed.cache.ResultCache`; fully-cached jobs never
open a socket at all.  Freshly computed shard results are written back
on arrival, so sweeps that revisit parameter points pay for each shard
once, machine-wide.
"""

from __future__ import annotations

import socket
import uuid

from ..telemetry import get_telemetry
from .cache import resolve_cache
from .wire import (
    decode_result,
    encode_task,
    parse_endpoint,
    recv_frame,
    send_frame,
    task_key,
)

__all__ = [
    "DistributedError",
    "execute_shards_remote",
    "run_distributed",
    "broker_status",
]


class DistributedError(RuntimeError):
    """A distributed job could not be completed (broker/worker failure)."""


def _request(sock: socket.socket, message: dict) -> dict:
    try:
        send_frame(sock, message)
        reply = recv_frame(sock)
    except TimeoutError as exc:
        raise DistributedError(f"timed out waiting for the broker: {exc}") from exc
    except OSError as exc:
        raise DistributedError(f"broker connection failed: {exc}") from exc
    if reply is None:
        raise DistributedError("broker closed the connection")
    return reply


def execute_shards_remote(
    tasks,
    endpoint,
    *,
    cache="auto",
    timeout: float | None = None,
    connect_timeout: float = 10.0,
) -> list:
    """Run shard tasks through a broker; results in input order.

    The remote counterpart of :func:`repro.parallel.execute_shards`:
    every task is encoded through :mod:`repro.distributed.wire`,
    content-addressed against ``cache`` (``"auto"`` honours
    ``REPRO_CACHE_DIR``; ``None`` disables), and only the misses are
    submitted as one job.  The call blocks until the broker reports
    the job done (``timeout`` bounds the wait; None waits forever) and
    raises :class:`DistributedError` if the job failed or the broker
    vanished.
    """
    tasks = list(tasks)
    if not tasks:
        return []
    tel = get_telemetry()
    store = resolve_cache(cache)
    encoded = [encode_task(task) for task in tasks]
    results: list = [None] * len(tasks)
    if store is None:
        # No store, no content addresses: hashing the full canonical
        # encoding per shard would be pure overhead.
        keys: list[str | None] = [None] * len(tasks)
        misses = list(range(len(tasks)))
    else:
        keys = [task_key(obj) for obj in encoded]
        misses = []
        for i, key in enumerate(keys):
            hit = store.get(key)
            if hit is None:
                misses.append(i)
            else:
                results[i] = hit
        hits = len(tasks) - len(misses)
        if hits:
            tel.count("client.cache.hits", hits)
        if misses:
            tel.count("client.cache.misses", len(misses))
        if tel.enabled:
            tel.event(
                "client.cache", hits=hits, misses=len(misses), shards=len(tasks)
            )
    if not misses:
        return results

    job_id = uuid.uuid4().hex
    host, port = parse_endpoint(endpoint)
    try:
        sock = socket.create_connection((host, port), timeout=connect_timeout)
    except OSError as exc:
        raise DistributedError(
            f"cannot reach broker at {host}:{port}: {exc}"
        ) from exc
    with sock:
        sock.settimeout(timeout)
        reply = _request(
            sock,
            {
                "type": "submit",
                "job_id": job_id,
                "tasks": [{"index": i, "task": encoded[i]} for i in misses],
            },
        )
        if reply.get("type") != "accepted":
            raise DistributedError(
                f"broker rejected job: {reply.get('error', reply)}"
            )
        reply = _request(sock, {"type": "wait", "job_id": job_id})
        if reply.get("type") == "failed":
            raise DistributedError(f"distributed job failed: {reply.get('error')}")
        if reply.get("type") != "done":
            raise DistributedError(f"unexpected broker reply {reply.get('type')!r}")
        for item in reply["results"]:
            i = int(item["index"])
            results[i] = decode_result(item["result"])
            if store is not None:
                store.put(keys[i], item["result"])
    return results


def run_distributed(
    rule,
    topology,
    completion,
    state,
    seed,
    *,
    endpoint,
    workers: int | None = None,
    max_rounds: int | None = None,
    track_hits: bool = False,
    record_sizes: bool = False,
    record_visited: bool = False,
    budget_bytes: int | None = None,
    max_shard: int | None = None,
    cache="auto",
):
    """Shard one engine invocation's R axis across a broker's workers.

    The drop-in distributed sibling of
    :func:`repro.parallel.run_sharded` — identical signature semantics
    plus ``endpoint`` (the broker's ``host:port``) and ``cache``.
    The shard plan and per-shard spawned seeds are the same pure
    functions of the arguments, so the merged
    :class:`~repro.engine.SpreadResult` is bit-for-bit identical to
    ``run_sharded`` at any worker count and any shard arrival order
    (``workers`` is accepted for signature compatibility and ignored —
    parallelism is however many workers the broker has).
    """
    from ..parallel.sharding import run_sharded

    kwargs = {}
    if budget_bytes is not None:
        kwargs["budget_bytes"] = int(budget_bytes)
    if max_shard is not None:
        kwargs["max_shard"] = int(max_shard)
    del workers  # broker-side parallelism; accepted for mirror-signature only
    return run_sharded(
        rule,
        topology,
        completion,
        state,
        seed,
        max_rounds=max_rounds,
        track_hits=track_hits,
        record_sizes=record_sizes,
        record_visited=record_visited,
        endpoint=endpoint,
        cache=cache,
        **kwargs,
    )


def broker_status(endpoint, *, timeout: float = 5.0) -> dict:
    """Fetch a broker's queue counters (pending/leased/done/failed/jobs)."""
    host, port = parse_endpoint(endpoint)
    try:
        sock = socket.create_connection((host, port), timeout=timeout)
    except OSError as exc:
        raise DistributedError(
            f"cannot reach broker at {host}:{port}: {exc}"
        ) from exc
    with sock:
        sock.settimeout(timeout)
        reply = _request(sock, {"type": "status"})
    if reply.get("type") != "status":
        raise DistributedError(f"unexpected broker reply {reply.get('type')!r}")
    return {k: v for k, v in reply.items() if k != "type"}
