"""Client side of the shard queue: submit, wait, merge, cache — resiliently.

:func:`execute_shards_remote` is the distributed mirror of
:func:`repro.parallel.execute_shards` — same input (a list of
:class:`~repro.parallel.ShardTask`), same output (per-task results in
input order) — so :func:`repro.parallel.run_sharded` can swap one for
the other and keep its planning, seeding and merging untouched.  That
is the determinism argument in one line: the shard plan and the
spawned seeds are computed *before* the transport is chosen, so
``run_distributed`` over any broker, any worker count and any arrival
order is bit-for-bit identical to ``run_sharded(workers=1)``.

Before contacting the broker the client consults the content-addressed
:class:`~repro.distributed.cache.ResultCache`; fully-cached jobs never
open a socket at all.  Freshly computed shard results are written back
on arrival, so sweeps that revisit parameter points pay for each shard
once, machine-wide.

Resilience (PR 8): transport failures — refused dials, dropped or
undecodable frames, a broker dying mid-job — are retried under a
:class:`~repro.resilience.RetryPolicy` (each attempt resubmits only
the still-missing shards, under a fresh job id), and a per-endpoint
:class:`~repro.resilience.CircuitBreaker` converts repeated refusals
into an immediate :class:`BrokerUnavailable`, which
:func:`execute_shards_resilient` can degrade into local sharded
execution (``fallback="local"``) with bit-identical results.  With
``checkpoint=`` set, the client polls the broker's incremental
``collect`` protocol and persists every completed shard (result into
the cache, index into an atomic
:class:`~repro.resilience.JobCheckpoint` manifest) the moment it
lands, so a client killed mid-job resumes without recomputing —
completed shards come back as cache hits.
"""

from __future__ import annotations

import socket
import time
import uuid

from ..resilience import (
    JobCheckpoint,
    RetryError,
    breaker_for,
    execute_shards_checkpointed,
    resolve_checkpoint,
    resolve_fallback,
    resolve_retry,
)
from ..resilience.faults import InjectedCrash, InjectedFault, active_fault_plan
from ..telemetry import get_telemetry
from .cache import resolve_cache
from .wire import (
    WireDecodeError,
    attach_trace,
    decode_result,
    encode_task,
    parse_endpoint,
    recv_frame,
    send_frame,
    task_key,
)

__all__ = [
    "DistributedError",
    "BrokerUnavailable",
    "execute_shards_remote",
    "execute_shards_resilient",
    "run_distributed",
    "broker_status",
    "transport_snapshot",
]


class DistributedError(RuntimeError):
    """A distributed job could not be completed (broker/worker failure)."""


class BrokerUnavailable(DistributedError):
    """The broker cannot be reached (retries exhausted or breaker open).

    The transport-level subset of :class:`DistributedError`: the job
    itself is fine, the queue is not.  This is the signal
    ``fallback="local"`` acts on — a *logical* job failure (poison
    shard, rejected submission) is never masked by falling back.
    """


def _request(sock: socket.socket, message: dict) -> dict:
    try:
        send_frame(sock, message)
        reply = recv_frame(sock)
    except TimeoutError as exc:
        raise DistributedError(f"timed out waiting for the broker: {exc}") from exc
    except OSError as exc:
        raise DistributedError(f"broker connection failed: {exc}") from exc
    if reply is None:
        raise DistributedError("broker closed the connection")
    return reply


def _exchange(sock: socket.socket, message: dict) -> dict:
    """Send one frame, read one reply; raw transport errors propagate.

    The retried sibling of :func:`_request`: callers inside the retry
    loop want ``ConnectionError``/``TimeoutError``/``OSError`` to stay
    themselves (they select the retry path), not to be wrapped.
    """
    send_frame(sock, message, site="client.send")
    reply = recv_frame(sock)
    if reply is None:
        raise ConnectionError("broker closed the connection")
    if reply.get("type") == "failed" and "malformed message" in str(
        reply.get("error", "")
    ):
        # The broker could not parse the frame we just sent: the
        # transport (or an injected corruption) mangled it in flight.
        # That is a connection-level event, not a job rejection — let
        # the retry policy resubmit on a fresh connection.
        raise ConnectionError(
            f"broker could not parse our frame: {reply.get('error')}"
        )
    return reply


def _open_socket(endpoint, connect_timeout: float, timeout) -> socket.socket:
    """Dial the broker; injected refusals surface as ``ConnectionError``."""
    host, port = parse_endpoint(endpoint)
    plan = active_fault_plan()
    if plan is not None and plan.refuse_connection("client.connect"):
        tel = get_telemetry()
        tel.count("faults.injected")
        if tel.enabled:
            tel.event("faults.refuse", site="client.connect")
        raise InjectedFault("refuse", "client.connect")
    sock = socket.create_connection((host, port), timeout=connect_timeout)
    sock.settimeout(timeout)
    return sock


def execute_shards_remote(
    tasks,
    endpoint,
    *,
    cache="auto",
    timeout: float | None = None,
    connect_timeout: float = 10.0,
    retry="default",
    checkpoint="default",
    poll_interval: float = 0.05,
) -> list:
    """Run shard tasks through a broker; results in input order.

    The remote counterpart of :func:`repro.parallel.execute_shards`:
    every task is encoded through :mod:`repro.distributed.wire`,
    content-addressed against ``cache`` (``"auto"`` honours
    ``REPRO_CACHE_DIR``; ``None`` disables), and only the misses are
    submitted as one job.  The call blocks until the broker reports
    the job done (``timeout`` bounds each broker exchange; None waits
    forever) and raises :class:`DistributedError` if the job failed.

    ``retry`` (a :class:`~repro.resilience.RetryPolicy`, ``"default"``
    for the configured process default, or None for single-shot)
    governs transport failures: each attempt resubmits only the shards
    still missing, under a fresh job id, and exhausting the policy
    raises :class:`BrokerUnavailable`.  ``checkpoint`` (a manifest
    path; ``"default"`` consults :func:`repro.resilience.configure`)
    switches collection to the broker's incremental ``collect``
    protocol and persists every completed shard as it lands, so an
    interrupted call resumes from the manifest — completed shards are
    served from the cache, observable via ``client.cache.hits``.
    """
    tasks = list(tasks)
    if not tasks:
        return []
    tel = get_telemetry()
    policy = resolve_retry(retry)
    checkpoint = resolve_checkpoint(checkpoint)
    store = resolve_cache(cache)
    if checkpoint is not None and store is None:
        raise ValueError(
            "checkpointed execution needs a result cache (the manifest "
            "stores shard digests, the cache stores the results); pass "
            "cache='auto' or a cache path"
        )
    encoded = [encode_task(task) for task in tasks]
    results: list = [None] * len(tasks)
    manifest: JobCheckpoint | None = None
    if store is None:
        # No store, no content addresses: hashing the full canonical
        # encoding per shard would be pure overhead.
        keys: list[str | None] = [None] * len(tasks)
    else:
        keys = [task_key(obj) for obj in encoded]
        if checkpoint is not None:
            manifest = JobCheckpoint.open(checkpoint, keys)
        hits = 0
        for i, key in enumerate(keys):
            hit = store.get(key)
            if hit is not None:
                results[i] = hit
                hits += 1
                if manifest is not None:
                    manifest.mark_done(i)
        misses = len(tasks) - hits
        if hits:
            tel.count("client.cache.hits", hits)
        if misses:
            tel.count("client.cache.misses", misses)
        if tel.enabled:
            tel.event(
                "client.cache", hits=hits, misses=misses, shards=len(tasks)
            )
        if manifest is not None:
            manifest.save()
    if all(result is not None for result in results):
        return results

    breaker = breaker_for(str(endpoint))
    if not breaker.allow():
        tel.count("client.breaker_fastfails")
        raise BrokerUnavailable(
            f"cannot reach broker at {endpoint}: circuit breaker open, "
            "failing fast"
        )

    def accept(index: int, payload: dict) -> bool:
        """Decode + persist one shard result; False if undecodable."""
        try:
            result = decode_result(payload)
        except WireDecodeError as exc:
            tel.count("client.decode_rejects")
            if tel.enabled:
                tel.event("client.decode_reject", index=index, error=str(exc))
            return False
        results[index] = result
        if store is not None:
            store.put(keys[index], payload)
        if manifest is not None:
            manifest.mark_done(index)
        return True

    def run_attempt() -> None:
        pending = [i for i in range(len(tasks)) if results[i] is None]
        if not pending:
            return
        job_id = uuid.uuid4().hex
        sock = _open_socket(endpoint, connect_timeout, timeout)
        with sock:
            submit = {
                "type": "submit",
                "job_id": job_id,
                "tasks": [
                    {"index": i, "task": encoded[i]} for i in pending
                ],
            }
            # The optional trace-context wire key: present only when the
            # client itself is tracing, so untraced submissions stay
            # byte-identical to the pre-trace format.
            if tel.enabled:
                attach_trace(submit, tel.current_context())
            reply = _exchange(sock, submit)
            if reply.get("type") != "accepted":
                raise DistributedError(
                    f"broker rejected job: {reply.get('error', reply)}"
                )
            if manifest is None:
                reply = _exchange(sock, {"type": "wait", "job_id": job_id})
                if reply.get("type") == "failed":
                    raise DistributedError(
                        f"distributed job failed: {reply.get('error')}"
                    )
                if reply.get("type") != "done":
                    raise DistributedError(
                        f"unexpected broker reply {reply.get('type')!r}"
                    )
                for item in reply["results"]:
                    accept(int(item["index"]), item["result"])
            else:
                _collect_loop(sock, job_id, pending)
        still = [i for i in pending if results[i] is None]
        if still:
            # Some result frames survived transport but not decoding
            # (e.g. injected payload corruption): resubmit just those
            # under the retry policy.
            raise ConnectionError(
                f"{len(still)} shard result(s) undecodable; resubmitting"
            )

    def _collect_loop(sock, job_id: str, pending: list[int]) -> None:
        plan = active_fault_plan()
        have: set[int] = set()
        while True:
            reply = _exchange(
                sock,
                {"type": "collect", "job_id": job_id, "have": sorted(have)},
            )
            if reply.get("type") != "partial":
                raise DistributedError(
                    f"unexpected broker reply {reply.get('type')!r}"
                )
            fresh = reply.get("results", ())
            for item in fresh:
                index = int(item["index"])
                have.add(index)
                if not accept(index, item["result"]):
                    # The broker holds a stored-but-undecodable result;
                    # polling again returns the same bytes forever, so
                    # abort the attempt and resubmit under a new job.
                    raise ConnectionError(
                        f"undecodable result for shard {index}; resubmitting"
                    )
            if fresh:
                manifest.save()
                tel.count("client.checkpointed", len(fresh))
                if plan is not None and plan.crash_client(
                    len(manifest.done_indices())
                ):
                    raise InjectedCrash(
                        "client.collect", len(manifest.done_indices())
                    )
            state = reply.get("state")
            if state == "failed":
                raise DistributedError(
                    f"distributed job failed: {reply.get('error')}"
                )
            if state == "done" and all(
                results[i] is not None for i in pending
            ):
                _exchange(sock, {"type": "drop", "job_id": job_id})
                return
            time.sleep(poll_interval)

    def attempt() -> None:
        try:
            run_attempt()
        except (DistributedError, InjectedCrash):
            raise  # logical failure / deliberate crash: never a breaker event
        except (ConnectionError, TimeoutError, OSError):
            breaker.record_failure()
            raise
        breaker.record_success()

    try:
        policy.run(attempt, what=f"distributed job via {endpoint}")
    except RetryError as exc:
        raise BrokerUnavailable(
            f"cannot reach broker at {endpoint}: {exc.last!r} "
            f"(after {exc.attempts} attempt(s))"
        ) from exc
    return results


def execute_shards_resilient(
    tasks,
    endpoint,
    *,
    workers: int | None = None,
    cache="auto",
    retry="default",
    checkpoint="default",
    fallback="default",
    mp_context: str | None = None,
    schedule: str = "static",
    timeout: float | None = None,
    connect_timeout: float = 10.0,
) -> list:
    """Remote execution with graceful degradation to the local tier.

    Runs :func:`execute_shards_remote`; if (and only if) that fails
    with :class:`BrokerUnavailable` — retries exhausted or the
    endpoint's circuit breaker open — and the resolved fallback mode is
    ``"local"``, the same tasks complete via the in-process pool
    (checkpointed when a manifest is configured), bit-identical by the
    per-shard seed contract.  Logical job failures always propagate.
    """
    fallback_mode = resolve_fallback(fallback)
    try:
        return execute_shards_remote(
            tasks,
            endpoint,
            cache=cache,
            retry=retry,
            checkpoint=checkpoint,
            timeout=timeout,
            connect_timeout=connect_timeout,
        )
    except BrokerUnavailable as exc:
        if fallback_mode != "local":
            raise
        tel = get_telemetry()
        tel.count("client.fallbacks")
        if tel.enabled:
            tel.event(
                "client.fallback",
                endpoint=str(endpoint),
                mode="local",
                cause=str(exc),
            )
        checkpoint_path = resolve_checkpoint(checkpoint)
        if checkpoint_path is not None:
            return execute_shards_checkpointed(
                tasks,
                workers=workers or 1,
                cache=cache,
                checkpoint=checkpoint_path,
                mp_context=mp_context,
            )
        from ..parallel.sharding import execute_shards

        return execute_shards(
            tasks, workers, mp_context=mp_context, schedule=schedule
        )


def run_distributed(
    rule,
    topology,
    completion,
    state,
    seed,
    *,
    endpoint,
    workers: int | None = None,
    max_rounds: int | None = None,
    track_hits: bool = False,
    record_sizes: bool = False,
    record_visited: bool = False,
    budget_bytes: int | None = None,
    max_shard: int | None = None,
    cache="auto",
    retry="default",
    checkpoint="default",
    fallback="default",
):
    """Shard one engine invocation's R axis across a broker's workers.

    The drop-in distributed sibling of
    :func:`repro.parallel.run_sharded` — identical signature semantics
    plus ``endpoint`` (the broker's ``host:port``), ``cache``, and the
    resilience knobs (``retry``, ``checkpoint``, ``fallback``).
    The shard plan and per-shard spawned seeds are the same pure
    functions of the arguments, so the merged
    :class:`~repro.engine.SpreadResult` is bit-for-bit identical to
    ``run_sharded`` at any worker count and any shard arrival order
    (``workers`` is accepted for signature compatibility and ignored —
    parallelism is however many workers the broker has).
    """
    from ..parallel.sharding import run_sharded

    kwargs = {}
    if budget_bytes is not None:
        kwargs["budget_bytes"] = int(budget_bytes)
    if max_shard is not None:
        kwargs["max_shard"] = int(max_shard)
    del workers  # broker-side parallelism; accepted for mirror-signature only
    return run_sharded(
        rule,
        topology,
        completion,
        state,
        seed,
        max_rounds=max_rounds,
        track_hits=track_hits,
        record_sizes=record_sizes,
        record_visited=record_visited,
        endpoint=endpoint,
        cache=cache,
        retry=retry,
        checkpoint=checkpoint,
        fallback=fallback,
        **kwargs,
    )


def transport_snapshot() -> dict:
    """This process's transport-side health: cache, breakers, counters.

    The shared status fragment ``/statusz`` and the CLI panels splice
    into their frames: the result-cache footprint (entries/bytes at
    the resolved ``REPRO_CACHE_DIR`` root), every registered
    circuit-breaker's state, and the ``client.*``/``retry.*``
    lifecycle counters.  Read-only and cheap — safe to call from any
    thread.
    """
    from ..resilience.retry import breaker_states
    from .cache import ResultCache

    root = ResultCache.default_root()
    if root is None:
        cache = {"enabled": False}
    elif root.is_dir():
        store = ResultCache(root)
        cache = {
            "enabled": True,
            "path": str(root),
            "entries": len(store),
            "bytes": store.total_bytes(),
        }
    else:
        cache = {"enabled": True, "path": str(root), "entries": 0, "bytes": 0}
    counters = {
        name: value
        for name, value in get_telemetry().counters().items()
        if name.startswith(("client.", "retry."))
    }
    return {"cache": cache, "breakers": breaker_states(), "counters": counters}


def broker_status(endpoint, *, timeout: float = 5.0) -> dict:
    """Fetch a broker's queue counters (pending/leased/done/failed/jobs)."""
    host, port = parse_endpoint(endpoint)
    try:
        sock = socket.create_connection((host, port), timeout=timeout)
    except OSError as exc:
        raise DistributedError(
            f"cannot reach broker at {host}:{port}: {exc}"
        ) from exc
    with sock:
        sock.settimeout(timeout)
        reply = _request(sock, {"type": "status"})
    if reply.get("type") != "status":
        raise DistributedError(f"unexpected broker reply {reply.get('type')!r}")
    return {k: v for k, v in reply.items() if k != "type"}
