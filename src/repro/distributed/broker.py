"""The shard-queue broker: fault-tolerant scheduling over TCP.

Two layers:

* :class:`ShardLedger` — a pure in-memory state machine over shard
  records (states ``pending → leased → done``, plus ``failed``).
  Workers *lease* shards in completion order (a worker asks for the
  next shard whenever it finishes one — the queue-level form of the
  ROADMAP's "dynamic shard stealing"); a lease carries a deadline that
  heartbeats renew; an expired lease, a worker disconnect, or a
  reported worker error *requeues* the shard, so a killed worker never
  loses work.  A shard that keeps failing is capped at
  ``max_attempts`` leases, after which its job is declared failed
  rather than looping forever.  The ledger takes explicit ``now``
  timestamps, so every transition is unit-testable without a clock.

* :class:`Broker` — a small asyncio TCP server speaking the framed
  JSON protocol of :mod:`repro.distributed.wire`.  Clients ``submit``
  a job (a list of encoded shard tasks keyed by shard index) and
  either ``wait`` for it (one blocking reply) or poll ``collect`` for
  incremental results (the checkpointing path), finishing with
  ``drop``; workers ``lease`` / ``heartbeat`` / ``complete`` /
  ``error``.  Shard payloads pass through the broker opaquely — it
  never decodes a task, so its memory and CPU footprint is queue-sized,
  not simulation-sized.  Result frames *are* shallowly validated
  (:func:`~repro.distributed.wire.result_envelope_error`): a
  structurally broken result is rejected and its shard requeued
  without poison-counting, instead of poisoning the client's decode.

Determinism: the broker controls only *where and when* shards run,
never *what they compute* — every task carries its own spawned seed —
so any interleaving of workers, requeues and retries merges into the
same bit-for-bit result (``repro.parallel.merge_shard_results`` keyed
by shard index).
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from ..telemetry import get_telemetry, span_id_from, summarize_values
from .wire import attach_trace, read_frame, result_envelope_error, write_frame

__all__ = ["ShardLedger", "ShardRecord", "QueueMetrics", "Broker"]

#: Shard states.
PENDING = "pending"
LEASED = "leased"
DONE = "done"
FAILED = "failed"


@dataclass
class ShardRecord:
    """One shard's ledger entry (payloads are opaque encoded tasks)."""

    shard_id: str
    job_id: str
    index: int
    payload: dict = field(repr=False)
    state: str = PENDING
    attempts: int = 0
    rejects: int = 0
    worker: str | None = None
    deadline: float | None = None
    result: dict | None = field(default=None, repr=False)
    error: str | None = None


class ShardLedger:
    """Pending/leased/done bookkeeping with lease timeouts and requeue.

    Parameters
    ----------
    lease_timeout:
        Seconds a lease stays valid without a heartbeat renewal.
    max_attempts:
        Total leases a shard may consume before its job is declared
        failed (each lease is one attempt; requeues do not reset it).
    """

    def __init__(
        self, *, lease_timeout: float = 30.0, max_attempts: int = 5
    ) -> None:
        if lease_timeout <= 0:
            raise ValueError("lease_timeout must be positive")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.lease_timeout = float(lease_timeout)
        self.max_attempts = int(max_attempts)
        self._shards: dict[str, ShardRecord] = {}
        self._queue: deque[str] = deque()
        self._jobs: dict[str, list[str]] = {}
        self._job_errors: dict[str, str] = {}

    # -- submission -----------------------------------------------------
    def submit(self, job_id: str, tasks: list[tuple[int, dict]]) -> None:
        """Register a job's shards (``(index, payload)`` pairs), FIFO.

        Atomic: the whole task list is validated before any state
        mutates, so a rejected submission (duplicate job or duplicate
        index) leaves no orphan shards behind and the job id stays
        reusable.
        """
        if job_id in self._jobs:
            raise ValueError(f"job {job_id!r} already submitted")
        indices = [int(index) for index, _ in tasks]
        if len(set(indices)) != len(indices):
            raise ValueError(f"duplicate shard index in {job_id!r}")
        ids: list[str] = []
        for index, (_, payload) in zip(indices, tasks):
            shard_id = f"{job_id}:{index}"
            self._shards[shard_id] = ShardRecord(
                shard_id=shard_id, job_id=job_id, index=index, payload=payload
            )
            self._queue.append(shard_id)
            ids.append(shard_id)
        self._jobs[job_id] = ids

    # -- worker side ----------------------------------------------------
    def lease(self, worker_id: str, now: float) -> ShardRecord | None:
        """Hand the next pending shard to ``worker_id`` (None if idle).

        Completion-order dispatch: whichever worker asks next gets the
        next shard, so fast workers naturally absorb the heavy tail.
        Shards of already-failed jobs are skipped.
        """
        while self._queue:
            shard_id = self._queue.popleft()
            record = self._shards.get(shard_id)
            if record is None or record.state != PENDING:
                continue
            if record.job_id in self._job_errors:
                continue
            record.state = LEASED
            record.worker = worker_id
            record.attempts += 1
            record.deadline = now + self.lease_timeout
            return record
        return None

    def renew(self, shard_id: str, worker_id: str, now: float) -> bool:
        """Heartbeat: push the lease deadline out; False if not leased so."""
        record = self._shards.get(shard_id)
        if record is None or record.state != LEASED or record.worker != worker_id:
            return False
        record.deadline = now + self.lease_timeout
        return True

    def complete(self, shard_id: str, result: dict) -> str | None:
        """Record a shard result; returns the job id (None if unknown).

        First result wins; a late duplicate (a worker finishing after
        its lease expired and the shard was recomputed elsewhere) is
        ignored — both copies are bit-identical by the per-shard seed
        contract, so either is correct.
        """
        record = self._shards.get(shard_id)
        if record is None:
            return None
        if record.state != DONE:
            record.state = DONE
            record.result = result
            record.worker = None
            record.deadline = None
        return record.job_id

    def fail(self, shard_id: str, worker_id: str, message: str) -> str | None:
        """A worker reported an execution error: requeue or give up.

        Like :meth:`renew`, the report only counts if ``worker_id``
        still holds the lease — a stale error from a worker whose
        lease already expired (the shard is pending again or leased to
        a healthy worker) must not requeue someone else's work or burn
        extra attempts.
        """
        record = self._shards.get(shard_id)
        if record is None:
            return None
        if record.state != LEASED or record.worker != worker_id:
            return record.job_id
        self._requeue(record, message)
        return record.job_id

    def reject_result(
        self, shard_id: str, worker_id: str, reason: str
    ) -> str | None:
        """A result frame failed validation: requeue without poison-counting.

        A shard whose *result* cannot be decoded did not fail to
        execute — the transport (or a faulty worker serialiser) mangled
        it — so the attempt is refunded before requeueing: a healthy
        worker re-running the shard starts from the same attempt budget
        it would have had without the mangled frame.  The refund is
        bounded by ``max_attempts`` *rejects* per shard, so a worker
        that deterministically produces garbage still exhausts the
        budget and fails the job instead of looping forever.  Like
        :meth:`fail`, the report only counts while ``worker_id`` holds
        the lease.
        """
        record = self._shards.get(shard_id)
        if record is None:
            return None
        if record.state != LEASED or record.worker != worker_id:
            return record.job_id
        record.rejects += 1
        if record.rejects < self.max_attempts:
            record.attempts = max(0, record.attempts - 1)
        self._requeue(record, f"result rejected: {reason}")
        return record.job_id

    def _requeue(self, record: ShardRecord, reason: str) -> None:
        if record.attempts >= self.max_attempts:
            record.state = FAILED
            record.error = reason
            record.worker = None
            record.deadline = None
            self._job_errors.setdefault(
                record.job_id,
                f"shard {record.shard_id} failed after {record.attempts} "
                f"attempts: {reason}",
            )
        else:
            record.state = PENDING
            record.worker = None
            record.deadline = None
            self._queue.append(record.shard_id)

    def expire(self, now: float) -> list[str]:
        """Requeue every lease whose deadline passed; returns job ids."""
        affected = []
        for record in self._shards.values():
            if (
                record.state == LEASED
                and record.deadline is not None
                and record.deadline < now
            ):
                worker = record.worker
                self._requeue(record, f"lease expired on worker {worker!r}")
                affected.append(record.job_id)
        return affected

    def release_worker(self, worker_id: str) -> list[str]:
        """Requeue everything leased by a disconnected worker."""
        affected = []
        for record in self._shards.values():
            if record.state == LEASED and record.worker == worker_id:
                self._requeue(record, f"worker {worker_id!r} disconnected")
                affected.append(record.job_id)
        return affected

    # -- client side ----------------------------------------------------
    def job_state(self, job_id: str) -> tuple[str, str | None]:
        """Return ``("running"|"done"|"failed"|"unknown", error)``."""
        error = self._job_errors.get(job_id)
        if error is not None:
            return "failed", error
        shard_ids = self._jobs.get(job_id)
        if shard_ids is None:
            return "unknown", None
        if all(self._shards[s].state == DONE for s in shard_ids):
            return "done", None
        return "running", None

    def job_shards(self, job_id: str) -> list[str]:
        """The shard ids a job was submitted with (empty if unknown)."""
        return list(self._jobs.get(job_id, ()))

    def job_results(self, job_id: str) -> list[tuple[int, dict]]:
        """All ``(index, result)`` pairs of a finished job, index order."""
        shard_ids = self._jobs.get(job_id, [])
        records = sorted(
            (self._shards[s] for s in shard_ids), key=lambda r: r.index
        )
        return [(r.index, r.result) for r in records]

    def done_results(
        self, job_id: str, exclude=()
    ) -> list[tuple[int, dict]]:
        """``(index, result)`` pairs of the job's *completed* shards.

        The incremental sibling of :meth:`job_results`, serving the
        ``collect`` protocol: a checkpointing client polls for whatever
        finished since its last poll, passing the indices it already
        holds as ``exclude``.  Works on running jobs; index order.
        """
        skip = {int(i) for i in exclude}
        out = [
            (record.index, record.result)
            for shard_id in self._jobs.get(job_id, ())
            if (record := self._shards[shard_id]).state == DONE
            and record.index not in skip
        ]
        out.sort(key=lambda pair: pair[0])
        return out

    def drop_job(self, job_id: str) -> None:
        """Forget a job and its shards (after the client collected them)."""
        for shard_id in self._jobs.pop(job_id, []):
            self._shards.pop(shard_id, None)
        self._job_errors.pop(job_id, None)

    def counts(self) -> dict:
        """Queue statistics: shards per state plus the live job count."""
        tally = {PENDING: 0, LEASED: 0, DONE: 0, FAILED: 0}
        for record in self._shards.values():
            tally[record.state] += 1
        tally["jobs"] = len(self._jobs)
        return tally

    def stale_leases(self, now: float, grace: float = 0.0) -> tuple[int, float]:
        """Leased shards whose deadline passed over ``grace`` seconds ago.

        Returns ``(count, worst_overdue_s)``.  A healthy broker sweeps
        expired leases back to pending within one sweep interval, so
        any lease overdue by more than a couple of intervals means the
        sweeper is wedged — the ``/healthz`` staleness signal.
        """
        count, worst = 0, 0.0
        for record in self._shards.values():
            if record.state != LEASED or record.deadline is None:
                continue
            overdue = now - record.deadline - grace
            if overdue > 0:
                count += 1
                worst = max(worst, overdue)
        return count, worst


class QueueMetrics:
    """Queue-health aggregation fed by broker transitions.

    The observability sibling of :class:`ShardLedger`: every transition
    the broker applies is mirrored here with an explicit ``now``
    timestamp (same unit-testability contract as the ledger — no
    hidden clock reads).  :meth:`snapshot` renders the state `repro
    status` reports: lifecycle counters, submit→lease wait and
    lease→complete execution latency percentiles, and per-worker
    throughput (fed by the ``stats`` dicts workers attach to their
    ``complete`` frames).

    Latency samples are kept in bounded windows (``window`` most
    recent), so a long-lived broker's metrics memory stays constant.
    """

    def __init__(self, *, window: int = 4096) -> None:
        self.counters = {
            "submits": 0,
            "shards_submitted": 0,
            "leases": 0,
            "heartbeats": 0,
            "requeues": 0,
            "completes": 0,
            "worker_errors": 0,
            "decode_rejects": 0,
        }
        self.wait_s: deque[float] = deque(maxlen=window)
        self.exec_s: deque[float] = deque(maxlen=window)
        self.workers: dict[str, dict] = {}
        self.started: float | None = None
        self._submitted_at: dict[str, float] = {}
        self._leased_at: dict[str, tuple[str, float]] = {}

    def on_submit(self, shard_ids, now: float) -> None:
        """A job's shards entered the queue."""
        if self.started is None:
            self.started = now
        self.counters["submits"] += 1
        self.counters["shards_submitted"] += len(shard_ids)
        for shard_id in shard_ids:
            self._submitted_at[shard_id] = now

    def on_lease(self, shard_id: str, worker_id: str, now: float) -> float | None:
        """A shard was handed out; returns its queue wait (if known)."""
        self.counters["leases"] += 1
        self._leased_at[shard_id] = (worker_id, now)
        submitted = self._submitted_at.get(shard_id)
        if submitted is None:
            return None
        wait = now - submitted
        self.wait_s.append(wait)
        return wait

    def on_heartbeat(self) -> None:
        """Count one lease-renewing heartbeat."""
        self.counters["heartbeats"] += 1

    def on_requeue(self, count: int = 1) -> None:
        """Count ``count`` shards returned to pending (expiry/disconnect/error)."""
        self.counters["requeues"] += count

    def on_complete(
        self, shard_id: str, now: float, stats: dict | None = None
    ) -> float | None:
        """A shard finished; returns its execution latency (if known)."""
        self.counters["completes"] += 1
        self._submitted_at.pop(shard_id, None)
        leased = self._leased_at.pop(shard_id, None)
        if leased is None:
            return None
        worker_id, leased_at = leased
        elapsed = now - leased_at
        self.exec_s.append(elapsed)
        worker = self.workers.setdefault(
            worker_id,
            {"completed": 0, "busy_s": 0.0, "runs": 0, "rounds": 0, "max_rss": 0},
        )
        worker["completed"] += 1
        worker["busy_s"] += elapsed
        if stats:
            worker["runs"] += int(stats.get("runs", 0) or 0)
            worker["rounds"] += int(stats.get("rounds_run", 0) or 0)
            rss = stats.get("max_rss")
            if rss:
                worker["max_rss"] = max(worker.get("max_rss", 0), int(rss))
        return elapsed

    def on_worker_error(self) -> None:
        """Count one worker-reported shard failure."""
        self.counters["worker_errors"] += 1

    def on_decode_reject(self) -> None:
        """Count one result frame rejected by envelope validation."""
        self.counters["decode_rejects"] += 1

    def snapshot(self, now: float) -> dict:
        """JSON-able metrics for the ``status`` reply."""
        elapsed = None if self.started is None else max(now - self.started, 1e-9)
        workers = {}
        for worker_id, stats in sorted(self.workers.items()):
            workers[worker_id] = {
                **stats,
                "throughput": (
                    stats["completed"] / elapsed if elapsed else 0.0
                ),
            }
        return {
            **self.counters,
            "uptime_s": elapsed,
            "wait_s": summarize_values(list(self.wait_s)),
            "exec_s": summarize_values(list(self.exec_s)),
            "workers": workers,
        }


class Broker:
    """Asyncio TCP broker serving the shard queue on ``host:port``.

    ``port=0`` binds an ephemeral port (read it back from
    :attr:`port` / :attr:`address` after start — the test and benchmark
    pattern).  Use :meth:`run_forever` from a CLI process, or
    :meth:`start_in_thread` / :meth:`shutdown` (also available as a
    context manager) to host the broker inside another program.

    A job whose client never collects it (disconnected, timed out,
    crashed) is reaped ``job_ttl`` seconds after reaching its final
    state, so an abandoned sweep cannot pin its shard payloads and
    results in broker memory forever.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        lease_timeout: float = 30.0,
        max_attempts: int = 5,
        sweep_interval: float | None = None,
        job_ttl: float = 3600.0,
    ) -> None:
        self.host = host
        self.port = int(port) or None
        self.ledger = ShardLedger(
            lease_timeout=lease_timeout, max_attempts=max_attempts
        )
        self.metrics = QueueMetrics()
        self.sweep_interval = (
            float(sweep_interval)
            if sweep_interval is not None
            else max(0.05, float(lease_timeout) / 4.0)
        )
        self.job_ttl = float(job_ttl)
        self._requested_port = int(port)
        self._server: asyncio.base_events.Server | None = None
        self._sweeper: asyncio.Task | None = None
        self._events: dict[str, asyncio.Event] = {}
        self._finished_at: dict[str, float] = {}
        self._job_traces: dict[str, dict] = {}
        self._job_started: dict[str, float] = {}
        self._handlers: set[asyncio.Task] = set()
        self._connections = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None

    # -- lifecycle ------------------------------------------------------
    @property
    def address(self) -> str:
        """The ``host:port`` endpoint string clients and workers dial."""
        return f"{self.host}:{self.port}"

    async def start(self) -> None:
        """Bind the listening socket and start the lease sweeper."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self._requested_port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._loop = asyncio.get_running_loop()
        self._sweeper = self._loop.create_task(self._sweep_loop())

    async def stop(self) -> None:
        """Close the server and cancel this broker's handler tasks.

        Only the broker's own connection handlers are cancelled — a
        host application embedding the broker in its event loop keeps
        its unrelated tasks running.
        """
        if self._sweeper is not None:
            self._sweeper.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._sweeper
            self._sweeper = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        handlers = [t for t in self._handlers if not t.done()]
        for task in handlers:
            task.cancel()
        await asyncio.gather(*handlers, return_exceptions=True)
        self._handlers.clear()

    def run_forever(self, ready=None) -> None:
        """Serve until interrupted (the ``repro broker`` CLI entry).

        ``ready``, if given, is called with the broker once the socket
        is bound (used to print the actual port).
        """

        async def _serve() -> None:
            await self.start()
            if ready is not None:
                ready(self)
            try:
                await asyncio.Event().wait()
            finally:
                await self.stop()

        asyncio.run(_serve())

    def start_in_thread(self) -> "Broker":
        """Run the broker's event loop in a daemon thread; returns self.

        Blocks until the socket is bound, so :attr:`address` is valid
        on return.  Pair with :meth:`shutdown` (or use the broker as a
        context manager).
        """
        if self._thread is not None:
            raise RuntimeError("broker already running in a thread")
        ready = threading.Event()
        failures: list[BaseException] = []

        def _run() -> None:
            loop = asyncio.new_event_loop()
            self._loop = loop
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(self.start())
            except BaseException as exc:  # surface bind errors to the caller
                failures.append(exc)
                ready.set()
                loop.close()
                return
            ready.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(self.stop())
                loop.close()

        self._thread = threading.Thread(
            target=_run, name="repro-broker", daemon=True
        )
        self._thread.start()
        ready.wait()
        if failures:
            self._thread.join()
            self._thread = None
            raise failures[0]
        return self

    def shutdown(self) -> None:
        """Stop a :meth:`start_in_thread` broker and join its thread."""
        if self._thread is None:
            return
        assert self._loop is not None
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._thread = None
        self._loop = None

    def __enter__(self) -> "Broker":
        """Context manager: start in a background thread."""
        return self.start_in_thread()

    def __exit__(self, *exc) -> None:
        """Context manager: shut the background thread down."""
        self.shutdown()

    # -- live observability ---------------------------------------------
    def _on_loop(self, fn):
        """Run ``fn()`` on the broker's event loop from any thread.

        The ledger and metrics tables are only ever mutated on the
        event-loop thread; hopping there for reads keeps the HTTP
        endpoint threads from observing partially-applied transitions.
        Falls back to a direct call when no loop is running (unit tests
        poking a never-started broker).
        """
        loop = self._loop
        if loop is None or not loop.is_running():
            return fn()

        async def _call():
            return fn()

        return asyncio.run_coroutine_threadsafe(_call(), loop).result(timeout=10)

    def _health_sync(self) -> dict:
        now = time.monotonic()
        grace = 2.0 * self.sweep_interval
        stale, worst = self.ledger.stale_leases(now, grace)
        sweeper_ok = self._sweeper is not None and not self._sweeper.done()
        ok = sweeper_ok and stale == 0
        payload = {
            "ok": ok,
            "sweeper_alive": sweeper_ok,
            "stale_leases": stale,
        }
        if not ok:
            detail = []
            if not sweeper_ok:
                detail.append("lease sweeper not running")
            if stale:
                detail.append(
                    f"{stale} lease(s) overdue by up to {worst:.1f}s "
                    "past the sweep grace window"
                )
            payload["detail"] = "; ".join(detail)
        return payload

    def health(self) -> dict:
        """Thread-safe ``/healthz`` verdict: liveness + lease staleness.

        ``ok`` is false when the sweeper task has died or a lease
        deadline sits more than two sweep intervals in the past
        without being requeued — both mean the queue has stopped making
        progress even though the socket still answers.
        """
        return self._on_loop(self._health_sync)

    def _status_sync(self) -> dict:
        now = time.monotonic()
        return {
            "role": "broker",
            "address": self.address,
            "pid": os.getpid(),
            "queue": self.ledger.counts(),
            "metrics": self.metrics.snapshot(now),
            "health": self._health_sync(),
        }

    def status_snapshot(self) -> dict:
        """Thread-safe ``/statusz`` frame: queue, metrics, cache, resources.

        The superset of the TCP ``status`` reply: ledger counts and
        :class:`QueueMetrics` (with per-worker throughput and peak
        RSS), plus this process's circuit-breaker states, result-cache
        footprint and resource snapshot.
        """
        from ..telemetry.resource import resource_snapshot
        from .client import transport_snapshot

        status = self._on_loop(self._status_sync)
        status.update(transport_snapshot())
        status["resources"] = resource_snapshot()
        return status

    def _metrics_extra_sync(self) -> dict:
        now = time.monotonic()
        counts = self.ledger.counts()
        snap = self.metrics.snapshot(now)
        stale, _ = self.ledger.stale_leases(now, 2.0 * self.sweep_interval)
        gauges: dict = {
            "broker.jobs": counts["jobs"],
            "broker.stale_leases": stale,
        }
        for state in (PENDING, LEASED, DONE, FAILED):
            gauges[f"broker.shards.{state}"] = counts[state]
        workers = snap.get("workers") or {}
        if workers:
            gauges["broker.worker.completed"] = [
                ({"worker": wid}, s["completed"]) for wid, s in workers.items()
            ]
            gauges["broker.worker.throughput"] = [
                ({"worker": wid}, s["throughput"]) for wid, s in workers.items()
            ]
            rss = [
                ({"worker": wid}, s["max_rss"])
                for wid, s in workers.items()
                if s.get("max_rss")
            ]
            if rss:
                gauges["broker.worker.max_rss_bytes"] = rss
        counters = {
            f"broker.queue.{key}": value
            for key, value in self.metrics.counters.items()
        }
        histograms = {}
        if snap.get("wait_s"):
            histograms["broker.wait.seconds"] = snap["wait_s"]
        if snap.get("exec_s"):
            histograms["broker.exec.seconds"] = snap["exec_s"]
        return {"gauges": gauges, "counters": counters, "histograms": histograms}

    def metrics_extra(self) -> dict:
        """Thread-safe extra ``/metrics`` families: queue depths and workers."""
        return self._on_loop(self._metrics_extra_sync)

    def serve_metrics(self, port: int, host: str = "127.0.0.1"):
        """Start a :class:`~repro.telemetry.live.MetricsServer` for this broker.

        Wires ``/metrics``/``/healthz``/``/statusz`` to the broker's
        thread-safe snapshots and returns the started server (port 0
        binds ephemerally; the caller owns ``stop()``).
        """
        from ..telemetry.live import MetricsServer

        server = MetricsServer(
            host=host,
            port=port,
            status=self.status_snapshot,
            health=self.health,
            extra=self.metrics_extra,
        )
        return server.start()

    # -- protocol -------------------------------------------------------
    def _job_span_id(self, job_id: str) -> str:
        """The deterministic span id of a traced job's ``broker.job`` span."""
        trace = self._job_traces.get(job_id, {})
        return span_id_from("broker.job", trace.get("id"), job_id)

    def _finish_job_span(self, job_id: str, state: str) -> None:
        """Close a traced job's ``broker.job`` span (idempotent via pop)."""
        started = self._job_started.pop(job_id, None)
        trace = self._job_traces.get(job_id)
        if trace is None:
            return
        tel = get_telemetry()
        if tel.enabled:
            wall = None if started is None else time.monotonic() - started
            tel.span_finished(
                "broker.job",
                self._job_span_id(job_id),
                parent_id=trace.get("parent"),
                trace_id=trace.get("id"),
                wall_s=wall,
                job=job_id,
                state=state,
            )

    def _notify(self, job_id: str | None) -> None:
        """Wake the job's waiter if the job just reached a final state."""
        if job_id is None:
            return
        event = self._events.get(job_id)
        if event is None:
            return
        state, _ = self.ledger.job_state(job_id)
        if state in ("done", "failed"):
            first = job_id not in self._finished_at
            event.set()
            self._finished_at.setdefault(job_id, time.monotonic())
            if first:
                self._finish_job_span(job_id, state)

    def _drop_job(self, job_id: str) -> None:
        if job_id in self._job_started:
            self._finish_job_span(job_id, "dropped")
        self.ledger.drop_job(job_id)
        self._events.pop(job_id, None)
        self._finished_at.pop(job_id, None)
        self._job_traces.pop(job_id, None)
        self._job_started.pop(job_id, None)

    async def _sweep_loop(self) -> None:
        tel = get_telemetry()
        while True:
            await asyncio.sleep(self.sweep_interval)
            now = time.monotonic()
            expired = self.ledger.expire(now)
            if expired:
                self.metrics.on_requeue(len(expired))
                if tel.enabled:
                    tel.event("broker.requeue", shards=len(expired), cause="expired")
            for job_id in expired:
                self._notify(job_id)
            # Reap finished jobs whose client never collected them
            # (disconnected, timed out, crashed): without this, the
            # abandoned shard payloads and results would pin broker
            # memory forever.
            for job_id, finished in list(self._finished_at.items()):
                if now - finished > self.job_ttl:
                    self._drop_job(job_id)

    async def _handle_wait(self, writer: asyncio.StreamWriter, job_id: str) -> None:
        event = self._events.get(job_id)
        if event is None:
            await write_frame(
                writer, {"type": "failed", "error": f"unknown job {job_id!r}"}
            )
            return
        await event.wait()
        state, error = self.ledger.job_state(job_id)
        if state == "failed":
            await write_frame(writer, {"type": "failed", "error": error})
        else:
            results = self.ledger.job_results(job_id)
            await write_frame(
                writer,
                {
                    "type": "done",
                    "results": [
                        {"index": index, "result": result}
                        for index, result in results
                    ],
                },
            )
        self._drop_job(job_id)

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        self._connections += 1
        worker_id = f"conn-{self._connections}"
        tel = get_telemetry()
        try:
            while True:
                message = await read_frame(reader)
                if message is None:
                    break
                kind = message.get("type")
                if kind == "lease":
                    now = time.monotonic()
                    record = self.ledger.lease(worker_id, now)
                    if record is None:
                        await write_frame(writer, {"type": "idle"})
                    else:
                        wait = self.metrics.on_lease(
                            record.shard_id, worker_id, now
                        )
                        if tel.enabled:
                            tel.event(
                                "broker.lease",
                                shard=record.shard_id,
                                worker=worker_id,
                                attempt=record.attempts,
                            )
                            if wait is not None:
                                tel.observe("broker.wait.seconds", wait)
                        reply = {
                            "type": "task",
                            "shard_id": record.shard_id,
                            "task": record.payload,
                            "lease_timeout": self.ledger.lease_timeout,
                        }
                        # Relay the job's trace context (if its submit
                        # carried one) so the worker's spans stitch
                        # under the client's tree.
                        attach_trace(
                            reply, self._job_traces.get(record.job_id)
                        )
                        await write_frame(writer, reply)
                elif kind == "heartbeat":
                    self.metrics.on_heartbeat()
                    self.ledger.renew(
                        message.get("shard_id", ""), worker_id, time.monotonic()
                    )
                elif kind == "complete":
                    now = time.monotonic()
                    shard_id = message["shard_id"]
                    reason = result_envelope_error(message.get("result"))
                    if reason is not None:
                        # A structurally broken result would only blow
                        # up later in the client's decode_result:
                        # requeue the shard here (without burning an
                        # attempt — this is a transport/serialiser
                        # fault, not a task fault) and tell the worker.
                        self.metrics.on_decode_reject()
                        self.metrics.on_requeue()
                        job_id = self.ledger.reject_result(
                            shard_id, worker_id, reason
                        )
                        if tel.enabled:
                            tel.event(
                                "broker.reject",
                                shard=shard_id,
                                worker=worker_id,
                                reason=reason,
                            )
                        await write_frame(
                            writer, {"type": "rejected", "error": reason}
                        )
                        self._notify(job_id)
                        continue
                    job_id = self.ledger.complete(shard_id, message["result"])
                    elapsed = self.metrics.on_complete(
                        shard_id, now, message.get("stats")
                    )
                    if tel.enabled:
                        tel.event(
                            "broker.complete",
                            shard=shard_id,
                            worker=worker_id,
                        )
                        if elapsed is not None:
                            tel.observe("broker.exec.seconds", elapsed)
                    await write_frame(writer, {"type": "ok"})
                    self._notify(job_id)
                elif kind == "error":
                    self.metrics.on_worker_error()
                    self.metrics.on_requeue()
                    job_id = self.ledger.fail(
                        message["shard_id"],
                        worker_id,
                        message.get("message", "worker error"),
                    )
                    if tel.enabled:
                        tel.event(
                            "broker.requeue",
                            shards=1,
                            cause="worker-error",
                            shard=message["shard_id"],
                            worker=worker_id,
                        )
                    await write_frame(writer, {"type": "ok"})
                    self._notify(job_id)
                elif kind == "submit":
                    job_id = message["job_id"]
                    try:
                        self.ledger.submit(
                            job_id,
                            [
                                (int(item["index"]), item["task"])
                                for item in message["tasks"]
                            ],
                        )
                    except (ValueError, KeyError, TypeError) as exc:
                        await write_frame(
                            writer, {"type": "failed", "error": str(exc)}
                        )
                        continue
                    self.metrics.on_submit(
                        self.ledger.job_shards(job_id), time.monotonic()
                    )
                    trace = message.get("trace")
                    if isinstance(trace, dict) and trace.get("id"):
                        self._job_traces[job_id] = {
                            "id": str(trace["id"]),
                            "parent": trace.get("parent"),
                        }
                        self._job_started[job_id] = time.monotonic()
                        if tel.enabled:
                            tel.span_started(
                                "broker.job",
                                self._job_span_id(job_id),
                                parent_id=trace.get("parent"),
                                trace_id=str(trace["id"]),
                                job=job_id,
                                shards=len(message["tasks"]),
                            )
                    if tel.enabled:
                        tel.event(
                            "broker.submit",
                            job=job_id,
                            shards=len(message["tasks"]),
                        )
                    self._events[job_id] = asyncio.Event()
                    await write_frame(
                        writer,
                        {"type": "accepted", "count": len(message["tasks"])},
                    )
                    self._notify(job_id)  # an empty job is already done
                elif kind == "wait":
                    await self._handle_wait(writer, message["job_id"])
                elif kind == "collect":
                    # Incremental, non-blocking collection: everything
                    # done since the indices the client already holds.
                    # Checkpointing clients poll this instead of "wait"
                    # so completed shards persist before the job ends.
                    job_id = message["job_id"]
                    state, error = self.ledger.job_state(job_id)
                    if state == "unknown":
                        await write_frame(
                            writer,
                            {
                                "type": "failed",
                                "error": f"unknown job {job_id!r}",
                            },
                        )
                    else:
                        fresh = self.ledger.done_results(
                            job_id, exclude=message.get("have", ())
                        )
                        await write_frame(
                            writer,
                            {
                                "type": "partial",
                                "state": state,
                                "error": error,
                                "results": [
                                    {"index": index, "result": result}
                                    for index, result in fresh
                                ],
                            },
                        )
                elif kind == "drop":
                    self._drop_job(message["job_id"])
                    await write_frame(writer, {"type": "ok"})
                elif kind == "status":
                    await write_frame(
                        writer,
                        {
                            "type": "status",
                            **self.ledger.counts(),
                            "metrics": self.metrics.snapshot(time.monotonic()),
                        },
                    )
                else:
                    await write_frame(
                        writer,
                        {
                            "type": "failed",
                            "error": f"unknown message type {kind!r}",
                        },
                    )
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except (ValueError, KeyError, TypeError) as exc:
            # A malformed frame (port scanner, bogus length prefix,
            # non-JSON payload, missing field): answer if the stream
            # still works, then drop the connection — after a framing
            # error the byte stream is unsynchronised, and the broker
            # itself must survive any garbage a TCP listener attracts.
            with contextlib.suppress(Exception):
                await write_frame(
                    writer, {"type": "failed", "error": f"malformed message: {exc}"}
                )
        finally:
            released = self.ledger.release_worker(worker_id)
            if released:
                self.metrics.on_requeue(len(released))
                if tel.enabled:
                    tel.event(
                        "broker.requeue",
                        shards=len(released),
                        cause="disconnect",
                        worker=worker_id,
                    )
            for job_id in released:
                self._notify(job_id)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()
