"""repro.distributed — broker/worker shard queue for multi-host execution.

PR 3's sharded execution fans an engine invocation's R axis over
worker *processes* on one host; this package extends the same shard
task unit (rule + topology + spawned seed — see
:class:`repro.parallel.ShardTask`) across machine boundaries:

* :mod:`~repro.distributed.wire` — a versioned, canonical JSON
  encoding of shard tasks and results (replacing the pickle-only pool
  path), plus the framed TCP protocol;
* :mod:`~repro.distributed.broker` — an asyncio queue holding the
  shard ledger (pending/leased/done), with lease timeouts, heartbeat
  renewal and requeue-on-dead-worker;
* :mod:`~repro.distributed.worker` — the lease/execute/stream-back
  loop around :func:`repro.parallel.run_shard`;
* :mod:`~repro.distributed.client` — job submission and collection,
  mirroring :func:`repro.parallel.execute_shards`;
* :mod:`~repro.distributed.cache` — a content-addressed result store
  keyed by the canonical task encoding.

Determinism contract: the shard plan and per-shard spawned seeds are
computed before any transport is involved, so
:func:`run_distributed` (also surfaced as
:meth:`repro.engine.SpreadEngine.run_distributed` and the CLI's
``--endpoint``) returns results bit-for-bit identical to
:meth:`repro.engine.SpreadEngine.run_sharded` at any worker count,
arrival order, or mid-run worker death.
"""

from .broker import Broker, ShardLedger, ShardRecord
from .cache import (
    CACHE_ENV_VAR,
    CACHE_MAX_BYTES_ENV_VAR,
    ResultCache,
    resolve_cache,
)
from .client import (
    BrokerUnavailable,
    DistributedError,
    broker_status,
    execute_shards_remote,
    execute_shards_resilient,
    run_distributed,
    transport_snapshot,
)
from .wire import (
    WIRE_VERSION,
    WireDecodeError,
    attach_trace,
    canonical_bytes,
    decode_result,
    decode_task,
    encode_result,
    encode_task,
    parse_endpoint,
    result_envelope_error,
    task_key,
)
from .worker import run_worker

__all__ = [
    "Broker",
    "ShardLedger",
    "ShardRecord",
    "CACHE_ENV_VAR",
    "CACHE_MAX_BYTES_ENV_VAR",
    "ResultCache",
    "resolve_cache",
    "BrokerUnavailable",
    "DistributedError",
    "broker_status",
    "transport_snapshot",
    "execute_shards_remote",
    "execute_shards_resilient",
    "run_distributed",
    "run_worker",
    "WIRE_VERSION",
    "WireDecodeError",
    "attach_trace",
    "canonical_bytes",
    "decode_result",
    "decode_task",
    "encode_result",
    "encode_task",
    "parse_endpoint",
    "result_envelope_error",
    "task_key",
]
