"""The shard worker: lease, execute, stream back, repeat.

A worker is a plain blocking-socket loop around the one engine entry
point the whole repo shares, :func:`repro.parallel.run_shard`: it
leases a shard from the broker, decodes the task (rule, topology,
completion, state, seed) through :mod:`repro.distributed.wire`,
executes it, and streams the encoded result back.  Leasing happens in
completion order — a worker only asks for the next shard after
finishing the last — which is what balances heavy-tailed cover times
across a heterogeneous pool.

While a shard is computing, a daemon heartbeat thread renews the lease
at a third of the broker's lease timeout, so long shards on healthy
workers are never requeued; a worker that is killed simply stops
heartbeating (and drops its connection), and the broker requeues its
shard.  A task that *raises* is reported as an ``error`` message
instead of silently dying, letting the broker retry it elsewhere or
fail the job after ``max_attempts``.
"""

from __future__ import annotations

import socket
import threading
import time

from ..parallel.sharding import run_shard
from ..telemetry import get_telemetry
from .wire import decode_task, encode_result, parse_endpoint, recv_frame, send_frame

__all__ = ["run_worker"]

#: The per-shard timing keys a worker copies from the result's shard
#: meta into the ``stats`` dict of its ``complete`` frame — the only
#: place shard timings cross the wire (results themselves stay
#: meta-free so the wire format and cache entries are unchanged).
_STATS_KEYS = ("wall_s", "cpu_s", "runs", "rounds_run")


def _heartbeat_loop(
    sock: socket.socket,
    lock: threading.Lock,
    shard_id: str,
    interval: float,
    stop: threading.Event,
) -> None:
    while not stop.wait(interval):
        try:
            with lock:
                send_frame(sock, {"type": "heartbeat", "shard_id": shard_id})
        except OSError:
            return


def _connect(
    host: str, port: int, retries: int, retry_delay: float
) -> socket.socket:
    for attempt in range(retries + 1):
        try:
            return socket.create_connection((host, port), timeout=10.0)
        except OSError:
            if attempt == retries:
                raise
            time.sleep(retry_delay)
    raise AssertionError("unreachable")  # pragma: no cover


def run_worker(
    endpoint,
    *,
    max_tasks: int | None = None,
    poll_interval: float = 0.5,
    connect_retries: int = 20,
    retry_delay: float = 0.25,
) -> int:
    """Serve shards from ``endpoint`` until the broker goes away.

    Parameters
    ----------
    endpoint:
        Broker address, anything :func:`repro.distributed.parse_endpoint`
        accepts (``"host:port"``).
    max_tasks:
        Exit after this many completed shards (None = run until the
        broker closes the connection — the CLI deployment mode).
    poll_interval:
        Sleep between lease attempts while the queue is empty.
    connect_retries / retry_delay:
        Dial retries, so workers may be launched before (or while) the
        broker comes up.

    Returns the number of shards completed (including ones that ended
    in a reported error).
    """
    host, port = parse_endpoint(endpoint)
    sock = _connect(host, port, int(connect_retries), float(retry_delay))
    sock.settimeout(None)
    lock = threading.Lock()
    completed = 0
    tel = get_telemetry()
    try:
        while max_tasks is None or completed < max_tasks:
            with lock:
                send_frame(sock, {"type": "lease"})
            message = recv_frame(sock)
            if message is None:
                break
            kind = message.get("type")
            if kind == "idle":
                time.sleep(poll_interval)
                continue
            if kind != "task":
                break
            shard_id = message["shard_id"]
            interval = max(0.05, float(message.get("lease_timeout", 30.0)) / 3.0)
            stop = threading.Event()
            heartbeat = threading.Thread(
                target=_heartbeat_loop,
                args=(sock, lock, shard_id, interval, stop),
                name="repro-worker-heartbeat",
                daemon=True,
            )
            heartbeat.start()
            if tel.enabled:
                tel.event("worker.lease", shard=shard_id)
            try:
                result = run_shard(decode_task(message["task"]))
            except Exception as exc:
                stop.set()
                heartbeat.join()
                tel.count("worker.errors")
                if tel.enabled:
                    tel.event(
                        "worker.error",
                        shard=shard_id,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                with lock:
                    send_frame(
                        sock,
                        {
                            "type": "error",
                            "shard_id": shard_id,
                            "message": f"{type(exc).__name__}: {exc}",
                        },
                    )
                if recv_frame(sock) is None:
                    break
                completed += 1
                continue
            stop.set()
            heartbeat.join()
            shard_meta = (result.meta or {}).get("shard") or {}
            stats = {
                key: shard_meta[key] for key in _STATS_KEYS if key in shard_meta
            }
            tel.count("worker.completed")
            if tel.enabled:
                tel.event("worker.complete", shard=shard_id, **stats)
            with lock:
                frame = {
                    "type": "complete",
                    "shard_id": shard_id,
                    "result": encode_result(result),
                }
                if stats:
                    frame["stats"] = stats
                send_frame(sock, frame)
            if recv_frame(sock) is None:
                break
            completed += 1
    except (ConnectionError, OSError):
        pass
    finally:
        sock.close()
    return completed
