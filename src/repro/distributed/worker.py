"""The shard worker: lease, execute, stream back, repeat.

A worker is a plain blocking-socket loop around the one engine entry
point the whole repo shares, :func:`repro.parallel.run_shard`: it
leases a shard from the broker, decodes the task (rule, topology,
completion, state, seed) through :mod:`repro.distributed.wire`,
executes it, and streams the encoded result back.  Leasing happens in
completion order — a worker only asks for the next shard after
finishing the last — which is what balances heavy-tailed cover times
across a heterogeneous pool.

While a shard is computing, a daemon heartbeat thread renews the lease
at a third of the broker's lease timeout, so long shards on healthy
workers are never requeued; a transient socket error inside the
heartbeat loop is counted and logged, never fatal — the loop keeps
trying, so one dropped heartbeat doesn't expire a healthy lease and
run the shard twice.  A worker that is killed simply stops
heartbeating (and drops its connection), and the broker requeues its
shard.  A task that *raises* is reported as an ``error`` message
instead of silently dying, letting the broker retry it elsewhere or
fail the job after ``max_attempts``.

The session as a whole *reconnects*: a broken or injected-away
connection closes the socket (the broker requeues any held lease on
EOF) and re-dials under the worker's retry policy, so a broker restart
or a chaos plan dropping frames costs requeues, not workers.  Fault
injection (:mod:`repro.resilience.faults`) hooks the dial
(``worker.connect``), the send paths (``worker.send``,
``worker.heartbeat``) and the lease count (worker kill); with no plan
installed every hook is a single ``None`` check.
"""

from __future__ import annotations

import os
import socket
import threading
import time

from ..parallel.sharding import run_shard
from ..resilience import FAULT_PLAN_ENV_VAR, RetryPolicy
from ..resilience.faults import (
    FaultPlan,
    InjectedFault,
    active_fault_plan,
    install_fault_plan,
)
from ..resilience.retry import RetryError
from ..telemetry import TraceContext, get_telemetry
from ..telemetry.live import MetricsServer, metrics_port_from_env
from ..telemetry.resource import ResourceSampler, resource_snapshot
from .wire import (
    attach_trace,
    decode_task,
    encode_result,
    parse_endpoint,
    recv_frame,
    send_frame,
)

__all__ = ["run_worker"]

#: The per-shard timing keys a worker copies from the result's shard
#: meta into the ``stats`` dict of its ``complete`` frame — the only
#: place shard timings cross the wire (results themselves stay
#: meta-free so the wire format and cache entries are unchanged).
_STATS_KEYS = ("wall_s", "cpu_s", "runs", "rounds_run", "max_rss")


def _heartbeat_loop(
    sock: socket.socket,
    lock: threading.Lock,
    shard_id: str,
    interval: float,
    stop: threading.Event,
) -> None:
    tel = get_telemetry()
    while not stop.wait(interval):
        plan = active_fault_plan()
        if plan is not None and plan.stall_heartbeat():
            tel.count("faults.injected")
            if tel.enabled:
                tel.event("faults.heartbeat_stall", shard=shard_id)
            continue
        try:
            with lock:
                send_frame(
                    sock,
                    {"type": "heartbeat", "shard_id": shard_id},
                    site="worker.heartbeat",
                )
        except OSError as exc:
            # Transient drop: count it, log it, keep beating.  Silently
            # dying here would let the lease expire while the shard
            # keeps running, and the broker would schedule it twice.
            tel.count("worker.heartbeat.errors")
            if tel.enabled:
                tel.event(
                    "worker.heartbeat.error",
                    shard=shard_id,
                    error=f"{type(exc).__name__}: {exc}",
                )
            continue


def _dial(host: str, port: int, policy: RetryPolicy) -> socket.socket:
    """Connect to the broker under *policy*, honouring injected refusals."""

    def attempt() -> socket.socket:
        plan = active_fault_plan()
        if plan is not None and plan.refuse_connection("worker.connect"):
            tel = get_telemetry()
            tel.count("faults.injected")
            if tel.enabled:
                tel.event("faults.refuse", site="worker.connect")
            raise InjectedFault("refuse", "worker.connect")
        sock = socket.create_connection((host, port), timeout=10.0)
        sock.settimeout(None)
        return sock

    return policy.run(attempt, what=f"dial broker {host}:{port}")


def _plan_from_env() -> FaultPlan | None:
    """Pick up a fault plan serialised into :data:`FAULT_PLAN_ENV_VAR`."""
    spec = os.environ.get(FAULT_PLAN_ENV_VAR)
    if not spec:
        return None
    return FaultPlan.from_json(spec)


def run_worker(
    endpoint,
    *,
    max_tasks: int | None = None,
    poll_interval: float = 0.5,
    connect_retries: int = 20,
    retry_delay: float = 0.25,
    faults: FaultPlan | None = None,
    metrics_port: int | None = None,
) -> int:
    """Serve shards from ``endpoint`` until the broker goes away.

    Parameters
    ----------
    endpoint:
        Broker address, anything :func:`repro.distributed.parse_endpoint`
        accepts (``"host:port"``).
    max_tasks:
        Exit after this many completed shards (None = run until the
        broker goes away for longer than the dial retries cover — the
        CLI deployment mode).
    poll_interval:
        Sleep between lease attempts while the queue is empty.
    connect_retries / retry_delay:
        Dial retries (fixed spacing), so workers may be launched before
        (or while) the broker comes up — and, on a mid-session
        disconnect, how long the worker keeps re-dialing before giving
        up.
    faults:
        An explicit :class:`~repro.resilience.FaultPlan` to install for
        this process (chaos harness use).  When None, the
        ``REPRO_FAULT_PLAN`` environment variable is consulted, so
        spawned worker processes inherit the plan.
    metrics_port:
        Serve ``/metrics``/``/healthz``/``/statusz`` on this port (0 =
        ephemeral) and run a :class:`~repro.telemetry.ResourceSampler`
        for the lifetime of the worker.  When None the
        ``REPRO_METRICS_PORT`` environment variable is consulted;
        unset/off means no HTTP surface and no sampling thread at all.

    Returns the number of shards completed (including ones that ended
    in a reported error).  The very first dial failing (no broker ever
    reachable) raises; a *lost* broker after a working session exits
    cleanly once re-dialing gives up.
    """
    host, port = parse_endpoint(endpoint)
    plan = faults if faults is not None else _plan_from_env()
    if plan is not None:
        install_fault_plan(plan)
    dial_policy = RetryPolicy(
        attempts=int(connect_retries) + 1,
        base_delay_s=float(retry_delay),
        max_delay_s=float(retry_delay),
        multiplier=1.0,
        jitter=0.0,
        retry_on=(OSError,),
    )
    def _session_loop() -> int:
        """The dial/lease/execute loop, wrapped so the live plane is
        torn down on every exit path."""
        completed = 0
        leases = 0
        tel = get_telemetry()
        ever_connected = False
        while max_tasks is None or completed < max_tasks:
            try:
                sock = _dial(host, port, dial_policy)
            except (RetryError, OSError) as exc:
                if not ever_connected:
                    cause = exc.last if isinstance(exc, RetryError) else exc
                    raise (
                        cause if isinstance(cause, OSError) else exc
                    ) from exc
                break
            if ever_connected:
                tel.count("worker.reconnects")
                if tel.enabled:
                    tel.event("worker.reconnect", endpoint=f"{host}:{port}")
            ever_connected = True
            lock = threading.Lock()
            try:
                while max_tasks is None or completed < max_tasks:
                    with lock:
                        send_frame(sock, {"type": "lease"}, site="worker.send")
                    message = recv_frame(sock)
                    if message is None:
                        break
                    kind = message.get("type")
                    if kind == "idle":
                        time.sleep(poll_interval)
                        continue
                    if kind != "task":
                        break
                    leases += 1
                    if plan is not None and plan.kill_worker(leases):
                        # A chaos kill is a SIGKILL stand-in: no cleanup,
                        # no goodbye frame — the broker must recover from
                        # lease expiry / EOF alone.
                        tel.count("faults.injected")
                        os._exit(17)
                    shard_id = message["shard_id"]
                    trace = TraceContext.from_wire(message.get("trace"))
                    interval = max(
                        0.05, float(message.get("lease_timeout", 30.0)) / 3.0
                    )
                    stop = threading.Event()
                    heartbeat = threading.Thread(
                        target=_heartbeat_loop,
                        args=(sock, lock, shard_id, interval, stop),
                        name="repro-worker-heartbeat",
                        daemon=True,
                    )
                    heartbeat.start()
                    if tel.enabled:
                        tel.event("worker.lease", shard=shard_id)
                    try:
                        # Install the job's trace context (when the lease
                        # carried one) so the shard.run span stitches under
                        # the client's tree; restored immediately after.
                        prev_ctx = tel.install_context(trace) if trace else None
                        try:
                            result = run_shard(decode_task(message["task"]))
                        finally:
                            if trace is not None:
                                tel.install_context(prev_ctx)
                    except Exception as exc:
                        stop.set()
                        heartbeat.join()
                        tel.count("worker.errors")
                        if tel.enabled:
                            tel.event(
                                "worker.error",
                                shard=shard_id,
                                error=f"{type(exc).__name__}: {exc}",
                            )
                        with lock:
                            send_frame(
                                sock,
                                {
                                    "type": "error",
                                    "shard_id": shard_id,
                                    "message": f"{type(exc).__name__}: {exc}",
                                },
                                site="worker.send",
                            )
                        if recv_frame(sock) is None:
                            break
                        completed += 1
                        continue
                    stop.set()
                    heartbeat.join()
                    shard_meta = (result.meta or {}).get("shard") or {}
                    stats = {
                        key: shard_meta[key]
                        for key in _STATS_KEYS
                        if key in shard_meta
                    }
                    tel.count("worker.completed")
                    if tel.enabled:
                        tel.event("worker.complete", shard=shard_id, **stats)
                    with lock:
                        frame = {
                            "type": "complete",
                            "shard_id": shard_id,
                            "result": encode_result(result),
                        }
                        if stats:
                            frame["stats"] = stats
                        attach_trace(frame, trace)
                        send_frame(sock, frame, site="worker.send")
                    if recv_frame(sock) is None:
                        break
                    completed += 1
                else:
                    # max_tasks reached inside a live session.
                    sock.close()
                    return completed
                # Clean EOF or a non-task reply: the broker went away (or
                # is restarting).  Fall through to re-dial.
            except (ConnectionError, OSError):
                # Includes injected frame drops (InjectedFault is a
                # ConnectionError): close this session and re-dial — the
                # broker requeues the held lease when it sees EOF.
                pass
            finally:
                sock.close()
        return completed

    resolved_port = metrics_port_from_env(metrics_port)
    server = None
    sampler = None
    if resolved_port is not None:
        from ..resilience.retry import breaker_states

        def _statusz() -> dict:
            return {
                "role": "worker",
                "endpoint": f"{host}:{port}",
                "pid": os.getpid(),
                "counters": get_telemetry().counters(),
                "breakers": breaker_states(),
                "resources": resource_snapshot(),
            }

        sampler = ResourceSampler().start()
        server = MetricsServer(port=resolved_port, status=_statusz).start()
    try:
        return _session_loop()
    finally:
        if server is not None:
            server.stop()
        if sampler is not None:
            sampler.stop()
