"""Versioned wire format for distributed shard execution.

Everything a :class:`~repro.parallel.ShardTask` carries — the spread
rule and its branching policy, the topology (a static CSR payload or a
seeded graph-sequence spec), the completion criterion, the initial
state array, and the shard's spawned :class:`numpy.random.SeedSequence`
— is encoded into plain JSON-able dictionaries, and likewise for
:class:`~repro.engine.SpreadResult`.  The pickle-only path of the
in-process pool is thereby replaced by a format that

* is **versioned** (:data:`WIRE_VERSION` travels in every task/result
  and decoding rejects unknown versions instead of mis-parsing),
* is **canonical** (:func:`canonical_bytes` serialises with sorted
  keys and fixed separators, so the byte encoding of a task is a pure
  function of its content — the substrate of the content-addressed
  result cache, :func:`task_key`), and
* crosses **machine boundaries** (no pickled code objects; rules and
  sequences are reconstructed from small named specs through the same
  registry of classes the in-process engine uses).

Replay semantics for graph sequences: a sequence is shipped as its
constructor spec plus its master seed (entropy, spawn key, pool size).
``graph_at(t)`` draws the round streams by spawning children
``0, 1, 2, ...`` of the master, so a freshly decoded sequence replays
the identical topology realisation regardless of how far the sender's
copy had already advanced.

The module also owns the length-prefixed JSON framing used by the
broker, worker and client (blocking-socket and asyncio variants), so
the three speak one protocol by construction.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import struct
import time

import numpy as np

from ..core.branching import BernoulliBranching, FixedBranching
from ..engine.completion import AllActive, AllVertices, TargetHit
from ..engine.engine import SpreadResult, StaticTopology
from ..engine.rules import (
    BipsRule,
    CobraRule,
    FloodingRule,
    PullRule,
    PushPullRule,
    PushRule,
    WalkRule,
)
from ..graphs.graph import Graph, SharedGraph
from ..parallel.sharding import ShardTask
from ..resilience.faults import InjectedFault, active_fault_plan
from ..telemetry import get_telemetry

__all__ = [
    "WIRE_VERSION",
    "MAX_FRAME_BYTES",
    "WireDecodeError",
    "attach_trace",
    "encode_task",
    "decode_task",
    "encode_result",
    "decode_result",
    "result_envelope_error",
    "canonical_bytes",
    "task_key",
    "parse_endpoint",
    "send_frame",
    "recv_frame",
    "read_frame",
    "write_frame",
]

#: Format version stamped into every encoded task and result.  Bump it
#: whenever the encoding changes shape; decoders reject other versions,
#: and the version participates in :func:`task_key`, so a bump also
#: invalidates every cached result.
WIRE_VERSION = 1

#: Upper bound on one framed message (guards against a corrupt or
#: hostile length prefix allocating gigabytes).
MAX_FRAME_BYTES = 1 << 30


class WireDecodeError(ValueError):
    """A frame or message failed to decode.

    Wraps the raw ``KeyError``/``ValueError``/``json.JSONDecodeError``
    with what a broker/worker log actually needs: which *kind* of
    message was being decoded, the offending key (when a required field
    was missing or malformed), and the frame length (when the failure
    happened at the framing layer).
    """

    def __init__(
        self,
        message: str,
        *,
        kind: str | None = None,
        key: str | None = None,
        frame_length: int | None = None,
    ):
        details = []
        if kind is not None:
            details.append(f"kind={kind}")
        if key is not None:
            details.append(f"key={key!r}")
        if frame_length is not None:
            details.append(f"frame_length={frame_length}")
        suffix = f" ({', '.join(details)})" if details else ""
        super().__init__(message + suffix)
        self.kind = kind
        self.key = key
        self.frame_length = frame_length


# ----------------------------------------------------------------------
# Scalars and arrays
# ----------------------------------------------------------------------
def _encode_array(arr: np.ndarray) -> dict:
    """Encode an ndarray as dtype + shape + base64 of its C-order bytes."""
    arr = np.ascontiguousarray(arr)
    return {
        "dtype": arr.dtype.str,
        "shape": list(arr.shape),
        "data": base64.b64encode(arr.tobytes()).decode("ascii"),
    }


def _decode_array(obj: dict) -> np.ndarray:
    """Rebuild an ndarray from :func:`_encode_array` output (owned copy)."""
    raw = base64.b64decode(obj["data"])
    arr = np.frombuffer(raw, dtype=np.dtype(obj["dtype"]))
    return arr.reshape([int(s) for s in obj["shape"]]).copy()


def _maybe_array(obj: dict | None) -> np.ndarray | None:
    return None if obj is None else _decode_array(obj)


def _encode_seed(seed: np.random.SeedSequence) -> dict:
    """Encode a SeedSequence as entropy + spawn key + pool size.

    The spawn-children counter is deliberately dropped: generators are
    built from the sequence itself, and graph sequences replay their
    round streams by spawning children from index 0, so a decoded seed
    must always start with a fresh counter.
    """
    entropy = seed.entropy
    if isinstance(entropy, (list, tuple)):
        entropy = [int(e) for e in entropy]
    elif entropy is not None:
        entropy = int(entropy)
    return {
        "entropy": entropy,
        "spawn_key": [int(k) for k in seed.spawn_key],
        "pool_size": int(seed.pool_size),
    }


def _decode_seed(obj: dict) -> np.random.SeedSequence:
    entropy = obj["entropy"]
    if isinstance(entropy, list):
        entropy = [int(e) for e in entropy]
    elif entropy is not None:
        entropy = int(entropy)
    return np.random.SeedSequence(
        entropy,
        spawn_key=tuple(int(k) for k in obj["spawn_key"]),
        pool_size=int(obj["pool_size"]),
    )


# ----------------------------------------------------------------------
# Branching policies, rules, completion criteria
# ----------------------------------------------------------------------
def _encode_policy(policy) -> dict:
    if isinstance(policy, FixedBranching):
        return {"kind": "fixed", "b": int(policy.b)}
    if isinstance(policy, BernoulliBranching):
        return {"kind": "bernoulli", "rho": float(policy.rho)}
    raise TypeError(
        f"branching policy {type(policy).__name__} is not wire-encodable; "
        "distributed execution supports FixedBranching and BernoulliBranching"
    )


def _decode_policy(obj: dict):
    kind = obj["kind"]
    if kind == "fixed":
        return FixedBranching(int(obj["b"]))
    if kind == "bernoulli":
        return BernoulliBranching(float(obj["rho"]))
    raise ValueError(f"unknown branching policy kind {kind!r}")


def _encode_rule(rule) -> dict:
    if isinstance(rule, CobraRule):
        return {
            "kind": "cobra",
            "policy": _encode_policy(rule.policy),
            "lazy": bool(rule.lazy),
        }
    if isinstance(rule, BipsRule):
        return {
            "kind": "bips",
            "policy": _encode_policy(rule.policy),
            "source": int(rule.source),
            "lazy": bool(rule.lazy),
            "discipline": rule.discipline,
        }
    if isinstance(rule, WalkRule):
        return {"kind": "walk", "k": int(rule.k), "lazy": bool(rule.lazy)}
    if isinstance(rule, PushRule):
        return {"kind": "push", "fanout": int(rule.fanout)}
    if isinstance(rule, PushPullRule):
        return {"kind": "push-pull"}
    if isinstance(rule, PullRule):
        return {"kind": "pull"}
    if isinstance(rule, FloodingRule):
        return {
            "kind": "flooding",
            "runs": int(rule.runs),
            "reflood": bool(rule.reflood),
        }
    raise TypeError(f"spread rule {type(rule).__name__} is not wire-encodable")


def _decode_rule(obj: dict):
    kind = obj["kind"]
    if kind == "cobra":
        return CobraRule(_decode_policy(obj["policy"]), lazy=obj["lazy"])
    if kind == "bips":
        return BipsRule(
            _decode_policy(obj["policy"]),
            int(obj["source"]),
            lazy=obj["lazy"],
            discipline=obj["discipline"],
        )
    if kind == "walk":
        return WalkRule(int(obj["k"]), lazy=obj["lazy"])
    if kind == "push":
        return PushRule(int(obj["fanout"]))
    if kind == "push-pull":
        return PushPullRule()
    if kind == "pull":
        return PullRule()
    if kind == "flooding":
        return FloodingRule(runs=int(obj["runs"]), reflood=obj["reflood"])
    raise ValueError(f"unknown spread rule kind {kind!r}")


def _encode_completion(criterion) -> dict:
    if isinstance(criterion, AllVertices):
        return {"kind": "all-vertices"}
    if isinstance(criterion, AllActive):
        return {"kind": "all-active"}
    if isinstance(criterion, TargetHit):
        return {"kind": "target-hit", "target": int(criterion.target)}
    raise TypeError(
        f"completion criterion {type(criterion).__name__} is not wire-encodable"
    )


def _decode_completion(obj: dict):
    kind = obj["kind"]
    if kind == "all-vertices":
        return AllVertices()
    if kind == "all-active":
        return AllActive()
    if kind == "target-hit":
        return TargetHit(int(obj["target"]))
    raise ValueError(f"unknown completion kind {kind!r}")


# ----------------------------------------------------------------------
# Adversary policies (repro.adversary)
# ----------------------------------------------------------------------
def _encode_adversary(policy) -> dict:
    """Encode an adversary policy as its pristine constructor spec.

    Replay-derived state (churn clocks, growth trackers) is
    deliberately dropped: the wire ships a *replay spec*, and the
    remote engine regenerates the identical digest stream that
    rebuilds that state round by round.
    """
    from ..adversary.policies import (
        AdaptiveRRIPolicy,
        GreedyCutAdversary,
        IsolatingChurnAdversary,
        MovingSourceAdversary,
    )

    if isinstance(policy, GreedyCutAdversary):
        return {
            "kind": "greedy-cut",
            "budget": int(policy.budget),
            "keep_connected": bool(policy.keep_connected),
        }
    if isinstance(policy, IsolatingChurnAdversary):
        return {
            "kind": "isolating-churn",
            "budget": int(policy.budget),
            "downtime": int(policy.downtime),
            "protected": [int(p) for p in policy.protected],
            "keep_connected": bool(policy.keep_connected),
            "initially_out": [int(p) for p in policy.initially_out],
        }
    if isinstance(policy, MovingSourceAdversary):
        return {
            "kind": "moving-source",
            "source": int(policy.source),
            "budget": int(policy.budget),
            "trigger": float(policy.trigger),
            "keep_connected": bool(policy.keep_connected),
        }
    if isinstance(policy, AdaptiveRRIPolicy):
        return {
            "kind": "adaptive-rri",
            "burst_swaps": int(policy.burst_swaps),
            "growth_threshold": float(policy.growth_threshold),
            "keep_connected": bool(policy.keep_connected),
            "max_retries": int(policy.max_retries),
        }
    raise TypeError(
        f"adversary policy {type(policy).__name__} is not wire-encodable"
    )


def _decode_adversary(obj: dict):
    from ..adversary.policies import (
        AdaptiveRRIPolicy,
        GreedyCutAdversary,
        IsolatingChurnAdversary,
        MovingSourceAdversary,
    )

    kind = obj["kind"]
    if kind == "greedy-cut":
        return GreedyCutAdversary(
            int(obj["budget"]), keep_connected=obj["keep_connected"]
        )
    if kind == "isolating-churn":
        return IsolatingChurnAdversary(
            int(obj["budget"]),
            downtime=int(obj["downtime"]),
            protected=tuple(int(p) for p in obj["protected"]),
            keep_connected=obj["keep_connected"],
            initially_out=tuple(int(p) for p in obj["initially_out"]),
        )
    if kind == "moving-source":
        return MovingSourceAdversary(
            int(obj["source"]),
            int(obj["budget"]),
            trigger=float(obj["trigger"]),
            keep_connected=obj["keep_connected"],
        )
    if kind == "adaptive-rri":
        return AdaptiveRRIPolicy(
            int(obj["burst_swaps"]),
            growth_threshold=float(obj["growth_threshold"]),
            keep_connected=obj["keep_connected"],
            max_retries=int(obj["max_retries"]),
        )
    raise ValueError(f"unknown adversary policy kind {kind!r}")


# ----------------------------------------------------------------------
# Topologies
# ----------------------------------------------------------------------
def _encode_graph(graph: Graph) -> dict:
    return {
        "kind": "graph",
        "n": int(graph.n),
        "m": int(graph.m),
        "name": graph.name,
        "indptr": _encode_array(graph.indptr),
        "indices": _encode_array(graph.indices),
    }


def _decode_graph(obj: dict) -> Graph:
    indptr = _decode_array(obj["indptr"])
    indices = _decode_array(obj["indices"])
    degrees = np.diff(indptr)
    return Graph._from_csr(
        int(obj["n"]), int(obj["m"]), indptr, indices, degrees, obj["name"]
    )


def _encode_topology(topology) -> dict:
    from ..adversary.sequence import AdversarialSequence
    from ..dynamics.providers import (
        ChurnSequence,
        EdgeMarkovianSequence,
        RewiringSequence,
    )
    from ..dynamics.sequence import FrozenSequence

    if isinstance(topology, Graph):
        return _encode_graph(topology)
    if isinstance(topology, StaticTopology):
        return _encode_graph(topology.base)
    if isinstance(topology, SharedGraph):
        raise TypeError(
            "a SharedGraph handle is process-local and cannot cross machine "
            "boundaries; ship the underlying Graph instead"
        )
    if isinstance(topology, FrozenSequence):
        return {"kind": "frozen", "base": _encode_graph(topology.base)}
    if isinstance(topology, RewiringSequence):
        return {
            "kind": "rewiring",
            "base": _encode_graph(topology.base),
            "swaps": int(topology.swaps_per_round),
            "keep_connected": bool(topology.keep_connected),
            "max_retries": int(topology.max_retries),
            "seed": _encode_seed(topology._master),
        }
    if isinstance(topology, EdgeMarkovianSequence):
        return {
            "kind": "edge-markovian",
            "base": _encode_graph(topology.base),
            "birth": float(topology.birth),
            "death": float(topology.death),
            "seed": _encode_seed(topology._master),
        }
    if isinstance(topology, ChurnSequence):
        return {
            "kind": "churn",
            "base": _encode_graph(topology.base),
            "leave": float(topology.leave),
            "rejoin": float(topology.rejoin),
            "protected": np.nonzero(topology._protected)[0].tolist(),
            "seed": _encode_seed(topology._master),
        }
    if isinstance(topology, AdversarialSequence):
        # A seeded replay spec: constructor parameters + master seed
        # (spawn counter dropped by _encode_seed) + the adversary's
        # pristine spec.  The remote engine re-delivers the identical
        # observation stream, so the decoded sequence realises the
        # identical adversarial topology — however far the sender's
        # copy had already advanced.
        return {
            "kind": "adversarial",
            "base": _encode_graph(topology.base),
            "adversary": _encode_adversary(topology.adversary),
            "swaps": int(topology.swaps_per_round),
            "keep_connected": bool(topology.keep_connected),
            "max_retries": int(topology.max_retries),
            "seed": _encode_seed(topology._master),
        }
    raise TypeError(
        f"topology {type(topology).__name__} is not wire-encodable; "
        "supported: Graph, FrozenSequence, RewiringSequence, "
        "EdgeMarkovianSequence, ChurnSequence, AdversarialSequence"
    )


def _decode_topology(obj: dict):
    from ..adversary.sequence import AdversarialSequence
    from ..dynamics.providers import (
        ChurnSequence,
        EdgeMarkovianSequence,
        RewiringSequence,
    )
    from ..dynamics.sequence import FrozenSequence

    kind = obj["kind"]
    if kind == "graph":
        return _decode_graph(obj)
    if kind == "frozen":
        return FrozenSequence(_decode_graph(obj["base"]))
    if kind == "rewiring":
        return RewiringSequence(
            _decode_graph(obj["base"]),
            int(obj["swaps"]),
            seed=_decode_seed(obj["seed"]),
            keep_connected=obj["keep_connected"],
            max_retries=int(obj["max_retries"]),
        )
    if kind == "edge-markovian":
        return EdgeMarkovianSequence(
            _decode_graph(obj["base"]),
            float(obj["birth"]),
            float(obj["death"]),
            seed=_decode_seed(obj["seed"]),
        )
    if kind == "churn":
        return ChurnSequence(
            _decode_graph(obj["base"]),
            float(obj["leave"]),
            float(obj["rejoin"]),
            seed=_decode_seed(obj["seed"]),
            protected=tuple(int(v) for v in obj["protected"]),
        )
    if kind == "adversarial":
        return AdversarialSequence(
            _decode_graph(obj["base"]),
            _decode_adversary(obj["adversary"]),
            _decode_seed(obj["seed"]),
            swaps_per_round=int(obj["swaps"]),
            keep_connected=obj["keep_connected"],
            max_retries=int(obj["max_retries"]),
        )
    raise ValueError(f"unknown topology kind {kind!r}")


# ----------------------------------------------------------------------
# Tasks and results
# ----------------------------------------------------------------------
def encode_task(task: ShardTask) -> dict:
    """Encode a :class:`~repro.parallel.ShardTask` as a JSON-able dict.

    The encoding is complete: :func:`decode_task` on another machine
    rebuilds a task whose execution by
    :func:`repro.parallel.run_shard` is bit-for-bit identical to
    running the original in-process.

    The kernel-backend hint is an *optional* key, emitted only when the
    task carries one: default tasks encode byte-for-byte as they did
    before the key existed, so :data:`WIRE_VERSION` stays put and no
    cached result is invalidated.  A non-default backend does change
    the :func:`task_key` — deliberately, since a ``bitplane`` result is
    only distribution-equivalent and must not be served from a
    ``numpy`` cache entry.
    """
    obj = {
        "v": WIRE_VERSION,
        "kind": "task",
        "rule": _encode_rule(task.rule),
        "topology": _encode_topology(task.topology),
        "completion": _encode_completion(task.completion),
        "state": _encode_array(task.state),
        "seed": _encode_seed(task.seed),
        "max_rounds": None if task.max_rounds is None else int(task.max_rounds),
        "track_hits": bool(task.track_hits),
        "record_sizes": bool(task.record_sizes),
        "record_visited": bool(task.record_visited),
    }
    if task.backend is not None:
        obj["backend"] = str(task.backend)
    return obj


def attach_trace(frame: dict, context) -> dict:
    """Attach the optional ``trace`` key to an outbound frame in place.

    ``context`` is a :class:`~repro.telemetry.TraceContext` (or an
    already-encoded wire dict, as the broker relays on lease replies);
    ``None`` leaves the frame untouched, so the default encoding stays
    byte-identical to the pre-trace format — same contract as the
    optional ``backend`` hint in :func:`encode_task`, and the reason
    :data:`WIRE_VERSION` stays put.  Returns the frame for chaining.
    """
    if context is None:
        return frame
    wire = context.to_wire() if hasattr(context, "to_wire") else dict(context)
    if wire:
        frame["trace"] = wire
    return frame


def _check_version(obj: dict, kind: str) -> None:
    if obj.get("v") != WIRE_VERSION:
        raise ValueError(
            f"wire version mismatch: got {obj.get('v')!r}, "
            f"this build speaks version {WIRE_VERSION}"
        )
    if obj.get("kind") != kind:
        raise ValueError(f"expected a {kind!r} message, got {obj.get('kind')!r}")


def _wrap_decode_error(kind: str, exc: BaseException) -> WireDecodeError:
    """Build the :class:`WireDecodeError` for a failed *kind* decode."""
    if isinstance(exc, KeyError):
        key = str(exc.args[0]) if exc.args else None
        return WireDecodeError(
            f"malformed {kind} encoding: missing or malformed key",
            kind=kind,
            key=key,
        )
    return WireDecodeError(f"malformed {kind} encoding: {exc}", kind=kind)


def decode_task(obj: dict) -> ShardTask:
    """Rebuild a :class:`~repro.parallel.ShardTask` from its encoding.

    Raises :class:`WireDecodeError` (never a raw ``KeyError``) when the
    encoding is truncated, corrupted, or from another wire version.
    """
    try:
        _check_version(obj, "task")
        return ShardTask(
            rule=_decode_rule(obj["rule"]),
            topology=_decode_topology(obj["topology"]),
            completion=_decode_completion(obj["completion"]),
            state=_decode_array(obj["state"]),
            seed=_decode_seed(obj["seed"]),
            max_rounds=obj["max_rounds"],
            track_hits=obj["track_hits"],
            record_sizes=obj["record_sizes"],
            record_visited=obj["record_visited"],
            backend=obj.get("backend"),
        )
    except WireDecodeError:
        raise
    except (KeyError, ValueError, TypeError, AttributeError) as exc:
        raise _wrap_decode_error("task", exc) from exc


def encode_result(result: SpreadResult) -> dict:
    """Encode a :class:`~repro.engine.SpreadResult` as a JSON-able dict."""
    return {
        "v": WIRE_VERSION,
        "kind": "result",
        "finish_times": _encode_array(result.finish_times),
        "rounds_run": int(result.rounds_run),
        "final_state": _encode_array(result.final_state),
        "hit_times": (
            None if result.hit_times is None else _encode_array(result.hit_times)
        ),
        "sizes": None if result.sizes is None else _encode_array(result.sizes),
        "visited_counts": (
            None
            if result.visited_counts is None
            else _encode_array(result.visited_counts)
        ),
    }


def decode_result(obj: dict) -> SpreadResult:
    """Rebuild a :class:`~repro.engine.SpreadResult` from its encoding.

    Raises :class:`WireDecodeError` (never a raw ``KeyError``) when the
    encoding is truncated, corrupted, or from another wire version.
    """
    try:
        _check_version(obj, "result")
        return SpreadResult(
            finish_times=_decode_array(obj["finish_times"]),
            rounds_run=int(obj["rounds_run"]),
            final_state=_decode_array(obj["final_state"]),
            hit_times=_maybe_array(obj["hit_times"]),
            sizes=_maybe_array(obj["sizes"]),
            visited_counts=_maybe_array(obj["visited_counts"]),
        )
    except WireDecodeError:
        raise
    except (KeyError, ValueError, TypeError, AttributeError) as exc:
        raise _wrap_decode_error("result", exc) from exc


def result_envelope_error(obj) -> str | None:
    """Cheap structural check of an encoded result; None when it looks sane.

    The broker uses this to reject (and requeue) a result frame that
    would blow up in the client's :func:`decode_result` — without
    paying for a full array decode per shard on the broker's event
    loop.  Returns a human-readable reason string on failure.
    """
    if not isinstance(obj, dict):
        return f"result payload is {type(obj).__name__}, not a dict"
    if obj.get("v") != WIRE_VERSION:
        return f"wire version mismatch: {obj.get('v')!r}"
    if obj.get("kind") != "result":
        return f"not a result message: kind={obj.get('kind')!r}"
    if not isinstance(obj.get("rounds_run"), int):
        return "missing or non-integer rounds_run"
    for field in ("finish_times", "final_state"):
        payload = obj.get(field)
        if not isinstance(payload, dict):
            return f"missing array field {field!r}"
        if not all(k in payload for k in ("dtype", "shape", "data")):
            return f"array field {field!r} lacks dtype/shape/data"
    for field in ("hit_times", "sizes", "visited_counts"):
        payload = obj.get(field, "absent")
        if payload == "absent":
            return f"missing optional-array field {field!r}"
        if payload is not None and not isinstance(payload, dict):
            return f"optional-array field {field!r} is not a dict"
    return None


def canonical_bytes(obj: dict) -> bytes:
    """Serialise a JSON-able object deterministically (sorted keys).

    Two calls on equal objects yield equal bytes, making the output
    suitable for hashing (:func:`task_key`) and for byte-comparison in
    tests.
    """
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")


def task_key(task: "ShardTask | dict") -> str:
    """The content address of a shard task: sha256 of its canonical bytes.

    Accepts either a :class:`~repro.parallel.ShardTask` or an
    already-encoded task dict.  Every input that influences the
    execution outcome — rule, topology, completion, state, seed, round
    cap, recording flags, and the wire version itself — participates,
    so equal keys imply bit-identical results and a format bump
    invalidates old cache entries.
    """
    obj = task if isinstance(task, dict) else encode_task(task)
    return hashlib.sha256(canonical_bytes(obj)).hexdigest()


# ----------------------------------------------------------------------
# Endpoint parsing and message framing
# ----------------------------------------------------------------------
_FRAME_HEADER = struct.Struct(">I")


def parse_endpoint(spec) -> tuple[str, int]:
    """Parse an endpoint spec into ``(host, port)``.

    Accepts ``"host:port"``, a bare ``"port"`` (host defaults to
    ``127.0.0.1``), or an already-split ``(host, port)`` pair.
    """
    if isinstance(spec, (tuple, list)):
        return str(spec[0]), int(spec[1])
    text = str(spec).strip()
    if ":" not in text:
        return "127.0.0.1", int(text)
    host, port = text.rsplit(":", 1)
    return host or "127.0.0.1", int(port)


def _pack(obj: dict) -> bytes:
    payload = json.dumps(obj, separators=(",", ":"), allow_nan=False).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ValueError(f"frame of {len(payload)} bytes exceeds MAX_FRAME_BYTES")
    return _FRAME_HEADER.pack(len(payload)) + payload


def _faulted_payload(plan, payload: bytes, site: str) -> bytes:
    """Apply the plan's frame fault (if any) to an outbound payload.

    Raises :class:`~repro.resilience.faults.InjectedFault` for a drop
    (the frame never reaches the wire, and the caller sees the same
    ``ConnectionError`` surface a real half-open drop produces);
    returns mutated/duplicated bytes for corrupt/duplicate; sleeps for
    delay.  Only called when a plan is installed.
    """
    kind = plan.frame_fault(site)
    if kind is None:
        return payload
    tel = get_telemetry()
    tel.count("faults.injected")
    if tel.enabled:
        tel.event("faults.frame", fault=kind, site=site)
    if kind == "drop":
        raise InjectedFault("drop", site)
    if kind == "corrupt":
        return plan.corrupt_payload(payload, site)
    if kind == "duplicate":
        return payload + payload
    if kind == "delay":
        time.sleep(plan.delay_s)
    return payload


def send_frame(sock, obj: dict, *, site: str | None = None) -> None:
    """Write one length-prefixed JSON frame to a blocking socket.

    ``site`` names the injection point for fault-injection runs (e.g.
    ``"worker.send"``); with no :class:`~repro.resilience.FaultPlan`
    installed — the production default — the hook is a single ``None``
    check.
    """
    payload = _pack(obj)
    if site is not None:
        plan = active_fault_plan()
        if plan is not None:
            payload = _faulted_payload(plan, payload, site)
    sock.sendall(payload)


def _recv_exact(sock, count: int, *, allow_eof: bool = False) -> bytes | None:
    buf = b""
    while len(buf) < count:
        chunk = sock.recv(count - len(buf))
        if not chunk:
            if allow_eof and not buf:
                return None
            raise ConnectionError("connection closed mid-frame")
        buf += chunk
    return buf


def recv_frame(sock) -> dict | None:
    """Read one frame from a blocking socket; None on clean EOF."""
    header = _recv_exact(sock, _FRAME_HEADER.size, allow_eof=True)
    if header is None:
        return None
    (length,) = _FRAME_HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ValueError(f"incoming frame of {length} bytes exceeds MAX_FRAME_BYTES")
    payload = _recv_exact(sock, length)
    try:
        return json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise WireDecodeError(
            f"frame payload is not valid JSON: {exc}", frame_length=length
        ) from exc


async def read_frame(reader: asyncio.StreamReader) -> dict | None:
    """Read one frame from an asyncio stream; None on clean EOF."""
    try:
        header = await reader.readexactly(_FRAME_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ConnectionError("connection closed mid-frame") from exc
    (length,) = _FRAME_HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ValueError(f"incoming frame of {length} bytes exceeds MAX_FRAME_BYTES")
    payload = await reader.readexactly(length)
    try:
        return json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise WireDecodeError(
            f"frame payload is not valid JSON: {exc}", frame_length=length
        ) from exc


async def write_frame(writer: asyncio.StreamWriter, obj: dict) -> None:
    """Write one frame to an asyncio stream and drain."""
    writer.write(_pack(obj))
    await writer.drain()
