"""Content-addressed result cache for distributed shard execution.

Every shard task is a pure function: its canonical wire encoding
(:func:`repro.distributed.wire.task_key` — rule, topology, completion,
state, seed, round cap, recording flags, wire version) fully
determines its :class:`~repro.engine.SpreadResult`.  That makes
caching unconditionally safe — there is no invalidation problem, only
a content address — so repeated experiment sweeps and repeated CLI
invocations skip shards that any earlier run already computed.

Layout: ``<root>/<key[:2]>/<key>.json``, each file the canonical JSON
encoding of one result, written atomically (temp file + ``os.replace``)
so concurrent clients never observe torn entries.  The default root is
``~/.cache/repro/results``, overridable through the
``REPRO_CACHE_DIR`` environment variable (set it to ``off``, ``0`` or
the empty string to disable caching entirely).

Entries are integrity-checked: each stores a sha256 digest of its
canonical result payload, verified on every :meth:`ResultCache.get`.
A torn, truncated, or bit-flipped entry is quarantined (renamed to
``*.corrupt``) and treated as a miss, so corruption costs a recompute
— never a crash, and never a silently wrong result.

The cache is bounded: ``REPRO_CACHE_MAX_BYTES`` (or the ``max_bytes``
constructor argument) caps the total size of stored entries, enforced
by LRU eviction ordered on file access times — every :meth:`get` hit
bumps the entry's ``atime`` explicitly, so eviction order is correct
even on ``noatime``/``relatime`` mounts.  Unset (or ``0``/empty) means
unbounded, the historical behaviour.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from pathlib import Path

from ..telemetry import get_telemetry
from .wire import canonical_bytes, decode_result, encode_result

__all__ = [
    "ResultCache",
    "resolve_cache",
    "CACHE_ENV_VAR",
    "CACHE_MAX_BYTES_ENV_VAR",
]

#: Environment variable naming the cache root (or disabling the cache).
CACHE_ENV_VAR = "REPRO_CACHE_DIR"

#: Environment variable bounding the cache's total size in bytes
#: (LRU-evicted on overflow); unset/empty/0 leaves it unbounded.
CACHE_MAX_BYTES_ENV_VAR = "REPRO_CACHE_MAX_BYTES"


class ResultCache:
    """A directory of shard results keyed by canonical task digest.

    ``max_bytes`` bounds the total stored size with atime-ordered LRU
    eviction; the default sentinel ``"env"`` reads
    :data:`CACHE_MAX_BYTES_ENV_VAR`, and ``None`` (or 0) disables the
    bound.
    """

    def __init__(self, root, *, max_bytes: "int | None | str" = "env") -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        if max_bytes == "env":
            max_bytes = self._env_max_bytes()
        self.max_bytes = int(max_bytes) if max_bytes else None
        if self.max_bytes is not None and self.max_bytes < 1:
            raise ValueError("max_bytes must be >= 1 (or None for unbounded)")
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.corrupt = 0
        # Approximate store size, seeded by one scan on the first
        # bounded put and then maintained incrementally, so a put only
        # pays the full directory scan when the bound is actually
        # exceeded (concurrent writers drift the estimate upward at
        # worst, which just triggers an early re-synchronising scan).
        self._stored_bytes: int | None = None

    @staticmethod
    def _env_max_bytes() -> "int | None":
        env = os.environ.get(CACHE_MAX_BYTES_ENV_VAR, "").strip()
        if not env or env == "0":
            return None
        try:
            return int(env)
        except ValueError:
            raise ValueError(
                f"{CACHE_MAX_BYTES_ENV_VAR} must be an integer byte count, "
                f"got {env!r}"
            ) from None

    @staticmethod
    def default_root() -> Path | None:
        """The configured cache root, or None when caching is disabled.

        Reads :data:`CACHE_ENV_VAR`; unset falls back to
        ``~/.cache/repro/results``, while ``""``, ``"0"`` and ``"off"``
        disable caching.
        """
        env = os.environ.get(CACHE_ENV_VAR)
        if env is None:
            return Path.home() / ".cache" / "repro" / "results"
        if env.strip().lower() in ("", "0", "off"):
            return None
        return Path(env)

    @classmethod
    def default(cls) -> "ResultCache | None":
        """A cache at :meth:`default_root` (None when disabled)."""
        root = cls.default_root()
        return None if root is None else cls(root)

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        """The file a result with content address ``key`` lives at."""
        return self.root / key[:2] / f"{key}.json"

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a corrupt entry aside (``*.corrupt``) and count it.

        Renaming rather than deleting keeps the evidence for post-mortem
        while guaranteeing the entry can never be served again; the
        caller then recomputes, and the next ``put`` writes a fresh
        entry.
        """
        self.corrupt += 1
        tel = get_telemetry()
        tel.count("cache.corrupt")
        if tel.enabled:
            tel.event("cache.corrupt", path=str(path), reason=reason)
        try:
            os.replace(path, path.with_suffix(".corrupt"))
        except OSError:
            pass  # raced away (or read-only store): nothing left to serve

    def get(self, key: str):
        """Return the cached :class:`SpreadResult` for ``key``, or None.

        Integrity is verified on every read: entries carry a sha256
        digest of their canonical result payload, and an entry that is
        torn, truncated, or fails verification is *quarantined*
        (renamed to ``*.corrupt``, counted in ``self.corrupt`` and the
        ``cache.corrupt`` telemetry counter) and reported as a miss, so
        the caller recomputes instead of crashing — or worse, silently
        consuming a flipped bit.  An unreadable file (``OSError``) is a
        plain miss: absence is not corruption.
        """
        path = self.path_for(key)
        try:
            text = path.read_text()
        except OSError:
            self.misses += 1
            return None
        try:
            payload = json.loads(text)
            if (
                isinstance(payload, dict)
                and payload.get("kind") == "cache-entry"
            ):
                obj = payload["result"]
                digest = hashlib.sha256(canonical_bytes(obj)).hexdigest()
                if digest != payload.get("digest"):
                    raise ValueError("payload digest mismatch")
            else:
                # Entry from before digests existed: still decodable,
                # verified only by the decode itself.
                obj = payload
            result = decode_result(obj)
        except (ValueError, KeyError, TypeError):
            self._quarantine(path, "undecodable or digest mismatch")
            self.misses += 1
            return None
        # Bump the access time explicitly: LRU eviction orders on
        # atime, which relatime/noatime mounts would otherwise freeze.
        try:
            os.utime(path)
        except OSError:
            pass  # entry raced away or read-only store: still a hit
        self.hits += 1
        return result

    def put(self, key: str, result) -> Path:
        """Store a result (a SpreadResult or its encoded dict) under ``key``.

        Atomic: the entry is written to a unique temp file and renamed
        into place, so concurrent writers race harmlessly (all copies
        are byte-identical by the determinism contract).  With a
        ``max_bytes`` bound, least-recently-used entries are evicted
        until the store fits (the fresh entry is never evicted).
        """
        obj = result if isinstance(result, dict) else encode_result(result)
        entry = {
            "kind": "cache-entry",
            "digest": hashlib.sha256(canonical_bytes(obj)).hexdigest(),
            "result": obj,
        }
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".{key}.{os.getpid()}.{threading.get_ident()}.tmp"
        tmp.write_bytes(canonical_bytes(entry))
        os.replace(tmp, path)
        if self.max_bytes is not None:
            if self._stored_bytes is None:
                self._stored_bytes = self.total_bytes()
            else:
                try:
                    self._stored_bytes += path.stat().st_size
                except OSError:
                    pass
            if self._stored_bytes > self.max_bytes:
                self._evict(keep=path)
        return path

    def total_bytes(self) -> int:
        """Total size of the stored entries, in bytes."""
        return sum(self._entries_by_atime(keep=None)[1])

    def _entries_by_atime(self, keep):
        """Entries (oldest atime first) and their sizes, skipping ``keep``."""
        entries = []
        sizes = []
        for path in self.root.glob("*/*.json"):
            if keep is not None and path == keep:
                continue
            try:
                stat = path.stat()
            except OSError:
                continue  # raced away under a concurrent eviction
            entries.append((stat.st_atime, path, stat.st_size))
        entries.sort(key=lambda item: item[0])
        sizes = [size for _, _, size in entries]
        return entries, sizes

    def _evict(self, keep: Path) -> None:
        """Drop LRU entries until the store fits ``max_bytes``.

        ``keep`` (the entry just written) is exempt, so a single result
        larger than the whole bound still caches rather than thrashing.
        The scan also re-synchronises the incremental size estimate.
        """
        try:
            keep_size = keep.stat().st_size
        except OSError:
            keep_size = 0
        budget = max(0, self.max_bytes - keep_size)
        entries, sizes = self._entries_by_atime(keep=keep)
        remaining = sum(sizes)
        excess = remaining - budget
        for _, path, size in entries:
            if excess <= 0:
                break
            try:
                path.unlink()
            except OSError:
                continue  # concurrent eviction got there first
            excess -= size
            remaining -= size
            self.evictions += 1
        self._stored_bytes = remaining + keep_size

    def __contains__(self, key: str) -> bool:
        """True iff an entry for ``key`` exists on disk."""
        return self.path_for(key).exists()

    def __len__(self) -> int:
        """Number of entries currently stored."""
        return sum(1 for _ in self.root.glob("*/*.json"))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultCache(root={str(self.root)!r})"


def resolve_cache(spec) -> ResultCache | None:
    """Coerce a cache spec into a :class:`ResultCache` (or None).

    ``None`` disables caching; ``"auto"`` uses :meth:`ResultCache.default`
    (honouring :data:`CACHE_ENV_VAR`); a path builds a cache there; an
    existing :class:`ResultCache` passes through.
    """
    if spec is None:
        return None
    if isinstance(spec, ResultCache):
        return spec
    if spec == "auto":
        return ResultCache.default()
    return ResultCache(spec)
