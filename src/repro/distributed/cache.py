"""Content-addressed result cache for distributed shard execution.

Every shard task is a pure function: its canonical wire encoding
(:func:`repro.distributed.wire.task_key` — rule, topology, completion,
state, seed, round cap, recording flags, wire version) fully
determines its :class:`~repro.engine.SpreadResult`.  That makes
caching unconditionally safe — there is no invalidation problem, only
a content address — so repeated experiment sweeps and repeated CLI
invocations skip shards that any earlier run already computed.

Layout: ``<root>/<key[:2]>/<key>.json``, each file the canonical JSON
encoding of one result, written atomically (temp file + ``os.replace``)
so concurrent clients never observe torn entries.  The default root is
``~/.cache/repro/results``, overridable through the
``REPRO_CACHE_DIR`` environment variable (set it to ``off``, ``0`` or
the empty string to disable caching entirely).
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path

from .wire import canonical_bytes, decode_result, encode_result

__all__ = ["ResultCache", "resolve_cache", "CACHE_ENV_VAR"]

#: Environment variable naming the cache root (or disabling the cache).
CACHE_ENV_VAR = "REPRO_CACHE_DIR"


class ResultCache:
    """A directory of shard results keyed by canonical task digest."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    @staticmethod
    def default_root() -> Path | None:
        """The configured cache root, or None when caching is disabled.

        Reads :data:`CACHE_ENV_VAR`; unset falls back to
        ``~/.cache/repro/results``, while ``""``, ``"0"`` and ``"off"``
        disable caching.
        """
        env = os.environ.get(CACHE_ENV_VAR)
        if env is None:
            return Path.home() / ".cache" / "repro" / "results"
        if env.strip().lower() in ("", "0", "off"):
            return None
        return Path(env)

    @classmethod
    def default(cls) -> "ResultCache | None":
        """A cache at :meth:`default_root` (None when disabled)."""
        root = cls.default_root()
        return None if root is None else cls(root)

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        """The file a result with content address ``key`` lives at."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str):
        """Return the cached :class:`SpreadResult` for ``key``, or None.

        Unreadable or torn entries count as misses (and are left for a
        later ``put`` to overwrite) rather than failing the caller.
        """
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text())
            result = decode_result(payload)
        except (OSError, ValueError, KeyError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result) -> Path:
        """Store a result (a SpreadResult or its encoded dict) under ``key``.

        Atomic: the entry is written to a unique temp file and renamed
        into place, so concurrent writers race harmlessly (all copies
        are byte-identical by the determinism contract).
        """
        obj = result if isinstance(result, dict) else encode_result(result)
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".{key}.{os.getpid()}.{threading.get_ident()}.tmp"
        tmp.write_bytes(canonical_bytes(obj))
        os.replace(tmp, path)
        return path

    def __contains__(self, key: str) -> bool:
        """True iff an entry for ``key`` exists on disk."""
        return self.path_for(key).exists()

    def __len__(self) -> int:
        """Number of entries currently stored."""
        return sum(1 for _ in self.root.glob("*/*.json"))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultCache(root={str(self.root)!r})"


def resolve_cache(spec) -> ResultCache | None:
    """Coerce a cache spec into a :class:`ResultCache` (or None).

    ``None`` disables caching; ``"auto"`` uses :meth:`ResultCache.default`
    (honouring :data:`CACHE_ENV_VAR`); a path builds a cache there; an
    existing :class:`ResultCache` passes through.
    """
    if spec is None:
        return None
    if isinstance(spec, ResultCache):
        return spec
    if spec == "auto":
        return ResultCache.default()
    return ResultCache(spec)
