"""Command-line interface: ``python -m repro`` / the ``repro`` script.

Subcommands::

    repro list                    # show registered experiments
    repro run E1 [--scale quick] [--seed N]   # run one experiment
    repro run all [--scale smoke]             # run the whole suite
    repro graph-info hypercube-7              # structural + spectral summary
    repro adversary --kind greedy-cut --budget 8   # worst-case dynamic cover
    repro broker --port 7603                  # shard-queue broker
    repro worker 127.0.0.1:7603               # worker attached to a broker
    repro status 127.0.0.1:7603 [--watch 2]   # broker queue counters + metrics
    repro top 127.0.0.1:9633 [...] [--once]   # live dashboard over /statusz
    repro trace summarize trace.jsonl [...]   # stitched span tree + histograms
    repro bench compare [--fail-on-regress PCT]  # BENCH regression analytics
    repro bench report                        # ASCII perf trend tables
    repro bench migrate                       # normalize old BENCH schemas
    repro chaos [--smoke] [--seed N]          # seeded fault-injection matrix

Experiment output is the table(s) plus the pass/fail shape checks from
DESIGN.md.  ``cover`` / ``trajectory`` / ``dynamics`` accept
``--endpoint host:port`` to fan their runs out over a broker's worker
fleet (results bit-identical to local execution; shard results are
content-address cached under ``REPRO_CACHE_DIR``).  Every execution
command accepts ``--telemetry PATH`` (or ``REPRO_TELEMETRY``) to
stream a structured JSONL trace without perturbing any result, and
``--kernel-backend`` (or ``REPRO_KERNEL_BACKEND``) to force the
per-round kernel backend — ``numpy``/``numba``/``auto`` are
bit-identical choices; ``bitplane`` is distribution-equivalent only
(see :mod:`repro.kernels`).
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from .experiments.config import SCALES, ExperimentConfig
from .experiments.registry import EXPERIMENTS, run_experiment

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction suite for 'Improved Cover Time Bounds for "
        "the Coalescing-Branching Random Walk on Graphs' (SPAA 2017)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Shared by every execution command: where to stream the JSONL
    # telemetry trace (overrides REPRO_TELEMETRY; see repro.telemetry)
    # and which per-round kernel backend to force (overrides
    # REPRO_KERNEL_BACKEND; see repro.kernels).
    tel = argparse.ArgumentParser(add_help=False)
    tel.add_argument(
        "--telemetry",
        default=None,
        metavar="PATH",
        help="append a structured JSONL telemetry trace to PATH "
        "(overrides REPRO_TELEMETRY; inspect with 'repro trace summarize'; "
        "results are bit-identical with tracing on or off)",
    )
    tel.add_argument(
        "--kernel-backend",
        default=None,
        choices=("auto", "numpy", "numba", "bitplane"),
        help="per-round kernel backend (overrides REPRO_KERNEL_BACKEND; "
        "default auto = compiled where available and bit-identical, else "
        "numpy; bitplane is distribution-equivalent only)",
    )

    # Shared by the commands that reach a broker (--endpoint): the
    # retry/backoff policy, the checkpoint manifest and the degradation
    # mode, installed process-wide via repro.resilience.configure() so
    # every execute_shards_remote call beneath the command sees them.
    res = argparse.ArgumentParser(add_help=False)
    res.add_argument(
        "--retry-attempts",
        type=int,
        default=None,
        metavar="N",
        help="connection/submission attempts against the broker before "
        "giving up (default 4; 1 disables retries)",
    )
    res.add_argument(
        "--retry-base",
        type=float,
        default=None,
        metavar="SECONDS",
        help="base backoff delay between retries, doubled each attempt "
        "with deterministic seeded jitter (default 0.1)",
    )
    res.add_argument(
        "--retry-max",
        type=float,
        default=None,
        metavar="SECONDS",
        help="cap on the per-retry backoff delay (default 2.0)",
    )
    res.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="write a resumable job manifest to PATH as shards complete; "
        "rerunning with the same PATH (and a result cache) serves the "
        "finished shards from cache instead of recomputing them",
    )
    res.add_argument(
        "--fallback",
        default=None,
        choices=("local", "none"),
        help="what to do when the broker is unreachable: 'local' completes "
        "the job with in-process sharded execution (bit-identical "
        "results), 'none' propagates the error (default; also "
        "REPRO_FALLBACK)",
    )

    sub.add_parser("list", help="list registered experiments")

    run_p = sub.add_parser(
        "run", help="run one experiment (or 'all')", parents=[tel]
    )
    run_p.add_argument("experiment", help="experiment id (E1..E12) or 'all'")
    run_p.add_argument("--scale", choices=SCALES, default="quick")
    run_p.add_argument("--seed", type=int, default=ExperimentConfig().seed)
    run_p.add_argument("--workers", type=int, default=1)

    info_p = sub.add_parser("graph-info", help="summarise a named graph")
    info_p.add_argument(
        "spec",
        help="family-parameter spec, e.g. hypercube-7, cycle-64, "
        "complete-32, torus-15x15, rreg-3-128",
    )

    report_p = sub.add_parser(
        "report", help="run the suite and write the EXPERIMENTS.md record"
    )
    report_p.add_argument("--scale", choices=SCALES, default="full")
    report_p.add_argument("--seed", type=int, default=ExperimentConfig().seed)
    report_p.add_argument("--output", default="EXPERIMENTS.md")

    cover_p = sub.add_parser(
        "cover",
        help="measure COBRA cover time on a named graph or edge list",
        parents=[tel, res],
    )
    cover_p.add_argument(
        "spec", help="graph spec (as graph-info) or a path to an edge-list file"
    )
    cover_p.add_argument("--runs", type=int, default=100)
    cover_p.add_argument("--start", type=int, default=0)
    cover_p.add_argument("--branching", type=float, default=2.0)
    cover_p.add_argument(
        "--lazy", action="store_true", help="use the lazy variant (bipartite fix)"
    )
    cover_p.add_argument("--seed", type=int, default=0)
    cover_p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="shard the runs over this many worker processes (shared-memory "
        "CSR graph, per-shard spawned seeds; results identical at any "
        "worker count, default: single-stream serial path)",
    )
    cover_p.add_argument(
        "--endpoint",
        default=None,
        metavar="HOST:PORT",
        help="run the shards on a 'repro broker' worker fleet instead of "
        "local processes (results bit-identical; overrides --workers)",
    )

    traj_p = sub.add_parser(
        "trajectory",
        help="render a BIPS infection / COBRA coverage trajectory chart",
        parents=[tel, res],
    )
    traj_p.add_argument("spec", help="graph spec (as graph-info)")
    traj_p.add_argument(
        "--process", choices=("bips", "cobra"), default="bips",
        help="bips: |A_t| growth; cobra: cumulative coverage",
    )
    traj_p.add_argument("--runs", type=int, default=60)
    traj_p.add_argument("--lazy", action="store_true")
    traj_p.add_argument("--seed", type=int, default=0)
    traj_p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the recorded engine pass "
        "(default: serial; the series are identical at any count)",
    )
    traj_p.add_argument(
        "--endpoint",
        default=None,
        metavar="HOST:PORT",
        help="run the recorded pass on a 'repro broker' worker fleet "
        "(series identical to local execution)",
    )

    dyn_p = sub.add_parser(
        "dynamics",
        help="measure COBRA cover / BIPS infection on a time-evolving graph",
        parents=[tel, res],
    )
    dyn_p.add_argument(
        "--family",
        choices=("expander", "cycle", "complete", "torus"),
        default="expander",
        help="base-graph family (expander = random 4-regular)",
    )
    dyn_p.add_argument("--n", type=int, default=64, help="base-graph size")
    dyn_p.add_argument(
        "--kind",
        choices=("rewiring", "edge-markovian", "churn", "frozen"),
        default="rewiring",
        help="evolution model applied to the base graph",
    )
    dyn_p.add_argument(
        "--rate",
        type=float,
        default=0.1,
        help="evolution rate per round: fraction of edges swapped "
        "(rewiring), edge death probability (edge-markovian), or vertex "
        "leave probability (churn); 0 freezes the graph",
    )
    dyn_p.add_argument(
        "--process", choices=("cobra", "bips"), default="cobra",
        help="cobra: cover times; bips: infection times",
    )
    dyn_p.add_argument("--runs", type=int, default=20)
    dyn_p.add_argument("--branching", type=float, default=2.0)
    dyn_p.add_argument("--lazy", action="store_true")
    dyn_p.add_argument("--seed", type=int, default=0)
    dyn_p.add_argument(
        "--completion",
        choices=("all-vertices", "all-active"),
        default="all-vertices",
        help="completion criterion: all n vertices, or only the vertices "
        "present in the current snapshot (churn-aware)",
    )
    dyn_p.add_argument(
        "--independent",
        action="store_true",
        help="draw an independent topology realisation per run (slow "
        "scalar loop) instead of the default batched runner, which "
        "advances all runs on one shared realisation at hardware speed",
    )
    dyn_p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="shard the batched runner over this many worker processes, "
        "each shard realising its sequence locally from a spawned seed "
        "(ignored with --independent; results identical at any count)",
    )
    dyn_p.add_argument(
        "--endpoint",
        default=None,
        metavar="HOST:PORT",
        help="run the shards on a 'repro broker' worker fleet, each remote "
        "worker re-realising its shard's sequence from the wire-encoded "
        "seed (ignored with --independent)",
    )

    adv_p = sub.add_parser(
        "adversary",
        help="measure worst-case cover/infection against an adaptive "
        "adversary rewiring against the observed frontier",
        parents=[tel, res],
    )
    adv_p.add_argument(
        "--family",
        choices=("expander", "cycle", "complete", "torus"),
        default="expander",
        help="base-graph family (expander = random 4-regular)",
    )
    adv_p.add_argument("--n", type=int, default=64, help="base-graph size")
    adv_p.add_argument(
        "--kind",
        choices=("greedy-cut", "isolating-churn", "moving-source", "adaptive-rri"),
        default="greedy-cut",
        help="adversary policy (see repro.adversary)",
    )
    adv_p.add_argument(
        "--budget",
        type=int,
        default=8,
        help="edges the adversary may rewire (or vertices it may churn) "
        "per round; 0 replays the oblivious baseline bit-for-bit",
    )
    adv_p.add_argument(
        "--rate",
        type=float,
        default=0.1,
        help="oblivious double-edge-swap rate underneath the adversary "
        "(fraction of edges attempted per round; 0 = adversary only)",
    )
    adv_p.add_argument(
        "--process", choices=("cobra", "bips"), default="cobra",
        help="cobra: cover times; bips: infection times "
        "(moving-source targets the bips source)",
    )
    adv_p.add_argument("--runs", type=int, default=20)
    adv_p.add_argument("--branching", type=float, default=2.0)
    adv_p.add_argument("--lazy", action="store_true")
    adv_p.add_argument("--seed", type=int, default=0)
    adv_p.add_argument(
        "--completion",
        choices=("all-vertices", "all-active"),
        default="all-vertices",
        help="completion criterion (all-active recommended with "
        "isolating-churn, which removes vertices mid-run)",
    )
    adv_p.add_argument(
        "--batched",
        action="store_true",
        help="advance all runs on shared per-shard realisations (the "
        "batched engine; enables --workers/--endpoint) instead of the "
        "default per-run loop, where the adversary fights each run's "
        "own frontier — the worst-case statistic E17 reports",
    )
    adv_p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="with --batched: shard the runs over this many worker "
        "processes (each shard realises its own adversarial sequence "
        "from a spawned seed; results identical at any count)",
    )
    adv_p.add_argument(
        "--endpoint",
        default=None,
        metavar="HOST:PORT",
        help="with --batched: run the shards on a 'repro broker' worker "
        "fleet — adversarial sequences ship as seeded replay specs and "
        "the samples stay bit-identical to local execution",
    )

    status_p = sub.add_parser(
        "status",
        help="query a broker's shard-queue counters and latency metrics",
    )
    status_p.add_argument("endpoint", help="broker endpoint, host:port")
    status_p.add_argument(
        "--timeout",
        type=float,
        default=5.0,
        help="seconds to wait for the broker before giving up",
    )
    status_p.add_argument(
        "--watch",
        type=float,
        default=None,
        metavar="SECONDS",
        help="poll the broker every SECONDS, clearing and redrawing the "
        "status panel until interrupted",
    )

    top_p = sub.add_parser(
        "top",
        help="live terminal dashboard over one or more /statusz endpoints "
        "(brokers/workers started with --metrics-port)",
    )
    top_p.add_argument(
        "endpoints",
        nargs="+",
        metavar="ENDPOINT",
        help="metrics endpoint, host:port (the --metrics-port address, "
        "not the broker's task port)",
    )
    top_p.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="seconds between polls (default 2)",
    )
    top_p.add_argument(
        "--once",
        action="store_true",
        help="render a single frame and exit (scripting/CI use)",
    )
    top_p.add_argument(
        "--timeout",
        type=float,
        default=2.0,
        help="per-endpoint HTTP timeout in seconds",
    )
    top_p.add_argument(
        "--fail-on-dead",
        action="store_true",
        help="exit nonzero when an endpoint is unreachable instead of "
        "rendering its last frame as a stale panel",
    )

    trace_p = sub.add_parser(
        "trace", help="inspect a JSONL telemetry trace"
    )
    trace_sub = trace_p.add_subparsers(dest="trace_command", required=True)
    trace_sum_p = trace_sub.add_parser(
        "summarize",
        help="render a trace's span tree, per-hop breakdown, counters "
        "and hot-round histograms; several per-host files merge into "
        "one stitched tree (exits non-zero on a missing, empty or "
        "malformed trace)",
    )
    trace_sum_p.add_argument(
        "path",
        nargs="+",
        help="JSONL trace file(s) written by --telemetry; multiple "
        "files (client, broker, workers) are merged before summarizing",
    )

    bench_p = sub.add_parser(
        "bench",
        help="BENCH_*.json trajectory analytics: compare entries for "
        "regressions, render trend tables, migrate old schemas",
    )
    bench_sub = bench_p.add_subparsers(dest="bench_command", required=True)
    bench_common = argparse.ArgumentParser(add_help=False)
    bench_common.add_argument(
        "names",
        nargs="*",
        help="bench names (e.g. 'sharding kernels'); default: every "
        "BENCH_*.json under --root",
    )
    bench_common.add_argument(
        "--root",
        default=".",
        help="directory holding the BENCH_*.json trajectories "
        "(default: current directory)",
    )
    bench_cmp_p = bench_sub.add_parser(
        "compare",
        parents=[bench_common],
        help="diff each trajectory's latest entry against its baseline "
        "(headline seconds + telemetry digests + per-bench gates); "
        "exits non-zero when anything regresses",
    )
    bench_cmp_p.add_argument(
        "--against",
        default="last",
        help="baseline entry: 'last' (most recent comparable entry, "
        "default), an entry index (negative allowed), or a timestamp "
        "prefix",
    )
    bench_cmp_p.add_argument(
        "--fail-on-regress",
        type=float,
        default=None,
        metavar="PCT",
        help="regression threshold percent for headline seconds "
        "(default 20; the absolute noise floor of 0.1s still applies)",
    )
    bench_sub.add_parser(
        "report",
        parents=[bench_common],
        help="render ASCII trend tables per trajectory (seconds per "
        "row identity across entries, latest telemetry digest bars)",
    )
    bench_sub.add_parser(
        "migrate",
        parents=[bench_common],
        help="normalize trajectories in place (backfill machine/cpus "
        "fields, canonicalize telemetry digests); idempotent",
    )

    broker_p = sub.add_parser(
        "broker",
        help="serve the distributed shard queue (lease/heartbeat/requeue)",
        parents=[tel],
    )
    broker_p.add_argument("--host", default="127.0.0.1")
    broker_p.add_argument("--port", type=int, default=7603)
    broker_p.add_argument(
        "--lease-timeout",
        type=float,
        default=30.0,
        help="seconds before an un-heartbeated shard lease is requeued",
    )
    broker_p.add_argument(
        "--max-attempts",
        type=int,
        default=5,
        help="leases a shard may consume before its job is failed",
    )
    broker_p.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve /metrics, /healthz and /statusz on this HTTP port and "
        "sample process resources (0 = ephemeral; also "
        "REPRO_METRICS_PORT)",
    )

    worker_p = sub.add_parser(
        "worker",
        help="serve shards from a broker until it goes away",
        parents=[tel],
    )
    worker_p.add_argument("endpoint", help="broker endpoint, host:port")
    worker_p.add_argument(
        "--max-tasks",
        type=int,
        default=None,
        help="exit after this many shards (default: run until the broker "
        "closes the connection)",
    )
    worker_p.add_argument(
        "--poll",
        type=float,
        default=0.5,
        help="seconds between lease attempts while the queue is empty",
    )
    worker_p.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve /metrics, /healthz and /statusz on this HTTP port and "
        "sample process resources (0 = ephemeral; also "
        "REPRO_METRICS_PORT)",
    )
    worker_p.add_argument(
        "--faults",
        default=None,
        metavar="JSON",
        help="install a deterministic FaultPlan on this worker, given as "
        "the JSON spec produced by FaultPlan.to_json() (chaos testing "
        "only; also REPRO_FAULT_PLAN)",
    )

    chaos_p = sub.add_parser(
        "chaos",
        help="run the seeded fault-injection matrix: every fault class x "
        "serial/sharded/distributed, asserting bit-identity with the "
        "fault-free reference",
        parents=[tel],
    )
    chaos_p.add_argument(
        "--seed",
        type=int,
        default=0,
        help="chaos seed driving the workload, the fault plans and the "
        "retry jitter; a failing cell replays exactly from its seed",
    )
    chaos_p.add_argument(
        "--smoke",
        action="store_true",
        help="run the fast CI leg instead of the full matrix: two fault "
        "classes plus the dead-broker-fallback and killed-client "
        "checkpoint-resume drills",
    )
    return parser


def _graph_from_spec(spec: str):
    from .graphs import (
        complete_graph,
        cycle_graph,
        hypercube_graph,
        margulis_expander,
        path_graph,
        random_regular_graph,
        star_graph,
        torus_graph,
    )

    parts = spec.split("-")
    family = parts[0]
    if family == "hypercube":
        return hypercube_graph(int(parts[1]))
    if family == "cycle":
        return cycle_graph(int(parts[1]))
    if family == "path":
        return path_graph(int(parts[1]))
    if family == "star":
        return star_graph(int(parts[1]))
    if family == "complete":
        return complete_graph(int(parts[1]))
    if family == "margulis":
        return margulis_expander(int(parts[1]))
    if family == "torus":
        dims = [int(d) for d in parts[1].split("x")]
        return torus_graph(dims)
    if family == "rreg":
        return random_regular_graph(int(parts[2]), int(parts[1]), rng=1)
    raise SystemExit(f"unknown graph spec {spec!r}")


def _cmd_list() -> int:
    print(f"{'id':5} {'paper anchor':55} title")
    print("-" * 110)
    for key in sorted(EXPERIMENTS, key=lambda k: int(k[1:])):
        spec = EXPERIMENTS[key]
        print(f"{spec.experiment_id:5} {spec.paper_anchor:55} {spec.title}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    config = ExperimentConfig(seed=args.seed, scale=args.scale, n_workers=args.workers)
    ids = (
        sorted(EXPERIMENTS, key=lambda k: int(k[1:]))
        if args.experiment.lower() == "all"
        else [args.experiment]
    )
    failures = 0
    for experiment_id in ids:
        started = time.perf_counter()
        result = run_experiment(experiment_id, config)
        elapsed = time.perf_counter() - started
        print(result.render())
        print(f"\n[{experiment_id} finished in {elapsed:.1f}s]\n")
        if not result.all_passed:
            failures += 1
    if failures:
        print(f"{failures} experiment(s) had failing checks", file=sys.stderr)
        return 1
    return 0


def _cmd_graph_info(args: argparse.Namespace) -> int:
    from .graphs import spectral_profile, summarize

    g = _graph_from_spec(args.spec)
    summary = summarize(g)
    print(f"{g!r}")
    print(
        f"  n={summary.n} m={summary.m} dmax={summary.dmax} dmin={summary.dmin} "
        f"regular={summary.regular} bipartite={summary.bipartite} "
        f"diameter={summary.diameter}"
    )
    profile = spectral_profile(g)
    print(
        f"  lambda={profile.second_eigenvalue:.4f} gap={profile.gap:.4f} "
        f"lazy_gap={profile.lazy_gap:.4f} phi<={profile.conductance_upper:.4f}"
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .analysis import generate_report

    config = ExperimentConfig(seed=args.seed, scale=args.scale)
    text = generate_report(config)
    Path(args.output).write_text(text)
    print(f"wrote {args.output} ({len(text.splitlines())} lines)")
    return 0


def _cmd_cover(args: argparse.Namespace) -> int:
    from pathlib import Path

    import numpy as np

    from .core import cover_time_samples
    from .graphs import is_bipartite, read_edge_list
    from .stats import mean_ci, whp_quantile
    from .theory import bound_spaa17_general

    if Path(args.spec).exists():
        g = read_edge_list(args.spec)
    else:
        g = _graph_from_spec(args.spec)
    lazy = args.lazy
    if not lazy and is_bipartite(g):
        print(f"{g.name} is bipartite: enabling the lazy variant automatically")
        lazy = True
    rng = np.random.default_rng(args.seed)
    samples = cover_time_samples(
        g,
        args.start,
        args.runs,
        branching=args.branching,
        lazy=lazy,
        rng=rng,
        workers=args.workers,
        endpoint=args.endpoint,
    )
    mean = mean_ci(samples)
    whp = whp_quantile(samples, rng=rng)
    print(f"{g!r}  start={args.start} b={args.branching:g} lazy={lazy}")
    print(f"  mean cover time : {mean}")
    print(f"  95th percentile : {whp}")
    print(
        f"  Theorem 1.1 bound (constant 1): "
        f"{bound_spaa17_general(g.n, g.m, g.dmax):.1f}"
    )
    if args.endpoint is not None:
        _print_cache_stats()
    return 0


def _cmd_trajectory(args: argparse.Namespace) -> int:
    from .analysis.ascii_plots import render_ensemble
    from .core import bips_size_ensemble, cobra_coverage_ensemble
    from .graphs import is_bipartite

    g = _graph_from_spec(args.spec)
    lazy = args.lazy or is_bipartite(g)
    if args.process == "bips":
        ensemble = bips_size_ensemble(
            g,
            runs=args.runs,
            lazy=lazy,
            seed=args.seed,
            workers=args.workers,
            endpoint=args.endpoint,
        )
    else:
        ensemble = cobra_coverage_ensemble(
            g,
            runs=args.runs,
            lazy=lazy,
            seed=args.seed,
            workers=args.workers,
            endpoint=args.endpoint,
        )
    print(render_ensemble(ensemble))
    if args.endpoint is not None:
        _print_cache_stats()
    return 0


def _dynamics_base_graph(args: argparse.Namespace):
    from .graphs import (
        complete_graph,
        cycle_graph,
        random_regular_graph,
        torus_graph,
    )

    n = args.n
    if args.family == "expander":
        return random_regular_graph(n, 4, rng=args.seed + 1000)
    if args.family == "cycle":
        return cycle_graph(n if n % 2 else n + 1)  # odd: non-bipartite
    if args.family == "complete":
        return complete_graph(n)
    side = max(3, round(n**0.5))
    return torus_graph([side, side])


def _dynamics_sequence_factory(args: argparse.Namespace, base):
    from .dynamics import (
        ChurnSequence,
        EdgeMarkovianSequence,
        FrozenSequence,
        RewiringSequence,
    )

    rate = args.rate
    if args.kind == "frozen" or rate == 0.0:
        return "frozen", lambda topology_seed: FrozenSequence(base)
    if args.kind == "rewiring":
        swaps = max(1, round(rate * base.m))
        return (
            f"rewiring ({swaps} swaps/round)",
            lambda topology_seed: RewiringSequence(base, swaps, seed=topology_seed),
        )
    if args.kind == "edge-markovian":
        # Birth rate chosen so the stationary density equals the base's.
        density = base.m / (base.n * (base.n - 1) / 2)
        birth = min(1.0, rate * density / max(1e-12, 1.0 - density))
        return (
            f"edge-markovian (birth={birth:.4f}, death={rate:g})",
            lambda topology_seed: EdgeMarkovianSequence(
                base, birth, rate, seed=topology_seed
            ),
        )
    return (
        f"churn (leave={rate:g}, rejoin=0.5)",
        lambda topology_seed: ChurnSequence(base, rate, 0.5, seed=topology_seed),
    )


def _cmd_dynamics(args: argparse.Namespace) -> int:
    import numpy as np

    from .dynamics import (
        dynamic_cover_time_batch,
        dynamic_cover_time_samples,
        dynamic_infection_time_batch,
        dynamic_infection_time_samples,
    )
    from .stats import mean_ci, whp_quantile

    if not 0.0 <= args.rate <= 1.0:
        raise SystemExit("--rate must be in [0, 1]")
    if args.runs < 1:
        raise SystemExit("--runs must be >= 1")
    try:
        base = _dynamics_base_graph(args)
    except ValueError as exc:
        raise SystemExit(f"cannot build a {args.family} base graph: {exc}")
    label, factory = _dynamics_sequence_factory(args, base)
    if args.independent:
        sample_cover = dynamic_cover_time_samples
        sample_infec = dynamic_infection_time_samples
        mode = "independent realisations (per-run loop)"
    else:
        sample_cover = dynamic_cover_time_batch
        sample_infec = dynamic_infection_time_batch
        mode = "batched (R, n) engine, shared realisation"
    extra = {}
    if not args.independent and args.workers is not None:
        extra["workers"] = args.workers
        mode = (
            f"sharded (R, n) engine, {args.workers} workers, "
            "shard-local realisations"
        )
    if not args.independent and args.endpoint is not None:
        extra["endpoint"] = args.endpoint
        mode = (
            f"distributed (R, n) engine via broker {args.endpoint}, "
            "shard-local realisations"
        )
    try:
        if args.process == "cobra":
            samples = sample_cover(
                factory,
                args.runs,
                branching=args.branching,
                lazy=args.lazy,
                seed=args.seed,
                completion=args.completion,
                **extra,
            )
            measured = "cover time"
        else:
            samples = sample_infec(
                factory,
                args.runs,
                branching=args.branching,
                lazy=args.lazy,
                seed=args.seed,
                completion=args.completion,
                **extra,
            )
            measured = "infection time"
    except RuntimeError as exc:
        raise SystemExit(
            f"{exc}\nhint: under heavy churn, full coverage/infection of all "
            "n vertices may be unreachable — lower --rate or pass "
            "--completion all-active (count only currently-present vertices)"
        )
    stat_rng = np.random.default_rng(args.seed)
    print(
        f"dynamic {args.process.upper()} on {base!r}\n"
        f"  dynamics  : {label}\n"
        f"  execution : {mode}\n"
        f"  runs={args.runs} b={args.branching:g} lazy={args.lazy} "
        f"seed={args.seed} completion={args.completion}"
    )
    print(f"  mean {measured:14}: {mean_ci(samples)}")
    print(f"  95th percentile    : {whp_quantile(samples, rng=stat_rng)}")
    if args.endpoint is not None:
        _print_cache_stats()
    return 0


def _cmd_adversary(args: argparse.Namespace) -> int:
    import numpy as np

    from .adversary import AdversarialSequence, make_adversary
    from .dynamics import (
        dynamic_cover_time_batch,
        dynamic_cover_time_samples,
        dynamic_infection_time_batch,
        dynamic_infection_time_samples,
    )
    from .stats import mean_ci, whp_quantile

    if not 0.0 <= args.rate <= 1.0:
        raise SystemExit("--rate must be in [0, 1]")
    if args.budget < 0:
        raise SystemExit("--budget must be >= 0")
    if args.runs < 1:
        raise SystemExit("--runs must be >= 1")
    if not args.batched and (args.workers is not None or args.endpoint is not None):
        raise SystemExit("--workers/--endpoint require --batched")
    try:
        base = _dynamics_base_graph(args)
    except ValueError as exc:
        raise SystemExit(f"cannot build a {args.family} base graph: {exc}")
    swaps = max(1, round(args.rate * base.m)) if args.rate > 0 else 0
    if base.m < 2:
        raise SystemExit("adversarial rewiring needs at least two edges")

    def factory(topology_seed):
        return AdversarialSequence(
            base,
            make_adversary(args.kind, args.budget),
            topology_seed,
            swaps_per_round=swaps,
        )

    extra = {}
    if args.batched:
        sample_cover = dynamic_cover_time_batch
        sample_infec = dynamic_infection_time_batch
        mode = "batched (R, n) engine, shard-local adversarial realisations"
        if args.workers is not None:
            extra["workers"] = args.workers
            mode = f"sharded (R, n) engine, {args.workers} workers"
        if args.endpoint is not None:
            extra["endpoint"] = args.endpoint
            mode = f"distributed (R, n) engine via broker {args.endpoint}"
    else:
        sample_cover = dynamic_cover_time_samples
        sample_infec = dynamic_infection_time_samples
        mode = "per-run loop (adversary fights each run's own frontier)"
    try:
        if args.process == "cobra":
            samples = sample_cover(
                factory,
                args.runs,
                branching=args.branching,
                lazy=args.lazy,
                seed=args.seed,
                completion=args.completion,
                **extra,
            )
            measured = "cover time"
        else:
            samples = sample_infec(
                factory,
                args.runs,
                branching=args.branching,
                lazy=args.lazy,
                seed=args.seed,
                completion=args.completion,
                **extra,
            )
            measured = "infection time"
    except RuntimeError as exc:
        raise SystemExit(
            f"{exc}\nhint: a harsh adversary can push runs past the round "
            "cap — lower --budget, or pass --completion all-active for "
            "churn-style adversaries"
        )
    stat_rng = np.random.default_rng(args.seed)
    print(
        f"adversarial {args.process.upper()} on {base!r}\n"
        f"  adversary : {args.kind} (budget {args.budget}/round)\n"
        f"  oblivious : {swaps} double-edge swaps/round (rate {args.rate:g})\n"
        f"  execution : {mode}\n"
        f"  runs={args.runs} b={args.branching:g} lazy={args.lazy} "
        f"seed={args.seed} completion={args.completion}"
    )
    print(f"  mean {measured:14}: {mean_ci(samples)}")
    print(f"  95th percentile    : {whp_quantile(samples, rng=stat_rng)}")
    if args.endpoint is not None:
        _print_cache_stats()
    return 0


def _status_frame(endpoint: str, counts: dict) -> dict:
    """Adapt a TCP ``status`` reply into the shared panel-frame shape."""
    from .distributed import transport_snapshot

    core = ("jobs", "pending", "leased", "done", "failed")
    queue = {key: counts.get(key, 0) for key in core}
    for key in sorted(set(counts) - set(core) - {"metrics"}):
        queue[key] = counts[key]
    frame = {
        "role": "broker",
        "address": endpoint,
        "queue": queue,
        "metrics": counts.get("metrics") or {},
    }
    frame.update(transport_snapshot())
    frame.pop("counters", None)  # client-side counters are noise here
    return frame


def _clear_screen() -> None:
    """ANSI clear + home, so watch/top redraw instead of scroll-append."""
    print("\x1b[2J\x1b[H", end="")


def _cmd_status(args: argparse.Namespace) -> int:
    from .distributed import DistributedError, broker_status
    from .telemetry import render_status_panel

    while True:
        try:
            counts = broker_status(args.endpoint, timeout=args.timeout)
        except DistributedError as exc:
            print(
                f"cannot query broker at {args.endpoint}: {exc}", file=sys.stderr
            )
            return 1
        try:
            if args.watch is not None:
                _clear_screen()
            print(render_status_panel(_status_frame(args.endpoint, counts)))
            if args.watch is None:
                return 0
            time.sleep(max(0.05, args.watch))
        except KeyboardInterrupt:
            return 0
        except BrokenPipeError:
            # Downstream pager/head closed the pipe: a clean exit, not
            # an error (common under ``--watch ... | head``).  Point
            # stdout at devnull so the interpreter's exit-time flush
            # does not raise again.
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
            return 0


def _cmd_top(args: argparse.Namespace) -> int:
    """Live dashboard: poll /statusz endpoints, render stacked panels.

    A dead endpoint degrades to its last reachable frame marked STALE
    (or a one-line unreachable notice if it never answered); only
    ``--fail-on-dead`` turns that into a nonzero exit.
    """
    from .telemetry import fetch_statusz, render_status_panel

    last: dict[str, tuple[dict, float]] = {}
    while True:
        now = time.monotonic()
        dead: list[str] = []
        panels: list[str] = []
        for endpoint in args.endpoints:
            try:
                payload = fetch_statusz(endpoint, timeout=args.timeout)
                last[endpoint] = (payload, now)
            except (OSError, ValueError) as exc:
                dead.append(endpoint)
                if endpoint not in last:
                    panels.append(f"{endpoint}: unreachable ({exc})")
                    continue
            payload, seen = last[endpoint]
            stale = now - seen if endpoint in dead else None
            panels.append(
                render_status_panel(payload, title=endpoint, stale_s=stale)
            )
        frame = "\n\n".join(panels)
        try:
            if not args.once:
                _clear_screen()
            print(frame)
        except KeyboardInterrupt:
            return 0
        except BrokenPipeError:
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
            return 0
        if dead and args.fail_on_dead:
            print(
                f"unreachable endpoint(s): {', '.join(dead)}", file=sys.stderr
            )
            return 1
        if args.once:
            return 0
        try:
            time.sleep(max(0.05, args.interval))
        except KeyboardInterrupt:
            return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .telemetry import load_traces, render_trace

    try:
        records = load_traces(args.path)
    except OSError as exc:
        print(f"cannot read trace: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        # load_jsonl's line-numbered parse error, or an empty file.
        print(f"malformed trace: {exc}", file=sys.stderr)
        return 1
    print(render_trace(records))
    return 0


def _bench_paths(args: argparse.Namespace) -> list:
    """Resolve the bench subcommands' trajectory paths (raises SystemExit)."""
    from pathlib import Path

    from .telemetry import discover_benches

    if args.names:
        paths = [Path(args.root) / f"BENCH_{name}.json" for name in args.names]
        missing = [str(p) for p in paths if not p.exists()]
        if missing:
            raise SystemExit(f"no such trajectory: {', '.join(missing)}")
        return paths
    paths = discover_benches(args.root)
    if not paths:
        raise SystemExit(f"no BENCH_*.json trajectories under {args.root!r}")
    return paths


def _cmd_bench(args: argparse.Namespace) -> int:
    from .telemetry import compare_all, migrate_file, render_report, render_trends
    from .telemetry.compare import Thresholds, load_benches

    paths = _bench_paths(args)
    if args.bench_command == "migrate":
        total = 0
        for path in paths:
            changed = migrate_file(path)
            total += changed
            state = f"{changed} entr{'y' if changed == 1 else 'ies'} migrated"
            print(f"{path}: {state if changed else 'already normal'}")
        print(f"migrated {total} entr{'y' if total == 1 else 'ies'} total")
        return 0
    if args.bench_command == "report":
        print(render_trends(load_benches(paths)))
        return 0
    # compare
    thresholds = Thresholds()
    if args.fail_on_regress is not None:
        thresholds = Thresholds(
            regress_pct=float(args.fail_on_regress),
            digest_regress_pct=max(
                float(args.fail_on_regress), Thresholds().digest_regress_pct
            ),
        )
    report = compare_all(paths, against=args.against, thresholds=thresholds)
    print(render_report(report))
    return 0 if report.ok else 1


def _print_cache_stats() -> None:
    """One line of client-side cache traffic for the finished job."""
    from .telemetry import get_telemetry

    counters = get_telemetry().counters()
    hits = int(counters.get("client.cache.hits", 0))
    misses = int(counters.get("client.cache.misses", 0))
    if hits or misses:
        print(f"  result cache    : {hits} hit(s), {misses} miss(es)")


def _cmd_broker(args: argparse.Namespace) -> int:
    from .distributed import Broker
    from .telemetry import ResourceSampler, metrics_port_from_env

    broker = Broker(
        args.host,
        args.port,
        lease_timeout=args.lease_timeout,
        max_attempts=args.max_attempts,
    )
    metrics_port = metrics_port_from_env(args.metrics_port)
    live: list = []

    def _ready(b) -> None:
        print(
            f"repro broker listening on {b.address} "
            f"(lease timeout {b.ledger.lease_timeout:g}s, "
            f"max attempts {b.ledger.max_attempts})"
        )
        if metrics_port is not None:
            # Started from the ready callback so the ephemeral-port
            # case can report the bound port next to the task port.
            live.append(ResourceSampler().start())
            server = b.serve_metrics(metrics_port, host=args.host)
            live.append(server)
            print(f"repro broker metrics on http://{server.address}/metrics")

    try:
        broker.run_forever(ready=_ready)
    except KeyboardInterrupt:
        pass
    finally:
        for item in live:
            item.stop()
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from .distributed import DistributedError
    from .distributed.worker import run_worker

    faults = None
    if args.faults is not None:
        from .resilience import FaultPlan

        try:
            faults = FaultPlan.from_json(args.faults)
        except (ValueError, TypeError, KeyError) as exc:
            print(f"malformed --faults plan: {exc}", file=sys.stderr)
            return 2
        print(f"repro worker running with fault plan seed={faults.seed}")
    print(f"repro worker attaching to {args.endpoint}")
    try:
        completed = run_worker(
            args.endpoint,
            max_tasks=args.max_tasks,
            poll_interval=args.poll,
            faults=faults,
            metrics_port=args.metrics_port,
        )
    except KeyboardInterrupt:
        return 0
    except (OSError, DistributedError) as exc:
        print(f"worker cannot serve {args.endpoint}: {exc}", file=sys.stderr)
        return 1
    print(f"worker exiting after {completed} shard(s)")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .resilience import chaos

    runner = chaos.run_chaos_smoke if args.smoke else chaos.run_chaos_matrix
    report = runner(seed=args.seed, emit=print)
    print(chaos.format_report(report))
    return 0 if report["ok"] else 1


def _configure_resilience(args: argparse.Namespace) -> None:
    """Install --retry-*/--checkpoint/--fallback as process defaults.

    Only touches the defaults a flag was actually given for, so
    ``endpoint=`` entry points below the command pick them up through
    their ``"default"`` sentinels without any signature threading.
    """
    retry_attempts = getattr(args, "retry_attempts", None)
    retry_base = getattr(args, "retry_base", None)
    retry_max = getattr(args, "retry_max", None)
    checkpoint = getattr(args, "checkpoint", None)
    fallback = getattr(args, "fallback", None)
    if not any(
        v is not None
        for v in (retry_attempts, retry_base, retry_max, checkpoint, fallback)
    ):
        return
    from . import resilience

    kwargs: dict = {}
    if any(v is not None for v in (retry_attempts, retry_base, retry_max)):
        default = resilience.RetryPolicy()
        base = retry_base if retry_base is not None else default.base_delay_s
        cap = retry_max if retry_max is not None else default.max_delay_s
        kwargs["retry"] = resilience.RetryPolicy(
            attempts=(
                retry_attempts
                if retry_attempts is not None
                else default.attempts
            ),
            base_delay_s=base,
            max_delay_s=max(cap, base),
        )
    if checkpoint is not None:
        kwargs["checkpoint"] = checkpoint
    if fallback is not None:
        kwargs["fallback"] = fallback
    resilience.configure(**kwargs)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    from .telemetry import configure_from_env, get_telemetry

    args = build_parser().parse_args(argv)
    # --telemetry (or REPRO_TELEMETRY) turns tracing on for the whole
    # command; flushed on every exit path so partial runs still leave
    # a readable JSONL trace.
    configure_from_env(getattr(args, "telemetry", None))
    # --kernel-backend exports through the environment so every engine
    # entry point the command reaches — and every pool worker forked
    # beneath it — resolves the same kernel choice.
    kernel_backend = getattr(args, "kernel_backend", None)
    if kernel_backend is not None:
        from .kernels import ENV_VAR

        os.environ[ENV_VAR] = kernel_backend
    # --retry-*/--checkpoint/--fallback install process-wide resilience
    # defaults (see repro.resilience.configure) for the broker-reaching
    # commands.
    _configure_resilience(args)
    try:
        return _dispatch(args)
    finally:
        get_telemetry().flush()


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "graph-info":
        return _cmd_graph_info(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "cover":
        return _cmd_cover(args)
    if args.command == "trajectory":
        return _cmd_trajectory(args)
    if args.command == "dynamics":
        return _cmd_dynamics(args)
    if args.command == "adversary":
        return _cmd_adversary(args)
    if args.command == "status":
        return _cmd_status(args)
    if args.command == "top":
        return _cmd_top(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "broker":
        return _cmd_broker(args)
    if args.command == "worker":
        return _cmd_worker(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    raise SystemExit(2)  # pragma: no cover - argparse enforces commands


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
