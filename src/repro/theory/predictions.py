"""Per-family asymptotic predictions used by the scaling experiments.

Bundles, for each graph family the experiments sweep, the paper's (or
the literature's) predicted cover-time growth and which bound applies —
so E1/E2/E3/E11 can ask one place "what should the exponent be?".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["FamilyPrediction", "PREDICTIONS", "prediction_for"]


@dataclass(frozen=True)
class FamilyPrediction:
    """Expected scaling of COBRA (b = 2) cover time for one graph family.

    ``power_of_n``: predicted exponent ``c`` in ``T = Θ(n^c · polylog)``.
    ``polylog_only``: True when the prediction is purely polylogarithmic
    (then ``power_of_n == 0`` and ``log_power`` gives the predicted
    power of ``log n``, or a best-known upper bound on it).
    ``source``: which paper/bound the prediction comes from.
    """

    family: str
    power_of_n: float
    log_power: float
    polylog_only: bool
    source: str

    def predicted_value(self, n: int, *, constant: float = 1.0) -> float:
        """Evaluate ``constant · n^c (ln n)^p`` at ``n``."""
        return constant * n**self.power_of_n * max(1.0, math.log(n)) ** self.log_power


PREDICTIONS: dict[str, FamilyPrediction] = {
    "complete": FamilyPrediction(
        family="complete",
        power_of_n=0.0,
        log_power=1.0,
        polylog_only=True,
        source="Dutta et al. SPAA'13: O(log n) w.h.p. on K_n",
    ),
    "random-regular": FamilyPrediction(
        family="random-regular",
        power_of_n=0.0,
        log_power=1.0,
        polylog_only=True,
        source="Cooper et al. PODC'16 / this paper: O(log n) on expanders",
    ),
    "margulis": FamilyPrediction(
        family="margulis",
        power_of_n=0.0,
        log_power=2.0,
        polylog_only=True,
        source="Dutta et al. SPAA'13: O(log^2 n) on const-degree expanders "
        "(improved to O(log n) by PODC'16)",
    ),
    "hypercube": FamilyPrediction(
        family="hypercube",
        power_of_n=0.0,
        log_power=3.0,
        polylog_only=True,
        source="this paper: O(log^3 n); conjectured Θ(log n)",
    ),
    "torus-2d": FamilyPrediction(
        family="torus-2d",
        power_of_n=0.5,
        log_power=0.0,
        polylog_only=False,
        source="Dutta et al. / Mitzenmacher et al.: Θ~(n^(1/2)) for D = 2",
    ),
    "torus-3d": FamilyPrediction(
        family="torus-3d",
        power_of_n=1.0 / 3.0,
        log_power=0.0,
        polylog_only=False,
        source="Dutta et al. / Mitzenmacher et al.: Θ~(n^(1/3)) for D = 3",
    ),
    "cycle": FamilyPrediction(
        family="cycle",
        power_of_n=1.0,
        log_power=0.0,
        polylog_only=False,
        source="D = 1 grid: Θ~(n); Theorem 1.1 gives O(m + log n) = O(n)",
    ),
    "path": FamilyPrediction(
        family="path",
        power_of_n=1.0,
        log_power=0.0,
        polylog_only=False,
        source="diameter lower bound n − 1; Theorem 1.1 gives O(n)",
    ),
    "barbell": FamilyPrediction(
        family="barbell",
        power_of_n=2.0,
        log_power=0.0,
        polylog_only=False,
        source="m = Θ(n²): Theorem 1.1's O(m + dmax² log n) regime",
    ),
}


def prediction_for(family: str) -> FamilyPrediction:
    """Look up a family's prediction; raises ``KeyError`` with the options."""
    try:
        return PREDICTIONS[family]
    except KeyError:
        raise KeyError(
            f"no prediction for family {family!r}; known: {sorted(PREDICTIONS)}"
        ) from None
