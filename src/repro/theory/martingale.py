"""Lemma 2.1 / Corollary 2.2: supermartingale concentration machinery.

Lemma 2.1 (Azuma–Hoeffding variant): if ``|Z_i| <= 1`` and
``E[Z_i | Z_1..Z_{i-1}] <= 0`` then ``P(S_q > δ√q) < e^{−δ²/2}``.

Corollary 2.2 (uniform-in-q version): for ``0 < α <= 1`` and
``q0 >= 1``,

    ``P(∃ q >= q0 : S_q > α(q − q0) + δ√q0)
        < q0 e^{−δ²/4} + (16/α²) e^{−α² q0 / 4}``.

These drive Lemma 3.1's round schedule.  This module provides the bound
evaluators plus an empirical-verification harness that feeds either
synthetic bounded-increment supermartingales or real serialised-BIPS
``Z_l`` streams through the inequality (experiment E10).
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

__all__ = [
    "azuma_tail_bound",
    "corollary22_bound",
    "empirical_sup_tail",
    "TailCheck",
    "check_azuma_on_paths",
    "synthetic_supermartingale_paths",
]


def azuma_tail_bound(delta: float) -> float:
    """Lemma 2.1 right-hand side: ``e^{−δ²/2}``."""
    if delta <= 0:
        raise ValueError("delta must be positive")
    return float(np.exp(-(delta**2) / 2.0))


def corollary22_bound(delta: float, alpha: float, q0: int) -> float:
    """Corollary 2.2 right-hand side.

    ``q0 e^{−δ²/4} + (16/α²) e^{−α² q0 / 4}`` for ``0 < α <= 1``,
    ``q0 >= 1``.
    """
    if delta <= 0:
        raise ValueError("delta must be positive")
    if not 0.0 < alpha <= 1.0:
        raise ValueError("alpha must be in (0, 1]")
    if q0 < 1:
        raise ValueError("q0 must be >= 1")
    return float(
        q0 * np.exp(-(delta**2) / 4.0)
        + (16.0 / alpha**2) * np.exp(-(alpha**2) * q0 / 4.0)
    )


def empirical_sup_tail(
    paths: np.ndarray, delta: float, alpha: float, q0: int
) -> float:
    """Empirical LHS of Corollary 2.2 over sample paths.

    ``paths`` has shape ``(R, Q)``: R independent increment sequences
    ``Z_1..Z_Q``.  Returns the fraction of paths on which
    ``S_q > α(q − q0) + δ√q0`` for *some* ``q0 <= q <= Q``.
    """
    paths = np.asarray(paths, dtype=np.float64)
    if paths.ndim != 2:
        raise ValueError("paths must be 2-D (runs, steps)")
    runs, q_max = paths.shape
    if q0 > q_max:
        raise ValueError("q0 beyond the simulated horizon")
    sums = np.cumsum(paths, axis=1)
    qs = np.arange(1, q_max + 1, dtype=np.float64)
    threshold = alpha * (qs - q0) + delta * np.sqrt(q0)
    relevant = qs >= q0
    exceed = (sums > threshold[None, :]) & relevant[None, :]
    return float(np.mean(exceed.any(axis=1)))


@dataclass(frozen=True)
class TailCheck:
    """One (δ, α, q0) grid point of the E10 verification."""

    delta: float
    alpha: float
    q0: int
    empirical: float
    bound: float

    @property
    def holds(self) -> bool:
        """Inequality satisfied (bound may exceed 1, then trivially true)."""
        return self.empirical <= min(self.bound, 1.0) + 1e-12


def check_azuma_on_paths(
    paths: np.ndarray,
    deltas=(1.0, 2.0, 3.0),
    alphas=(0.25, 0.5, 1.0),
    q0s=(8, 32, 128),
) -> list[TailCheck]:
    """Evaluate Corollary 2.2 empirically across a (δ, α, q0) grid."""
    checks = []
    q_max = paths.shape[1]
    for delta in deltas:
        for alpha in alphas:
            for q0 in q0s:
                if q0 > q_max:
                    continue
                emp = empirical_sup_tail(paths, delta, alpha, q0)
                checks.append(
                    TailCheck(
                        delta=float(delta),
                        alpha=float(alpha),
                        q0=int(q0),
                        empirical=emp,
                        bound=corollary22_bound(delta, alpha, q0),
                    )
                )
    return checks


def synthetic_supermartingale_paths(
    runs: int,
    steps: int,
    rng: np.random.Generator,
    *,
    drift: float = 0.0,
    kind: str = "rademacher",
) -> np.ndarray:
    """Generate bounded-increment supermartingale sample paths.

    ``kind``:

    * ``"rademacher"`` — ±1 increments with ``P(+1) = (1 + drift)/2``
      (``drift <= 0`` for a supermartingale).
    * ``"uniform"`` — increments uniform on ``[−1, min(1, drift·2+1)]``
      shifted so the mean is ``drift``.

    ``drift`` must be ``<= 0`` to satisfy Lemma 2.1's hypothesis.
    """
    if drift > 0:
        raise ValueError("supermartingale requires non-positive drift")
    if kind == "rademacher":
        p_up = (1.0 + drift) / 2.0
        ups = rng.random((runs, steps)) < p_up
        return np.where(ups, 1.0, -1.0)
    if kind == "uniform":
        # U[-1, 1] has mean 0; shift down by |drift| then clip to [-1, 1].
        vals = rng.uniform(-1.0, 1.0, size=(runs, steps)) + drift
        return np.clip(vals, -1.0, 1.0)
    raise ValueError(f"unknown path kind {kind!r}")
