"""Mean-field (complete-graph) predictors for COBRA and BIPS.

On ``K_n`` the two processes admit clean occupancy recursions that are
exact in expectation conditioned on the current size:

* **COBRA**: given ``|C_t| = k``, each of the ``2k`` pushed particles
  lands on a uniform vertex among the ``n − 1`` non-senders... each
  *vertex* is chosen by a particular sender with probability
  ``1/(n−1)`` per selection, so

      ``E|C_{t+1}|  =  Σ_u P(u chosen)  =  n·(1 − (1 − 1/(n−1))^{2k})``
      (up to the O(1/n) correction that senders cannot choose themselves).

* **BIPS**: given ``|A_t| = a``, a non-source vertex picks two uniform
  neighbours; on ``K_n`` each pick is infected w.p. ``≈ a/(n−1)`` (one
  must subtract the vertex itself from its neighbourhood), so

      ``E|A_{t+1}| = 1 + Σ_{u≠v} (1 − (1 − a_u/(n−1))²)``,

  which at mean-field level is the logistic-like map
  ``x ↦ 1 − (1 − x)²`` on the infected fraction.

These give the ``O(log n)`` complete-graph trajectories the paper cites
from [Dutta et al.] and sharp sanity targets for the simulators.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "cobra_complete_expected_next",
    "cobra_complete_meanfield_trajectory",
    "bips_complete_expected_next",
    "bips_complete_meanfield_trajectory",
    "meanfield_rounds_to_cover",
]


def cobra_complete_expected_next(k: float, n: int, *, b: int = 2) -> float:
    """``E|C_{t+1}|`` on ``K_n`` given ``|C_t| = k`` (occupancy bound).

    Every vertex ``u`` fails to be chosen iff all ``b·k`` selections
    miss it; a selection by an active vertex ``w ≠ u`` hits ``u`` w.p.
    ``1/(n−1)``.  Ignoring the self-exclusion correction for active
    ``u`` (an O(k/n²) effect) gives

        ``E|C_{t+1}| = n (1 − (1 − 1/(n−1))^{b k})``.
    """
    if not 0 <= k <= n:
        raise ValueError("active size out of range")
    return n * (1.0 - (1.0 - 1.0 / (n - 1)) ** (b * k))


def cobra_complete_meanfield_trajectory(
    n: int, *, b: int = 2, start: float = 1.0, t_max: int = 100
) -> np.ndarray:
    """Iterate the occupancy map from ``|C_0| = start``.

    Early rounds double (the branching-dominated phase); the trajectory
    then saturates at the fixed point ``k* ≈ n(1 − e^{−b k*/n})``
    (≈ 0.797 n for b = 2).
    """
    out = np.empty(t_max + 1)
    out[0] = start
    for t in range(t_max):
        out[t + 1] = cobra_complete_expected_next(out[t], n, b=b)
    return out


def bips_complete_expected_next(a: float, n: int, *, rho: float = 1.0) -> float:
    """``E|A_{t+1}|`` on ``K_n`` given ``|A_t| = a`` (source included).

    A non-source vertex ``u`` sees ``a − [u ∈ A]`` infected vertices
    among its ``n − 1`` neighbours; at mean-field level we use the
    uninfected-vertex rate ``p = a/(n−1)`` for all ``n − 1`` non-source
    vertices, with the second selection taken w.p. ρ:

        ``E|A_{t+1}| = 1 + (n−1)(1 − (1 − p)(1 − ρ p))``.
    """
    if not 1 <= a <= n:
        raise ValueError("infected size out of range (source always infected)")
    p = min(1.0, a / (n - 1))
    return 1.0 + (n - 1) * (1.0 - (1.0 - p) * (1.0 - rho * p))


def bips_complete_meanfield_trajectory(
    n: int, *, rho: float = 1.0, t_max: int = 100
) -> np.ndarray:
    """Iterate the BIPS mean-field map from ``|A_0| = 1``."""
    out = np.empty(t_max + 1)
    out[0] = 1.0
    for t in range(t_max):
        out[t + 1] = bips_complete_expected_next(out[t], n, rho=rho)
    return out


def meanfield_rounds_to_cover(n: int, *, b: int = 2, fraction: float = 0.99) -> int:
    """Rounds until the mean-field *cumulative coverage* reaches ``fraction·n``.

    Tracks both the active-set size ``k_t`` (the occupancy map) and the
    expected covered count: an uncovered vertex stays uncovered through
    one round w.p. ``(1 − 1/(n−1))^{b k_t}``.  Θ(log n) for b = 2 — the
    complete-graph claim of [Dutta et al., SPAA'13]: doubling up to
    ~n/2 takes ``log₂ n`` rounds, then the per-round survival factor is
    a constant < 1, so the tail drains geometrically.
    """
    if not 0.0 < fraction < 1.0:
        raise ValueError("fraction must be in (0, 1)")
    k = 1.0
    uncovered = float(n - 1)
    target_uncovered = (1.0 - fraction) * n
    for t in range(100 * int(math.log2(max(n, 2))) + 400):
        if uncovered <= target_uncovered:
            return t
        survive = (1.0 - 1.0 / (n - 1)) ** (b * k)
        uncovered *= survive
        k = cobra_complete_expected_next(k, n, b=b)
    raise RuntimeError("mean-field trajectory failed to reach the target")
