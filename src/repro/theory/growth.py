"""Growth lemmas for BIPS on regular graphs (Sections 4 and 5).

* Lemma 4.1 (b = 2):    ``E[|A_{t+1}|] >= |A|(1 + (1−λ²)(1 − |A|/n))``
* Lemma 4.2 (b = 1+ρ):  ``E[|A_{t+1}|] >= |A|(1 + ρ(1−λ²)(1 − |A|/n))``
* Corollary 5.2:        ``|C_t| >= |A_{t−1}|(1−λ)/2`` when ``|A_{t−1}| <= n/2``
  (as a bound on the conditional expectation E|B_rand|, which |C| dominates)
* Lemma 5.4's doubling schedule: ``κ_i = 2^i κ_0``, ``t_i = t_0 + 16 i r/(1−λ)``.

The evaluators below are consumed by experiments E6, E7 and E12 and by
the property-test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "lemma41_growth_bound",
    "lemma42_growth_bound",
    "cor52_candidate_bound",
    "PhaseSchedule",
    "lemma54_schedule",
    "expected_growth_curve",
]


def lemma41_growth_bound(size: float, n: int, lam: float) -> float:
    """Lemma 4.1 RHS: expected next infected size for ``b = 2``."""
    if not 0.0 <= lam < 1.0:
        raise ValueError("need 0 <= lambda < 1")
    if not 0 <= size <= n:
        raise ValueError("infected size out of range")
    return size * (1.0 + (1.0 - lam**2) * (1.0 - size / n))


def lemma42_growth_bound(size: float, n: int, lam: float, rho: float) -> float:
    """Lemma 4.2 RHS: expected next infected size for ``b = 1 + ρ``."""
    if not 0.0 < rho <= 1.0:
        raise ValueError("rho must be in (0, 1]")
    if not 0.0 <= lam < 1.0:
        raise ValueError("need 0 <= lambda < 1")
    return size * (1.0 + rho * (1.0 - lam**2) * (1.0 - size / n))


def cor52_candidate_bound(prev_size: float, n: int, lam: float) -> float:
    """Corollary 5.2 RHS: ``|A_{t−1}|(1−λ)/2``, valid when ``|A_{t−1}| <= n/2``."""
    if prev_size > n / 2:
        raise ValueError("Corollary 5.2 requires |A| <= n/2")
    return prev_size * (1.0 - lam) / 2.0


@dataclass(frozen=True)
class PhaseSchedule:
    """Lemma 5.4's doubling schedule for a given regular graph.

    Phase ``i`` targets infection size ``kappas[i]`` by round
    ``rounds[i]``; the final target is ``>= n/4``.
    """

    n: int
    r: int
    gap: float
    kappa0: float
    t0: float
    kappas: np.ndarray
    rounds: np.ndarray

    @property
    def total_rounds(self) -> float:
        """The schedule's endpoint ``t_j = O(r (1/(1−λ) + r) log n)``."""
        return float(self.rounds[-1])


def lemma54_schedule(
    n: int, r: int, gap: float, *, c_prime: float = 1.0
) -> PhaseSchedule:
    """Build Lemma 5.4's doubling schedule.

    ``κ_0 = min{1/(1−λ) + (C′ r/4) log n, n}``, ``t_0 = 8 r κ_0``, then
    ``κ_i = 2^i κ_0`` and ``t_i = t_0 + 16 i r/(1−λ)`` until
    ``κ_j ∈ [n/4, n/2)``.
    """
    if gap <= 0:
        raise ValueError("need a positive eigenvalue gap")
    log_n = max(1.0, math.log(n))
    kappa0 = min(1.0 / gap + (c_prime * r / 4.0) * log_n, float(n))
    t0 = 8.0 * r * kappa0
    kappas = [kappa0]
    rounds = [t0]
    i = 0
    while kappas[-1] < n / 4.0:
        i += 1
        kappas.append(2.0**i * kappa0)
        rounds.append(t0 + 16.0 * i * r / gap)
    return PhaseSchedule(
        n=n,
        r=r,
        gap=gap,
        kappa0=kappa0,
        t0=t0,
        kappas=np.asarray(kappas, dtype=np.float64),
        rounds=np.asarray(rounds, dtype=np.float64),
    )


def expected_growth_curve(
    n: int, lam: float, *, rho: float = 1.0, start: float = 1.0, t_max: int = 200
) -> np.ndarray:
    """Iterate the Lemma 4.1/4.2 lower bound as a deterministic recursion.

    Gives the *pessimistic* growth trajectory the lemmas guarantee in
    expectation; the measured mean-size curve should dominate it.
    Values are capped at ``n``.
    """
    sizes = np.empty(t_max + 1, dtype=np.float64)
    sizes[0] = start
    for t in range(t_max):
        nxt = lemma42_growth_bound(sizes[t], n, lam, rho)
        sizes[t + 1] = min(nxt, float(n))
    return sizes
