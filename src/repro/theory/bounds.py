"""Every cover-time bound the paper states, proves, or compares against.

All bounds are asymptotic (``O(·)``); the functions here evaluate the
*bound expression* with an explicit leading constant (default 1) so
experiments can (a) check dominance ``bound >= measured`` after
calibrating the constant on one instance, and (b) compare the *growth
shapes* of competing bounds, which is the paper's actual claim.

Naming: ``spaa13`` = Dutta et al. [5, 6]; ``spaa16`` = Mitzenmacher et
al. [8]; ``podc16`` = Cooper et al. [4]; ``spaa17`` = this paper.
Logarithms are natural unless stated otherwise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "lower_bound_cover",
    "bound_spaa17_general",
    "bound_spaa17_regular",
    "bound_podc16_regular",
    "bound_spaa16_regular",
    "bound_spaa16_general",
    "bound_spaa16_grid",
    "bound_spaa13_complete",
    "bound_spaa13_expander",
    "bound_spaa13_grid",
    "lemma31_round_schedule",
    "cor51_round_schedule",
    "cor53_delta",
    "rho_scaled",
    "gap_condition_holds",
    "HypercubeLadder",
    "hypercube_ladder",
]


def _log(n: float) -> float:
    """``max(1, ln n)`` — keeps bounds monotone and positive at tiny n."""
    return max(1.0, math.log(n))


def lower_bound_cover(n: int, diam: int) -> float:
    """Universal lower bound ``max{log₂ n, Diam(G)}`` (paper, Section 1).

    The visited set at most doubles per round for ``b = 2``, and
    information travels one hop per round.
    """
    return max(math.log2(max(n, 2)), float(diam))


def bound_spaa17_general(n: int, m: int, dmax: int, *, constant: float = 1.0) -> float:
    """Theorem 1.1: ``O(m + dmax² log n)`` for any connected graph.

    Since ``m <= n·dmax/2 <= n²/2`` this is always ``O(n² log n)``.
    """
    return constant * (m + dmax**2 * _log(n))


def bound_spaa17_regular(
    n: int, r: int, gap: float, *, constant: float = 1.0
) -> float:
    """Theorem 1.2: ``O((r/(1−λ) + r²) log n)`` for connected r-regular graphs.

    ``gap`` is the eigenvalue gap ``1 − λ``; must be positive
    (non-bipartite, or lazy spectrum).
    """
    if gap <= 0:
        raise ValueError("Theorem 1.2 requires a positive eigenvalue gap")
    return constant * (r / gap + r**2) * _log(n)


def bound_podc16_regular(n: int, gap: float, *, constant: float = 1.0) -> float:
    """[Cooper et al., PODC 2016]: ``O((1/(1−λ))³ log n)``.

    The paper's Theorem 1.2 improves this whenever
    ``1 − λ = o(1/√r)`` — equivalently when ``1/gap³`` exceeds
    ``r/gap + r²``.
    """
    if gap <= 0:
        raise ValueError("PODC'16 bound requires a positive eigenvalue gap")
    return constant * _log(n) / gap**3


def bound_spaa16_regular(
    n: int, r: int, phi: float, *, constant: float = 1.0
) -> float:
    """[Mitzenmacher et al., SPAA 2016]: ``O((r⁴/ϕ²) log² n)`` (ϕ = conductance).

    Via Cheeger (``1 − λ >= ϕ²/2``) the paper's regular bound dominates
    this one for every regular graph.
    """
    if phi <= 0:
        raise ValueError("conductance must be positive")
    return constant * (r**4 / phi**2) * _log(n) ** 2


def bound_spaa16_general(n: int, *, constant: float = 1.0) -> float:
    """[Mitzenmacher et al., SPAA 2016]: ``O(n^{11/4} log n)`` for any graph.

    The previous best general bound, improved by Theorem 1.1 to
    ``O(n² log n)``.
    """
    return constant * n ** (11.0 / 4.0) * _log(n)


def bound_spaa16_grid(n: int, dim: int, *, constant: float = 1.0) -> float:
    """[Mitzenmacher et al., SPAA 2016]: ``O(D² n^{1/D})`` for D-dim grids."""
    if dim < 1:
        raise ValueError("dimension must be >= 1")
    return constant * dim**2 * n ** (1.0 / dim)


def bound_spaa13_complete(n: int, *, constant: float = 1.0) -> float:
    """[Dutta et al., SPAA 2013]: ``O(log n)`` w.h.p. on the complete graph."""
    return constant * _log(n)


def bound_spaa13_expander(n: int, *, constant: float = 1.0) -> float:
    """[Dutta et al., SPAA 2013]: ``O(log² n)`` on constant-degree expanders."""
    return constant * _log(n) ** 2


def bound_spaa13_grid(
    n: int, dim: int, *, constant: float = 1.0, polylog_power: float = 1.0
) -> float:
    """[Dutta et al., SPAA 2013]: ``Õ(n^{1/D})`` on D-dimensional grids."""
    if dim < 1:
        raise ValueError("dimension must be >= 1")
    return constant * n ** (1.0 / dim) * _log(n) ** polylog_power


# ----------------------------------------------------------------------
# Internal proof schedules (for the BIPS growth experiments)
# ----------------------------------------------------------------------
def lemma31_round_schedule(
    k: int, dmax: int, n: int, *, c_prime: float = 1.0
) -> float:
    """Lemma 3.1: ``t(k) = 4k + C′ dmax² log n``.

    After ``t(k)`` rounds, ``d(A_t) >= d(v) + k`` except with
    probability ``n^{-C}``.
    """
    return 4.0 * k + c_prime * dmax**2 * _log(n)


def cor51_round_schedule(kappa: float, r: int, n: int, *, c_prime: float = 1.0) -> float:
    """Corollary 5.1: ``t(κ) = 4rκ + C′ r² log n`` (infection *size* ≥ κ)."""
    return 4.0 * r * kappa + c_prime * r**2 * _log(n)


def cor53_delta(
    kappa: float, alpha: float, r: int, n: int, *, c_prime: float = 1.0
) -> float:
    """Corollary 5.3: ``Δ(κ, α) = (4rκ + C′ r² log n)/α``.

    Rounds needed to add ``κ`` infected vertices when every round has at
    least ``α`` serialised steps.
    """
    if alpha < 1:
        raise ValueError("alpha must be >= 1")
    return (4.0 * r * kappa + c_prime * r**2 * _log(n)) / alpha


def rho_scaled(bound_value: float, rho: float) -> float:
    """Section 6: with branching ``b = 1 + ρ`` every schedule scales by ``1/ρ²``."""
    if not 0.0 < rho <= 1.0:
        raise ValueError("rho must be in (0, 1]")
    return bound_value / rho**2


def gap_condition_holds(n: int, gap: float, *, constant: float = 1.0) -> bool:
    """Theorem 1.2's hypothesis: ``1 − λ > C sqrt(log n / n)``."""
    return gap > constant * math.sqrt(_log(n) / n)


def restart_expectation_bound(horizon: float, failure_prob: float) -> float:
    """The paper's restart argument: from w.h.p. to expectation.

    If each window of ``horizon`` rounds covers with probability
    ``>= 1 − failure_prob`` regardless of the current state (restart
    from any vertex of ``C_T``), the number of windows is dominated by
    a geometric variable, so

        ``E[cover] <= horizon / (1 − failure_prob)``.

    This is how Theorems 1.1/1.2 convert their w.h.p. statements into
    bounds on ``COVER(G)``.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    if not 0.0 <= failure_prob < 1.0:
        raise ValueError("failure probability must be in [0, 1)")
    return horizon / (1.0 - failure_prob)


# ----------------------------------------------------------------------
# The hypercube ladder (the paper's flagship comparison)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HypercubeLadder:
    """The three competing hypercube bounds, evaluated at ``n = 2^d``.

    The hypercube has ``r = log₂ n`` and lazy eigenvalue gap
    ``1 − λ = 1/d = Θ(1/log n)``, so:

    * SPAA'16:  ``(r⁴/ϕ²) log² n = Θ(log⁸ n)``
    * PODC'16:  ``(1/(1−λ))³ log n = Θ(log⁴ n)``
    * SPAA'17:  ``(r/(1−λ) + r²) log n = Θ(log³ n)``
    """

    dim: int
    n: int
    spaa16: float
    podc16: float
    spaa17: float

    def ordering_correct(self) -> bool:
        """The paper's claim: each successive bound is tighter."""
        return self.spaa17 <= self.podc16 <= self.spaa16


def hypercube_ladder(dim: int, *, constant: float = 1.0) -> HypercubeLadder:
    """Evaluate the three hypercube bounds at dimension ``dim``.

    Uses the structural facts ``r = d``, lazy gap ``1/d`` and
    conductance ``ϕ = Θ(1/d)`` (we take ``ϕ = 1/d``).
    """
    if dim < 2:
        raise ValueError("ladder needs dim >= 2")
    n = 1 << dim
    gap = 1.0 / dim
    phi = 1.0 / dim
    return HypercubeLadder(
        dim=dim,
        n=n,
        spaa16=bound_spaa16_regular(n, dim, phi, constant=constant),
        podc16=bound_podc16_regular(n, gap, constant=constant),
        spaa17=bound_spaa17_regular(n, dim, gap, constant=constant),
    )
