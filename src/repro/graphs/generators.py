"""Graph family generators.

Every family that appears in the paper's discussion or in its cited
comparisons is constructible here: complete graphs, cycles/paths,
D-dimensional grids and tori, hypercubes, random regular graphs
(expanders w.h.p.), Erdős–Rényi graphs, stars, binary trees, and the
low-conductance extremal families (barbell, lollipop, two-clique
bridge) that stress the general bound of Theorem 1.1.

All generators return :class:`repro.graphs.Graph` and accept an
optional ``rng``/``seed`` where randomness is involved.
"""

from __future__ import annotations

import itertools
from typing import Sequence

import numpy as np

from ..stats.rng import generator_from
from .graph import Graph

__all__ = [
    "complete_graph",
    "cycle_graph",
    "path_graph",
    "star_graph",
    "binary_tree",
    "grid_graph",
    "torus_graph",
    "hypercube_graph",
    "random_regular_graph",
    "erdos_renyi_graph",
    "complete_bipartite_graph",
    "barbell_graph",
    "lollipop_graph",
    "two_clique_bridge",
    "margulis_expander",
    "petersen_graph",
    "wheel_graph",
    "ring_of_cliques",
    "caterpillar_graph",
]


def complete_graph(n: int) -> Graph:
    """Complete graph ``K_n`` (the paper's O(log n) COBRA showcase)."""
    if n < 2:
        raise ValueError("complete graph needs n >= 2")
    edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
    return Graph(n, edges, name=f"complete-{n}")


def cycle_graph(n: int) -> Graph:
    """Cycle ``C_n`` — 2-regular, diameter ``n // 2``."""
    if n < 3:
        raise ValueError("cycle needs n >= 3")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return Graph(n, edges, name=f"cycle-{n}")


def path_graph(n: int) -> Graph:
    """Path ``P_n`` — the diameter-extremal tree."""
    if n < 2:
        raise ValueError("path needs n >= 2")
    edges = [(i, i + 1) for i in range(n - 1)]
    return Graph(n, edges, name=f"path-{n}")


def star_graph(n: int) -> Graph:
    """Star ``S_{n-1}``: centre 0 joined to ``n - 1`` leaves.

    Maximises ``dmax`` at fixed ``m`` — an extremal input for the
    ``(dmax)^2 log n`` term in Theorem 1.1.
    """
    if n < 2:
        raise ValueError("star needs n >= 2")
    edges = [(0, i) for i in range(1, n)]
    return Graph(n, edges, name=f"star-{n}")


def binary_tree(height: int) -> Graph:
    """Complete binary tree of the given height (``2^(h+1) - 1`` vertices)."""
    if height < 1:
        raise ValueError("binary tree needs height >= 1")
    n = 2 ** (height + 1) - 1
    edges = [(i, 2 * i + 1) for i in range((n - 1) // 2)]
    edges += [(i, 2 * i + 2) for i in range((n - 1) // 2)]
    return Graph(n, edges, name=f"btree-{height}")


def _lattice_edges(dims: Sequence[int], periodic: bool) -> tuple[int, list[tuple[int, int]]]:
    dims = list(dims)
    n = int(np.prod(dims))
    strides = np.ones(len(dims), dtype=np.int64)
    for i in range(len(dims) - 2, -1, -1):
        strides[i] = strides[i + 1] * dims[i + 1]
    edges: list[tuple[int, int]] = []
    for coord in itertools.product(*(range(d) for d in dims)):
        u = int(np.dot(coord, strides))
        for axis, d in enumerate(dims):
            c = coord[axis]
            if c + 1 < d:
                v = u + int(strides[axis])
                edges.append((u, v))
            elif periodic and d > 2:
                v = u - (d - 1) * int(strides[axis])
                edges.append((u, v))
    return n, edges


def grid_graph(dims: Sequence[int]) -> Graph:
    """D-dimensional grid with open boundaries, e.g. ``grid_graph([32, 32])``.

    The paper cites a cover time of ``Õ(n^(1/D))`` for COBRA on
    D-dimensional grids.
    """
    if not dims or any(d < 2 for d in dims):
        raise ValueError("grid needs every dimension >= 2")
    n, edges = _lattice_edges(dims, periodic=False)
    label = "x".join(str(d) for d in dims)
    return Graph(n, edges, name=f"grid-{label}")


def torus_graph(dims: Sequence[int]) -> Graph:
    """D-dimensional torus (periodic grid) — regular, so Theorem 1.2 applies."""
    if not dims or any(d < 3 for d in dims):
        raise ValueError("torus needs every dimension >= 3")
    n, edges = _lattice_edges(dims, periodic=True)
    label = "x".join(str(d) for d in dims)
    return Graph(n, edges, name=f"torus-{label}")


def hypercube_graph(dim: int) -> Graph:
    """Hypercube ``Q_d`` with ``n = 2^d`` vertices, degree ``d = log2 n``.

    The paper's flagship example: eigenvalue gap ``1 - λ = Θ(1/log n)``,
    giving bound ladder O(log^8 n) → O(log^4 n) → O(log^3 n).
    """
    if dim < 1:
        raise ValueError("hypercube needs dim >= 1")
    n = 1 << dim
    edges = [(u, u ^ (1 << b)) for u in range(n) for b in range(dim) if u < (u ^ (1 << b))]
    return Graph(n, edges, name=f"hypercube-{dim}")


def _repair_pairing(
    u: np.ndarray, v: np.ndarray, n: int, gen: np.random.Generator, max_sweeps: int
) -> bool:
    """Remove self-loops/multi-edges from a pairing by random edge swaps.

    The standard configuration-model repair: for each defective edge
    ``(u_i, v_i)`` pick a random partner edge ``(u_j, v_j)`` and swap
    ``v_i ↔ v_j`` — degrees are preserved and defects disappear
    geometrically fast.  Returns True on success (arrays fixed in
    place).
    """
    m = u.shape[0]
    for _ in range(max_sweeps):
        key = np.minimum(u, v) * np.int64(n) + np.maximum(u, v)
        order = np.argsort(key, kind="stable")
        sorted_key = key[order]
        dup = np.zeros(m, dtype=bool)
        dup[order[1:]] = sorted_key[1:] == sorted_key[:-1]
        bad = np.nonzero(dup | (u == v))[0]
        if bad.size == 0:
            return True
        partners = gen.integers(0, m, size=bad.size)
        for i, j in zip(bad.tolist(), partners.tolist()):
            v[i], v[j] = v[j], v[i]
    return False


def random_regular_graph(
    n: int, r: int, rng: np.random.Generator | int | None = None, *, max_tries: int = 50
) -> Graph:
    """Random ``r``-regular graph via the configuration model with repair.

    A uniform stub pairing is drawn, then self-loops and multi-edges are
    removed by degree-preserving random edge swaps (pure rejection has
    acceptance ``~e^{-r²/4}`` and is hopeless beyond ``r ≈ 5``).  The
    result is sampled from (approximately) the uniform simple-pairing
    distribution and is an expander w.h.p. (``1 - λ = Ω(1)``) — the
    regime where Theorem 1.2 gives ``O((r + r²) log n)``.
    """
    if n * r % 2 != 0:
        raise ValueError("n * r must be even")
    if not 3 <= r < n:
        raise ValueError("need 3 <= r < n for a connected regular graph")
    gen = generator_from(rng)
    stubs = np.repeat(np.arange(n, dtype=np.int64), r)
    for _ in range(max_tries):
        perm = gen.permutation(stubs)
        u, v = perm[0::2].copy(), perm[1::2].copy()
        if not _repair_pairing(u, v, n, gen, max_sweeps=200):
            continue
        g = Graph(n, list(zip(u.tolist(), v.tolist())), name=f"rreg-{r}-{n}")
        if g.m == n * r // 2 and g.is_connected():
            return g
    raise RuntimeError(
        f"failed to sample a simple connected {r}-regular graph on {n} vertices "
        f"in {max_tries} tries"
    )


def erdos_renyi_graph(
    n: int,
    p: float | None = None,
    rng: np.random.Generator | int | None = None,
    *,
    connected: bool = True,
    max_tries: int = 100,
) -> Graph:
    """Erdős–Rényi ``G(n, p)``; defaults to ``p = 2 ln n / n`` (connected w.h.p.).

    With ``connected=True`` resamples until the graph is connected.
    """
    if n < 2:
        raise ValueError("G(n, p) needs n >= 2")
    if p is None:
        p = min(1.0, 2.0 * np.log(n) / n)
    if not 0.0 < p <= 1.0:
        raise ValueError("p must be in (0, 1]")
    gen = generator_from(rng)
    iu, iv = np.triu_indices(n, k=1)
    for _ in range(max_tries):
        mask = gen.random(iu.shape[0]) < p
        g = Graph(n, list(zip(iu[mask].tolist(), iv[mask].tolist())), name=f"gnp-{n}")
        if not connected or (g.m >= n - 1 and g.dmin >= 1 and g.is_connected()):
            return g
    raise RuntimeError(f"failed to sample a connected G({n}, {p}) in {max_tries} tries")


def complete_bipartite_graph(a: int, b: int) -> Graph:
    """Complete bipartite ``K_{a,b}`` (bipartite: exercises the lazy variant)."""
    if a < 1 or b < 1:
        raise ValueError("both sides need at least one vertex")
    edges = [(u, a + v) for u in range(a) for v in range(b)]
    return Graph(a + b, edges, name=f"kbip-{a}-{b}")


def barbell_graph(k: int) -> Graph:
    """Two ``K_k`` cliques joined by a single edge (``n = 2k``).

    The classic low-conductance family: ``m = Θ(n^2)`` so Theorem 1.1's
    ``O(m + dmax^2 log n)`` bound is ``Θ(n^2 log n)`` — the regime the
    paper's general bound targets.
    """
    if k < 3:
        raise ValueError("barbell needs clique size >= 3")
    edges = [(u, v) for u in range(k) for v in range(u + 1, k)]
    edges += [(k + u, k + v) for u in range(k) for v in range(u + 1, k)]
    edges.append((k - 1, k))
    return Graph(2 * k, edges, name=f"barbell-{k}")


def lollipop_graph(k: int, path_len: int) -> Graph:
    """A ``K_k`` clique with a path of ``path_len`` vertices attached."""
    if k < 3 or path_len < 1:
        raise ValueError("lollipop needs clique size >= 3 and path length >= 1")
    edges = [(u, v) for u in range(k) for v in range(u + 1, k)]
    prev = k - 1
    for i in range(path_len):
        edges.append((prev, k + i))
        prev = k + i
    return Graph(k + path_len, edges, name=f"lollipop-{k}-{path_len}")


def two_clique_bridge(k: int, bridge_len: int) -> Graph:
    """Two ``K_k`` cliques joined by a path of ``bridge_len`` inner vertices."""
    if k < 3 or bridge_len < 1:
        raise ValueError("need clique size >= 3 and bridge length >= 1")
    edges = [(u, v) for u in range(k) for v in range(u + 1, k)]
    edges += [(k + u, k + v) for u in range(k) for v in range(u + 1, k)]
    prev = k - 1
    for i in range(bridge_len):
        edges.append((prev, 2 * k + i))
        prev = 2 * k + i
    edges.append((prev, k))
    return Graph(2 * k + bridge_len, edges, name=f"bridge-{k}-{bridge_len}")


def margulis_expander(side: int) -> Graph:
    """Margulis–Gabber–Galil expander on ``Z_side x Z_side``.

    Each vertex ``(x, y)`` connects to ``(x±y, y)``, ``(x±(y+1), y)``,
    ``(x, y±x)``, ``(x, y±(x+1))`` (mod ``side``); loops/multi-edges are
    collapsed, so the graph is near-8-regular with a constant spectral
    gap — a deterministic constant-degree expander for the paper's
    "regular constant-degree expander" claims.
    """
    if side < 2:
        raise ValueError("margulis expander needs side >= 2")
    s = side

    def vid(x: int, y: int) -> int:
        return (x % s) * s + (y % s)

    edges = []
    for x in range(s):
        for y in range(s):
            u = vid(x, y)
            for v in (
                vid(x + y, y),
                vid(x - y, y),
                vid(x + y + 1, y),
                vid(x - y - 1, y),
                vid(x, y + x),
                vid(x, y - x),
                vid(x, y + x + 1),
                vid(x, y - x - 1),
            ):
                if u != v:
                    edges.append((u, v))
    return Graph(s * s, edges, name=f"margulis-{s}")


def wheel_graph(n: int) -> Graph:
    """Wheel ``W_n``: a hub joined to every vertex of an (n−1)-cycle.

    Diameter 2 with one high-degree hub — a useful irregular contrast
    to the star (the rim adds redundancy the star lacks).
    """
    if n < 5:
        raise ValueError("wheel needs n >= 5 (hub + >= 4 rim vertices)")
    rim = n - 1
    edges = [(0, i) for i in range(1, n)]
    edges += [(1 + i, 1 + (i + 1) % rim) for i in range(rim)]
    return Graph(n, edges, name=f"wheel-{n}")


def ring_of_cliques(num_cliques: int, clique_size: int) -> Graph:
    """``num_cliques`` copies of ``K_k`` arranged in a ring, joined by
    single edges between consecutive cliques.

    A tunable low-conductance family interpolating between the barbell
    (2 cliques) and the cycle (k = 1-ish): conductance ``Θ(1/k²)`` with
    diameter ``Θ(num_cliques)``.
    """
    if num_cliques < 3 or clique_size < 3:
        raise ValueError("need >= 3 cliques of size >= 3")
    k = clique_size
    edges = []
    for c in range(num_cliques):
        base = c * k
        edges += [(base + u, base + v) for u in range(k) for v in range(u + 1, k)]
        nxt = ((c + 1) % num_cliques) * k
        edges.append((base + k - 1, nxt))  # bridge to the next clique
    return Graph(num_cliques * k, edges, name=f"cliquering-{num_cliques}x{k}")


def caterpillar_graph(spine: int, legs: int) -> Graph:
    """A path of ``spine`` vertices with ``legs`` pendant leaves each.

    A tree with tunable dmax at linear diameter — separates the ``m``
    and ``dmax² log n`` terms of Theorem 1.1 differently from the star
    (which has no diameter) and the path (which has no degree).
    """
    if spine < 2 or legs < 1:
        raise ValueError("need spine >= 2 and legs >= 1")
    edges = [(i, i + 1) for i in range(spine - 1)]
    nxt = spine
    for i in range(spine):
        for _ in range(legs):
            edges.append((i, nxt))
            nxt += 1
    return Graph(spine * (1 + legs), edges, name=f"caterpillar-{spine}x{legs}")


def petersen_graph() -> Graph:
    """The Petersen graph — a small named 3-regular test instance."""
    outer = [(i, (i + 1) % 5) for i in range(5)]
    spokes = [(i, i + 5) for i in range(5)]
    inner = [(5 + i, 5 + (i + 2) % 5) for i in range(5)]
    return Graph(10, outer + spokes + inner, name="petersen")
