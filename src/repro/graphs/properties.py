"""Structural graph properties used throughout the experiment suite.

Diameter (the paper's universal lower-bound ingredient), degree
statistics, bipartiteness (decides whether the lazy COBRA variant is
needed), and connectivity certificates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .graph import Graph

__all__ = [
    "diameter",
    "eccentricity",
    "is_bipartite",
    "connected_components",
    "degree_statistics",
    "GraphSummary",
    "summarize",
]


def eccentricity(graph: Graph, source: int) -> int:
    """Max BFS distance from ``source`` (graph must be connected)."""
    dist = graph.bfs_distances(source)
    mx = int(dist.max())
    if mx == np.iinfo(np.int64).max:
        raise ValueError("graph is disconnected; eccentricity undefined")
    return mx


def diameter(graph: Graph, *, exact_limit: int = 4096) -> int:
    """Graph diameter ``Diam(G)``.

    Exact (all-sources BFS) for ``n <= exact_limit``; beyond that uses
    the double-sweep heuristic twice, which is exact on trees and a
    lower bound in general (documented: experiments never exceed the
    exact regime).
    """
    if graph.n == 1:
        return 0
    if graph.n <= exact_limit:
        best = 0
        for u in range(graph.n):
            best = max(best, eccentricity(graph, u))
        return best
    # Double sweep: BFS from 0, then from the farthest vertex found.
    d0 = graph.bfs_distances(0)
    far = int(np.argmax(d0))
    d1 = graph.bfs_distances(far)
    far2 = int(np.argmax(d1))
    d2 = graph.bfs_distances(far2)
    return int(max(d1.max(), d2.max()))


def is_bipartite(graph: Graph) -> bool:
    """2-colourability test by BFS level parity (per component)."""
    color = np.full(graph.n, -1, dtype=np.int8)
    for start in range(graph.n):
        if color[start] != -1:
            continue
        color[start] = 0
        frontier = np.array([start], dtype=np.int64)
        while frontier.size:
            nxt = []
            for u in frontier:
                cu = color[u]
                for v in graph.neighbors(u):
                    if color[v] == -1:
                        color[v] = 1 - cu
                        nxt.append(int(v))
                    elif color[v] == cu:
                        return False
            frontier = np.array(nxt, dtype=np.int64)
    return True


def connected_components(graph: Graph) -> list[np.ndarray]:
    """Connected components as arrays of vertex ids (sorted per component)."""
    unreached = np.iinfo(np.int64).max
    seen = np.zeros(graph.n, dtype=bool)
    comps: list[np.ndarray] = []
    for start in range(graph.n):
        if seen[start]:
            continue
        dist = graph.bfs_distances(start)
        members = np.nonzero(dist != unreached)[0]
        seen[members] = True
        comps.append(members)
    return comps


def degree_statistics(graph: Graph) -> dict[str, float]:
    """Min / max / mean / std of the degree sequence plus ``2m``."""
    degs = graph.degrees.astype(np.float64)
    return {
        "dmin": float(degs.min()),
        "dmax": float(degs.max()),
        "dmean": float(degs.mean()),
        "dstd": float(degs.std()),
        "total_degree": float(graph.total_degree()),
    }


@dataclass(frozen=True)
class GraphSummary:
    """One-line structural summary used in experiment tables."""

    name: str
    n: int
    m: int
    dmax: int
    dmin: int
    regular: bool
    bipartite: bool
    diameter: int

    def row(self) -> dict[str, object]:
        """Dictionary form for table rendering."""
        return {
            "graph": self.name,
            "n": self.n,
            "m": self.m,
            "dmax": self.dmax,
            "regular": self.regular,
            "diam": self.diameter,
        }


def summarize(graph: Graph) -> GraphSummary:
    """Build the :class:`GraphSummary` of a connected graph."""
    return GraphSummary(
        name=graph.name,
        n=graph.n,
        m=graph.m,
        dmax=graph.dmax,
        dmin=graph.dmin,
        regular=graph.is_regular(),
        bipartite=is_bipartite(graph),
        diameter=diameter(graph),
    )
