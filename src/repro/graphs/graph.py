"""Compressed-sparse-row (CSR) graph substrate.

The simulators in :mod:`repro.core` spend essentially all of their time
drawing uniformly random neighbours for batches of vertices.  A CSR
adjacency layout makes that a three-instruction vectorised program::

    offsets = indptr[vertices] + floor(uniform * degrees[vertices])
    chosen  = indices[offsets]

so the whole library is built on this small immutable :class:`Graph`
class rather than on ``networkx`` objects (conversion helpers are
provided for interoperability).

All graphs are finite, simple (no self-loops, no parallel edges) and
undirected; every edge ``{u, v}`` is stored twice, once in each
direction.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Tuple

import numpy as np

__all__ = ["Graph", "SharedGraph"]


def _attach_untracked(name: str):
    """Attach to an existing shared-memory segment without re-tracking it.

    Python 3.13 grew ``track=False`` for attach-only use.  On older
    versions attaching re-registers the name with the resource tracker;
    within one process tree (our pool workers share the parent's
    tracker) that registration is an idempotent set-add, and the
    creator's ``unlink()`` removes it exactly once — so no
    counter-measure is needed, and explicitly unregistering here would
    *delete the creator's registration* out from under it.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track kwarg
        return shared_memory.SharedMemory(name=name)


class SharedGraph:
    """A picklable handle to a graph's CSR arrays in shared memory.

    Created by :meth:`Graph.to_shared`, consumed by
    :meth:`Graph.from_shared`.  The handle itself carries only the
    segment name and the array geometry, so shipping it to a worker
    process costs a few hundred bytes regardless of graph size; the
    worker then maps the one existing copy of ``indptr`` / ``indices``
    / ``degrees`` instead of re-pickling the topology per task.

    Lifecycle (the POSIX shared-memory contract):

    * every process that attached must :meth:`close` when done (worker
      side; dropping the graph alone leaks the mapping until process
      exit, which pool workers deliberately rely on);
    * exactly one process — the creator — must additionally
      :meth:`unlink` once all users are done, or the segment outlives
      the program.  Using the handle as a context manager does both.
    """

    __slots__ = ("shm_name", "n", "m", "graph_name", "_shm", "_owner", "_unlinked")

    def __init__(
        self, shm_name: str, n: int, m: int, graph_name: str
    ) -> None:
        self.shm_name = shm_name
        self.n = int(n)
        self.m = int(m)
        self.graph_name = graph_name
        self._shm = None
        self._owner = False
        self._unlinked = False

    # -- pickling: ship only the name + geometry ------------------------
    def __getstate__(self):
        return (self.shm_name, self.n, self.m, self.graph_name)

    def __setstate__(self, state) -> None:
        self.shm_name, self.n, self.m, self.graph_name = state
        self._shm = None
        self._owner = False
        self._unlinked = False

    # -- attachment -----------------------------------------------------
    def _segment(self):
        """The underlying ``SharedMemory``, attaching on first use."""
        if self._shm is None:
            self._shm = _attach_untracked(self.shm_name)
        return self._shm

    def attach(self) -> "Graph":
        """Map the segment and return the zero-copy :class:`Graph`."""
        return Graph.from_shared(self)

    # -- teardown -------------------------------------------------------
    def close(self) -> None:
        """Release this process's handle on the segment (idempotent).

        If no zero-copy :class:`Graph` from this process still views
        the mapping, the mapping is unmapped outright.  Otherwise the
        mapping must outlive those views, so only the file descriptor
        is closed: the attached graphs stay valid, and the memory is
        returned when the last of them is garbage collected.
        """
        shm = self._shm
        if shm is None:
            return
        self._shm = None
        try:
            shm.close()
        except BufferError:
            # Live views exported from the mapping: keep it alive for
            # them, drop only the descriptor, and disarm the
            # SharedMemory finalizer (a second close at GC time would
            # raise the same BufferError as ignored-exception noise).
            # The surgery touches CPython-private fields, so degrade to
            # leak-until-process-exit if a future release reshapes them.
            try:
                shm._buf = None
                shm._mmap = None
                if shm._fd >= 0:
                    import os

                    os.close(shm._fd)
                    shm._fd = -1
            except (AttributeError, OSError):  # pragma: no cover
                pass

    def unlink(self) -> None:
        """Destroy the segment (creator-side; idempotent).

        Prefer unlinking *before* :meth:`close`: that goes through the
        original tracked ``SharedMemory``, which also drops the
        creator's resource-tracker registration on every Python
        version.  After a ``close()`` the segment is destroyed through
        an untracked re-attach, and the stale registration is removed
        best-effort (Python 3.13's ``track=False`` unlink skips the
        unregister that older versions do unconditionally).

        A second ``unlink()`` — or one racing another process that
        already destroyed the segment — is a silent no-op, as is a
        ``close()`` afterwards, so teardown code never needs to track
        which of the two ran first.
        """
        if self._unlinked:
            return
        shm = self._shm
        try:
            if shm is not None:
                shm.unlink()
                self._unlinked = True
                return
            shm = _attach_untracked(self.shm_name)
        except FileNotFoundError:
            self._unlinked = True
            return
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
        finally:
            shm.close()
        self._unlinked = True
        if self._owner and getattr(shm, "_track", None) is False:
            # 3.13+ untracked attach: unlink() skipped the unregister
            # that pre-3.13 (tracked) attaches perform, so drop the
            # creator's registration explicitly.
            try:  # pragma: no cover - exercised on Python >= 3.13 only
                from multiprocessing import resource_tracker

                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:
                pass

    def __enter__(self) -> "SharedGraph":
        """Context manager: yields the handle itself."""
        return self

    def __exit__(self, *exc) -> None:
        """Close, and unlink if this process created the segment."""
        try:
            if self._owner:
                self.unlink()
        finally:
            self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SharedGraph(shm_name={self.shm_name!r}, "
            f"graph={self.graph_name!r}, n={self.n}, m={self.m})"
        )


class Graph:
    """An immutable undirected simple graph in CSR form.

    Parameters
    ----------
    n:
        Number of vertices.  Vertices are the integers ``0 .. n-1``.
    edges:
        Iterable of ``(u, v)`` pairs with ``u != v``.  Duplicates (in
        either orientation) are collapsed; self-loops raise
        :class:`ValueError`.
    name:
        Optional human-readable label used in reports and tables.

    Attributes
    ----------
    n : int
        Vertex count.
    m : int
        Undirected edge count (each edge counted once).
    indptr : numpy.ndarray
        CSR row pointer of shape ``(n + 1,)``; the neighbours of vertex
        ``u`` are ``indices[indptr[u]:indptr[u + 1]]``, sorted
        ascending.
    indices : numpy.ndarray
        CSR column indices of shape ``(2 * m,)``.
    degrees : numpy.ndarray
        Per-vertex degree, ``degrees[u] == indptr[u + 1] - indptr[u]``.
    """

    __slots__ = ("n", "m", "indptr", "indices", "degrees", "name")

    def __init__(
        self,
        n: int,
        edges: Iterable[Tuple[int, int]],
        *,
        name: str = "graph",
    ) -> None:
        if n <= 0:
            raise ValueError(f"graph needs at least one vertex, got n={n}")
        edge_arr = np.asarray(list(edges), dtype=np.int64)
        if edge_arr.size == 0:
            edge_arr = edge_arr.reshape(0, 2)
        if edge_arr.ndim != 2 or edge_arr.shape[1] != 2:
            raise ValueError("edges must be an iterable of (u, v) pairs")
        if edge_arr.size and (edge_arr.min() < 0 or edge_arr.max() >= n):
            raise ValueError("edge endpoint out of range [0, n)")
        if edge_arr.size and np.any(edge_arr[:, 0] == edge_arr[:, 1]):
            raise ValueError("self-loops are not allowed")

        # Canonicalise and deduplicate: sort each pair, unique rows.
        if edge_arr.size:
            lo = np.minimum(edge_arr[:, 0], edge_arr[:, 1])
            hi = np.maximum(edge_arr[:, 0], edge_arr[:, 1])
            key = lo * np.int64(n) + hi
            _, keep = np.unique(key, return_index=True)
            lo, hi = lo[keep], hi[keep]
        else:
            lo = hi = np.empty(0, dtype=np.int64)

        m = int(lo.shape[0])
        # Build symmetric CSR via counting sort on the doubled edge list.
        src = np.concatenate([lo, hi])
        dst = np.concatenate([hi, lo])
        degrees = np.bincount(src, minlength=n).astype(np.int64)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        order = np.lexsort((dst, src))
        indices = dst[order]

        self.n: int = int(n)
        self.m: int = m
        self.indptr = indptr
        self.indices = indices
        self.degrees = degrees
        self.name = name
        for arr in (self.indptr, self.indices, self.degrees):
            arr.setflags(write=False)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def neighbors(self, u: int) -> np.ndarray:
        """Return the (read-only, sorted) neighbour array of vertex ``u``."""
        return self.indices[self.indptr[u] : self.indptr[u + 1]]

    def degree(self, u: int) -> int:
        """Return the degree of vertex ``u``."""
        return int(self.degrees[u])

    def has_edge(self, u: int, v: int) -> bool:
        """Return True iff ``{u, v}`` is an edge."""
        nbrs = self.neighbors(u)
        i = int(np.searchsorted(nbrs, v))
        return i < nbrs.shape[0] and int(nbrs[i]) == v

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over edges once each, as ``(u, v)`` with ``u < v``."""
        for u in range(self.n):
            for v in self.neighbors(u):
                if u < v:
                    yield (u, int(v))

    def edge_array(self) -> np.ndarray:
        """Return an ``(m, 2)`` array of edges with ``u < v`` per row."""
        src = np.repeat(np.arange(self.n, dtype=np.int64), self.degrees)
        mask = src < self.indices
        return np.column_stack([src[mask], self.indices[mask]])

    @property
    def dmax(self) -> int:
        """Maximum vertex degree (``d_max`` in the paper)."""
        return int(self.degrees.max()) if self.n else 0

    @property
    def dmin(self) -> int:
        """Minimum vertex degree."""
        return int(self.degrees.min()) if self.n else 0

    def total_degree(self) -> int:
        """Return ``d(V) = 2m``, the degree of the full vertex set."""
        return 2 * self.m

    def set_degree(self, vertices: Sequence[int] | np.ndarray) -> int:
        """Return ``d(S) = sum of degrees over S`` (paper, Section 3)."""
        idx = np.asarray(vertices, dtype=np.int64)
        return int(self.degrees[idx].sum())

    def is_regular(self) -> bool:
        """Return True iff all vertices have equal degree."""
        return self.n > 0 and self.dmax == self.dmin

    # ------------------------------------------------------------------
    # Random sampling (the simulator hot path)
    # ------------------------------------------------------------------
    def sample_neighbors(
        self, vertices: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw one uniform random neighbour for each vertex in ``vertices``.

        Fully vectorised: cost is O(len(vertices)) with no Python-level
        loop.  Vertices may repeat; draws are independent.

        Raises
        ------
        ValueError
            If any requested vertex is isolated (degree zero).
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        degs = self.degrees[vertices]
        if degs.size and int(degs.min()) == 0:
            raise ValueError("cannot sample a neighbour of an isolated vertex")
        # floor(u * d) is uniform on {0, .., d-1} for u ~ U[0, 1).
        # Draws land in reusable scratch: ``Generator.random(out=...)``
        # fills from the same stream as ``random(k)``, and the int64
        # cast-assign truncates exactly like ``astype`` — bit-identical
        # to the allocating form (pinned in tests/graphs), minus two
        # heap allocations per round.
        k = vertices.shape[0]
        u = _SCRATCH.floats(k)
        rng.random(out=u)
        np.multiply(u, degs, out=u)
        offsets = _SCRATCH.ints(k)
        offsets[:] = u
        np.add(self.indptr[vertices], offsets, out=offsets)
        return self.indices[offsets]

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------
    def adjacency_matrix(self):
        """Return the adjacency matrix as a ``scipy.sparse.csr_matrix``."""
        from scipy.sparse import csr_matrix

        data = np.ones(self.indices.shape[0], dtype=np.float64)
        return csr_matrix(
            (data, self.indices.copy(), self.indptr.copy()), shape=(self.n, self.n)
        )

    def to_networkx(self):
        """Convert to a :class:`networkx.Graph` (for interop/validation)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        g.add_edges_from(self.edges())
        return g

    @classmethod
    def from_networkx(cls, g, *, name: str | None = None) -> "Graph":
        """Build a :class:`Graph` from a networkx graph.

        Node labels are relabelled to ``0 .. n-1`` in sorted order (or
        insertion order if labels are not sortable).
        """
        nodes = list(g.nodes())
        try:
            nodes = sorted(nodes)
        except TypeError:
            pass
        index = {v: i for i, v in enumerate(nodes)}
        edges = [(index[u], index[v]) for u, v in g.edges() if u != v]
        return cls(len(nodes), edges, name=name or getattr(g, "name", "") or "graph")

    @classmethod
    def from_edges(cls, edges: Iterable[Tuple[int, int]], *, name: str = "graph") -> "Graph":
        """Build a graph whose vertex count is ``1 + max endpoint``."""
        edge_list = list(edges)
        if not edge_list:
            raise ValueError("from_edges requires at least one edge")
        n = 1 + max(max(u, v) for u, v in edge_list)
        return cls(n, edge_list, name=name)

    # ------------------------------------------------------------------
    # Structure queries used across the library
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """Return True iff the graph is connected (BFS from vertex 0)."""
        return bool(self.bfs_distances(0).max(initial=0) < np.iinfo(np.int64).max)

    def bfs_distances(self, source: int) -> np.ndarray:
        """Return BFS hop distances from ``source``.

        Unreachable vertices get ``np.iinfo(int64).max``.  Implemented as
        a frontier-at-a-time vectorised BFS (one fancy-index per level).
        """
        unreachable = np.iinfo(np.int64).max
        dist = np.full(self.n, unreachable, dtype=np.int64)
        dist[source] = 0
        frontier = np.array([source], dtype=np.int64)
        level = 0
        while frontier.size:
            level += 1
            # All out-neighbours of the frontier, then keep the unseen.
            starts = self.indptr[frontier]
            counts = self.degrees[frontier]
            total = int(counts.sum())
            if total == 0:
                break
            flat = np.repeat(starts, counts) + _ragged_arange(counts)
            nxt = self.indices[flat]
            nxt = nxt[dist[nxt] == unreachable]
            if nxt.size == 0:
                break
            nxt = np.unique(nxt)
            dist[nxt] = level
            frontier = nxt
        return dist

    # ------------------------------------------------------------------
    # Shared memory (zero-copy export to worker processes)
    # ------------------------------------------------------------------
    def to_shared(self) -> "SharedGraph":
        """Export the CSR arrays into one shared-memory segment.

        Returns a picklable :class:`SharedGraph` handle; workers call
        :meth:`Graph.from_shared` (or ``handle.attach()``) to map the
        same physical arrays instead of receiving a pickled copy per
        task.  Layout: ``[indptr | indices | degrees]`` as one int64
        block.  The caller owns the segment and must ``close()`` +
        ``unlink()`` it (or use the handle as a context manager).
        """
        from multiprocessing import shared_memory

        total = self.indptr.size + self.indices.size + self.degrees.size
        shm = shared_memory.SharedMemory(create=True, size=total * 8)
        flat = np.frombuffer(shm.buf, dtype=np.int64)
        a, b = self.indptr.size, self.indptr.size + self.indices.size
        flat[:a] = self.indptr
        flat[a:b] = self.indices
        flat[b:total] = self.degrees
        handle = SharedGraph(shm.name, self.n, self.m, self.name)
        handle._shm = shm
        handle._owner = True
        return handle

    @classmethod
    def from_shared(cls, handle: "SharedGraph") -> "Graph":
        """Build a zero-copy :class:`Graph` over a shared segment.

        The returned graph's CSR arrays are read-only views into the
        mapping held by ``handle``; no topology bytes are copied.  The
        views keep the mapping alive even after ``handle.close()``, but
        the segment itself lives until its creator calls ``unlink()``.
        """
        flat = np.frombuffer(handle._segment().buf, dtype=np.int64)
        n, m = handle.n, handle.m
        a, b = n + 1, n + 1 + 2 * m
        return cls._from_csr(
            n, m, flat[:a], flat[a:b], flat[b : b + n], handle.graph_name
        )

    # ------------------------------------------------------------------
    # Pickling (needed to ship graphs to worker processes)
    # ------------------------------------------------------------------
    @classmethod
    def _from_csr(
        cls,
        n: int,
        m: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        degrees: np.ndarray,
        name: str,
    ) -> "Graph":
        """Reconstruct without re-canonicalising (trusted internal data)."""
        g = cls.__new__(cls)
        g.n = n
        g.m = m
        g.indptr = indptr
        g.indices = indices
        g.degrees = degrees
        g.name = name
        for arr in (g.indptr, g.indices, g.degrees):
            arr.setflags(write=False)
        return g

    def __reduce__(self):
        return (
            Graph._from_csr,
            (
                self.n,
                self.m,
                self.indptr.copy(),
                self.indices.copy(),
                self.degrees.copy(),
                self.name,
            ),
        )

    # ------------------------------------------------------------------
    # Dunder
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        reg = f", {self.dmax}-regular" if self.is_regular() else ""
        return f"Graph(name={self.name!r}, n={self.n}, m={self.m}{reg})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self.n == other.n
            and self.m == other.m
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
        )

    def __hash__(self) -> int:
        return hash((self.n, self.m, self.indices.tobytes()))


class _Scratch:
    """Grow-only reusable buffers for the per-call sampling hot path.

    :meth:`Graph.sample_neighbors` runs every round of every gossip
    process; its two intermediate arrays (the uniform draws and the
    integer offsets) used to be fresh heap allocations per call.  One
    module-level instance hands out views of persistent buffers that
    only ever grow.  The views are valid until the *next* request of
    the same dtype — callers must finish with them within the call —
    and the whole scheme assumes the engine's single-threaded-process
    execution model (process pools get a fresh copy per worker; threads
    sharing one interpreter would race).
    """

    def __init__(self) -> None:
        self._f64 = np.empty(0, dtype=np.float64)
        self._i64 = np.empty(0, dtype=np.int64)

    def floats(self, k: int) -> np.ndarray:
        """A length-``k`` float64 view (contents undefined)."""
        if self._f64.shape[0] < k:
            self._f64 = np.empty(max(k, 2 * self._f64.shape[0]), dtype=np.float64)
        return self._f64[:k]

    def ints(self, k: int) -> np.ndarray:
        """A length-``k`` int64 view (contents undefined)."""
        if self._i64.shape[0] < k:
            self._i64 = np.empty(max(k, 2 * self._i64.shape[0]), dtype=np.int64)
        return self._i64[:k]


_SCRATCH = _Scratch()

# Grow-only 0..N template backing _ragged_arange (read-only: consumers
# get it as the subtrahend of an out= subtraction, never to mutate).
_ARANGE_TEMPLATE = np.empty(0, dtype=np.int64)


def _arange_template(total: int) -> np.ndarray:
    """The first ``total`` entries of a cached, read-only ``arange``."""
    global _ARANGE_TEMPLATE
    if _ARANGE_TEMPLATE.shape[0] < total:
        grown = np.arange(
            max(total, 2 * _ARANGE_TEMPLATE.shape[0]), dtype=np.int64
        )
        grown.setflags(write=False)
        _ARANGE_TEMPLATE = grown
    return _ARANGE_TEMPLATE[:total]


def _ragged_arange(counts: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(c)`` for each c in counts, vectorised.

    E.g. counts=[2,0,3] -> [0,1,0,1,2].  The returned array is freshly
    allocated (callers may mutate it); the linear ramp it is built from
    comes from the grow-only module cache, saving one allocation plus
    an O(total) fill per call on the flooding/BFS hot paths.
    """
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(counts)
    starts = ends - counts
    out = np.repeat(starts, counts)
    np.subtract(_arange_template(total), out, out=out)
    return out
