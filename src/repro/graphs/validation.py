"""Input-validation helpers shared by the process engines.

The COBRA/BIPS engines require connected graphs (the paper's standing
assumption) and non-bipartite spectra for the eigenvalue-gap bounds;
these checks centralise the error messages.
"""

from __future__ import annotations

import numpy as np

from .graph import Graph
from .properties import is_bipartite

__all__ = [
    "require_connected",
    "require_regular",
    "require_nonbipartite_or_lazy",
    "check_vertex",
    "check_vertex_set",
]


def require_connected(graph: Graph) -> None:
    """Raise ``ValueError`` if the graph is disconnected.

    Both processes are only defined (and their cover/infection times
    finite) on connected graphs.
    """
    if not graph.is_connected():
        raise ValueError(
            f"{graph.name}: COBRA/BIPS require a connected graph "
            "(cover time is infinite otherwise)"
        )


def require_regular(graph: Graph) -> int:
    """Raise unless the graph is regular; return the common degree ``r``."""
    if not graph.is_regular():
        raise ValueError(f"{graph.name}: expected a regular graph")
    return graph.dmax


def require_nonbipartite_or_lazy(graph: Graph, *, lazy: bool) -> None:
    """Theorem 1.2 needs ``1 - λ > 0``: non-bipartite, or the lazy walk."""
    if not lazy and is_bipartite(graph):
        raise ValueError(
            f"{graph.name}: bipartite graph has eigenvalue gap 0; "
            "use the lazy process variant (lazy=True) as the paper suggests"
        )


def check_vertex(graph: Graph, u: int) -> int:
    """Validate a single vertex id and return it as ``int``."""
    u = int(u)
    if not 0 <= u < graph.n:
        raise ValueError(f"vertex {u} out of range [0, {graph.n})")
    return u


def check_vertex_set(graph: Graph, vertices) -> np.ndarray:
    """Validate a nonempty vertex set; return a sorted unique int64 array."""
    arr = np.unique(np.asarray(list(vertices), dtype=np.int64))
    if arr.size == 0:
        raise ValueError("vertex set must be nonempty")
    if arr[0] < 0 or arr[-1] >= graph.n:
        raise ValueError(f"vertex set out of range [0, {graph.n})")
    return arr
