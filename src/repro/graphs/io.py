"""Edge-list file I/O.

Downstream users will want to run COBRA/BIPS on their own networks; this
module reads and writes the de-facto standard whitespace edge-list
format (one ``u v`` pair per line, ``#`` comments, blank lines ignored),
with optional vertex-label relabelling for non-integer ids.
"""

from __future__ import annotations

import io as _io
from pathlib import Path
from .graph import Graph

__all__ = ["read_edge_list", "write_edge_list", "parse_edge_list"]


def parse_edge_list(text: str, *, name: str = "graph") -> Graph:
    """Parse edge-list text into a :class:`Graph`.

    Vertex tokens may be arbitrary strings; they are relabelled to
    ``0..n-1`` in first-appearance order unless *all* tokens are
    integers, in which case the integer ids are kept (with
    ``n = max + 1``).
    """
    pairs: list[tuple[str, str]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) < 2:
            raise ValueError(f"line {lineno}: expected 'u v', got {raw!r}")
        pairs.append((parts[0], parts[1]))
    if not pairs:
        raise ValueError("edge list contains no edges")

    def _as_int(tok: str) -> int | None:
        try:
            val = int(tok)
        except ValueError:
            return None
        return val if val >= 0 else None

    ints = [(_as_int(u), _as_int(v)) for u, v in pairs]
    if all(u is not None and v is not None for u, v in ints):
        edges = [(u, v) for u, v in ints]  # type: ignore[misc]
        n = 1 + max(max(u, v) for u, v in edges)
        return Graph(n, edges, name=name)

    index: dict[str, int] = {}
    edges = []
    for u, v in pairs:
        iu = index.setdefault(u, len(index))
        iv = index.setdefault(v, len(index))
        edges.append((iu, iv))
    return Graph(len(index), edges, name=name)


def read_edge_list(path: str | Path, *, name: str | None = None) -> Graph:
    """Read a graph from an edge-list file."""
    path = Path(path)
    return parse_edge_list(path.read_text(), name=name or path.stem)


def write_edge_list(
    graph: Graph, path: str | Path, *, header: bool = True
) -> None:
    """Write a graph as an edge-list file (each edge once, ``u < v``)."""
    path = Path(path)
    buf = _io.StringIO()
    if header:
        buf.write(f"# {graph.name}: n={graph.n} m={graph.m}\n")
    for u, v in graph.edges():
        buf.write(f"{u} {v}\n")
    path.write_text(buf.getvalue())
