"""Spectral toolkit: eigenvalue gap, conductance, and mixing estimates.

The paper's regular-graph bound (Theorem 1.2) is stated in terms of the
second-largest eigenvalue *in absolute value*, ``λ``, of the random-walk
transition matrix ``P = A / r``; the comparison bounds from
[Mitzenmacher et al., SPAA 2016] use the conductance ``ϕ``.  This module
computes both (exactly for small graphs, via sparse Lanczos for large
ones) plus the Cheeger-inequality cross-checks that relate them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .graph import Graph

__all__ = [
    "second_eigenvalue",
    "eigenvalue_gap",
    "transition_matrix",
    "random_walk_spectrum",
    "cheeger_bounds",
    "sweep_conductance",
    "conductance_of_cut",
    "mixing_time_bound",
    "SpectralProfile",
    "spectral_profile",
]

#: Above this vertex count we switch from dense ``eigh`` to sparse Lanczos.
_DENSE_LIMIT = 600


def transition_matrix(graph: Graph, *, lazy: bool = False) -> np.ndarray:
    """Dense random-walk transition matrix ``P[u, v] = 1/d(u)`` for edges.

    With ``lazy=True`` returns ``(I + P) / 2`` (the lazy walk used for
    bipartite graphs, cf. the remark before Theorem 1.2).
    """
    if graph.dmin == 0:
        raise ValueError("transition matrix undefined for isolated vertices")
    p = graph.adjacency_matrix().toarray()
    p /= graph.degrees[:, None]
    if lazy:
        p = 0.5 * (np.eye(graph.n) + p)
    return p


def random_walk_spectrum(graph: Graph, *, lazy: bool = False) -> np.ndarray:
    """All eigenvalues of the random-walk transition matrix, descending.

    Uses the symmetrised form ``D^{-1/2} A D^{-1/2}`` (similar to ``P``,
    hence same spectrum) so a symmetric eigensolver applies even for
    irregular graphs.
    """
    if graph.n > 5000:  # pragma: no cover - guardrail
        raise ValueError("full spectrum requested for a very large graph")
    d_isqrt = 1.0 / np.sqrt(graph.degrees.astype(np.float64))
    a = graph.adjacency_matrix().toarray()
    sym = a * d_isqrt[:, None] * d_isqrt[None, :]
    if lazy:
        sym = 0.5 * (np.eye(graph.n) + sym)
    vals = np.linalg.eigvalsh(sym)
    return vals[::-1]


def second_eigenvalue(graph: Graph, *, lazy: bool = False) -> float:
    """``λ = max_{i >= 2} |λ_i|`` of the random-walk matrix.

    This is the quantity in Theorem 1.2.  For a connected non-bipartite
    graph ``λ < 1``; for a bipartite graph ``λ = 1`` (use ``lazy=True``
    to recover a positive gap, matching the paper's lazy-COBRA remark).
    """
    if graph.n == 1:
        return 0.0
    if graph.n <= _DENSE_LIMIT:
        vals = random_walk_spectrum(graph, lazy=lazy)
        return float(max(abs(vals[1]), abs(vals[-1])))
    from scipy.sparse import diags, identity
    from scipy.sparse.linalg import eigsh

    d_isqrt = diags(1.0 / np.sqrt(graph.degrees.astype(np.float64)))
    sym = d_isqrt @ graph.adjacency_matrix() @ d_isqrt
    if lazy:
        sym = 0.5 * (identity(graph.n) + sym)
    # Largest two algebraic and the smallest; λ1 = 1 always.
    top = eigsh(sym, k=2, which="LA", return_eigenvectors=False, tol=1e-10)
    bot = eigsh(sym, k=1, which="SA", return_eigenvectors=False, tol=1e-10)
    second = float(np.sort(top)[0])
    smallest = float(bot[0])
    return max(abs(second), abs(smallest))


def eigenvalue_gap(graph: Graph, *, lazy: bool = False) -> float:
    """The gap ``1 - λ`` appearing throughout the paper's bounds."""
    return 1.0 - second_eigenvalue(graph, lazy=lazy)


def conductance_of_cut(graph: Graph, subset: np.ndarray) -> float:
    """Conductance ``ϕ(S) = E(S, V\\S) / min(d(S), d(V\\S))`` of one cut."""
    mask = np.zeros(graph.n, dtype=bool)
    mask[np.asarray(subset, dtype=np.int64)] = True
    if not mask.any() or mask.all():
        raise ValueError("cut must be a proper nonempty subset")
    src = np.repeat(np.arange(graph.n, dtype=np.int64), graph.degrees)
    crossing = int(np.count_nonzero(mask[src] & ~mask[graph.indices]))
    d_s = int(graph.degrees[mask].sum())
    d_rest = graph.total_degree() - d_s
    return crossing / min(d_s, d_rest)


def sweep_conductance(graph: Graph) -> tuple[float, np.ndarray]:
    """Upper-bound the conductance via a Fiedler-vector sweep cut.

    Sorts vertices by the second eigenvector of the normalised adjacency
    and returns the best prefix cut — the standard spectral-partitioning
    certificate.  Returns ``(phi, subset)``.
    """
    d_isqrt = 1.0 / np.sqrt(graph.degrees.astype(np.float64))
    if graph.n <= _DENSE_LIMIT:
        a = graph.adjacency_matrix().toarray()
        sym = a * d_isqrt[:, None] * d_isqrt[None, :]
        vals, vecs = np.linalg.eigh(sym)
        fiedler = vecs[:, -2]
    else:
        from scipy.sparse import diags
        from scipy.sparse.linalg import eigsh

        dm = diags(d_isqrt)
        sym = dm @ graph.adjacency_matrix() @ dm
        _, vecs = eigsh(sym, k=2, which="LA", tol=1e-8)
        fiedler = vecs[:, 0]
    embedding = fiedler * d_isqrt  # D^{-1/2} x: the random-walk eigenvector
    order = np.argsort(embedding)
    best_phi, best_k = np.inf, 1
    # Incremental sweep: maintain crossing-edge count as vertices move
    # across the cut one at a time.
    in_s = np.zeros(graph.n, dtype=bool)
    crossing = 0
    d_s = 0
    total = graph.total_degree()
    for k, u in enumerate(order[:-1], start=1):
        nbrs = graph.neighbors(u)
        inside = int(np.count_nonzero(in_s[nbrs]))
        crossing += graph.degree(u) - 2 * inside
        in_s[u] = True
        d_s += graph.degree(u)
        denom = min(d_s, total - d_s)
        phi = crossing / denom
        if phi < best_phi:
            best_phi, best_k = phi, k
    return float(best_phi), order[:best_k].copy()


def cheeger_bounds(graph: Graph) -> tuple[float, float]:
    """Cheeger sandwich for conductance: ``gap/2 <= ϕ <= sqrt(2 gap)``.

    ``gap`` here is ``1 - λ2`` (the algebraic second eigenvalue, not the
    absolute one).  The paper uses ``1 - λ >= ϕ² / 2`` to conclude its
    regular bound also improves on the SPAA'16 conductance bound.
    """
    vals = random_walk_spectrum(graph)
    gap2 = 1.0 - float(vals[1])
    return gap2 / 2.0, float(np.sqrt(2.0 * gap2))


def mixing_time_bound(
    graph: Graph, *, epsilon: float = 0.25, lazy: bool = False
) -> float:
    """Standard spectral mixing-time upper bound ``ln(n/ε)/(1 − λ)``.

    The number of random-walk steps after which the distribution is
    within ``ε`` of stationarity in total variation, for any start.
    Bipartite graphs never mix (``λ = 1``): use ``lazy=True``.
    """
    if not 0.0 < epsilon < 1.0:
        raise ValueError("epsilon must be in (0, 1)")
    gap = eigenvalue_gap(graph, lazy=lazy)
    if gap <= 0:
        raise ValueError(
            "zero eigenvalue gap (bipartite graph?); use lazy=True"
        )
    return float(np.log(graph.n / epsilon) / gap)


@dataclass(frozen=True)
class SpectralProfile:
    """A bundle of the spectral quantities the experiments report."""

    second_eigenvalue: float
    gap: float
    lazy_gap: float
    conductance_upper: float
    cheeger_lower: float
    cheeger_upper: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"lambda={self.second_eigenvalue:.4f} gap={self.gap:.4f} "
            f"phi<={self.conductance_upper:.4f}"
        )


def spectral_profile(graph: Graph) -> SpectralProfile:
    """Compute the full :class:`SpectralProfile` of a graph."""
    lam = second_eigenvalue(graph)
    lazy_gap = eigenvalue_gap(graph, lazy=True)
    phi, _ = sweep_conductance(graph)
    lo, hi = cheeger_bounds(graph)
    return SpectralProfile(
        second_eigenvalue=lam,
        gap=1.0 - lam,
        lazy_gap=lazy_gap,
        conductance_upper=phi,
        cheeger_lower=lo,
        cheeger_upper=hi,
    )
