"""E8 / Figure 5 — branching factor below 2 (Section 6).

With branching ``b = 1 + ρ`` (two selections w.p. ρ), the paper proves
the ``b = 2`` round schedules hold after multiplying by ``1/ρ²``.  We
sweep ρ on an expander and on the hypercube, measuring the cover time.
Shape criteria: cover time decreases monotonically in ρ (up to noise),
and the slowdown ratio ``T(ρ)/T(1)`` never exceeds the theoretical
``1/ρ²`` envelope (with a modest constant).
"""

from __future__ import annotations

from ..core.branching import BernoulliBranching, FixedBranching
from ..graphs.generators import hypercube_graph, margulis_expander
from ..stats.rng import spawn_seeds
from ..theory.bounds import rho_scaled
from .config import ExperimentConfig
from .runner import Check, ExperimentResult, measure_cover
from .tables import Table

EXPERIMENT_ID = "E8"
TITLE = "Branching b = 1 + rho: cover time vs the 1/rho^2 envelope (Fig 5)"

ENVELOPE_CONSTANT = 1.5


def run(config: ExperimentConfig) -> ExperimentResult:
    """Regenerate the ρ-sweep."""
    runs = config.runs(16, 80, 300)
    rhos = config.pick(
        [0.5, 1.0], [0.25, 0.5, 0.75, 1.0], [0.125, 0.25, 0.5, 0.75, 1.0]
    )
    cases = config.pick(
        [("margulis-8", margulis_expander(8), False)],
        [
            ("margulis-12", margulis_expander(12), False),
            ("hypercube-7", hypercube_graph(7), True),
        ],
        [
            ("margulis-16", margulis_expander(16), False),
            ("hypercube-8", hypercube_graph(8), True),
        ],
    )

    table = Table(title="cover time vs rho")
    checks: list[Check] = []
    seeds = iter(spawn_seeds(config.seed, len(cases) * len(rhos)))
    for label, g, lazy in cases:
        means = []
        for rho in rhos:
            policy = FixedBranching(2) if rho == 1.0 else BernoulliBranching(rho)
            meas = measure_cover(
                g, runs=runs, seed=next(seeds), branching=policy, lazy=lazy
            )
            means.append(meas.mean.value)
            table.add_row(
                case=label,
                rho=rho,
                expected_b=1.0 + rho,
                mean_cover=meas.mean.value,
                whp_cover=meas.whp.value,
            )
        base = means[-1]  # rho = 1.0 is last in the sorted grid
        # Monotone decrease in rho, with 10% noise tolerance.
        mono = all(
            means[i] >= means[i + 1] * 0.9 for i in range(len(means) - 1)
        )
        checks.append(
            Check(
                name=f"{label}: cover time decreases as rho grows",
                passed=mono,
                detail=f"means along rho grid: {[round(v, 1) for v in means]}",
            )
        )
        envelope_ok = all(
            means[i] <= ENVELOPE_CONSTANT * rho_scaled(base, rhos[i])
            for i in range(len(rhos))
        )
        checks.append(
            Check(
                name=f"{label}: slowdown within the 1/rho^2 envelope",
                passed=envelope_ok,
                detail=(
                    f"max T(rho)/T(1) = {max(means) / base:.2f} vs envelope "
                    f"{ENVELOPE_CONSTANT:g}/min(rho)^2 = "
                    f"{ENVELOPE_CONSTANT / min(rhos) ** 2:.2f}"
                ),
            )
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        tables=[table],
        checks=checks,
        notes=[
            "the 1/rho^2 factor is the paper's proven envelope (Section 6); "
            "measured slowdowns are typically much smaller (~1/rho)",
        ],
    )
