"""E17 — worst-case dynamic cover against an adaptive adversary.

E16 swept *oblivious* dynamics: the topology evolves blind to the
process.  This experiment opens the other regime — the worst case —
by handing the topology stream to a frontier-observing adversary
(:mod:`repro.adversary`) and sweeping its per-round rewiring budget on
two graph families (a random 4-regular expander and an odd torus).
Every cell runs the per-run sampler
(:func:`~repro.dynamics.dynamic_cover_time_samples`): one independent
adversarial realisation per run, so the adversary fights each run's
own frontier — the clean worst-case-per-run statistic.

The adversary is :class:`~repro.adversary.GreedyCutAdversary` on top
of the same degree-preserving oblivious rewiring E16 uses, so the
budget axis interpolates from E16's oblivious baseline (budget 0) to
a topology that actively severs frontier→uninformed edges every
round.

Shape criteria:

* **Oblivious anchor (exact).**  Budget-0 cells reproduce the
  oblivious :class:`~repro.dynamics.RewiringSequence` samples
  bit-for-bit under the same ``(topo_seed, proc_seed)`` pairs — the
  anchoring contract of :class:`~repro.adversary.AdversarialSequence`
  (the adversary draws only after the oblivious phase, so budget 0
  never perturbs the oblivious stream).
* **Monotone blowup (both families).**  Mean cover time is
  non-decreasing in the adversary budget (within a small sampling
  slack), and the top budget clearly exceeds the oblivious mean —
  more severing budget can only hurt the process.

A second, informational table runs the whole adversary catalogue
(greedy-cut, isolating churn, adaptive RRI, moving source) at a fixed
budget on the expander.
"""

from __future__ import annotations

import numpy as np

from ..adversary import (
    AdaptiveRRIPolicy,
    AdversarialSequence,
    GreedyCutAdversary,
    IsolatingChurnAdversary,
    MovingSourceAdversary,
)
from ..dynamics import (
    RewiringSequence,
    dynamic_cover_time_samples,
    dynamic_infection_time_samples,
)
from ..graphs.generators import random_regular_graph, torus_graph
from ..graphs.graph import Graph
from ..parallel.pool import parallel_map
from ..stats.estimators import mean_ci, whp_quantile
from ..stats.rng import spawn_seeds
from .config import ExperimentConfig
from .runner import Check, ExperimentResult
from .tables import Table

EXPERIMENT_ID = "E17"
TITLE = "Adversarial dynamics: worst-case cover vs adversary budget"

# Fixed topology seed for the expander base graph (E16's convention).
_BASE_SEED = 1701

#: Oblivious double-edge-swap rate (fraction of |E| attempted per
#: round) shared by every cell — the E16-style baseline the budget
#: axis starts from.
OBLIVIOUS_RATE = 0.1

#: Consecutive budget means may dip by at most this factor (sampling
#: slack on the monotonicity check).
MONOTONE_SLACK = 0.90

#: The top budget's mean must exceed the oblivious mean by this factor.
BLOWUP_FACTOR = 1.25

#: Fixed budget for the informational adversary-catalogue table.
CATALOGUE_BUDGET = 8


def _swaps_for(base: Graph) -> int:
    """Oblivious swap attempts per round at :data:`OBLIVIOUS_RATE`."""
    return max(1, round(OBLIVIOUS_RATE * base.m))


def _adversarial_factory(base: Graph, budget: int):
    """Factory ``topology_seed -> AdversarialSequence`` for one cell."""
    swaps = _swaps_for(base)
    return lambda topology_seed: AdversarialSequence(
        base,
        GreedyCutAdversary(int(budget)),
        topology_seed,
        swaps_per_round=swaps,
    )


def _oblivious_factory(base: Graph):
    """The matching budget-0 baseline: plain oblivious rewiring."""
    swaps = _swaps_for(base)
    return lambda topology_seed: RewiringSequence(base, swaps, seed=topology_seed)


def _measure_budget_task(task: dict) -> dict:
    """Module-level worker for :func:`parallel_map` (must be picklable)."""
    times = dynamic_cover_time_samples(
        _adversarial_factory(task["base"], task["budget"]),
        task["runs"],
        seed=task["seed"],
    )
    return {"family": task["family"], "budget": task["budget"], "times": times}


def _catalogue_factories(base: Graph):
    """The informational catalogue: one sequence factory per adversary."""
    swaps = _swaps_for(base)
    return {
        "greedy-cut": (
            "cobra",
            "all-vertices",
            lambda ts: AdversarialSequence(
                base,
                GreedyCutAdversary(CATALOGUE_BUDGET),
                ts,
                swaps_per_round=swaps,
            ),
        ),
        "isolating-churn": (
            "cobra",
            "all-active",
            lambda ts: AdversarialSequence(
                base,
                IsolatingChurnAdversary(2, protected=(0,)),
                ts,
                swaps_per_round=swaps,
            ),
        ),
        "adaptive-rri": (
            "cobra",
            "all-vertices",
            lambda ts: AdversarialSequence(
                base,
                AdaptiveRRIPolicy(swaps, growth_threshold=1.5),
                ts,
                swaps_per_round=0,
            ),
        ),
        "moving-source": (
            "bips",
            "all-vertices",
            lambda ts: AdversarialSequence(
                base,
                MovingSourceAdversary(0, CATALOGUE_BUDGET),
                ts,
                swaps_per_round=swaps,
            ),
        ),
    }


def _grid(config: ExperimentConfig) -> tuple[dict[str, Graph], tuple, int]:
    n_exp = config.pick(32, 64, 128)
    side = config.pick(5, 7, 9)  # odd: the torus stays non-bipartite
    budgets = config.pick(
        (0, 2, 8, 32), (0, 2, 8, 32), (0, 2, 4, 8, 16, 32)
    )
    runs = config.runs(10, 40, 120)
    bases = {
        "expander": random_regular_graph(n_exp, 4, rng=_BASE_SEED),
        "torus": torus_graph([side, side]),
    }
    return bases, budgets, runs


def run(config: ExperimentConfig) -> ExperimentResult:
    """Sweep the greedy-cut budget on the expander and torus families."""
    bases, budgets, runs = _grid(config)

    cells = [(family, budget) for family in bases for budget in budgets]
    tasks = []
    for (family, budget), cell_seed in zip(
        cells, spawn_seeds(config.seed, len(cells))
    ):
        # Integer seeds keep the worker/parent discipline stateless: the
        # parent re-derives the identical streams for the anchor check.
        # Budget-0 cells share their family's seed with the oblivious
        # reference below, so the anchor comparison is seed-for-seed.
        tasks.append(
            {
                "family": family,
                "base": bases[family],
                "budget": budget,
                "runs": runs,
                "seed": int(cell_seed.generate_state(1)[0]),
            }
        )
    results = parallel_map(_measure_budget_task, tasks, n_workers=config.n_workers)

    table = Table(title="worst-case cover time vs greedy-cut budget")
    means: dict[tuple[str, int], float] = {}
    stat_rng = np.random.default_rng(config.seed)
    for task, res in zip(tasks, results):
        means[(res["family"], res["budget"])] = float(res["times"].mean())
        table.add_row(
            family=res["family"],
            n=task["base"].n,
            oblivious_swaps=_swaps_for(task["base"]),
            budget=res["budget"],
            mean_cover=mean_ci(res["times"]).value,
            whp_cover=whp_quantile(res["times"], rng=stat_rng).value,
            blowup=round(
                means[(res["family"], res["budget"])]
                / means[(res["family"], budgets[0])],
                2,
            ),
        )

    checks: list[Check] = []
    for task, res in zip(tasks, results):
        if res["budget"] != 0:
            continue
        oblivious = dynamic_cover_time_samples(
            _oblivious_factory(task["base"]), runs, seed=task["seed"]
        )
        exact = bool(np.array_equal(res["times"], oblivious))
        checks.append(
            Check(
                name=f"{res['family']}: budget 0 == oblivious rewiring (exact)",
                passed=exact,
                detail=f"samples bit-identical: {exact} ({runs} runs)",
            )
        )

    for family in bases:
        curve = [means[(family, b)] for b in budgets]
        monotone = all(
            later >= MONOTONE_SLACK * earlier
            for earlier, later in zip(curve, curve[1:])
        )
        blowup = curve[-1] >= BLOWUP_FACTOR * curve[0]
        checks.append(
            Check(
                name=f"{family}: cover blowup monotone in budget "
                f"(slack {MONOTONE_SLACK:g}, top ≥ {BLOWUP_FACTOR:g}× oblivious)",
                passed=monotone and blowup,
                detail=(
                    f"means along budgets {budgets}: "
                    + ", ".join(f"{m:.1f}" for m in curve)
                ),
            )
        )

    catalogue = Table(title="adversary catalogue on the expander (informational)")
    base = bases["expander"]
    cat_seeds = spawn_seeds(config.seed + 17, 4)
    for (name, (process, completion, factory)), cat_seed in zip(
        _catalogue_factories(base).items(), cat_seeds
    ):
        sampler = (
            dynamic_cover_time_samples
            if process == "cobra"
            else dynamic_infection_time_samples
        )
        times = sampler(
            factory, runs, seed=int(cat_seed.generate_state(1)[0]),
            completion=completion,
        )
        catalogue.add_row(
            adversary=name,
            process=process,
            completion=completion,
            mean_time=mean_ci(times).value,
            whp_time=whp_quantile(times, rng=stat_rng).value,
        )

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        tables=[table, catalogue],
        checks=checks,
        notes=[
            "adversary = GreedyCutAdversary: per round it may rewire up "
            "to `budget` edges, pairing frontier→uninformed boundary "
            "edges into frontier–frontier + uninformed–uninformed swaps "
            "(degree- and connectivity-preserving)",
            "execution = per-run sampler: one independent adversarial "
            "realisation per run, the adversary observing that run's "
            "own frontier through the engine observation protocol",
            f"all cells share the oblivious double-edge-swap baseline "
            f"(rate {OBLIVIOUS_RATE:g} of |E| per round); budget 0 "
            "replays it bit-for-bit — the E16 anchoring contract",
        ],
    )
