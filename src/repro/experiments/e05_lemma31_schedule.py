"""E5 / Figure 2 — Lemma 3.1's degree-growth schedule for BIPS.

Lemma 3.1: for any connected graph, after ``t(k) = 4k + C′ dmax² log n``
rounds the infected set's degree satisfies ``d(A_t) >= d(v) + k`` w.h.p.

We run instrumented BIPS on the irregular families, record ``d(A_t)``
trajectories, and for a grid of ``k`` values measure the 95th-percentile
round at which the degree target is first met.  The shape criteria:
(a) a single modest calibration constant ``C′`` makes the schedule
dominate every measured point; (b) the final point (full infection,
``k = 2m − d(v)``) is dominated too, reproducing Theorem 1.4's
``O(m + dmax² log n)`` infection-time bound.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.bips import BipsProcess
from ..graphs.generators import barbell_graph, binary_tree, path_graph, star_graph
from ..stats.rng import spawn_generators
from ..theory.bounds import lemma31_round_schedule
from .config import ExperimentConfig
from .runner import Check, ExperimentResult
from .tables import Table

EXPERIMENT_ID = "E5"
TITLE = "Lemma 3.1 / Theorem 1.4: BIPS degree growth schedule (Fig 2)"

#: Maximum acceptable calibrated C' for the shape check.
MAX_CPRIME = 8.0


def _first_round_reaching(degree_traj: np.ndarray, target: int) -> int:
    """First index t with d(A_t) >= target (trajectory is eventually 2m)."""
    hits = np.nonzero(degree_traj >= target)[0]
    return int(hits[0])


def run(config: ExperimentConfig) -> ExperimentResult:
    """Regenerate the degree-growth schedule comparison."""
    runs = config.runs(10, 40, 150)
    graphs = config.pick(
        [star_graph(24), path_graph(24)],
        [star_graph(64), path_graph(64), binary_tree(5), barbell_graph(10)],
        [star_graph(256), path_graph(256), binary_tree(7), barbell_graph(20)],
    )

    table = Table(title="q95 round to reach d(A_t) >= d(v) + k vs t(k)")
    checks: list[Check] = []
    for g in graphs:
        source = 0
        gens = spawn_generators(config.seed + g.n, runs)
        trajs = []
        for gen in gens:
            res = BipsProcess(g, source).run(gen, record_degrees=True)
            if not res.infected_all:
                raise RuntimeError(f"BIPS failed to complete on {g.name}")
            trajs.append(res.degree_sizes)
        total = g.total_degree()
        dv = g.degree(source)
        k_max = total - dv
        k_grid = sorted(
            {max(1, int(round(k_max * frac))) for frac in (0.1, 0.25, 0.5, 0.75, 1.0)}
        )
        log_n = max(1.0, math.log(g.n))
        needed_cprime = 0.0
        for k in k_grid:
            rounds_to_k = np.array(
                [_first_round_reaching(traj, dv + k) for traj in trajs]
            )
            q95 = float(np.quantile(rounds_to_k, 0.95))
            # Smallest C' for which t(k) = 4k + C' dmax^2 log n >= q95.
            needed = max(0.0, (q95 - 4.0 * k) / (g.dmax**2 * log_n))
            needed_cprime = max(needed_cprime, needed)
            table.add_row(
                graph=g.name,
                k=k,
                q95_round=q95,
                schedule_cprime1=lemma31_round_schedule(k, g.dmax, g.n),
                needed_cprime=needed,
            )
        checks.append(
            Check(
                name=f"{g.name}: schedule dominates with C' <= {MAX_CPRIME:g}",
                passed=needed_cprime <= MAX_CPRIME,
                detail=f"calibrated C' = {needed_cprime:.3f}",
            )
        )
    notes = [
        "needed_cprime is the smallest C' making t(k) dominate the measured "
        "95th percentile; Lemma 3.1 asserts a finite C' exists for each "
        "target probability",
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        tables=[table],
        checks=checks,
        notes=notes,
    )
