"""Experiment configuration: seeds, scale presets, and run budgets.

Every experiment accepts one :class:`ExperimentConfig`.  The ``scale``
preset trades statistical resolution for wall-clock time:

* ``smoke`` — seconds; used by the integration tests.
* ``quick`` — tens of seconds; the default for interactive runs and the
  pytest-benchmark harness.
* ``full``  — minutes; paper-grade sample counts and sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["ExperimentConfig", "SCALES"]

SCALES = ("smoke", "quick", "full")


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiments.

    Attributes
    ----------
    seed:
        Master seed; all randomness is spawned from it.
    scale:
        One of :data:`SCALES`.
    n_workers:
        Worker processes for sweep-level parallelism (1 = serial).
    """

    seed: int = 20170724  # SPAA'17 conference date
    scale: str = "quick"
    n_workers: int = 1

    def __post_init__(self) -> None:
        if self.scale not in SCALES:
            raise ValueError(f"scale must be one of {SCALES}, got {self.scale!r}")
        if self.n_workers < 1:
            raise ValueError("n_workers must be >= 1")

    def runs(self, smoke: int, quick: int, full: int) -> int:
        """Pick a per-scale run budget."""
        return {"smoke": smoke, "quick": quick, "full": full}[self.scale]

    def pick(self, smoke, quick, full):
        """Pick any per-scale value (sizes, grids, horizons...)."""
        return {"smoke": smoke, "quick": quick, "full": full}[self.scale]

    def with_scale(self, scale: str) -> "ExperimentConfig":
        """Copy with a different scale preset."""
        return replace(self, scale=scale)
