"""E12 / Table 5 — Lemma 5.4's doubling phase schedule.

Lemma 5.4 drives Theorem 1.5: starting from ``κ_0 = 1/(1−λ) +
(C′r/4) log n`` reached by round ``t_0 = 8rκ_0``, the infection size
doubles through ``κ_i = 2^i κ_0`` by rounds ``t_i = t_0 + 16 i r/(1−λ)``
until it reaches ``n/4``; Lemma 4.3 then finishes within
``O(log n/(1−λ))`` extra rounds.

We measure, per phase target, the 95th-percentile round at which BIPS
first reaches ``κ_i`` infected vertices, and check the schedule (at
``C′ = 1``) dominates every measured phase — plus the endpoint claim
that full infection lands within the schedule total + a calibrated
``O(log n/(1−λ))`` tail.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.bips import BipsProcess
from ..graphs.generators import random_regular_graph, torus_graph
from ..graphs.spectral import eigenvalue_gap
from ..stats.rng import spawn_generators
from ..theory.growth import lemma54_schedule
from .config import ExperimentConfig
from .runner import Check, ExperimentResult
from .tables import Table

EXPERIMENT_ID = "E12"
TITLE = "Lemma 5.4 doubling schedule + Theorem 1.5 endpoint (Table 5)"

TAIL_CONSTANT = 64.0


def run(config: ExperimentConfig) -> ExperimentResult:
    """Regenerate the phase-schedule table."""
    runs = config.runs(10, 60, 200)
    graphs = config.pick(
        [random_regular_graph(64, 8, rng=40)],
        [
            random_regular_graph(256, 8, rng=40),
            random_regular_graph(144, 4, rng=41),
            torus_graph([15, 15]),
        ],
        [
            random_regular_graph(1024, 8, rng=40),
            random_regular_graph(400, 4, rng=41),
            torus_graph([31, 31]),
        ],
    )

    table = Table(title="q95 round reaching each doubling target vs schedule")
    checks: list[Check] = []
    for g in graphs:
        r = g.dmax
        gap = eigenvalue_gap(g)
        schedule = lemma54_schedule(g.n, r, gap)
        sizes_runs = []
        infec_times = []
        for gen in spawn_generators(config.seed + 13 * g.n, runs):
            res = BipsProcess(g, 0).run(gen)
            if not res.infected_all:
                raise RuntimeError(f"BIPS failed on {g.name}")
            sizes_runs.append(res.sizes)
            infec_times.append(res.infection_time)
        dominated = True
        for kappa, t_sched in zip(schedule.kappas, schedule.rounds):
            target = min(math.ceil(kappa), g.n)
            rounds_to_target = []
            for sizes in sizes_runs:
                hit = np.nonzero(sizes >= target)[0]
                rounds_to_target.append(int(hit[0]))
            q95 = float(np.quantile(rounds_to_target, 0.95))
            dominated &= q95 <= t_sched
            table.add_row(
                graph=g.name,
                gap=gap,
                kappa_target=target,
                q95_round=q95,
                schedule_round=t_sched,
            )
        checks.append(
            Check(
                name=f"{g.name}: schedule dominates every phase (C'=1)",
                passed=dominated,
                detail=f"{len(schedule.kappas)} phases, t0={schedule.t0:.0f}",
            )
        )
        endpoint = float(np.quantile(infec_times, 0.95))
        budget = schedule.total_rounds + TAIL_CONSTANT * max(
            1.0, math.log(g.n)
        ) / gap
        checks.append(
            Check(
                name=f"{g.name}: full infection within schedule + O(log n/gap)",
                passed=endpoint <= budget,
                detail=(
                    f"q95 infection time {endpoint:.0f} vs budget "
                    f"{budget:.0f} (tail constant {TAIL_CONSTANT:g})"
                ),
            )
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        tables=[table],
        checks=checks,
        notes=[
            "kappa targets capped at n; the schedule's t0 = 8 r kappa_0 is "
            "deliberately loose (the paper optimises constants nowhere)",
        ],
    )
