"""E4 / Figure 1 — the duality theorem (Theorem 1.3), exactly and by MC.

Exact mode: on tiny named and random graphs, both sides of

    ``P̂(Hit(v) > T | C_0 = C) = P(C ∩ A_T = ∅ | A_0 = {v})``

are computed from the exact subset chains; the identity must hold to
numerical precision for every horizon, source, start set and branching
policy tested.  Monte-Carlo mode repeats the comparison on a larger
expander where only sampling is feasible; the criterion is CI overlap.
"""

from __future__ import annotations

import numpy as np

from ..core.branching import BernoulliBranching
from ..core.duality import verify_duality_exact, verify_duality_monte_carlo
from ..graphs.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    path_graph,
    random_regular_graph,
    star_graph,
)
from ..stats.rng import spawn_seeds
from .config import ExperimentConfig
from .runner import Check, ExperimentResult
from .tables import Table

EXPERIMENT_ID = "E4"
TITLE = "COBRA-BIPS duality: exact identity + Monte-Carlo consistency (Fig 1)"


def _exact_cases(config: ExperimentConfig):
    cases = [
        ("path-5", path_graph(5), 4, [0], 2),
        ("cycle-5", cycle_graph(5), 0, [2, 3], 2),
        ("star-6", star_graph(6), 3, [0], 2),
        ("complete-5", complete_graph(5), 1, [0, 4], 2),
        ("path-6 (b=1: random walk)", path_graph(6), 5, [0], 1),
        ("cycle-7 (b=1+rho)", cycle_graph(7), 3, [0], BernoulliBranching(0.5)),
    ]
    if config.scale != "smoke":
        cases += [
            ("gnp-7-a", erdos_renyi_graph(7, 0.5, rng=5), 2, [0, 6], 2),
            ("gnp-7-b", erdos_renyi_graph(7, 0.6, rng=9), 6, [1], 2),
            ("path-6 (b=3)", path_graph(6), 0, [5], 3),
        ]
    return cases


def run(config: ExperimentConfig) -> ExperimentResult:
    """Verify Theorem 1.3 exactly on tiny graphs and by MC on a larger one."""
    t_max = config.pick(10, 20, 24)
    table = Table(title="Exact duality: max |LHS - RHS| per case")
    checks: list[Check] = []
    for label, g, source, start, branching in _exact_cases(config):
        report = verify_duality_exact(
            g, source, start, branching=branching, t_max=t_max
        )
        table.add_row(
            case=label,
            n=g.n,
            source=source,
            start_set=str(start),
            horizons=t_max,
            max_abs_diff=report.max_abs_diff,
        )
        checks.append(
            Check(
                name=f"exact identity: {label}",
                passed=report.max_abs_diff < 1e-9,
                detail=f"max |LHS-RHS| = {report.max_abs_diff:.2e}",
            )
        )

    # Monte-Carlo mode on a graph far beyond exact reach.
    mc_runs = config.runs(400, 2000, 8000)
    seed = spawn_seeds(config.seed, 1)[0]
    g = random_regular_graph(
        config.pick(16, 32, 64), 3, rng=np.random.default_rng(42)
    )
    mc = verify_duality_monte_carlo(
        g, source=0, start_set=[g.n - 1], runs=mc_runs, rng=np.random.default_rng(seed)
    )
    mc_table = Table(title=f"Monte-Carlo duality on {g.name} ({mc_runs} runs/side)")
    for i, horizon in enumerate(mc.horizons):
        mc_table.add_row(
            T=int(horizon),
            cobra_side=float(mc.cobra_side[i]),
            bips_side=float(mc.bips_side[i]),
            diff=float(abs(mc.cobra_side[i] - mc.bips_side[i])),
            joint_stderr=float(
                np.sqrt(mc.cobra_stderr[i] ** 2 + mc.bips_stderr[i] ** 2)
            ),
        )
    checks.append(
        Check(
            name=f"Monte-Carlo consistency on {g.name}",
            passed=mc.consistent(z=4.0),
            detail=f"max diff {mc.max_abs_diff:.4f} within 4 joint stderr at all T",
        )
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        tables=[table, mc_table],
        checks=checks,
        notes=[
            "the exact check covers b=2, b=1 (random-walk degenerate case), "
            "b=3 and Bernoulli b=1+rho — the duality holds for every "
            "branching parameter, as Theorem 1.3 states",
        ],
    )
