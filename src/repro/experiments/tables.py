"""Plain-text table rendering for experiment reports.

The benchmark harness prints the same rows the paper's (virtual) tables
would contain; this module keeps formatting in one place — fixed-width
aligned columns, numeric rounding, and a CSV escape hatch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["Table"]


def _format_cell(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e6 or abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


@dataclass
class Table:
    """An ordered collection of rows (dicts) with a title.

    Columns are taken from the first row unless given explicitly;
    missing cells render as ``-``.
    """

    title: str
    columns: list[str] = field(default_factory=list)
    rows: list[dict[str, Any]] = field(default_factory=list)

    def add_row(self, **cells: Any) -> None:
        """Append a row; unseen column names are appended in order."""
        for key in cells:
            if key not in self.columns:
                self.columns.append(key)
        self.rows.append(dict(cells))

    def column(self, name: str) -> list[Any]:
        """Extract one column as a list (missing cells become ``None``)."""
        return [row.get(name) for row in self.rows]

    def render(self) -> str:
        """Fixed-width aligned text rendering."""
        if not self.columns:
            return f"== {self.title} ==\n(empty)"
        cells = [
            [_format_cell(row.get(col, "-")) for col in self.columns]
            for row in self.rows
        ]
        widths = [
            max(len(col), *(len(r[i]) for r in cells)) if cells else len(col)
            for i, col in enumerate(self.columns)
        ]
        header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(self.columns))
        rule = "-" * len(header)
        body = [
            "  ".join(r[i].ljust(widths[i]) for i in range(len(self.columns)))
            for r in cells
        ]
        return "\n".join([f"== {self.title} ==", header, rule, *body])

    def to_csv(self) -> str:
        """Comma-separated rendering (cells with commas get quoted)."""

        def esc(s: str) -> str:
            return f'"{s}"' if ("," in s or '"' in s) else s

        lines = [",".join(esc(c) for c in self.columns)]
        for row in self.rows:
            lines.append(
                ",".join(esc(_format_cell(row.get(col, ""))) for col in self.columns)
            )
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()
