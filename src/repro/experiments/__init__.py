"""Experiment harness: the E1..E12 reproduction suite (see DESIGN.md)."""

from .config import SCALES, ExperimentConfig
from .registry import EXPERIMENTS, ExperimentSpec, get_experiment, run_experiment
from .runner import Check, ExperimentResult, measure_cover
from .tables import Table

__all__ = [
    "SCALES",
    "ExperimentConfig",
    "EXPERIMENTS",
    "ExperimentSpec",
    "get_experiment",
    "run_experiment",
    "Check",
    "ExperimentResult",
    "measure_cover",
    "Table",
]
