"""E9 / Table 4 — COBRA vs baseline propagation processes.

The paper motivates COBRA as "fast like an epidemic, cheap like a
random walk".  We compare, per graph: COBRA (b = 2), a single random
walk (b = 1), ``ceil(log2 n)`` independent walks, push rumour
spreading, and deterministic flooding; plus the universal lower bound
``max{log₂ n, Diam}``.  Shape criteria: COBRA beats the single walk by
a wide margin on the expander; flooding (= eccentricity) is the floor;
nothing beats the lower bound.

Every sampler here executes through the unified batched engine
(:mod:`repro.engine`): all runs of a baseline advance inside one
``(R, n)`` boolean program instead of the historical one-run-at-a-time
Python loops.
"""

from __future__ import annotations

import math

from ..baselines.flooding import flooding_broadcast_time
from ..baselines.multi_walk import multi_walk_cover_samples
from ..baselines.pull import pull_broadcast_samples, push_pull_broadcast_samples
from ..baselines.push import push_broadcast_samples
from ..baselines.random_walk import random_walk_cover_samples
from ..graphs.generators import cycle_graph, random_regular_graph, torus_graph
from ..graphs.properties import diameter
from ..stats.estimators import mean_ci
from ..stats.rng import spawn_generators
from ..theory.bounds import lower_bound_cover
from .config import ExperimentConfig
from .runner import Check, ExperimentResult, measure_cover
from .tables import Table

EXPERIMENT_ID = "E9"
TITLE = "COBRA vs baselines: RW, k-RW, push/pull, flooding (Table 4)"


def run(config: ExperimentConfig) -> ExperimentResult:
    """Regenerate the baseline comparison table."""
    cobra_runs = config.runs(10, 50, 200)
    walk_runs = config.runs(3, 8, 24)
    graphs = config.pick(
        [("expander", random_regular_graph(64, 3, rng=21))],
        [
            ("expander", random_regular_graph(512, 3, rng=21)),
            ("torus-2d", torus_graph([23, 23])),
            ("cycle", cycle_graph(257)),
        ],
        [
            ("expander", random_regular_graph(1024, 3, rng=21)),
            ("torus-2d", torus_graph([33, 33])),
            ("cycle", cycle_graph(513)),
        ],
    )

    table = Table(title="mean rounds to inform all vertices")
    checks: list[Check] = []
    # COBRA sampling always goes through the sharded engine (shared-
    # memory CSR, per-shard spawned seeds): n_workers=1 is its serial
    # fallback, so E9's tables are identical at every worker count.
    for label, g in graphs:
        gens = spawn_generators(config.seed + g.n, 6)
        cobra = measure_cover(
            g, runs=cobra_runs, seed=config.seed + g.n, workers=config.n_workers
        )
        rw = mean_ci(random_walk_cover_samples(g, runs=walk_runs, rng=gens[0]))
        k = max(2, math.ceil(math.log2(g.n)))
        kw = mean_ci(multi_walk_cover_samples(g, k, runs=walk_runs, rng=gens[1]))
        push = mean_ci(push_broadcast_samples(g, runs=cobra_runs, rng=gens[2]))
        pull = mean_ci(pull_broadcast_samples(g, runs=cobra_runs, rng=gens[3]))
        pushpull = mean_ci(
            push_pull_broadcast_samples(g, runs=cobra_runs, rng=gens[4])
        )
        flood = flooding_broadcast_time(g, 0)
        lower = lower_bound_cover(g.n, diameter(g))
        table.add_row(
            graph=g.name,
            n=g.n,
            cobra_b2=cobra.mean.value,
            single_walk=rw.value,
            k_walks=kw.value,
            k=k,
            push=push.value,
            pull=pull.value,
            push_pull=pushpull.value,
            flooding=flood,
            lower_bound=lower,
        )
        if label == "expander":
            speedup = rw.value / cobra.mean.value
            checks.append(
                Check(
                    name="COBRA >> single walk on the expander",
                    passed=speedup >= 10.0,
                    detail=f"speedup {speedup:.1f}x (expect Omega(n) vs O(log n))",
                )
            )
            checks.append(
                Check(
                    name="COBRA within polylog factor of flooding on the expander",
                    passed=cobra.mean.value
                    <= flood * max(4.0, math.log(g.n) ** 2),
                    detail=f"COBRA {cobra.mean.value:.1f} vs flooding {flood}",
                )
            )
        checks.append(
            Check(
                name=f"{g.name}: COBRA respects the universal lower bound",
                passed=(
                    cobra.mean.value >= lower * 0.99
                    and rw.value >= lower * 0.99
                ),
                detail=f"lower bound max(log2 n, Diam) = {lower:.1f}",
            )
        )
        checks.append(
            Check(
                name=f"{g.name}: flooding is the fastest process",
                passed=flood
                <= min(
                    cobra.mean.value,
                    rw.value,
                    kw.value,
                    push.value,
                    pull.value,
                    pushpull.value,
                )
                + 1e-9,
                detail=f"flooding {flood} rounds (= eccentricity)",
            )
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        tables=[table],
        checks=checks,
        notes=[
            "k-walks uses k = ceil(log2 n) independent walkers; push/pull use "
            "one contact per round (classic protocols). Flooding costs d(u) "
            "transmissions per vertex per round; COBRA caps at b = 2.",
        ],
    )
