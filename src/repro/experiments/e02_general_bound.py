"""E2 / Table 2 — Theorem 1.1's general bound across irregular families.

For each irregular family we sweep sizes, measure the COBRA (b = 2)
w.h.p. cover time, and compare against ``m + dmax² log n``.  Shape
criteria: the bound (with one modest global constant) dominates every
measurement, and within each family the measured/bound ratio does not
grow as ``n`` grows — i.e. the bound has at least the right growth
order on these families.
"""

from __future__ import annotations

from typing import Callable

from ..graphs.generators import (
    barbell_graph,
    binary_tree,
    erdos_renyi_graph,
    lollipop_graph,
    path_graph,
    star_graph,
)
from ..graphs.graph import Graph
from ..stats.rng import spawn_seeds
from ..theory.bounds import bound_spaa17_general
from .config import ExperimentConfig
from .runner import Check, ExperimentResult, measure_cover
from .tables import Table

EXPERIMENT_ID = "E2"
TITLE = "General-graph bound O(m + dmax^2 log n) vs measured (Table 2)"

#: Global calibration constant for the dominance check.  Theorem 1.1 is
#: an O(·) statement; a single constant must work across all instances.
DOMINANCE_CONSTANT = 8.0


def _families(config: ExperimentConfig) -> list[tuple[str, list[Callable[[], Graph]]]]:
    if config.scale == "smoke":
        return [
            ("path", [lambda: path_graph(32), lambda: path_graph(64)]),
            ("star", [lambda: star_graph(32), lambda: star_graph(64)]),
            ("barbell", [lambda: barbell_graph(6), lambda: barbell_graph(8)]),
        ]
    if config.scale == "quick":
        return [
            ("path", [lambda n=n: path_graph(n) for n in (64, 128, 256)]),
            ("star", [lambda n=n: star_graph(n) for n in (64, 128, 256)]),
            ("binary-tree", [lambda h=h: binary_tree(h) for h in (5, 6, 7)]),
            ("barbell", [lambda k=k: barbell_graph(k) for k in (8, 12, 16)]),
            ("lollipop", [lambda k=k: lollipop_graph(k, k) for k in (8, 12, 16)]),
            (
                "erdos-renyi",
                [lambda n=n, s=s: erdos_renyi_graph(n, rng=s) for s, n in enumerate((64, 128, 256))],
            ),
        ]
    return [
        ("path", [lambda n=n: path_graph(n) for n in (64, 128, 256, 512, 1024)]),
        ("star", [lambda n=n: star_graph(n) for n in (64, 128, 256, 512, 1024)]),
        ("binary-tree", [lambda h=h: binary_tree(h) for h in (5, 6, 7, 8, 9)]),
        ("barbell", [lambda k=k: barbell_graph(k) for k in (8, 12, 16, 24, 32)]),
        ("lollipop", [lambda k=k: lollipop_graph(k, k) for k in (8, 12, 16, 24, 32)]),
        (
            "erdos-renyi",
            [lambda n=n, s=s: erdos_renyi_graph(n, rng=s) for s, n in enumerate((64, 128, 256, 512))],
        ),
    ]


def run(config: ExperimentConfig) -> ExperimentResult:
    """Regenerate the general-bound dominance table."""
    runs = config.runs(12, 60, 200)
    families = _families(config)
    total = sum(len(builders) for _, builders in families)
    seeds = iter(spawn_seeds(config.seed, total))

    table = Table(title="Theorem 1.1 dominance per instance")
    checks: list[Check] = []
    for family, builders in families:
        ratios: list[float] = []
        for build in builders:
            g = build()
            meas = measure_cover(g, runs=runs, seed=next(seeds))
            bound = bound_spaa17_general(g.n, g.m, g.dmax)
            ratio = meas.whp.value / bound
            ratios.append(ratio)
            table.add_row(
                family=family,
                graph=g.name,
                n=g.n,
                m=g.m,
                dmax=g.dmax,
                measured_whp=meas.whp.value,
                bound=bound,
                ratio=ratio,
            )
        dominated = all(r <= DOMINANCE_CONSTANT for r in ratios)
        checks.append(
            Check(
                name=f"{family}: bound dominates (constant {DOMINANCE_CONSTANT:g})",
                passed=dominated,
                detail=f"max measured/bound ratio {max(ratios):.3f}",
            )
        )
        shape_ok = ratios[-1] <= max(ratios[0] * 2.0, ratios[0] + 0.25)
        checks.append(
            Check(
                name=f"{family}: ratio does not grow with n",
                passed=shape_ok,
                detail=f"ratio smallest->largest: {ratios[0]:.3f} -> {ratios[-1]:.3f}",
            )
        )
    notes = [
        "ratio = measured 95th-percentile cover time / (m + dmax^2 ln n); "
        "Theorem 1.1 asserts this is O(1) per family",
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        tables=[table],
        checks=checks,
        notes=notes,
    )
