"""E11 / Figure 7 — cover-time scaling panel across graph families.

Reproduces the literature claims the paper quotes in its introduction:

* complete graph ``K_n``: cover in ``O(log n)`` rounds [Dutta et al.];
* random 3-regular graphs (expanders): polylog, in fact ``O(log n)``;
* 2-D torus: ``Θ~(n^{1/2})``; 3-D torus: ``Θ~(n^{1/3})``.

Shape criteria are fitted scaling exponents with generous tolerances
(paper-level claims are asymptotic; we check the measured growth law
lands on the predicted power).
"""

from __future__ import annotations

import numpy as np

from ..graphs.generators import complete_graph, random_regular_graph, torus_graph
from ..stats.regression import fit_polylog, fit_power_law
from ..stats.rng import spawn_seeds
from ..theory.predictions import prediction_for
from .config import ExperimentConfig
from .runner import Check, ExperimentResult, sweep_cover
from .tables import Table

EXPERIMENT_ID = "E11"
TITLE = "Family scaling panel: K_n, expanders, tori (Fig 7)"

EXPONENT_TOLERANCE = 0.18


def _sweeps(config: ExperimentConfig):
    if config.scale == "smoke":
        # Sizes must span enough decades for a meaningful log-log fit:
        # c*ln(n) growth over n in [16, 64] shows an apparent power of
        # ~0.35, right at the 1/3 criterion boundary.
        return {
            "complete": [complete_graph(n) for n in (32, 64, 128, 256)],
            "torus-2d": [torus_graph([s, s]) for s in (5, 7, 9)],
        }
    if config.scale == "quick":
        return {
            "complete": [complete_graph(n) for n in (32, 64, 128, 256, 512)],
            "random-regular": [
                random_regular_graph(n, 3, rng=30 + i)
                for i, n in enumerate((64, 128, 256, 512))
            ],
            "torus-2d": [torus_graph([s, s]) for s in (7, 11, 15, 23)],
            "torus-3d": [torus_graph([s, s, s]) for s in (3, 5, 7)],
        }
    return {
        "complete": [complete_graph(n) for n in (32, 64, 128, 256, 512, 1024)],
        "random-regular": [
            random_regular_graph(n, 3, rng=30 + i)
            for i, n in enumerate((64, 128, 256, 512, 1024, 2048))
        ],
        "torus-2d": [torus_graph([s, s]) for s in (7, 11, 15, 23, 33, 47)],
        "torus-3d": [torus_graph([s, s, s]) for s in (3, 5, 7, 9, 11)],
    }


def run(config: ExperimentConfig) -> ExperimentResult:
    """Regenerate the scaling panel."""
    runs = config.runs(12, 60, 200)
    sweeps = _sweeps(config)
    family_seeds = iter(spawn_seeds(config.seed, len(sweeps)))

    table = Table(title="mean cover time per family and size")
    checks: list[Check] = []
    for family, graphs in sweeps.items():
        # The size sweep fans out across worker processes when the
        # config asks for them (results are worker-count invariant).
        measurements = sweep_cover(
            graphs, runs=runs, seed=next(family_seeds), n_workers=config.n_workers
        )
        ns, means = [], []
        for g, meas in zip(graphs, measurements):
            ns.append(g.n)
            means.append(meas.mean.value)
            table.add_row(
                family=family, graph=g.name, n=g.n, mean_cover=meas.mean.value
            )
        ns_arr = np.asarray(ns, dtype=np.float64)
        means_arr = np.asarray(means, dtype=np.float64)
        pred = prediction_for(family)
        power_fit = fit_power_law(ns_arr, means_arr)
        if pred.polylog_only:
            polylog_fit = fit_polylog(ns_arr, means_arr)
            # At finite n, c*ln(n) growth fits an apparent n-exponent of
            # ~ 1/ln(n_mid) ~ 0.2-0.3; the criterion is that the
            # exponent sits below every polynomial prediction (the
            # smallest is the 3-D torus at 1/3) and the polylog power
            # is moderate.
            checks.append(
                Check(
                    name=f"{family}: polylog growth (n-exponent below 1/3)",
                    passed=power_fit.exponent < 1.0 / 3.0
                    and polylog_fit.exponent < 2.5,
                    detail=(
                        f"T ~ n^{power_fit.exponent:.3f}; polylog fit "
                        f"T ~ (ln n)^{polylog_fit.exponent:.2f} "
                        f"[{pred.source}]"
                    ),
                )
            )
        else:
            ok = abs(power_fit.exponent - pred.power_of_n) <= EXPONENT_TOLERANCE
            checks.append(
                Check(
                    name=f"{family}: power-law exponent ~ {pred.power_of_n:.2f}",
                    passed=ok,
                    detail=(
                        f"fitted n^{power_fit.exponent:.3f} "
                        f"(R^2={power_fit.r_squared:.3f}) [{pred.source}]"
                    ),
                )
            )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        tables=[table],
        checks=checks,
        notes=[
            f"exponent tolerance ±{EXPONENT_TOLERANCE}; tori carry polylog "
            "corrections that bias fitted exponents slightly below the "
            "clean 1/D at small sizes",
        ],
    )
