"""E1 / Table 1 — the hypercube bound ladder.

Paper anchor (Section 1, "Our contributions"): on the hypercube with
``n = 2^d`` vertices, the three successive bounds give ``O(log⁸ n)``
(SPAA'16), ``O(log⁴ n)`` (PODC'16) and ``O(log³ n)`` (this paper),
against a conjectured truth of ``Θ(log n)``.

We measure the actual COBRA (lazy, since ``Q_d`` is bipartite) cover
time across dimensions, print it next to the three bound values, and
check: (a) the bounds are ordered as the paper claims; (b) the measured
time sits below every bound; (c) the measured polylog exponent is far
below the proven ceiling of 3 — consistent with the Θ(log n)
conjecture the paper highlights as open.
"""

from __future__ import annotations

import numpy as np

from ..graphs.generators import hypercube_graph
from ..stats.regression import fit_polylog
from ..stats.rng import spawn_seeds
from ..theory.bounds import hypercube_ladder, lower_bound_cover
from .config import ExperimentConfig
from .runner import Check, ExperimentResult, measure_cover
from .tables import Table

EXPERIMENT_ID = "E1"
TITLE = "Hypercube cover time vs the three bound predictions (Table 1)"


def run(config: ExperimentConfig) -> ExperimentResult:
    """Regenerate the hypercube ladder table."""
    dims = config.pick([3, 4, 5], [4, 5, 6, 7, 8], [4, 5, 6, 7, 8, 9, 10])
    runs = config.runs(16, 100, 300)
    seeds = spawn_seeds(config.seed, len(dims))

    table = Table(title="Hypercube ladder: measured COBRA (b=2, lazy) vs bounds")
    measured_means: list[float] = []
    ladder_ok = True
    dominance_ok = True
    for dim, seed in zip(dims, seeds):
        g = hypercube_graph(dim)
        meas = measure_cover(g, runs=runs, seed=seed, lazy=True)
        ladder = hypercube_ladder(dim)
        measured_means.append(meas.mean.value)
        ladder_ok &= ladder.ordering_correct()
        dominance_ok &= meas.whp.value <= min(
            ladder.spaa16, ladder.podc16, ladder.spaa17
        )
        table.add_row(
            d=dim,
            n=g.n,
            measured_mean=meas.mean.value,
            measured_whp=meas.whp.value,
            bound_spaa16_log8=ladder.spaa16,
            bound_podc16_log4=ladder.podc16,
            bound_spaa17_log3=ladder.spaa17,
            lower_bound=lower_bound_cover(g.n, dim),
        )

    ns = np.array([1 << d for d in dims], dtype=np.float64)
    fit = fit_polylog(ns, np.array(measured_means))

    checks = [
        Check(
            name="bound ordering (spaa17 <= podc16 <= spaa16)",
            passed=ladder_ok,
            detail="the paper's ladder holds at every dimension"
            if ladder_ok
            else "ladder ordering violated at some dimension",
        ),
        Check(
            name="measured below all bounds",
            passed=dominance_ok,
            detail="w.h.p. cover time below every bound (constant 1)"
            if dominance_ok
            else "a bound was exceeded — constants need attention",
        ),
        Check(
            name="measured polylog exponent far below ceiling 3",
            passed=fit.exponent < 2.0,
            detail=f"fitted T ~ (ln n)^{fit.exponent:.2f} (R²={fit.r_squared:.3f}); "
            "consistent with the conjectured Θ(log n)",
        ),
    ]
    notes = [
        f"polylog fit: {fit}",
        "hypercube is bipartite: measured with the lazy COBRA variant, "
        "gap taken as the lazy gap 1/d (paper's Θ(1/log n))",
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        tables=[table],
        checks=checks,
        notes=notes,
    )
