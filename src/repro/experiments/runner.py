"""Experiment result containers and the shared measurement helpers.

An experiment's ``run(config)`` returns an :class:`ExperimentResult`:
one or more :class:`~repro.experiments.tables.Table` objects (the
regenerated "table/figure" data) plus named :class:`Check` outcomes
encoding the *shape criteria* from DESIGN.md — so both the CLI and the
test-suite can assert reproduction success mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.cobra import cover_time_samples
from ..graphs.graph import Graph
from ..parallel.pool import parallel_map
from ..stats.estimators import Estimate, mean_ci, whp_quantile
from ..stats.rng import generator_from, spawn_seeds
from .tables import Table

__all__ = [
    "Check",
    "ExperimentResult",
    "measure_cover",
    "CoverMeasurement",
    "sweep_cover",
]


@dataclass(frozen=True)
class Check:
    """One pass/fail shape criterion with a human-readable explanation."""

    name: str
    passed: bool
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        mark = "PASS" if self.passed else "FAIL"
        return f"[{mark}] {self.name}: {self.detail}"


@dataclass
class ExperimentResult:
    """Everything an experiment produced."""

    experiment_id: str
    title: str
    tables: list[Table] = field(default_factory=list)
    checks: list[Check] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def all_passed(self) -> bool:
        """True iff every shape criterion held."""
        return all(c.passed for c in self.checks)

    def render(self) -> str:
        """Full text report: tables, then checks, then notes."""
        parts = [f"### {self.experiment_id}: {self.title}"]
        parts += [t.render() for t in self.tables]
        if self.checks:
            parts.append("Checks:")
            parts += [f"  {c}" for c in self.checks]
        if self.notes:
            parts.append("Notes:")
            parts += [f"  - {n}" for n in self.notes]
        return "\n\n".join(parts)


@dataclass(frozen=True)
class CoverMeasurement:
    """Mean and w.h.p. (95th-percentile) cover-time estimates for one graph."""

    graph_name: str
    n: int
    mean: Estimate
    whp: Estimate
    runs: int


def measure_cover(
    graph: Graph,
    *,
    runs: int,
    seed,
    start: int = 0,
    branching=2,
    lazy: bool = False,
    max_rounds: int | None = None,
    workers: int | None = None,
) -> CoverMeasurement:
    """Sample COBRA cover times and summarise (the E-series workhorse).

    ``workers`` (int >= 1) routes the sampling through the sharded
    multiprocess engine path; ``None`` keeps the historical
    single-stream serial path (and its exact samples).
    """
    rng = generator_from(seed)
    samples = cover_time_samples(
        graph,
        start,
        runs,
        branching=branching,
        lazy=lazy,
        rng=rng,
        max_rounds=max_rounds,
        workers=workers,
    )
    return CoverMeasurement(
        graph_name=graph.name,
        n=graph.n,
        mean=mean_ci(samples),
        whp=whp_quantile(samples, rng=rng),
        runs=runs,
    )


def _measure_cover_task(task: dict) -> CoverMeasurement:
    """Module-level worker for :func:`sweep_cover` (must be picklable)."""
    return measure_cover(
        task["graph"],
        runs=task["runs"],
        seed=task["seed"],
        start=task["start"],
        branching=task["branching"],
        lazy=task["lazy"],
    )


def sweep_cover(
    graphs: list[Graph],
    *,
    runs: int,
    seed,
    n_workers: int = 1,
    start: int = 0,
    branching=2,
    lazy: bool = False,
) -> list[CoverMeasurement]:
    """Measure cover times for many graphs, optionally across processes.

    Seeds are spawned per graph from the master ``seed``, so the result
    list is identical at any ``n_workers`` (the determinism contract of
    :mod:`repro.parallel`).
    """
    seeds = spawn_seeds(seed, len(graphs))
    tasks = [
        {
            "graph": g,
            "runs": runs,
            "seed": s,
            "start": start,
            "branching": branching,
            "lazy": lazy,
        }
        for g, s in zip(graphs, seeds)
    ]
    return parallel_map(_measure_cover_task, tasks, n_workers=n_workers)
