"""E14 / Ablation 2 — diminishing returns of larger branching factors.

The paper studies ``b = 2`` (and ``b = 1 + ρ < 2``); the natural
question is what ``b > 2`` buys.  The information-theoretic floor is
``log_b n`` early doubling plus the diameter, so going from 2 to 4
can at best shave a factor ``log 4/log 2 = 2`` off the doubling phase
— while doubling the per-vertex transmission budget.  This ablation
measures cover time and total transmissions for b ∈ {1, 2, 3, 4}:
the paper's choice b = 2 sits at the knee of the curve.
"""

from __future__ import annotations

from ..core.metrics import cobra_transmission_report
from ..graphs.generators import margulis_expander, random_regular_graph, torus_graph
from ..stats.rng import spawn_seeds
from .config import ExperimentConfig
from .runner import Check, ExperimentResult
from .tables import Table

EXPERIMENT_ID = "E14"
TITLE = "Ablation: branching factor b in {1, 2, 3, 4} — speed vs cost"


def run(config: ExperimentConfig) -> ExperimentResult:
    """Regenerate the branching-returns ablation."""
    runs = config.runs(10, 40, 150)
    graphs = config.pick(
        [random_regular_graph(64, 3, rng=60)],
        [
            random_regular_graph(256, 3, rng=60),
            margulis_expander(12),
            torus_graph([15, 15]),
        ],
        [
            random_regular_graph(1024, 3, rng=60),
            margulis_expander(20),
            torus_graph([31, 31]),
        ],
    )
    bs = [1, 2, 3, 4]
    seeds = iter(spawn_seeds(config.seed, len(graphs) * len(bs)))

    table = Table(title="cover rounds and message cost per branching factor")
    checks: list[Check] = []
    for g in graphs:
        rounds_by_b = {}
        for b in bs:
            rep = cobra_transmission_report(g, runs=runs, branching=b, rng=next(seeds))
            rounds_by_b[b] = rep.rounds.value
            table.add_row(
                graph=g.name,
                b=b,
                mean_rounds=rep.rounds.value,
                total_messages=rep.total_messages.value,
                msgs_per_vertex=rep.messages_per_vertex.value,
            )
        gain_12 = rounds_by_b[1] / rounds_by_b[2]
        gain_24 = rounds_by_b[2] / rounds_by_b[4]
        checks.append(
            Check(
                name=f"{g.name}: rounds strictly decrease in b",
                passed=rounds_by_b[1] > rounds_by_b[2] > rounds_by_b[4] * 0.95
                and rounds_by_b[2] >= rounds_by_b[3] * 0.9,
                detail=f"rounds: " + ", ".join(
                    f"b={b}: {rounds_by_b[b]:.1f}" for b in bs
                ),
            )
        )
        checks.append(
            Check(
                name=f"{g.name}: diminishing returns (1->2 gain >> 2->4 gain)",
                passed=gain_12 > 3.0 * gain_24,
                detail=f"speedup 1->2: {gain_12:.1f}x, 2->4: {gain_24:.2f}x",
            )
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        tables=[table],
        checks=checks,
        notes=[
            "b = 1 -> 2 crosses the phase transition from Ω(n)-type walk "
            "cover to polylog branching cover; b beyond 2 only compresses "
            "the log-base, which is why the literature fixes b = 2",
        ],
    )
