"""E15 / Open question — probing the O(n log n) worst-case conjecture.

The paper's conclusion: "while our general bound of O(n² log n) is a
significant improvement ... there are no known examples of the cover
time ω(n log n).  It has actually been conjectured the worst-case cover
time for any graph is O(n log n)."

This experiment probes that open conjecture on the nastiest families in
the library — the low-conductance clique constructions (barbell,
lollipop, ring of cliques), high-degree trees (star, caterpillar) and
the diameter-extremal path — by measuring the normalised ratio
``cover / (n ln n)`` along size sweeps.  Shape criterion: the ratio
stays bounded (no family shows it *growing* with n), i.e. nothing here
falsifies... or even strains the conjecture, matching the paper's
remark that no super-(n log n) example is known.
"""

from __future__ import annotations

import math

from ..graphs.generators import (
    barbell_graph,
    caterpillar_graph,
    lollipop_graph,
    path_graph,
    ring_of_cliques,
    star_graph,
)
from ..stats.rng import spawn_seeds
from .config import ExperimentConfig
from .runner import Check, ExperimentResult, sweep_cover
from .tables import Table

EXPERIMENT_ID = "E15"
TITLE = "Open conjecture: is worst-case COBRA cover time O(n log n)?"

#: The normalised ratio may drift by at most this factor across a
#: doubling sweep before we'd flag a family as conjecture-straining.
MAX_RATIO_GROWTH = 1.5


def _families(config: ExperimentConfig):
    if config.scale == "smoke":
        return {
            "barbell": [barbell_graph(k) for k in (6, 8, 12)],
            "path": [path_graph(n) for n in (32, 64, 128)],
        }
    if config.scale == "quick":
        return {
            "barbell": [barbell_graph(k) for k in (8, 12, 16, 24)],
            "lollipop": [lollipop_graph(k, k * k // 4) for k in (6, 8, 12)],
            "clique-ring": [ring_of_cliques(c, 6) for c in (4, 8, 16)],
            "star": [star_graph(n) for n in (64, 128, 256)],
            "caterpillar": [caterpillar_graph(s, 8) for s in (8, 16, 32)],
            "path": [path_graph(n) for n in (64, 128, 256)],
        }
    return {
        "barbell": [barbell_graph(k) for k in (8, 12, 16, 24, 32, 48)],
        "lollipop": [lollipop_graph(k, k * k // 4) for k in (6, 8, 12, 16, 24)],
        "clique-ring": [ring_of_cliques(c, 6) for c in (4, 8, 16, 32)],
        "star": [star_graph(n) for n in (64, 128, 256, 512, 1024)],
        "caterpillar": [caterpillar_graph(s, 8) for s in (8, 16, 32, 64)],
        "path": [path_graph(n) for n in (64, 128, 256, 512, 1024)],
    }


def run(config: ExperimentConfig) -> ExperimentResult:
    """Probe the worst-case conjecture across adversarial families."""
    runs = config.runs(12, 50, 150)
    families = _families(config)
    seeds = iter(spawn_seeds(config.seed, len(families)))

    table = Table(title="normalised cover time T / (n ln n)")
    checks: list[Check] = []
    global_max = 0.0
    for family, graphs in families.items():
        measurements = sweep_cover(
            graphs, runs=runs, seed=next(seeds), n_workers=config.n_workers
        )
        ratios = []
        for g, meas in zip(graphs, measurements):
            ratio = meas.whp.value / (g.n * math.log(g.n))
            ratios.append(ratio)
            global_max = max(global_max, ratio)
            table.add_row(
                family=family,
                graph=g.name,
                n=g.n,
                whp_cover=meas.whp.value,
                ratio_n_log_n=ratio,
            )
        growth = ratios[-1] / max(ratios[0], 1e-12)
        checks.append(
            Check(
                name=f"{family}: T/(n ln n) does not grow with n",
                passed=growth <= MAX_RATIO_GROWTH,
                detail=f"ratio smallest->largest: {ratios[0]:.3f} -> "
                f"{ratios[-1]:.3f} (growth {growth:.2f}x)",
            )
        )
    checks.append(
        Check(
            name="no family strains the O(n log n) conjecture",
            passed=global_max < 2.0,
            detail=f"max normalised ratio {global_max:.3f} (a genuine "
            "counterexample would show an unbounded ratio)",
        )
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        tables=[table],
        checks=checks,
        notes=[
            "the paper (Conclusions) notes no ω(n log n) example is known "
            "and cites the O(n log n) worst-case conjecture; this probe is "
            "evidence, not proof — a conjecture cannot be settled by "
            "simulation",
        ],
    )
