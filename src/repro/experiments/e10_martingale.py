"""E10 / Figure 6 — Lemma 2.1 / Corollary 2.2 concentration bounds.

We verify the supermartingale tail inequalities empirically on two
sources of increments:

1. synthetic bounded-increment supermartingales (Rademacher and
   clipped-uniform, zero and negative drift) — Lemma 2.1's exact
   hypothesis class;
2. the *real* ``Z_l = (1/2 − Y_l)/dmax`` streams from serialised BIPS
   runs (padded past completion with the paper's technical ``Y_l = 1``
   convention), the streams Lemma 3.1 actually feeds through
   Corollary 2.2.

Shape criterion: the empirical tail probability never exceeds the
analytic bound at any (δ, α, q0) grid point.
"""

from __future__ import annotations

import numpy as np

from ..core.serialization import SerializedBips, collect_increments
from ..graphs.generators import path_graph, random_regular_graph, star_graph
from ..stats.rng import spawn_generators
from ..theory.martingale import (
    azuma_tail_bound,
    check_azuma_on_paths,
    synthetic_supermartingale_paths,
)
from .config import ExperimentConfig
from .runner import Check, ExperimentResult
from .tables import Table

EXPERIMENT_ID = "E10"
TITLE = "Azuma/Corollary 2.2 concentration on synthetic + BIPS streams (Fig 6)"


def _bips_z_paths(graph, runs: int, steps: int, seed: int) -> np.ndarray:
    """Fixed-length Z_l paths from serialised BIPS, padded per the paper.

    Past completion the paper sets ``Y_l = 1``, i.e.
    ``Z_l = (1/2 − 1)/dmax = −1/(2 dmax)``.
    """
    pad = -0.5 / graph.dmax
    paths = np.full((runs, steps), pad, dtype=np.float64)
    for i, gen in enumerate(spawn_generators(seed, runs)):
        proc = SerializedBips(graph, 0)
        records = proc.run(gen)
        _, zs, _ = collect_increments(records)
        take = min(zs.shape[0], steps)
        paths[i, :take] = zs[:take]
    return paths


def run(config: ExperimentConfig) -> ExperimentResult:
    """Regenerate the concentration verification grid."""
    synth_runs = config.runs(500, 3000, 12000)
    steps = config.pick(128, 384, 1024)
    rng = np.random.default_rng(config.seed)

    sources = [
        (
            "rademacher drift 0",
            synthetic_supermartingale_paths(synth_runs, steps, rng),
        ),
        (
            "rademacher drift -0.1",
            synthetic_supermartingale_paths(synth_runs, steps, rng, drift=-0.1),
        ),
        (
            "clipped uniform drift -0.05",
            synthetic_supermartingale_paths(
                synth_runs, steps, rng, drift=-0.05, kind="uniform"
            ),
        ),
    ]
    bips_runs = config.runs(60, 250, 800)
    for g in config.pick(
        [star_graph(16)],
        [star_graph(32), path_graph(32), random_regular_graph(32, 3, rng=6)],
        [star_graph(64), path_graph(64), random_regular_graph(64, 3, rng=6)],
    ):
        sources.append(
            (
                f"BIPS Z_l on {g.name}",
                _bips_z_paths(g, bips_runs, steps, config.seed + g.n),
            )
        )

    table = Table(title="empirical sup-tail vs Corollary 2.2 bound")
    checks: list[Check] = []
    q0s = tuple(q for q in (8, 32, min(128, steps)) if q <= steps)
    # Large deltas make q0 e^{-delta^2/4} non-trivial (< 1) even at q0=128.
    deltas = (2.0, 3.0, 4.0, 5.0, 6.0)
    for label, paths in sources:
        results = check_azuma_on_paths(paths, deltas=deltas, q0s=q0s)
        informative = [c for c in results if c.bound < 1.0]
        all_hold = all(c.holds for c in results)
        for c in results:
            table.add_row(
                source=label,
                delta=c.delta,
                alpha=c.alpha,
                q0=c.q0,
                empirical=c.empirical,
                bound=min(c.bound, 1.0),
                holds=c.holds,
            )
        checks.append(
            Check(
                name=f"{label}: empirical tail <= bound on the whole grid",
                passed=all_hold,
                detail=(
                    f"{len(results)} grid points "
                    f"({len(informative)} with non-trivial bound)"
                ),
            )
        )

    # Also spot-check the plain Lemma 2.1 (single-q) tail at q = steps.
    lemma_table = Table(title="Lemma 2.1 single-horizon tail (rademacher drift 0)")
    paths0 = sources[0][1]
    final = paths0.sum(axis=1)
    for delta in (1.0, 2.0, 3.0):
        emp = float(np.mean(final > delta * np.sqrt(steps)))
        bnd = azuma_tail_bound(delta)
        lemma_table.add_row(delta=delta, empirical=emp, bound=bnd, holds=emp <= bnd)
        checks.append(
            Check(
                name=f"Lemma 2.1 at delta={delta:g}",
                passed=emp <= bnd,
                detail=f"empirical {emp:.4f} vs e^(-d^2/2) = {bnd:.4f}",
            )
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        tables=[table, lemma_table],
        checks=checks,
        notes=[
            "BIPS Z_l streams use the paper's padding Y_l = 1 past "
            "completion, keeping the supermartingale property",
        ],
    )
