"""Registry mapping experiment ids (E1..E17) to their modules."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from . import (
    e01_hypercube_ladder,
    e02_general_bound,
    e03_regular_bound,
    e04_duality,
    e05_lemma31_schedule,
    e06_growth_lemma,
    e07_candidate_bound,
    e08_branching_sweep,
    e09_baselines,
    e10_martingale,
    e11_family_scaling,
    e12_phase_schedule,
    e13_lazy_ablation,
    e14_branching_returns,
    e15_worst_case_conjecture,
    e16_dynamic_cover,
    e17_adversarial_cover,
)
from .config import ExperimentConfig
from .runner import ExperimentResult

__all__ = ["ExperimentSpec", "EXPERIMENTS", "get_experiment", "run_experiment"]


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment."""

    experiment_id: str
    title: str
    paper_anchor: str
    run: Callable[[ExperimentConfig], ExperimentResult]


_MODULES = [
    (e01_hypercube_ladder, "Section 1 hypercube ladder: O(log^8/log^4/log^3 n)"),
    (e02_general_bound, "Theorem 1.1: O(m + dmax^2 log n)"),
    (e03_regular_bound, "Theorem 1.2: O((r/(1-lambda) + r^2) log n)"),
    (e04_duality, "Theorem 1.3: COBRA-BIPS duality"),
    (e05_lemma31_schedule, "Lemma 3.1 / Theorem 1.4: BIPS degree growth"),
    (e06_growth_lemma, "Lemmas 4.1/4.2: one-round expected growth"),
    (e07_candidate_bound, "Corollary 5.2: candidate-set size"),
    (e08_branching_sweep, "Section 6: branching b = 1 + rho"),
    (e09_baselines, "Section 1 motivation: COBRA vs baselines"),
    (e10_martingale, "Lemma 2.1 / Corollary 2.2: concentration"),
    (e11_family_scaling, "Section 1 cited claims: family scaling"),
    (e12_phase_schedule, "Lemma 5.4 / Theorem 1.5: doubling phases"),
    (e13_lazy_ablation, "Ablation: the cost of the lazy (bipartite) fix"),
    (e14_branching_returns, "Ablation: branching factor b beyond 2"),
    (e15_worst_case_conjecture, "Conclusions: the O(n log n) worst-case conjecture"),
    (e16_dynamic_cover, "Extension: COBRA/BIPS on time-evolving graphs"),
    (e17_adversarial_cover, "Extension: worst-case cover vs an adaptive adversary"),
]

EXPERIMENTS: dict[str, ExperimentSpec] = {
    module.EXPERIMENT_ID: ExperimentSpec(
        experiment_id=module.EXPERIMENT_ID,
        title=module.TITLE,
        paper_anchor=anchor,
        run=module.run,
    )
    for module, anchor in _MODULES
}


def get_experiment(experiment_id: str) -> ExperimentSpec:
    """Look up an experiment by id (case-insensitive)."""
    key = experiment_id.upper()
    if key not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[key]


def run_experiment(
    experiment_id: str, config: ExperimentConfig | None = None
) -> ExperimentResult:
    """Run one experiment under the given (or default) config."""
    spec = get_experiment(experiment_id)
    return spec.run(config or ExperimentConfig())
