"""E13 / Ablation 1 — the cost of laziness.

The paper's fix for bipartite graphs is the *lazy* COBRA variant: each
selection returns the sender itself with probability 1/2.  On
non-bipartite graphs laziness is unnecessary, and since half the
selections are wasted the intuition says it should cost about a factor
2 in rounds.  This ablation quantifies that design choice: lazy vs
non-lazy cover times on non-bipartite instances, and the sanity check
that on bipartite instances the lazy walk works while the spectrum
explains why the plain analysis fails (gap exactly 0).
"""

from __future__ import annotations

from ..graphs.generators import (
    complete_graph,
    cycle_graph,
    margulis_expander,
    random_regular_graph,
)
from ..graphs.spectral import eigenvalue_gap
from ..stats.rng import spawn_seeds
from .config import ExperimentConfig
from .runner import Check, ExperimentResult, measure_cover
from .tables import Table

EXPERIMENT_ID = "E13"
TITLE = "Ablation: lazy vs non-lazy COBRA on non-bipartite graphs"

#: Laziness wastes half the selections (suggesting ~2x), but a staying
#: selection also keeps the sender active into the next round, which
#: partially compensates on low-degree graphs (measured ~1.2x on the
#: cycle).  Accept a slowdown anywhere in [1.1, 3.0] but require one.
SLOWDOWN_RANGE = (1.1, 3.0)


def run(config: ExperimentConfig) -> ExperimentResult:
    """Regenerate the laziness-cost ablation."""
    runs = config.runs(16, 80, 300)
    graphs = config.pick(
        [complete_graph(32), cycle_graph(33)],
        [
            complete_graph(128),
            cycle_graph(129),
            random_regular_graph(128, 3, rng=50),
            margulis_expander(10),
        ],
        [
            complete_graph(512),
            cycle_graph(257),
            random_regular_graph(512, 3, rng=50),
            margulis_expander(16),
        ],
    )
    seeds = iter(spawn_seeds(config.seed, 2 * len(graphs)))

    table = Table(title="lazy slowdown factor per graph")
    checks: list[Check] = []
    for g in graphs:
        plain = measure_cover(g, runs=runs, seed=next(seeds), lazy=False)
        lazy = measure_cover(g, runs=runs, seed=next(seeds), lazy=True)
        slowdown = lazy.mean.value / plain.mean.value
        table.add_row(
            graph=g.name,
            n=g.n,
            gap=eigenvalue_gap(g),
            plain_mean=plain.mean.value,
            lazy_mean=lazy.mean.value,
            slowdown=slowdown,
        )
        lo, hi = SLOWDOWN_RANGE
        checks.append(
            Check(
                name=f"{g.name}: lazy slowdown ~ 2x",
                passed=lo <= slowdown <= hi,
                detail=f"measured {slowdown:.2f}x (expected within [{lo}, {hi}])",
            )
        )

    # Bipartite sanity: even cycle has gap exactly 0, lazy gap positive.
    bip = cycle_graph(config.pick(16, 64, 128))
    gap_plain = eigenvalue_gap(bip)
    gap_lazy = eigenvalue_gap(bip, lazy=True)
    lazy_meas = measure_cover(bip, runs=runs, seed=config.seed + 1, lazy=True)
    table.add_row(
        graph=bip.name,
        n=bip.n,
        gap=gap_plain,
        plain_mean=float("nan"),
        lazy_mean=lazy_meas.mean.value,
        slowdown=float("nan"),
    )
    checks.append(
        Check(
            name="bipartite instance: zero plain gap, positive lazy gap",
            passed=abs(gap_plain) < 1e-9 and gap_lazy > 0,
            detail=f"gap {gap_plain:.2e}, lazy gap {gap_lazy:.4f}; lazy "
            f"COBRA covered in {lazy_meas.mean.value:.1f} mean rounds",
        )
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        tables=[table],
        checks=checks,
        notes=[
            "laziness halves the per-round effective branching, hence the "
            "~2x cover-time cost; it is the price of a positive eigenvalue "
            "gap on bipartite graphs (paper, remark before Theorem 1.2)",
        ],
    )
