"""E3 / Table 3 — Theorem 1.2's regular-graph bound.

For regular families we compute the eigenvalue gap ``1 − λ`` (lazy gap
for bipartite instances, per the paper's remark) and compare measured
COBRA cover times against ``(r/(1−λ) + r²) log n``.  Shape criteria:
dominance with a single constant, plus the expander prediction — on
random regular graphs (constant gap) the measured cover time grows like
``log n``, i.e. its power-law exponent in ``n`` is ≈ 0.
"""

from __future__ import annotations

import numpy as np

from ..graphs.generators import (
    cycle_graph,
    hypercube_graph,
    random_regular_graph,
    torus_graph,
)
from ..graphs.properties import is_bipartite
from ..graphs.spectral import eigenvalue_gap
from ..stats.regression import fit_power_law
from ..stats.rng import spawn_seeds
from ..theory.bounds import bound_spaa17_regular, gap_condition_holds
from .config import ExperimentConfig
from .runner import Check, ExperimentResult, measure_cover
from .tables import Table

EXPERIMENT_ID = "E3"
TITLE = "Regular bound O((r/(1-lambda) + r^2) log n) vs measured (Table 3)"

DOMINANCE_CONSTANT = 8.0


def _instances(config: ExperimentConfig):
    """(family, graph builder) instances per scale."""
    if config.scale == "smoke":
        return [
            ("random-regular-3", lambda: random_regular_graph(32, 3, rng=11)),
            ("cycle", lambda: cycle_graph(33)),
        ]
    if config.scale == "quick":
        return [
            ("random-regular-3", lambda: random_regular_graph(64, 3, rng=11)),
            ("random-regular-3", lambda: random_regular_graph(128, 3, rng=12)),
            ("random-regular-3", lambda: random_regular_graph(256, 3, rng=13)),
            ("random-regular-8", lambda: random_regular_graph(128, 8, rng=14)),
            ("random-regular-8", lambda: random_regular_graph(256, 8, rng=15)),
            ("torus-2d", lambda: torus_graph([9, 9])),
            ("torus-2d", lambda: torus_graph([15, 15])),
            ("cycle", lambda: cycle_graph(65)),
            ("cycle", lambda: cycle_graph(129)),
            ("hypercube", lambda: hypercube_graph(6)),
            ("hypercube", lambda: hypercube_graph(7)),
        ]
    return [
        ("random-regular-3", lambda: random_regular_graph(64, 3, rng=11)),
        ("random-regular-3", lambda: random_regular_graph(128, 3, rng=12)),
        ("random-regular-3", lambda: random_regular_graph(256, 3, rng=13)),
        ("random-regular-3", lambda: random_regular_graph(512, 3, rng=16)),
        ("random-regular-3", lambda: random_regular_graph(1024, 3, rng=17)),
        ("random-regular-8", lambda: random_regular_graph(128, 8, rng=14)),
        ("random-regular-8", lambda: random_regular_graph(256, 8, rng=15)),
        ("random-regular-8", lambda: random_regular_graph(512, 8, rng=18)),
        ("random-regular-16", lambda: random_regular_graph(256, 16, rng=19)),
        ("random-regular-16", lambda: random_regular_graph(512, 16, rng=20)),
        ("torus-2d", lambda: torus_graph([9, 9])),
        ("torus-2d", lambda: torus_graph([15, 15])),
        ("torus-2d", lambda: torus_graph([21, 21])),
        ("cycle", lambda: cycle_graph(65)),
        ("cycle", lambda: cycle_graph(129)),
        ("cycle", lambda: cycle_graph(257)),
        ("hypercube", lambda: hypercube_graph(6)),
        ("hypercube", lambda: hypercube_graph(7)),
        ("hypercube", lambda: hypercube_graph(8)),
    ]


def run(config: ExperimentConfig) -> ExperimentResult:
    """Regenerate the regular-bound dominance table."""
    runs = config.runs(12, 60, 200)
    instances = _instances(config)
    seeds = iter(spawn_seeds(config.seed, len(instances)))

    table = Table(title="Theorem 1.2 dominance per instance")
    checks: list[Check] = []
    expander_points: list[tuple[int, float]] = []
    all_dominated = True
    max_ratio = 0.0
    for family, build in instances:
        g = build()
        bip = is_bipartite(g)
        gap = eigenvalue_gap(g, lazy=bip)
        meas = measure_cover(g, runs=runs, seed=next(seeds), lazy=bip)
        r = g.dmax
        bound = bound_spaa17_regular(g.n, r, gap)
        ratio = meas.whp.value / bound
        max_ratio = max(max_ratio, ratio)
        all_dominated &= ratio <= DOMINANCE_CONSTANT
        if family.startswith("random-regular-3"):
            expander_points.append((g.n, meas.mean.value))
        table.add_row(
            family=family,
            graph=g.name,
            n=g.n,
            r=r,
            gap=gap,
            gap_condition=gap_condition_holds(g.n, gap),
            lazy=bip,
            measured_whp=meas.whp.value,
            bound=bound,
            ratio=ratio,
        )

    checks.append(
        Check(
            name=f"bound dominates everywhere (constant {DOMINANCE_CONSTANT:g})",
            passed=all_dominated,
            detail=f"max measured/bound ratio {max_ratio:.3f}",
        )
    )
    if len(expander_points) >= 3:
        ns = np.array([p[0] for p in expander_points], dtype=np.float64)
        ts = np.array([p[1] for p in expander_points], dtype=np.float64)
        fit = fit_power_law(ns, ts)
        checks.append(
            Check(
                name="expander cover time is polylog (exponent ~ 0 in n)",
                passed=fit.exponent < 0.25,
                detail=f"3-regular expander sweep: T ~ n^{fit.exponent:.3f}",
            )
        )
    notes = [
        "bipartite instances (even cycles, hypercubes) measured with the "
        "lazy variant and lazy eigenvalue gap, per the paper's remark "
        "before Theorem 1.2",
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        tables=[table],
        checks=checks,
        notes=notes,
    )
