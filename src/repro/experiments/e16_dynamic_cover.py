"""E16 — COBRA cover / BIPS infection on time-evolving graphs.

Beyond the paper (its processes are defined on static graphs): the
canonical next workload is the same processes on evolving topologies.
This experiment sweeps the rewiring rate of a degree-preserving
k-swap dynamics (:class:`~repro.dynamics.RewiringSequence`) on two
extremes — a random 4-regular expander and an odd cycle — and measures
dynamic cover and infection times per rate.

Execution is batched: each sweep cell advances all its runs inside one
``(R, n)`` boolean program via the unified engine
(:func:`~repro.dynamics.dynamic_cover_time_batch` /
:func:`~repro.dynamics.dynamic_infection_time_batch`), all runs of a
cell sharing one topology realisation (quenched statistics).

Shape criteria:

* **Static anchor (exact).**  At rate 0 the batched dynamic runners
  reproduce the static batch engines sample-for-sample under the same
  process stream — the frozen-sequence regression contract of
  :mod:`repro.dynamics`, now checked through the engine layer.
* **Expander robustness.**  Rewiring an expander keeps it an expander
  (degree-preserving swaps stay in the random-regular family), so the
  mean cover time stays within a small constant of the static mean at
  every rate.
* **Cycle scatter speed-up.**  Rewiring a cycle mid-run scatters the
  visited set around the (relabelled) ring, multiplying the number of
  expanding frontier segments: the mean cover time at the highest rate
  drops clearly below the static mean.
"""

from __future__ import annotations

import numpy as np

from ..core.bips import BipsProcess
from ..core.cobra import CobraProcess
from ..dynamics import (
    FrozenSequence,
    RewiringSequence,
    batch_seed_pair,
    dynamic_cover_time_batch,
    dynamic_infection_time_batch,
)
from ..graphs.generators import cycle_graph, random_regular_graph
from ..graphs.graph import Graph
from ..parallel.pool import parallel_map
from ..stats.estimators import mean_ci, whp_quantile
from ..stats.rng import spawn_seeds
from .config import ExperimentConfig
from .runner import Check, ExperimentResult
from .tables import Table

EXPERIMENT_ID = "E16"
TITLE = "Dynamic graphs: cover/infection vs rewiring rate"

# Fixed topology seed for the expander base graph, so the parent and the
# worker processes (and any two runs at the same scale) agree on it.
_BASE_SEED = 1701

EXPANDER_ROBUSTNESS_FACTOR = 3.0
CYCLE_SPEEDUP_FACTOR = 0.9


def _swaps_for(base: Graph, rate: float) -> int:
    """Swap attempts per round for a rewiring rate (fraction of edges)."""
    return max(1, round(rate * base.m)) if rate > 0 else 0


def _sequence_factory(base: Graph, rate: float):
    """Factory ``topology_seed -> GraphSequence`` for one sweep cell."""
    if rate == 0.0:
        return lambda topology_seed: FrozenSequence(base)
    swaps = _swaps_for(base, rate)
    return lambda topology_seed: RewiringSequence(base, swaps, seed=topology_seed)


def _measure_dynamic_task(task: dict) -> dict:
    """Module-level worker for :func:`parallel_map` (must be picklable).

    One batched engine invocation per process: the cell's ``runs`` runs
    advance together on one shared topology realisation.
    """
    base, rate, runs = task["base"], task["rate"], task["runs"]
    factory = _sequence_factory(base, rate)
    cover = dynamic_cover_time_batch(factory, runs, seed=task["cover_seed"])
    infec = dynamic_infection_time_batch(factory, runs, seed=task["infec_seed"])
    return {
        "family": task["family"],
        "rate": rate,
        "cover": cover,
        "infec": infec,
    }


def _grid(config: ExperimentConfig) -> tuple[dict[str, Graph], tuple, int]:
    n_exp, n_cyc = config.pick(32, 64, 128), config.pick(21, 65, 129)
    rates = config.pick(
        (0.0, 0.3), (0.0, 0.05, 0.2, 0.5), (0.0, 0.02, 0.05, 0.1, 0.2, 0.5)
    )
    runs = config.runs(10, 40, 120)
    bases = {
        "expander": random_regular_graph(n_exp, 4, rng=_BASE_SEED),
        "cycle": cycle_graph(n_cyc),
    }
    return bases, rates, runs


def _static_cover(base: Graph, seed: int, runs: int) -> np.ndarray:
    """Static COBRA batch samples drawn with the batched sampler's stream."""
    _, proc_seed = batch_seed_pair(seed)
    res = CobraProcess(base).run_batch(
        np.zeros(runs, dtype=np.int64), np.random.default_rng(proc_seed)
    )
    return res.cover_times


def _static_infection(base: Graph, seed: int, runs: int) -> np.ndarray:
    """Static BIPS batch samples drawn with the batched sampler's stream."""
    _, proc_seed = batch_seed_pair(seed)
    res = BipsProcess(base, 0).run_batch(runs, np.random.default_rng(proc_seed))
    return res.infection_times


def run(config: ExperimentConfig) -> ExperimentResult:
    """Sweep rewiring rates on the expander and cycle families."""
    bases, rates, runs = _grid(config)

    tasks = []
    cells = [(family, rate) for family in bases for rate in rates]
    for (family, rate), cell_seed in zip(cells, spawn_seeds(config.seed, len(cells))):
        # Integer seeds keep the worker/parent seed discipline stateless:
        # the parent re-derives the same run streams for the exact checks
        # regardless of worker count.
        cover_seed, infec_seed = (int(s) for s in cell_seed.generate_state(2))
        tasks.append(
            {
                "family": family,
                "base": bases[family],
                "rate": rate,
                "runs": runs,
                "cover_seed": cover_seed,
                "infec_seed": infec_seed,
            }
        )
    results = parallel_map(_measure_dynamic_task, tasks, n_workers=config.n_workers)

    table = Table(title="dynamic cover/infection time vs rewiring rate")
    mean_cover: dict[tuple[str, float], float] = {}
    stat_rng = np.random.default_rng(config.seed)
    for task, res in zip(tasks, results):
        mean_cover[(res["family"], res["rate"])] = float(res["cover"].mean())
        table.add_row(
            family=res["family"],
            n=task["base"].n,
            rate=res["rate"],
            swaps_per_round=_swaps_for(task["base"], res["rate"]),
            mean_cover=mean_ci(res["cover"]).value,
            whp_cover=whp_quantile(res["cover"], rng=stat_rng).value,
            mean_infection=mean_ci(res["infec"]).value,
        )

    checks: list[Check] = []
    for task, res in zip(tasks, results):
        if res["rate"] != 0.0:
            continue
        base = task["base"]
        static_cover = _static_cover(base, task["cover_seed"], runs)
        static_infec = _static_infection(base, task["infec_seed"], runs)
        cover_ok = bool(np.array_equal(res["cover"], static_cover))
        infec_ok = bool(np.array_equal(res["infec"], static_infec))
        checks.append(
            Check(
                name=f"{res['family']}: frozen dynamics == static engines (exact)",
                passed=cover_ok and infec_ok,
                detail=(
                    f"cover samples equal: {cover_ok}; "
                    f"infection samples equal: {infec_ok} ({runs} runs)"
                ),
            )
        )

    top_rate = max(rates)
    exp_static = mean_cover[("expander", 0.0)]
    exp_worst = max(mean_cover[("expander", r)] for r in rates)
    checks.append(
        Check(
            name="expander: cover robust to rewiring "
            f"(≤ {EXPANDER_ROBUSTNESS_FACTOR:g}× static at every rate)",
            passed=exp_worst <= EXPANDER_ROBUSTNESS_FACTOR * exp_static,
            detail=f"static mean {exp_static:.1f}, worst dynamic mean {exp_worst:.1f}",
        )
    )
    cyc_static = mean_cover[("cycle", 0.0)]
    cyc_fast = mean_cover[("cycle", top_rate)]
    checks.append(
        Check(
            name="cycle: rewiring scatters the frontier "
            f"(mean at rate {top_rate:g} < {CYCLE_SPEEDUP_FACTOR:g}× static)",
            passed=cyc_fast < CYCLE_SPEEDUP_FACTOR * cyc_static,
            detail=f"static mean {cyc_static:.1f}, rate-{top_rate:g} mean {cyc_fast:.1f}",
        )
    )

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        tables=[table],
        checks=checks,
        notes=[
            "rewiring = degree-preserving double-edge swaps per round "
            "(connectivity-preserving); rate is the attempted-swap "
            "fraction of |E| per round",
            "batched execution: each cell's runs share one topology "
            "realisation and advance in one (R, n) boolean program "
            "(quenched statistics)",
            "rate 0 uses FrozenSequence: the exact-match check is the "
            "static-regression contract of repro.dynamics, through the "
            "unified engine",
        ],
    )
