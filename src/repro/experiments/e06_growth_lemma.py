"""E6 / Figure 3 — Lemmas 4.1/4.2: one-round expected infection growth.

Lemma 4.1: on a connected r-regular graph,
``E[|A_{t+1}| | A_t] >= |A_t| (1 + (1−λ²)(1 − |A_t|/n))`` for ``b = 2``;
Lemma 4.2 scales the middle factor by ``ρ`` for ``b = 1 + ρ``.

Because the bound holds *conditionally on any set* of a given size, it
also lower-bounds the average over sets the process visits.  We bucket
observed transitions ``(|A_t|, |A_{t+1}|)`` by current size and check
the bucket means dominate the lemma's curve (with sampling slack).
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..core.bips import BipsProcess
from ..core.branching import BernoulliBranching
from ..graphs.generators import random_regular_graph, torus_graph
from ..graphs.spectral import second_eigenvalue
from ..stats.rng import spawn_generators
from ..theory.growth import lemma41_growth_bound, lemma42_growth_bound
from .config import ExperimentConfig
from .runner import Check, ExperimentResult
from .tables import Table

EXPERIMENT_ID = "E6"
TITLE = "Lemma 4.1/4.2: expected one-round growth lower bound (Fig 3)"

MIN_BUCKET_SAMPLES = 25


def _collect_transitions(graph, branching, runs, seed):
    """All observed (|A_t|, |A_{t+1}|) pairs across BIPS runs."""
    pairs = []
    for gen in spawn_generators(seed, runs):
        res = BipsProcess(graph, 0, branching).run(gen)
        sizes = res.sizes
        pairs.extend(zip(sizes[:-1].tolist(), sizes[1:].tolist()))
    return pairs


def run(config: ExperimentConfig) -> ExperimentResult:
    """Regenerate the growth-lemma verification."""
    runs = config.runs(40, 120, 400)
    min_bucket = config.pick(8, MIN_BUCKET_SAMPLES, MIN_BUCKET_SAMPLES)
    cases = config.pick(
        [("rreg-3", random_regular_graph(32, 3, rng=7), 2)],
        [
            ("rreg-3", random_regular_graph(128, 3, rng=7), 2),
            ("rreg-8", random_regular_graph(128, 8, rng=8), 2),
            ("torus-2d", torus_graph([11, 11]), 2),
            ("rreg-3 (rho=0.5)", random_regular_graph(128, 3, rng=7), BernoulliBranching(0.5)),
        ],
        [
            ("rreg-3", random_regular_graph(256, 3, rng=7), 2),
            ("rreg-8", random_regular_graph(256, 8, rng=8), 2),
            ("torus-2d", torus_graph([15, 15]), 2),
            ("torus-3d", torus_graph([7, 7, 7]), 2),
            ("rreg-3 (rho=0.5)", random_regular_graph(256, 3, rng=7), BernoulliBranching(0.5)),
            ("rreg-3 (rho=0.25)", random_regular_graph(256, 3, rng=7), BernoulliBranching(0.25)),
        ],
    )

    table = Table(title="bucketed mean next size vs lemma bound")
    checks: list[Check] = []
    for label, g, branching in cases:
        if not g.is_regular():
            raise RuntimeError("growth lemmas require regular graphs")
        lam = second_eigenvalue(g)
        pairs = _collect_transitions(g, branching, runs, config.seed + g.n)
        buckets: dict[int, list[int]] = defaultdict(list)
        for size, nxt in pairs:
            buckets[int(size)].append(int(nxt))
        violations = 0
        tested = 0
        worst_margin = np.inf
        for size, nexts in sorted(buckets.items()):
            if len(nexts) < min_bucket or size >= g.n:
                continue
            arr = np.asarray(nexts, dtype=np.float64)
            mean = float(arr.mean())
            sem = float(arr.std(ddof=1) / np.sqrt(arr.size)) if arr.size > 1 else 0.0
            if isinstance(branching, BernoulliBranching):
                bound = lemma42_growth_bound(size, g.n, lam, branching.rho)
            else:
                bound = lemma41_growth_bound(size, g.n, lam)
            margin = mean + 4.0 * sem - bound
            worst_margin = min(worst_margin, margin)
            tested += 1
            if margin < 0:
                violations += 1
            table.add_row(
                case=label,
                size=size,
                samples=arr.size,
                mean_next=mean,
                lemma_bound=bound,
                margin=margin,
            )
        checks.append(
            Check(
                name=f"{label}: bucket means dominate the lemma bound",
                passed=violations == 0 and tested > 0,
                detail=(
                    f"{tested} buckets tested, {violations} violations, "
                    f"worst margin {worst_margin:.3f}"
                ),
            )
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        tables=[table],
        checks=checks,
        notes=[
            "margin = bucket mean + 4*SEM - bound; the lemma guarantees "
            "margin >= 0 in expectation for every conditioning set",
        ],
    )
