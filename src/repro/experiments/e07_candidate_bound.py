"""E7 / Figure 4 — Corollary 5.2: candidate-set size lower bound.

Corollary 5.2: on an n-vertex r-regular graph, whenever
``|A_{t−1}| <= n/2`` the candidate set of eq. (6) satisfies
``|C_t| >= |A_{t−1}|(1−λ)/2`` — proved via ``E|B_rand| >= |A|(1−λ)/2``
and ``|C| >= E|B_rand|``.

We record ``(|A_{t−1}|, |C_t|)`` pairs from instrumented BIPS runs and
check the bucketed mean candidate size dominates the bound (per-sample
domination is in fact what the corollary's proof gives, since ``|C_t|``
is a deterministic function of ``A_{t−1}``; we verify per-sample too).
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..core.bips import BipsProcess
from ..graphs.generators import random_regular_graph, torus_graph
from ..graphs.spectral import second_eigenvalue
from ..stats.rng import spawn_generators
from ..theory.growth import cor52_candidate_bound
from .config import ExperimentConfig
from .runner import Check, ExperimentResult
from .tables import Table

EXPERIMENT_ID = "E7"
TITLE = "Corollary 5.2: |C_t| >= |A_{t-1}|(1-lambda)/2 (Fig 4)"


def run(config: ExperimentConfig) -> ExperimentResult:
    """Regenerate the candidate-set bound verification."""
    runs = config.runs(15, 80, 300)
    graphs = config.pick(
        [random_regular_graph(32, 3, rng=3)],
        [
            random_regular_graph(128, 3, rng=3),
            random_regular_graph(128, 8, rng=4),
            torus_graph([11, 11]),
        ],
        [
            random_regular_graph(256, 3, rng=3),
            random_regular_graph(256, 8, rng=4),
            torus_graph([15, 15]),
            random_regular_graph(256, 16, rng=5),
        ],
    )

    table = Table(title="candidate-set size vs Corollary 5.2 bound")
    checks: list[Check] = []
    for g in graphs:
        lam = second_eigenvalue(g)
        pairs: list[tuple[int, int]] = []
        for gen in spawn_generators(config.seed + 7 * g.n, runs):
            res = BipsProcess(g, 0).run(gen, record_candidates=True)
            sizes = res.sizes
            cands = res.candidate_sizes
            # candidate_sizes[i] is |C_{i+1}|, computed from A_i = sizes[i].
            pairs.extend(zip(sizes[: len(cands)].tolist(), cands.tolist()))
        half = g.n / 2.0
        per_sample_violations = 0
        applicable = 0
        buckets: dict[int, list[int]] = defaultdict(list)
        for a_size, c_size in pairs:
            if a_size > half:
                continue
            applicable += 1
            bound = cor52_candidate_bound(a_size, g.n, lam)
            if c_size < bound:
                per_sample_violations += 1
            buckets[a_size].append(c_size)
        bucket_ok = True
        for a_size, cs in sorted(buckets.items()):
            if len(cs) < 10:
                continue
            mean_c = float(np.mean(cs))
            bound = cor52_candidate_bound(a_size, g.n, lam)
            bucket_ok &= mean_c >= bound - 1e-9
            table.add_row(
                graph=g.name,
                prev_size=a_size,
                samples=len(cs),
                mean_candidates=mean_c,
                bound=bound,
            )
        frac_violated = per_sample_violations / max(applicable, 1)
        checks.append(
            Check(
                name=f"{g.name}: bucketed mean |C_t| dominates the bound",
                passed=bucket_ok,
                detail=f"{len(buckets)} size buckets",
            )
        )
        checks.append(
            Check(
                name=f"{g.name}: per-sample domination",
                passed=frac_violated == 0.0,
                detail=(
                    f"{per_sample_violations}/{applicable} samples below the "
                    "bound (the corollary's proof gives deterministic "
                    "domination of E|B_rand|, realised per sample here)"
                ),
            )
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        tables=[table],
        checks=checks,
        notes=["only rounds with |A_{t-1}| <= n/2 enter, per the corollary"],
    )
