"""Point and interval estimators for cover/infection time samples.

The paper's statements are "w.h.p." bounds; we operationalise them as
empirical high quantiles with bootstrap intervals, and report means
with Student-t confidence intervals for the tables.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

from .rng import generator_from

__all__ = [
    "Estimate",
    "mean_ci",
    "quantile_estimate",
    "whp_quantile",
    "bootstrap_ci",
]


@dataclass(frozen=True)
class Estimate:
    """A point estimate with a two-sided confidence interval."""

    value: float
    lower: float
    upper: float
    n_samples: int
    confidence: float

    @property
    def half_width(self) -> float:
        """Half the CI width — the ± in table cells."""
        return (self.upper - self.lower) / 2.0

    def overlaps(self, other: "Estimate") -> bool:
        """True iff the two intervals intersect."""
        return self.lower <= other.upper and other.lower <= self.upper

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.value:.2f} ± {self.half_width:.2f}"


def mean_ci(samples: np.ndarray, *, confidence: float = 0.95) -> Estimate:
    """Sample mean with a Student-t confidence interval."""
    x = np.asarray(samples, dtype=np.float64)
    if x.size == 0:
        raise ValueError("no samples")
    mean = float(x.mean())
    if x.size == 1:
        return Estimate(mean, mean, mean, 1, confidence)
    sem = float(x.std(ddof=1) / np.sqrt(x.size))
    if sem == 0.0:
        return Estimate(mean, mean, mean, int(x.size), confidence)
    tcrit = float(sps.t.ppf(0.5 + confidence / 2.0, df=x.size - 1))
    return Estimate(
        value=mean,
        lower=mean - tcrit * sem,
        upper=mean + tcrit * sem,
        n_samples=int(x.size),
        confidence=confidence,
    )


def quantile_estimate(
    samples: np.ndarray,
    q: float,
    *,
    confidence: float = 0.95,
    n_boot: int = 400,
    rng: np.random.Generator | int | None = None,
) -> Estimate:
    """Empirical ``q``-quantile with a bootstrap percentile interval."""
    x = np.asarray(samples, dtype=np.float64)
    if x.size == 0:
        raise ValueError("no samples")
    if not 0.0 < q < 1.0:
        raise ValueError("quantile must be in (0, 1)")
    gen = generator_from(rng)
    point = float(np.quantile(x, q))
    if x.size == 1:
        return Estimate(point, point, point, 1, confidence)
    idx = gen.integers(0, x.size, size=(n_boot, x.size))
    boots = np.quantile(x[idx], q, axis=1)
    lo = float(np.quantile(boots, (1.0 - confidence) / 2.0))
    hi = float(np.quantile(boots, 0.5 + confidence / 2.0))
    return Estimate(point, lo, hi, int(x.size), confidence)


def whp_quantile(
    samples: np.ndarray,
    *,
    level: float = 0.95,
    rng: np.random.Generator | int | None = None,
) -> Estimate:
    """The library's operationalisation of "w.h.p. cover time".

    The paper's bounds hold with probability ``1 − n^{−c}``; at
    experiment scale we report the empirical ``level`` quantile (default
    95th percentile) of the sampled times.
    """
    return quantile_estimate(samples, level, rng=rng)


def bootstrap_ci(
    samples: np.ndarray,
    statistic,
    *,
    confidence: float = 0.95,
    n_boot: int = 1000,
    rng: np.random.Generator | int | None = None,
) -> Estimate:
    """Generic bootstrap percentile CI for an arbitrary statistic."""
    x = np.asarray(samples, dtype=np.float64)
    if x.size == 0:
        raise ValueError("no samples")
    gen = generator_from(rng)
    point = float(statistic(x))
    idx = gen.integers(0, x.size, size=(n_boot, x.size))
    boots = np.array([statistic(x[row]) for row in idx], dtype=np.float64)
    lo = float(np.quantile(boots, (1.0 - confidence) / 2.0))
    hi = float(np.quantile(boots, 0.5 + confidence / 2.0))
    return Estimate(point, lo, hi, int(x.size), confidence)
