"""Survival-curve utilities: ``P(T > t)`` from samples or exact chains.

Duality verification and the w.h.p. experiments are phrased in terms of
survival functions of hit/cover/infection times; this module provides
the empirical estimator and comparison helpers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SurvivalCurve", "empirical_survival", "survival_distance"]


@dataclass(frozen=True)
class SurvivalCurve:
    """``P(T > t)`` on an integer grid ``t = 0 .. horizon``."""

    horizons: np.ndarray
    probabilities: np.ndarray
    n_samples: int

    def at(self, t: int) -> float:
        """Survival at integer time ``t`` (0 beyond the grid)."""
        if t < 0:
            return 1.0
        if t >= self.horizons.shape[0]:
            return float(self.probabilities[-1])
        return float(self.probabilities[t])

    def stderr(self) -> np.ndarray:
        """Binomial standard errors per grid point."""
        p = self.probabilities
        return np.sqrt(np.maximum(p * (1.0 - p), 1e-12) / max(self.n_samples, 1))


def empirical_survival(samples: np.ndarray, horizon: int | None = None) -> SurvivalCurve:
    """Empirical survival of integer-valued times.

    ``samples`` may contain ``-1`` for censored runs (treated as
    ``> horizon`` at every grid point).
    """
    x = np.asarray(samples, dtype=np.int64)
    if x.size == 0:
        raise ValueError("no samples")
    censored = x < 0
    observed = x[~censored]
    top = int(observed.max()) if observed.size else 0
    if horizon is None:
        horizon = top
    ts = np.arange(horizon + 1)
    counts = np.zeros(horizon + 1, dtype=np.int64)
    # count of samples with value > t  =  total - #(value <= t)
    clipped = np.clip(observed, 0, horizon + 1)
    hist = np.bincount(clipped, minlength=horizon + 2)
    cum = np.cumsum(hist[: horizon + 1])
    counts = x.size - cum + 0  # censored runs always count as surviving
    probs = counts / x.size
    return SurvivalCurve(horizons=ts, probabilities=probs.astype(np.float64), n_samples=int(x.size))


def survival_distance(a: SurvivalCurve, b: SurvivalCurve) -> float:
    """Max pointwise distance between two survival curves (common grid)."""
    horizon = min(a.horizons.shape[0], b.horizons.shape[0]) - 1
    pa = np.array([a.at(t) for t in range(horizon + 1)])
    pb = np.array([b.at(t) for t in range(horizon + 1)])
    return float(np.max(np.abs(pa - pb)))
