"""Two-sample distribution comparison for simulator cross-validation.

The repository repeatedly asks "do these two samplers draw from the same
law?" (batch vs single engines, serialised vs parallel BIPS, Bernoulli
ρ=1 vs fixed b=2...).  This module centralises that check: the
two-sample Kolmogorov–Smirnov statistic with its asymptotic p-value,
plus an exact-in-spirit permutation test on the mean difference for
small samples where the KS asymptotics are shaky.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

from .rng import generator_from

__all__ = ["ComparisonResult", "ks_compare", "permutation_mean_test", "same_distribution"]


@dataclass(frozen=True)
class ComparisonResult:
    """Outcome of a two-sample comparison."""

    statistic: float
    p_value: float
    n_a: int
    n_b: int
    method: str

    def consistent(self, alpha: float = 0.01) -> bool:
        """True iff the samples are *not* distinguishable at level ``alpha``."""
        return self.p_value >= alpha


def ks_compare(a, b) -> ComparisonResult:
    """Two-sample KS test (scipy's exact/asymp auto selection)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.size == 0 or b.size == 0:
        raise ValueError("both samples must be nonempty")
    res = sps.ks_2samp(a, b)
    return ComparisonResult(
        statistic=float(res.statistic),
        p_value=float(res.pvalue),
        n_a=int(a.size),
        n_b=int(b.size),
        method="ks-2samp",
    )


def permutation_mean_test(
    a,
    b,
    *,
    n_permutations: int = 2000,
    rng: np.random.Generator | int | None = None,
) -> ComparisonResult:
    """Permutation test of ``mean(a) == mean(b)`` (two-sided).

    Resamples group labels; the p-value is the fraction of permuted
    mean differences at least as extreme as the observed one (with the
    +1 correction so the p-value is never 0).
    """
    gen = generator_from(rng)
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.size == 0 or b.size == 0:
        raise ValueError("both samples must be nonempty")
    observed = abs(a.mean() - b.mean())
    pooled = np.concatenate([a, b])
    count = 0
    for _ in range(n_permutations):
        perm = gen.permutation(pooled)
        diff = abs(perm[: a.size].mean() - perm[a.size :].mean())
        if diff >= observed - 1e-15:
            count += 1
    p = (count + 1) / (n_permutations + 1)
    return ComparisonResult(
        statistic=float(observed),
        p_value=float(p),
        n_a=int(a.size),
        n_b=int(b.size),
        method="permutation-mean",
    )


def same_distribution(
    a,
    b,
    *,
    alpha: float = 0.01,
    rng: np.random.Generator | int | None = None,
) -> bool:
    """Convenience: both KS and permutation tests fail to distinguish.

    This is the acceptance predicate used by the engine-equivalence
    tests; requiring both tests makes a silent distribution drift
    harder to slip through.
    """
    return (
        ks_compare(a, b).consistent(alpha)
        and permutation_mean_test(a, b, rng=rng).consistent(alpha)
    )
