"""Reproducible randomness: SeedSequence spawning helpers.

Every experiment takes one master seed; anything that runs in parallel
(worker processes, batched trials) receives *spawned* child sequences,
so results are bit-identical regardless of worker count or scheduling
order — the standard NumPy approach recommended for parallel Monte
Carlo.
"""

from __future__ import annotations

import numpy as np

__all__ = ["spawn_generators", "spawn_seeds", "generator_from"]


def generator_from(seed: np.random.Generator | np.random.SeedSequence | int | None) -> np.random.Generator:
    """Coerce a seed-ish argument into a ``numpy.random.Generator``."""
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_seeds(master: int | np.random.SeedSequence, count: int) -> list[np.random.SeedSequence]:
    """Spawn ``count`` independent child SeedSequences from a master seed."""
    if count < 0:
        raise ValueError("count must be non-negative")
    ss = master if isinstance(master, np.random.SeedSequence) else np.random.SeedSequence(master)
    return ss.spawn(count)


def spawn_generators(master: int | np.random.SeedSequence, count: int) -> list[np.random.Generator]:
    """Spawn ``count`` independent Generators from a master seed."""
    return [np.random.default_rng(s) for s in spawn_seeds(master, count)]
