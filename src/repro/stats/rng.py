"""Reproducible randomness: SeedSequence spawning helpers.

Every experiment takes one master seed; anything that runs in parallel
(worker processes, batched trials) receives *spawned* child sequences,
so results are bit-identical regardless of worker count or scheduling
order — the standard NumPy approach recommended for parallel Monte
Carlo.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "spawn_generators",
    "spawn_seeds",
    "generator_from",
    "seed_sequence_from",
]


def seed_sequence_from(
    seed: np.random.Generator | np.random.SeedSequence | int | None,
) -> np.random.SeedSequence:
    """Coerce a seed-ish argument into a spawnable ``SeedSequence``.

    The inverse convenience of :func:`generator_from`, used by the
    sharded execution paths, which need a *spawnable* root rather than
    a single stream.  A ``Generator`` argument cannot be split
    losslessly, so its entropy is drawn from the stream itself (one
    ``integers`` call — deterministic given the generator state, and
    the generator advances exactly one draw).
    """
    if isinstance(seed, np.random.SeedSequence):
        return seed
    if isinstance(seed, np.random.Generator):
        return np.random.SeedSequence(int(seed.integers(2**63)))
    return np.random.SeedSequence(seed)


def generator_from(seed: np.random.Generator | np.random.SeedSequence | int | None) -> np.random.Generator:
    """Coerce a seed-ish argument into a ``numpy.random.Generator``."""
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_seeds(master: int | np.random.SeedSequence, count: int) -> list[np.random.SeedSequence]:
    """Spawn ``count`` independent child SeedSequences from a master seed."""
    if count < 0:
        raise ValueError("count must be non-negative")
    ss = master if isinstance(master, np.random.SeedSequence) else np.random.SeedSequence(master)
    return ss.spawn(count)


def spawn_generators(master: int | np.random.SeedSequence, count: int) -> list[np.random.Generator]:
    """Spawn ``count`` independent Generators from a master seed."""
    return [np.random.default_rng(s) for s in spawn_seeds(master, count)]
