"""Statistics toolkit: estimators, scaling fits, survival curves, seeding."""

from .comparison import (
    ComparisonResult,
    ks_compare,
    permutation_mean_test,
    same_distribution,
)
from .estimators import (
    Estimate,
    bootstrap_ci,
    mean_ci,
    quantile_estimate,
    whp_quantile,
)
from .regression import PowerLawFit, doubling_ratio, fit_polylog, fit_power_law
from .rng import (
    generator_from,
    seed_sequence_from,
    spawn_generators,
    spawn_seeds,
)
from .survival import SurvivalCurve, empirical_survival, survival_distance

__all__ = [
    "ComparisonResult",
    "ks_compare",
    "permutation_mean_test",
    "same_distribution",
    "Estimate",
    "bootstrap_ci",
    "mean_ci",
    "quantile_estimate",
    "whp_quantile",
    "PowerLawFit",
    "doubling_ratio",
    "fit_polylog",
    "fit_power_law",
    "generator_from",
    "seed_sequence_from",
    "spawn_generators",
    "spawn_seeds",
    "SurvivalCurve",
    "empirical_survival",
    "survival_distance",
]
