"""Scaling-exponent fits for the growth-shape checks.

The reproduction criterion for asymptotic claims is the *shape*: cover
time ``T(n) ≈ a · n^c`` (power law) or ``T(n) ≈ a · (ln n)^p``
(polylog).  Both reduce to ordinary least squares in log space; we also
report R² so experiments can assert the fit is meaningful before
asserting the exponent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PowerLawFit", "fit_power_law", "fit_polylog", "doubling_ratio"]


@dataclass(frozen=True)
class PowerLawFit:
    """Result of a log-space least-squares fit ``y ≈ amplitude · x^exponent``."""

    exponent: float
    amplitude: float
    r_squared: float
    n_points: int

    def predict(self, x) -> np.ndarray:
        """Evaluate the fitted law at ``x``."""
        return self.amplitude * np.asarray(x, dtype=np.float64) ** self.exponent

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.amplitude:.3g} * x^{self.exponent:.3f} (R²={self.r_squared:.3f})"
        )


def _loglog_fit(logx: np.ndarray, logy: np.ndarray) -> PowerLawFit:
    if logx.size < 2:
        raise ValueError("need at least two points to fit")
    if np.allclose(logx, logx[0]):
        raise ValueError("all x values identical; cannot fit an exponent")
    slope, intercept = np.polyfit(logx, logy, deg=1)
    pred = slope * logx + intercept
    ss_res = float(np.sum((logy - pred) ** 2))
    ss_tot = float(np.sum((logy - logy.mean()) ** 2))
    r2 = 1.0 if ss_tot == 0.0 else 1.0 - ss_res / ss_tot
    return PowerLawFit(
        exponent=float(slope),
        amplitude=float(np.exp(intercept)),
        r_squared=r2,
        n_points=int(logx.size),
    )


def fit_power_law(x, y) -> PowerLawFit:
    """Fit ``y ≈ a · x^c`` by least squares on ``(ln x, ln y)``."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if np.any(x <= 0) or np.any(y <= 0):
        raise ValueError("power-law fit requires positive data")
    return _loglog_fit(np.log(x), np.log(y))


def fit_polylog(n, y) -> PowerLawFit:
    """Fit ``y ≈ a · (ln n)^p`` — i.e. a power law in ``ln n``.

    The returned ``exponent`` is the polylog power ``p``; e.g. the
    hypercube experiment checks ``p`` is small (≲ 2) and certainly far
    below the proven ceiling of 3.
    """
    n = np.asarray(n, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if np.any(n <= 1) or np.any(y <= 0):
        raise ValueError("polylog fit requires n > 1 and positive y")
    return _loglog_fit(np.log(np.log(n)), np.log(y))


def doubling_ratio(x, y) -> np.ndarray:
    """``y_{i+1}/y_i`` along a doubling sweep of ``x`` (sanity diagnostic).

    For a power law ``n^c`` on an exactly-doubling ``x`` grid the ratios
    converge to ``2^c``; polylog growth drives them to 1.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    order = np.argsort(x)
    return y[order][1:] / y[order][:-1]
