"""repro — reproduction of *Improved Cover Time Bounds for the
Coalescing-Branching Random Walk on Graphs* (Cooper, Radzik, Rivera;
SPAA 2017).

Public API highlights:

* :class:`repro.graphs.Graph` and the family generators — the CSR graph
  substrate;
* :class:`repro.core.CobraProcess` / :class:`repro.core.BipsProcess` —
  the paper's two processes, with single-run and batched engines;
* :func:`repro.core.verify_duality_exact` — Theorem 1.3 checked to
  machine precision on tiny graphs;
* :mod:`repro.theory` — every bound formula in the paper and its
  comparisons;
* :mod:`repro.dynamics` — the same processes on time-evolving graphs
  (edge-Markovian, degree-preserving rewiring, vertex churn);
* :mod:`repro.experiments` — the E1..E16 reproduction suite (see
  DESIGN.md / EXPERIMENTS.md).

Quickstart::

    import numpy as np
    from repro import hypercube_graph, cover_time_samples

    g = hypercube_graph(7)
    times = cover_time_samples(g, start=0, runs=100, lazy=True,
                               rng=np.random.default_rng(1))
    print(times.mean())
"""

from ._version import __version__
from .core import (
    BernoulliBranching,
    BipsProcess,
    CobraProcess,
    FixedBranching,
    bips_exact,
    cover_time,
    cover_time_samples,
    infection_time,
    infection_time_samples,
    verify_duality_exact,
    verify_duality_monte_carlo,
)
from .dynamics import (
    ChurnSequence,
    DynamicBipsProcess,
    DynamicCobraProcess,
    EdgeMarkovianSequence,
    FrozenSequence,
    GraphSequence,
    RewiringSequence,
    SnapshotSchedule,
    dynamic_cover_time_samples,
    dynamic_infection_time_samples,
)
from .experiments import ExperimentConfig, run_experiment
from .graphs import (
    Graph,
    barbell_graph,
    complete_graph,
    cycle_graph,
    eigenvalue_gap,
    erdos_renyi_graph,
    grid_graph,
    hypercube_graph,
    margulis_expander,
    path_graph,
    random_regular_graph,
    second_eigenvalue,
    star_graph,
    torus_graph,
)
from .theory import (
    bound_spaa17_general,
    bound_spaa17_regular,
    hypercube_ladder,
    lower_bound_cover,
)

__all__ = [
    "__version__",
    # core
    "BernoulliBranching",
    "BipsProcess",
    "CobraProcess",
    "FixedBranching",
    "bips_exact",
    "cover_time",
    "cover_time_samples",
    "infection_time",
    "infection_time_samples",
    "verify_duality_exact",
    "verify_duality_monte_carlo",
    # dynamics
    "ChurnSequence",
    "DynamicBipsProcess",
    "DynamicCobraProcess",
    "EdgeMarkovianSequence",
    "FrozenSequence",
    "GraphSequence",
    "RewiringSequence",
    "SnapshotSchedule",
    "dynamic_cover_time_samples",
    "dynamic_infection_time_samples",
    # experiments
    "ExperimentConfig",
    "run_experiment",
    # graphs
    "Graph",
    "barbell_graph",
    "complete_graph",
    "cycle_graph",
    "eigenvalue_gap",
    "erdos_renyi_graph",
    "grid_graph",
    "hypercube_graph",
    "margulis_expander",
    "path_graph",
    "random_regular_graph",
    "second_eigenvalue",
    "star_graph",
    "torus_graph",
    # theory
    "bound_spaa17_general",
    "bound_spaa17_regular",
    "hypercube_ladder",
    "lower_bound_cover",
]
