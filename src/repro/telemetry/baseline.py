"""BENCH trajectory loading, normalisation, and migration.

The five ``BENCH_*.json`` files benchmarks append to
(:func:`benchmarks.record.record_bench`) are the repo's perf source of
truth: every entry is a timestamped measurement with a ``machine``
context, free-form ``meta``, measurement ``rows``, and (since the
telemetry tier landed) a ``telemetry`` digest.  This module gives the
comparator (:mod:`repro.telemetry.compare`) a uniform view over that
history:

* :func:`load_bench` / :func:`discover_benches` — read trajectories
  with every entry passed through :func:`normalize_entry`, so schema
  drift (early entries predate the ``machine``/``cpus`` annotations)
  never surfaces as a ``KeyError`` downstream;
* :func:`migrate_file` — the ``repro bench migrate`` backend: rewrite
  a trajectory in place with the same normalisation, idempotently;
* :func:`row_key` — the identity of one measurement row (every
  parameter column, none of the measured ones), the unit of pairing
  across entries;
* :func:`canonical_digest` — sorted keys + stable float rounding, so
  identical runs produce byte-identical telemetry blocks that diff
  exactly.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "HEADLINE_KEYS",
    "MEASURE_KEYS",
    "Bench",
    "BenchEntry",
    "canonical_digest",
    "discover_benches",
    "load_bench",
    "migrate_file",
    "normalize_entry",
    "row_key",
]

#: Row columns that are *measurements* (outputs).  Every other column
#: is a parameter and participates in :func:`row_key`.
MEASURE_KEYS = (
    "seconds",
    "seconds_per_round",
    "speedup_vs_batch",
    "speedup_vs_numpy",
    "mean_cover",
    "cover_rounds",
)

#: Row columns holding headline latencies, in diff priority order.
HEADLINE_KEYS = ("seconds", "seconds_per_round")


def canonical_digest(obj, *, float_digits: int = 6):
    """Canonicalise a JSON-able digest: sorted keys, rounded floats.

    Dict keys are emitted in sorted order (Python dicts preserve
    insertion order through ``json.dump``), floats are rounded to
    ``float_digits`` significant digits, and non-finite floats become
    None (JSON has no representation for them).  Two identical runs
    therefore serialise to byte-identical telemetry blocks — the
    property the comparator's digest diff relies on.
    """
    if isinstance(obj, dict):
        return {
            str(key): canonical_digest(obj[key], float_digits=float_digits)
            for key in sorted(obj, key=str)
        }
    if isinstance(obj, (list, tuple)):
        return [canonical_digest(item, float_digits=float_digits) for item in obj]
    if isinstance(obj, bool) or obj is None:
        return obj
    if isinstance(obj, float):
        if not math.isfinite(obj):
            return None
        return float(f"{obj:.{float_digits}g}")
    return obj


def row_key(row: dict) -> tuple:
    """The identity of a measurement row: its sorted parameter columns.

    Two rows with equal keys measured the same configuration (same
    bench mode, n, runs, workers, backend, machine cpus, ...) and are
    comparable across entries; the measured columns
    (:data:`MEASURE_KEYS`) are excluded.
    """
    items = []
    for key in sorted(row):
        if key in MEASURE_KEYS:
            continue
        value = row[key]
        if isinstance(value, list):
            value = tuple(value)
        items.append((key, value))
    return tuple(items)


@dataclass(frozen=True)
class BenchEntry:
    """One normalised BENCH entry: when, where, what, and how fast."""

    timestamp: str
    machine: dict
    meta: dict
    rows: tuple
    telemetry: dict | None

    @property
    def cpus(self) -> int | None:
        """The recording machine's CPU count (None when never recorded)."""
        return self.machine.get("cpus")

    def row_map(self) -> dict:
        """Rows indexed by :func:`row_key` (last write wins on duplicates)."""
        return {row_key(row): row for row in self.rows}


@dataclass(frozen=True)
class Bench:
    """One loaded trajectory: the bench name plus its entries, oldest first."""

    name: str
    path: Path
    entries: tuple

    @property
    def latest(self) -> BenchEntry | None:
        """The most recent entry (None for an empty trajectory)."""
        return self.entries[-1] if self.entries else None


def normalize_entry(raw: dict) -> tuple[dict, bool]:
    """Normalise one raw entry dict; returns ``(entry, changed)``.

    Guarantees the comparator's invariants: ``machine`` is a dict with
    ``cpus``/``python`` keys (None when unknown), ``meta`` and ``rows``
    exist, and every row carries a ``cpus`` column (backfilled from the
    machine context) so row identities pair machine-for-machine across
    schema generations.
    """
    entry = dict(raw)
    changed = False
    machine = dict(entry.get("machine") or {})
    for key in ("cpus", "python"):
        if key not in machine:
            machine[key] = None
            changed = True
    if machine != entry.get("machine"):
        changed = True
    entry["machine"] = machine
    if "timestamp" not in entry:
        entry["timestamp"] = "unknown"
        changed = True
    if not isinstance(entry.get("meta"), dict):
        entry["meta"] = {}
        changed = True
    rows = []
    for row in entry.get("rows") or []:
        row = dict(row)
        if "cpus" not in row and machine["cpus"] is not None:
            row["cpus"] = machine["cpus"]
            changed = True
        rows.append(row)
    if rows != entry.get("rows"):
        changed = True
    entry["rows"] = rows
    return entry, changed


def _entry_from_dict(entry: dict) -> BenchEntry:
    return BenchEntry(
        timestamp=str(entry["timestamp"]),
        machine=entry["machine"],
        meta=entry["meta"],
        rows=tuple(entry["rows"]),
        telemetry=entry.get("telemetry"),
    )


def load_bench(path) -> Bench:
    """Load one ``BENCH_*.json`` trajectory, normalising every entry.

    Normalisation happens in memory only — use :func:`migrate_file` (or
    ``repro bench migrate``) to persist it.  Raises ``OSError`` for a
    missing file and ``ValueError`` for a malformed payload.
    """
    path = Path(path)
    payload = json.loads(path.read_text())
    if not isinstance(payload, dict) or "entries" not in payload:
        raise ValueError(f"{path}: not a BENCH trajectory (no 'entries' key)")
    name = str(payload.get("bench") or path.stem.removeprefix("BENCH_"))
    entries = tuple(
        _entry_from_dict(normalize_entry(raw)[0]) for raw in payload["entries"]
    )
    return Bench(name=name, path=path, entries=entries)


def discover_benches(root=".") -> list[Path]:
    """All ``BENCH_*.json`` paths directly under ``root``, sorted by name."""
    return sorted(Path(root).glob("BENCH_*.json"))


def migrate_file(path) -> int:
    """Rewrite one trajectory in place with normalised entries.

    Returns the number of entries that changed (0 means the file was
    already normal — the call is idempotent).  The file is rewritten
    only when something changed.
    """
    path = Path(path)
    payload = json.loads(path.read_text())
    if not isinstance(payload, dict) or "entries" not in payload:
        raise ValueError(f"{path}: not a BENCH trajectory (no 'entries' key)")
    migrated = []
    changed_count = 0
    for raw in payload["entries"]:
        entry, changed = normalize_entry(raw)
        if "telemetry" in entry and entry["telemetry"] is not None:
            digest = canonical_digest(entry["telemetry"])
            if digest != entry["telemetry"]:
                entry["telemetry"] = digest
                changed = True
        migrated.append(entry)
        changed_count += int(changed)
    if changed_count:
        payload["entries"] = migrated
        # Same serialisation as benchmarks.record.record_bench, so a
        # migration and a fresh recording produce one consistent format.
        path.write_text(json.dumps(payload, indent=2) + "\n")
    return changed_count
