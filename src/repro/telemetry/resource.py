"""Per-process resource profiling: RSS, CPU, GC and file descriptors.

Everything here is stdlib-only (``resource``/``gc``/``os``) and purely
observational — readings come from kernel accounting and the Python
runtime, never from anything the engine computes with, so sampling can
never perturb results.  Two consumption modes:

* One-shot: :func:`resource_snapshot` returns a JSON-able dict (used
  by ``/statusz`` and merged per shard into ``SpreadResult.meta`` as
  ``max_rss``).
* Continuous: :class:`ResourceSampler` is a daemon thread publishing
  the same readings as gauges on the process telemetry registry, where
  the ``/metrics`` exporter picks them up.

``ru_maxrss`` units differ across platforms (kibibytes on Linux, bytes
on macOS); :func:`max_rss_bytes` normalises to bytes.  On platforms
without the ``resource`` module the helpers return ``None`` and the
sampler simply publishes fewer gauges.
"""

from __future__ import annotations

import gc
import os
import sys
import threading

try:  # POSIX-only; degrade gracefully elsewhere.
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    _resource = None

__all__ = [
    "max_rss_bytes",
    "current_rss_bytes",
    "cpu_seconds",
    "open_fd_count",
    "gc_collection_counts",
    "resource_snapshot",
    "ResourceSampler",
]

#: ``ru_maxrss`` is reported in bytes on macOS, kibibytes elsewhere.
_MAXRSS_SCALE = 1 if sys.platform == "darwin" else 1024


def max_rss_bytes() -> int | None:
    """Peak resident set size of this process in bytes (None if unknown)."""
    if _resource is None:  # pragma: no cover - non-POSIX platforms
        return None
    usage = _resource.getrusage(_resource.RUSAGE_SELF)
    return int(usage.ru_maxrss) * _MAXRSS_SCALE


def current_rss_bytes() -> int | None:
    """Current resident set size in bytes via ``/proc`` (None if unknown)."""
    try:
        with open("/proc/self/statm") as handle:
            fields = handle.read().split()
        return int(fields[1]) * os.sysconf("SC_PAGE_SIZE")
    except (OSError, IndexError, ValueError):
        return None


def cpu_seconds() -> tuple[float, float] | None:
    """``(user, system)`` CPU seconds consumed so far (None if unknown)."""
    if _resource is None:  # pragma: no cover - non-POSIX platforms
        return None
    usage = _resource.getrusage(_resource.RUSAGE_SELF)
    return float(usage.ru_utime), float(usage.ru_stime)


def open_fd_count() -> int | None:
    """Number of open file descriptors (None if unknown)."""
    for fd_dir in ("/proc/self/fd", "/dev/fd"):
        try:
            return len(os.listdir(fd_dir))
        except OSError:
            continue
    return None


def gc_collection_counts() -> list[int]:
    """Completed GC collections per generation, oldest stats last."""
    return [int(stat.get("collections", 0)) for stat in gc.get_stats()]


def resource_snapshot() -> dict:
    """One JSON-able reading of every resource signal (unknowns omitted)."""
    snap: dict = {"pid": os.getpid()}
    rss = current_rss_bytes()
    if rss is not None:
        snap["rss_bytes"] = rss
    peak = max_rss_bytes()
    if peak is not None:
        snap["max_rss_bytes"] = peak
    cpu = cpu_seconds()
    if cpu is not None:
        snap["cpu_user_s"], snap["cpu_system_s"] = cpu
    fds = open_fd_count()
    if fds is not None:
        snap["open_fds"] = fds
    snap["gc_collections"] = gc_collection_counts()
    return snap


class ResourceSampler:
    """Daemon thread publishing resource gauges at a fixed interval.

    Each tick calls :meth:`sample`, which reads the signals of
    :func:`resource_snapshot` and publishes them as ``<prefix>.*``
    gauges (``rss_bytes``, ``max_rss_bytes``, ``cpu_user_seconds``,
    ``cpu_system_seconds``, ``open_fds`` and a per-generation
    ``gc_collections``) on the telemetry registry.  The first sample
    fires synchronously in :meth:`start`, so a scrape immediately
    after startup already sees the gauges.  Usable as a context
    manager; stopping is idempotent.
    """

    def __init__(self, telemetry=None, *, interval_s: float = 1.0, prefix: str = "process") -> None:
        self._telemetry = telemetry
        self.interval_s = max(0.05, float(interval_s))
        self.prefix = prefix
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def _registry(self):
        if self._telemetry is not None:
            return self._telemetry
        from .core import get_telemetry

        return get_telemetry()

    def sample(self) -> dict:
        """Take one reading, publish it as gauges, and return it."""
        tel = self._registry()
        snap = resource_snapshot()
        for key in ("rss_bytes", "max_rss_bytes", "open_fds"):
            if key in snap:
                tel.gauge(f"{self.prefix}.{key}", snap[key])
        if "cpu_user_s" in snap:
            tel.gauge(f"{self.prefix}.cpu_user_seconds", snap["cpu_user_s"])
            tel.gauge(f"{self.prefix}.cpu_system_seconds", snap["cpu_system_s"])
        for gen, collections in enumerate(snap["gc_collections"]):
            tel.gauge(f"{self.prefix}.gc_collections", collections, generation=gen)
        return snap

    def start(self) -> "ResourceSampler":
        """Take an immediate sample and start the sampling thread."""
        if self._thread is not None:
            return self
        self._stop.clear()
        self.sample()
        self._thread = threading.Thread(
            target=self._run, name="repro-resource-sampler", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.sample()
            except Exception:  # pragma: no cover - never kill the host process
                pass

    def stop(self) -> None:
        """Stop the sampling thread (idempotent; safe if never started)."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
