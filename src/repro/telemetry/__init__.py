"""repro.telemetry — structured tracing and metrics for the execution stack.

A zero-dependency observation layer: the engine, the sharded runner,
and the distributed broker/worker/client all report what they are
doing — per-round progress, per-shard timings, queue lifecycle events,
cache hits — through one process-local :class:`Telemetry` registry
with pluggable sinks.  Tracing is off by default (the null sink: one
branch per instrumented site) and never perturbs results: enabling it
leaves every engine, sharded, and distributed output bit-identical.

Quickstart::

    from repro.telemetry import configure, JsonlSink

    configure(JsonlSink("trace.jsonl"), sample_every=4)
    engine.run_sharded(state, seed=7)          # instrumented end to end
    # then: repro trace summarize trace.jsonl

Or from the CLI/environment: every execution command accepts
``--telemetry PATH`` and honours ``REPRO_TELEMETRY`` /
``REPRO_TELEMETRY_SAMPLE``.
"""

from .baseline import (
    Bench,
    BenchEntry,
    canonical_digest,
    discover_benches,
    load_bench,
    migrate_file,
)
from .compare import (
    Finding,
    RegressionReport,
    Thresholds,
    compare_all,
    compare_bench,
    evaluate_gates,
    render_report,
    render_trends,
)
from .core import (
    TELEMETRY_ENV_VAR,
    TELEMETRY_SAMPLE_ENV_VAR,
    Span,
    Telemetry,
    TraceContext,
    configure,
    configure_from_env,
    get_telemetry,
    seed_id_parts,
    span_id_from,
    summarize_values,
)
from .core import format_gauge_key
from .live import (
    METRICS_PORT_ENV_VAR,
    MetricsServer,
    fetch_statusz,
    metrics_port_from_env,
    parse_prometheus,
    render_prometheus,
    render_status_panel,
)
from .resource import ResourceSampler, max_rss_bytes, resource_snapshot
from .sinks import NULL_SINK, JsonlSink, MemorySink, NullSink, load_jsonl
from .summarize import (
    SpanNode,
    TraceSummary,
    fill_bar,
    histogram_bar,
    load_trace,
    load_traces,
    render_trace,
    summarize_trace,
)

__all__ = [
    # core
    "Telemetry",
    "Span",
    "TraceContext",
    "configure",
    "configure_from_env",
    "get_telemetry",
    "span_id_from",
    "seed_id_parts",
    "summarize_values",
    "format_gauge_key",
    "TELEMETRY_ENV_VAR",
    "TELEMETRY_SAMPLE_ENV_VAR",
    # live observability plane
    "METRICS_PORT_ENV_VAR",
    "MetricsServer",
    "render_prometheus",
    "parse_prometheus",
    "metrics_port_from_env",
    "fetch_statusz",
    "render_status_panel",
    # resource profiling
    "ResourceSampler",
    "resource_snapshot",
    "max_rss_bytes",
    # sinks
    "NullSink",
    "NULL_SINK",
    "MemorySink",
    "JsonlSink",
    "load_jsonl",
    # summarize
    "SpanNode",
    "TraceSummary",
    "load_trace",
    "load_traces",
    "summarize_trace",
    "render_trace",
    "histogram_bar",
    "fill_bar",
    # baseline / compare (BENCH regression analytics)
    "Bench",
    "BenchEntry",
    "canonical_digest",
    "discover_benches",
    "load_bench",
    "migrate_file",
    "Thresholds",
    "Finding",
    "RegressionReport",
    "compare_bench",
    "compare_all",
    "evaluate_gates",
    "render_report",
    "render_trends",
]
