"""Cross-entry BENCH regression analytics: pair, diff, gate, render.

The analysis half of the perf dashboard: where
:mod:`repro.telemetry.baseline` loads and normalises the committed
``BENCH_*.json`` trajectories, this module turns successive entries
into a typed :class:`RegressionReport`:

* **Pairing** — the latest entry of a trajectory is compared against
  the most recent *comparable* earlier entry (same machine cpus, at
  least one shared row identity), or against an explicit reference
  (``--against`` takes an entry index or a timestamp prefix).  Rows
  pair by :func:`~repro.telemetry.baseline.row_key` — same
  bench/mode/n/runs/backend/machine-cpus — and rows without a
  counterpart are *skipped*, never errors.
* **Headline diff** — ``seconds`` / ``seconds_per_round`` per paired
  row, flagged when the relative change exceeds
  :attr:`Thresholds.regress_pct` *and* the absolute change exceeds
  :attr:`Thresholds.noise_floor_s` (sub-tenth-second jitter on shared
  CI containers is noise, not regression).
* **Digest diff** — the attached telemetry digests are flattened to
  dotted paths; latency-like summaries (per-round percentiles, shard
  wall, queue wait/exec, shard skew) flag on relative regression over
  a tiny absolute floor, and error-ish counters (errors, requeues,
  rejects, fallbacks) flag on any increase.
* **Gates** — the per-bench one-off assertions (≥3x sharding speedup
  on 4+ cpus, ≥10x numba kernels, <5% resilience overhead) live here
  as :func:`evaluate_gates`, so the bench scripts and the CI
  ``bench-regress`` leg share one implementation.

Surfaced as ``repro bench compare / report / migrate``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .baseline import (
    HEADLINE_KEYS,
    Bench,
    BenchEntry,
    load_bench,
    row_key,
)
from .summarize import fill_bar, histogram_bar

__all__ = [
    "Thresholds",
    "Finding",
    "RegressionReport",
    "compare_bench",
    "compare_all",
    "evaluate_gates",
    "load_benches",
    "render_report",
    "render_trends",
    "resolve_against",
    "SHARDING_SPEEDUP_FLOOR",
    "SHARDING_MIN_CPUS",
    "KERNEL_SPEEDUP_FLOOR",
    "KERNEL_GATE_N",
    "RESILIENCE_OVERHEAD_MAX",
    "LIVE_OVERHEAD_MAX",
]

#: Sharded execution must beat the batched baseline by this factor...
SHARDING_SPEEDUP_FLOOR = 3.0
#: ...but only on machines with at least this many CPUs (a 1-CPU
#: container *loses* to serial and the gate would be noise).
SHARDING_MIN_CPUS = 4
#: The numba cobra stepper must beat numpy by this factor...
KERNEL_SPEEDUP_FLOOR = 10.0
#: ...at problem sizes at least this large (JIT warm-up dominates below).
KERNEL_GATE_N = 100_000
#: An inert resilience plan may cost at most this fraction of runtime.
RESILIENCE_OVERHEAD_MAX = 0.05
#: A running metrics exporter + resource sampler may cost at most this
#: fraction of runtime over the same run with the live plane off.
LIVE_OVERHEAD_MAX = 0.05

#: Substrings marking a counter whose *increase* is a regression.
_WORSE_COUNTERS = ("error", "requeue", "reject", "fallback", "fastfail", "fault")


@dataclass(frozen=True)
class Thresholds:
    """Regression thresholds and noise floors for the comparator.

    ``regress_pct`` / ``noise_floor_s`` govern headline seconds (both
    must be exceeded to flag); ``digest_regress_pct`` /
    ``digest_noise_floor`` govern latency-like digest paths.  The 0.1s
    seconds floor is deliberate: the committed smoke trajectories
    jitter ±50% at the 0.03–0.15s scale across CI containers, and a
    sub-tenth-second absolute change is never a real regression.
    """

    regress_pct: float = 20.0
    noise_floor_s: float = 0.1
    digest_regress_pct: float = 25.0
    digest_noise_floor: float = 1e-3


@dataclass(frozen=True)
class Finding:
    """One comparator observation (a regression, improvement, or gate)."""

    bench: str
    kind: str  # "seconds" | "digest" | "counter" | "gate"
    key: str
    before: float | None
    after: float | None
    change_pct: float | None
    regressed: bool
    note: str = ""


@dataclass
class RegressionReport:
    """A typed comparison outcome: findings plus pairing bookkeeping."""

    findings: list = field(default_factory=list)
    compared: int = 0
    skipped: list = field(default_factory=list)

    @property
    def regressions(self) -> list:
        """The findings that actually flag (drive the nonzero exit)."""
        return [f for f in self.findings if f.regressed]

    @property
    def ok(self) -> bool:
        """True when nothing regressed."""
        return not self.regressions

    def merge(self, other: "RegressionReport") -> "RegressionReport":
        """Fold another report into this one (returns self)."""
        self.findings.extend(other.findings)
        self.compared += other.compared
        self.skipped.extend(other.skipped)
        return self


def _fmt_key(key: tuple) -> str:
    return " ".join(f"{k}={v}" for k, v in key) or "(no parameters)"


def resolve_against(
    bench: Bench, against: str = "last"
) -> tuple[BenchEntry, BenchEntry] | None:
    """Pick the ``(before, after)`` entry pair for one trajectory.

    ``after`` is always the latest entry.  ``against="last"`` selects
    the most recent earlier entry recorded on the same cpu count that
    shares at least one row identity; an integer (negative allowed)
    indexes ``bench.entries``; any other string matches a timestamp
    prefix.  Returns None when no comparable pair exists (a
    single-entry trajectory, a machine change) — a *skip*, not an
    error.
    """
    entries = bench.entries
    if len(entries) < 2:
        return None
    after = entries[-1]
    if against == "last":
        after_keys = set(after.row_map())
        for candidate in reversed(entries[:-1]):
            if candidate.cpus != after.cpus:
                continue
            if after_keys & set(candidate.row_map()):
                return candidate, after
        return None
    try:
        index = int(against)
    except ValueError:
        matches = [
            e for e in entries[:-1] if e.timestamp.startswith(str(against))
        ]
        if not matches:
            return None
        return matches[-1], after
    try:
        before = entries[:-1][index] if index >= 0 else entries[index - 1]
    except IndexError:
        return None
    return before, after


def _diff_value(
    report: RegressionReport,
    bench: str,
    kind: str,
    key: str,
    before,
    after,
    *,
    pct: float,
    floor: float,
) -> None:
    """Diff one paired numeric value into the report (may add a finding)."""
    if before is None or after is None:
        return
    before = float(before)
    after = float(after)
    if before <= 0:
        return
    delta = after - before
    change_pct = delta / before * 100.0
    if delta > floor and change_pct > pct:
        report.findings.append(
            Finding(
                bench=bench,
                kind=kind,
                key=key,
                before=before,
                after=after,
                change_pct=change_pct,
                regressed=True,
                note=f"+{change_pct:.1f}% (threshold {pct:g}%, floor {floor:g})",
            )
        )
    elif -delta > floor and change_pct < -pct:
        report.findings.append(
            Finding(
                bench=bench,
                kind=kind,
                key=key,
                before=before,
                after=after,
                change_pct=change_pct,
                regressed=False,
                note=f"improved {change_pct:.1f}%",
            )
        )


def _flatten(obj, prefix: str = "") -> dict[str, float]:
    """Flatten nested digest dicts to dotted-path → float leaves."""
    out: dict[str, float] = {}
    if isinstance(obj, dict):
        for key in sorted(obj, key=str):
            out.update(_flatten(obj[key], f"{prefix}{key}."))
    elif isinstance(obj, bool):
        pass
    elif isinstance(obj, (int, float)) and obj == obj:  # skip NaN
        out[prefix[:-1]] = float(obj)
    return out


def _latency_path(path: str) -> bool:
    """Is this digest path a latency-like summary leaf worth gating?

    Percentile/mean/max leaves of histograms whose name mentions
    seconds, wall or queue wait/exec — plus shard-skew scalars.  Counts
    and occupancy summaries are excluded: bigger is not slower.
    """
    if path.endswith("skew"):
        return True
    head, _, leaf = path.rpartition(".")
    if leaf not in ("p50", "p90", "p99", "mean", "max"):
        return False
    return (
        "seconds" in head
        or "wall" in head
        or ".wait" in head
        or ".exec" in head
        or head.endswith("_s")
    )


def _compare_digests(
    report: RegressionReport,
    bench: str,
    before: BenchEntry,
    after: BenchEntry,
    thresholds: Thresholds,
) -> None:
    if not before.telemetry or not after.telemetry:
        if after.telemetry and not before.telemetry:
            report.skipped.append(
                f"{bench}: baseline entry has no telemetry digest"
            )
        return
    flat_before = _flatten(before.telemetry)
    flat_after = _flatten(after.telemetry)
    for path, value in flat_after.items():
        prev = flat_before.get(path)
        if prev is None:
            continue
        if _latency_path(path):
            _diff_value(
                report,
                bench,
                "digest",
                path,
                prev,
                value,
                pct=thresholds.digest_regress_pct,
                floor=thresholds.digest_noise_floor,
            )
        elif path.startswith("counters.") and any(
            marker in path for marker in _WORSE_COUNTERS
        ):
            if value > prev:
                report.findings.append(
                    Finding(
                        bench=bench,
                        kind="counter",
                        key=path,
                        before=prev,
                        after=value,
                        change_pct=(
                            (value - prev) / prev * 100.0 if prev else None
                        ),
                        regressed=True,
                        note="error-class counter increased",
                    )
                )


def compare_bench(
    bench: Bench,
    *,
    against: str = "last",
    thresholds: Thresholds | None = None,
) -> RegressionReport:
    """Compare one trajectory's latest entry against its baseline."""
    thresholds = thresholds or Thresholds()
    report = RegressionReport()
    pair = resolve_against(bench, against)
    if pair is None:
        report.skipped.append(
            f"{bench.name}: no comparable baseline entry (against={against!r})"
        )
        return report
    before, after = pair
    report.compared += 1
    before_rows = before.row_map()
    for row in after.rows:
        key = row_key(row)
        prev = before_rows.get(key)
        if prev is None:
            report.skipped.append(
                f"{bench.name}: no baseline row for {_fmt_key(key)}"
            )
            continue
        for metric in HEADLINE_KEYS:
            if metric in row and metric in prev:
                _diff_value(
                    report,
                    bench.name,
                    "seconds",
                    f"{metric} {_fmt_key(key)}",
                    prev[metric],
                    row[metric],
                    pct=thresholds.regress_pct,
                    floor=thresholds.noise_floor_s,
                )
    _compare_digests(report, bench.name, before, after, thresholds)
    return report


def evaluate_gates(bench: Bench) -> list[Finding]:
    """The per-bench absolute gates, evaluated on the latest entry.

    Migrated from the bench scripts' inline assertions so every future
    entry inherits them: sharding speedup (cpus-gated), kernel numba
    speedup (skipped when numba was unavailable at record time), and
    resilience inert-plan overhead.  Passing gates yield non-regressed
    findings so reports show them; inapplicable gates yield nothing.
    """
    entry = bench.latest
    if entry is None:
        return []
    findings: list[Finding] = []

    def gate(key: str, value, limit, ok: bool, note: str) -> None:
        findings.append(
            Finding(
                bench=bench.name,
                kind="gate",
                key=key,
                before=float(limit),
                after=None if value is None else float(value),
                change_pct=None,
                regressed=not ok,
                note=note,
            )
        )

    if bench.name == "sharding":
        cpus = entry.cpus
        if cpus is not None and cpus >= SHARDING_MIN_CPUS:
            speedups = [
                row["speedup_vs_batch"]
                for row in entry.rows
                if row.get("speedup_vs_batch") is not None
            ]
            best = max(speedups) if speedups else None
            gate(
                f"sharded speedup >= {SHARDING_SPEEDUP_FLOOR:g}x",
                best,
                SHARDING_SPEEDUP_FLOOR,
                best is not None and best >= SHARDING_SPEEDUP_FLOOR,
                f"best speedup {best!r} on {cpus} cpus",
            )
    elif bench.name == "kernels":
        rows = [
            row
            for row in entry.rows
            if row.get("backend") == "numba"
            and row.get("rule") == "cobra"
            and int(row.get("n", 0)) >= KERNEL_GATE_N
            and row.get("speedup_vs_numpy") is not None
        ]
        if rows:
            best = max(row["speedup_vs_numpy"] for row in rows)
            gate(
                f"numba cobra speedup >= {KERNEL_SPEEDUP_FLOOR:g}x "
                f"at n>={KERNEL_GATE_N}",
                best,
                KERNEL_SPEEDUP_FLOOR,
                best >= KERNEL_SPEEDUP_FLOOR,
                f"best speedup {best:g}x",
            )
    elif bench.name == "resilience":
        overhead = entry.meta.get("overhead_fraction")
        if overhead is not None:
            gate(
                f"inert-plan overhead < {RESILIENCE_OVERHEAD_MAX:.0%}",
                overhead,
                RESILIENCE_OVERHEAD_MAX,
                float(overhead) < RESILIENCE_OVERHEAD_MAX,
                f"overhead {float(overhead):.2%}",
            )
        live = entry.meta.get("live_overhead_fraction")
        if live is not None:
            gate(
                f"live exporter overhead < {LIVE_OVERHEAD_MAX:.0%}",
                live,
                LIVE_OVERHEAD_MAX,
                float(live) < LIVE_OVERHEAD_MAX,
                f"overhead {float(live):.2%}",
            )
    return findings


def compare_all(
    paths,
    *,
    against: str = "last",
    thresholds: Thresholds | None = None,
    gates: bool = True,
) -> RegressionReport:
    """Compare every trajectory in ``paths`` into one merged report."""
    report = RegressionReport()
    for path in paths:
        bench = load_bench(path)
        report.merge(
            compare_bench(bench, against=against, thresholds=thresholds)
        )
        if gates:
            report.findings.extend(evaluate_gates(bench))
    return report


def render_report(report: RegressionReport) -> str:
    """Render a comparison report as text (regressions first)."""
    lines = [
        f"BENCH comparison: {report.compared} pair(s) compared, "
        f"{len(report.findings)} finding(s), "
        f"{len(report.regressions)} regression(s)"
    ]
    ordered = sorted(report.findings, key=lambda f: not f.regressed)
    for finding in ordered:
        tag = "REGRESS" if finding.regressed else "ok"
        values = ""
        if finding.kind == "gate":
            # For gates, ``before`` holds the limit, ``after`` the value.
            if finding.after is not None:
                values = f": {finding.after:g} (limit {finding.before:g})"
        elif finding.before is not None and finding.after is not None:
            values = f": {finding.before:g} -> {finding.after:g}"
        elif finding.after is not None:
            values = f": {finding.after:g}"
        lines.append(
            f"  [{tag:7}] {finding.bench} {finding.kind} "
            f"{finding.key}{values}  ({finding.note})"
        )
    for reason in report.skipped:
        lines.append(f"  [skip   ] {reason}")
    if not report.findings and not report.skipped:
        lines.append("  (nothing to compare)")
    return "\n".join(lines)


def render_trends(benches) -> str:
    """ASCII trend tables: per row identity, seconds across entries.

    One block per trajectory; each paired row identity lists its
    headline seconds entry by entry with a proportional
    :func:`~repro.telemetry.summarize.fill_bar`, and the latest
    telemetry digest's latency histograms render with
    :func:`~repro.telemetry.summarize.histogram_bar`.
    """
    lines: list[str] = []
    for bench in benches:
        lines.append(f"{bench.name} — {len(bench.entries)} entries ({bench.path.name})")
        series: dict[tuple, list[tuple[str, float]]] = {}
        for entry in bench.entries:
            for row in entry.rows:
                for metric in HEADLINE_KEYS:
                    if metric in row and row[metric] is not None:
                        series.setdefault(row_key(row), []).append(
                            (entry.timestamp, float(row[metric]))
                        )
                        break
        for key, samples in series.items():
            lines.append(f"  {_fmt_key(key)}")
            peak = max(value for _, value in samples)
            for timestamp, value in samples:
                bar = fill_bar(value, peak, width=24)
                lines.append(f"    {timestamp:25} {value:10.4f}s  {bar}")
        latest = bench.latest
        if latest is not None and latest.telemetry:
            summaries: dict[str, dict] = {}
            for path, stats in sorted(latest.telemetry.items()):
                if path == "histograms" and isinstance(stats, dict):
                    summaries.update(
                        {k: v for k, v in sorted(stats.items())}
                    )
                else:
                    summaries[path] = stats
            shown = False
            for path, stats in summaries.items():
                if (
                    isinstance(stats, dict)
                    and {"min", "max", "p50", "p90", "p99"} <= set(stats)
                ):
                    if not shown:
                        lines.append("  latest digest (5=p50 9=p90 +=p99):")
                        shown = True
                    lines.append(
                        f"    {path:26} [{histogram_bar(stats)}] "
                        f"p99={stats['p99']:.4g}"
                    )
        lines.append("")
    return "\n".join(lines).rstrip("\n")


def load_benches(paths) -> list[Bench]:
    """Load several trajectories (convenience for the CLI/report path)."""
    return [load_bench(path) for path in paths]
