"""Telemetry sinks: where emitted records go.

A sink is anything with ``write(record: dict)`` / ``flush()`` /
``close()``.  Three implementations cover every deployment mode:

* :class:`NullSink` — the always-on default.  Its singleton,
  :data:`NULL_SINK`, is what :class:`~repro.telemetry.Telemetry`
  compares against to decide whether tracing is enabled, so an
  instrumented hot path costs exactly one attribute load and one
  identity branch when telemetry is off.
* :class:`MemorySink` — an in-process record list, for tests and for
  benchmark harnesses that want to summarise a run without touching
  the filesystem.
* :class:`JsonlSink` — one JSON object per line, append-mode, written
  under a lock so the worker heartbeat thread and the main loop never
  interleave partial lines.  The file format is the input of
  ``repro trace summarize`` and of
  :func:`repro.telemetry.summarize.load_trace`.

Records are plain JSON-able dicts by construction (the
:class:`Telemetry` emitters only put scalars and short strings in
them), so ``json.dumps`` never needs a custom encoder.
"""

from __future__ import annotations

import io
import json
import threading
from pathlib import Path
from typing import Iterator

__all__ = [
    "NullSink",
    "NULL_SINK",
    "MemorySink",
    "JsonlSink",
    "load_jsonl",
]


class NullSink:
    """Discard every record (the default sink: telemetry disabled)."""

    def write(self, record: dict) -> None:
        """Drop the record."""

    def flush(self) -> None:
        """Nothing buffered, nothing to do."""

    def close(self) -> None:
        """Nothing open, nothing to do."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NullSink()"


#: The shared disabled sink.  ``Telemetry.enabled`` is an identity
#: check against this object, so "telemetry off" is one branch.
NULL_SINK = NullSink()


class MemorySink:
    """Collect records in a list (tests, in-process summaries)."""

    def __init__(self) -> None:
        self.records: list[dict] = []

    def write(self, record: dict) -> None:
        """Append the record."""
        self.records.append(record)

    def flush(self) -> None:
        """Records are already in memory."""

    def close(self) -> None:
        """Keep the records readable after close."""

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MemorySink({len(self.records)} records)"


class JsonlSink:
    """Append records to a file, one JSON object per line.

    The file is opened lazily on the first write (so configuring
    telemetry never creates empty trace files) and appended to, so
    several commands may share one trace path — ``repro trace
    summarize`` groups by process/span.  Writes are line-buffered and
    serialised under a lock: a record is either fully on disk or not
    at all, never interleaved.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._file: io.TextIOWrapper | None = None
        self._lock = threading.Lock()

    def write(self, record: dict) -> None:
        """Serialise one record as a JSON line."""
        line = json.dumps(record, separators=(",", ":"), allow_nan=False)
        with self._lock:
            if self._file is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._file = self.path.open("a", buffering=1)
            self._file.write(line + "\n")

    def flush(self) -> None:
        """Flush the underlying file (no-op before the first write)."""
        with self._lock:
            if self._file is not None:
                self._file.flush()

    def close(self) -> None:
        """Close the file; a later write transparently reopens it."""
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JsonlSink({str(self.path)!r})"


def load_jsonl(path) -> Iterator[dict]:
    """Yield the records of a JSONL trace file, in order.

    Blank lines are skipped; a malformed line raises ``ValueError``
    naming the line number (the CI smoke leg asserts traces stay
    valid) — with one deliberate exception: a malformed *final* line
    with no trailing newline is the half-written record of a file
    still being appended to (live tooling reads traces while a run is
    in flight), so it is silently dropped rather than treated as
    corruption.
    """
    with Path(path).open() as handle:
        lines = handle.readlines()
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line:
            continue
        partial_tail = lineno == len(lines) and not raw.endswith("\n")
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if partial_tail:
                return
            raise ValueError(
                f"{path}: line {lineno} is not valid JSON: {exc}"
            ) from None
        if not isinstance(record, dict):
            if partial_tail:
                return
            raise ValueError(
                f"{path}: line {lineno} is not a JSON object"
            )
        yield record
