"""The live observability plane: Prometheus exporter, HTTP endpoints, panels.

Three layers, all stdlib-only:

* **Exposition** — :func:`render_prometheus` maps the process
  telemetry registry (counters, gauges, histogram summaries) plus
  caller-supplied extras to Prometheus text format 0.0.4: dotted names
  normalised to underscores, histogram percentiles exported as
  ``_p50``/``_p90``/``_p99`` gauges alongside ``_count``/``_sum``.
  :func:`parse_prometheus` is the strict round-trip parser the tests
  and CI scrape leg validate with.
* **Serving** — :class:`MetricsServer` embeds a daemon
  ``http.server`` thread (``--metrics-port`` / ``REPRO_METRICS_PORT``)
  exposing ``/metrics`` (exposition text), ``/healthz`` (JSON
  liveness, 503 when degraded) and ``/statusz`` (one JSON frame of
  queue/worker/cache/breaker/resource state).
* **Rendering** — :func:`render_status_panel` formats one ``/statusz``
  frame as a terminal panel with the shared
  :func:`~repro.telemetry.summarize.histogram_bar` /
  :func:`~repro.telemetry.summarize.fill_bar` renderers; it is the
  single layout used by both ``repro status`` and ``repro top``.

Everything here only *reads* state — serving metrics never perturbs
results, and with no server started the exporter costs nothing.
"""

from __future__ import annotations

import json
import os
import re
import threading
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .core import get_telemetry
from .summarize import fill_bar, histogram_bar

__all__ = [
    "METRICS_PORT_ENV_VAR",
    "normalise_metric_name",
    "render_prometheus",
    "parse_prometheus",
    "MetricsServer",
    "metrics_port_from_env",
    "fetch_statusz",
    "latency_line",
    "human_bytes",
    "render_status_panel",
]

#: Environment variable naming the metrics port (CLI ``--metrics-port``
#: overrides it; empty/``0``/``off`` disables the server).
METRICS_PORT_ENV_VAR = "REPRO_METRICS_PORT"

_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def normalise_metric_name(name: str) -> str:
    """Map a dotted repro metric name onto the Prometheus grammar.

    Dots and any other character outside ``[a-zA-Z0-9_:]`` become
    underscores; a leading digit gets an underscore prefix.
    """
    name = _NAME_BAD.sub("_", str(name))
    if not name or name[0].isdigit():
        name = "_" + name
    return name


def _render_labels(labels) -> str:
    """Render a label mapping/item-tuple as ``{k="v",...}`` (or '')."""
    if not labels:
        return ""
    items = labels.items() if isinstance(labels, dict) else labels
    body = ",".join(
        f'{normalise_metric_name(str(k))}="{_escape_label(str(v))}"'
        for k, v in sorted((str(k), str(v)) for k, v in items)
    )
    return "{" + body + "}"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value) -> str:
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _gauge_series(gauges) -> dict[str, list[tuple[tuple, float]]]:
    """Group registry gauges ``{(name, label_items): v}`` by name."""
    series: dict[str, list[tuple[tuple, float]]] = {}
    for (name, labels), value in gauges.items():
        series.setdefault(name, []).append((tuple(labels), float(value)))
    return series


def render_prometheus(telemetry=None, *, extra=None) -> str:
    """Render the registry (plus ``extra``) as Prometheus text 0.0.4.

    ``extra`` optionally supplies role-specific families the registry
    does not hold (the broker's queue depths, for instance) as
    ``{"counters": {name: value}, "gauges": {name: value |
    [(labels, value), ...]}, "histograms": {name: summary}}``; on a
    name collision the extra entry wins.  Histogram summaries (the
    shape of :func:`~repro.telemetry.core.summarize_values`) become
    ``_p50``/``_p90``/``_p99`` gauges plus ``_count``/``_sum``
    counters, the sum reconstructed as ``mean * count``.
    """
    tel = get_telemetry() if telemetry is None else telemetry
    extra = extra or {}
    counters = dict(tel.counters())
    counters.update(extra.get("counters") or {})
    gauges = _gauge_series(tel.gauges())
    for name, value in (extra.get("gauges") or {}).items():
        if isinstance(value, (int, float)):
            gauges[name] = [((), float(value))]
        else:
            gauges[name] = [
                (tuple(sorted((str(k), str(v)) for k, v in labels.items())), float(val))
                for labels, val in value
            ]
    histograms = {
        name: summary
        for name, summary in tel.snapshot()["histograms"].items()
        if summary
    }
    histograms.update(
        {k: v for k, v in (extra.get("histograms") or {}).items() if v}
    )

    lines: list[str] = []
    for name in sorted(counters):
        metric = normalise_metric_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(counters[name])}")
    for name in sorted(gauges):
        metric = normalise_metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        for labels, value in sorted(gauges[name]):
            lines.append(f"{metric}{_render_labels(labels)} {_format_value(value)}")
    for name in sorted(histograms):
        summary = histograms[name]
        metric = normalise_metric_name(name)
        for q in ("p50", "p90", "p99"):
            lines.append(f"# TYPE {metric}_{q} gauge")
            lines.append(f"{metric}_{q} {_format_value(summary[q])}")
        count = int(summary["count"])
        lines.append(f"# TYPE {metric}_count counter")
        lines.append(f"{metric}_count {count}")
        lines.append(f"# TYPE {metric}_sum counter")
        lines.append(f"{metric}_sum {_format_value(summary['mean'] * count)}")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> dict[str, dict[tuple, float]]:
    """Strictly parse exposition text back to ``{name: {labels: value}}``.

    The round-trip validator for :func:`render_prometheus`: every line
    must be blank, a ``#`` comment, or a well-formed sample whose value
    parses as a float and whose label block (if any) is fully consumed
    by ``key="value"`` pairs.  Malformed input raises ``ValueError``
    naming the offending line.
    """
    families: dict[str, dict[tuple, float]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: not a valid sample: {line!r}")
        name, label_block, raw_value = match.groups()
        labels: tuple = ()
        if label_block:
            pairs = _LABEL_RE.findall(label_block)
            consumed = ",".join(f'{k}="{v}"' for k, v in pairs)
            if consumed != label_block.rstrip(","):
                raise ValueError(
                    f"line {lineno}: malformed label block: {{{label_block}}}"
                )
            labels = tuple(sorted(pairs))
        try:
            value = float(raw_value)
        except ValueError:
            raise ValueError(
                f"line {lineno}: not a float value: {raw_value!r}"
            ) from None
        families.setdefault(name, {})[labels] = value
    return families


def metrics_port_from_env(override=None) -> int | None:
    """Resolve the metrics port: CLI ``override`` wins over the env var.

    ``REPRO_METRICS_PORT`` empty/``0``/``off`` (the repo's usual
    disable spellings) means no server; an explicit override of ``0``
    asks for an ephemeral port.  Returns ``None`` when disabled.
    """
    if override is not None:
        return int(override)
    spec = os.environ.get(METRICS_PORT_ENV_VAR)
    if spec is None:
        return None
    spec = spec.strip().lower()
    if spec in ("", "0", "off"):
        return None
    try:
        return int(spec)
    except ValueError:
        raise ValueError(
            f"{METRICS_PORT_ENV_VAR} must be an integer port, got {spec!r}"
        ) from None


def _breaker_gauges() -> list[tuple[dict, float]]:
    """Circuit-breaker states as labelled gauge samples (lazy import)."""
    from ..resilience.retry import BREAKER_STATE_VALUES, breaker_states

    return [
        ({"key": key}, BREAKER_STATE_VALUES[state])
        for key, state in sorted(breaker_states().items())
    ]


class MetricsServer:
    """A daemon HTTP thread serving ``/metrics``, ``/healthz``, ``/statusz``.

    ``status``/``health``/``extra`` are optional zero-argument
    callables supplying the ``/statusz`` JSON frame, the ``/healthz``
    verdict (a dict whose ``ok`` key picks 200 vs 503) and extra
    exposition families for ``/metrics``; with none supplied the
    server reports the process registry and resource snapshot alone.
    Circuit-breaker states are always merged into ``/metrics`` as a
    ``retry_breaker_state`` gauge.  A callback that raises yields a
    500 response — the serving thread never dies with it.  Port ``0``
    binds an ephemeral port, readable from :attr:`port` after
    :meth:`start`.  Usable as a context manager.
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        telemetry=None,
        status=None,
        health=None,
        extra=None,
    ) -> None:
        self.host = host
        self.port = int(port)
        self._telemetry = telemetry
        self._status = status
        self._health = health
        self._extra = extra
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> str:
        """``host:port`` of the bound server (port 0 before start)."""
        return f"{self.host}:{self.port}"

    def _metrics_text(self) -> str:
        extra = dict(self._extra() or {}) if self._extra is not None else {}
        gauges = dict(extra.get("gauges") or {})
        gauges.setdefault("retry.breaker.state", _breaker_gauges())
        extra["gauges"] = gauges
        return render_prometheus(self._telemetry, extra=extra)

    def _health_payload(self) -> dict:
        if self._health is not None:
            payload = dict(self._health())
        else:
            payload = {"ok": True}
        payload.setdefault("ok", True)
        return payload

    def _status_payload(self) -> dict:
        if self._status is not None:
            return dict(self._status())
        from .resource import resource_snapshot

        tel = get_telemetry() if self._telemetry is None else self._telemetry
        return {
            "role": "process",
            "pid": os.getpid(),
            "telemetry": tel.snapshot(),
            "resources": resource_snapshot(),
        }

    def start(self) -> "MetricsServer":
        """Bind the port and start serving (idempotent)."""
        if self._server is not None:
            return self
        outer = self

        class _Handler(BaseHTTPRequestHandler):
            """Routes the three observability endpoints."""

            def log_message(self, fmt, *args):  # noqa: ARG002
                """Silence per-request stderr logging."""

            def _send(self, code: int, content_type: str, body: bytes) -> None:
                self.send_response(code)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self):  # noqa: N802 - http.server API
                """Serve /metrics, /healthz or /statusz (404 otherwise)."""
                path = self.path.split("?", 1)[0]
                try:
                    if path == "/metrics":
                        body = outer._metrics_text().encode("utf-8")
                        self._send(
                            200,
                            "text/plain; version=0.0.4; charset=utf-8",
                            body,
                        )
                    elif path == "/healthz":
                        payload = outer._health_payload()
                        code = 200 if payload.get("ok") else 503
                        self._send(
                            code,
                            "application/json",
                            json.dumps(payload, default=str).encode("utf-8"),
                        )
                    elif path == "/statusz":
                        self._send(
                            200,
                            "application/json",
                            json.dumps(
                                outer._status_payload(), default=str
                            ).encode("utf-8"),
                        )
                    else:
                        self._send(404, "text/plain", b"not found\n")
                except (BrokenPipeError, ConnectionResetError):
                    pass
                except Exception as exc:  # noqa: BLE001 - keep serving
                    try:
                        self._send(
                            500,
                            "application/json",
                            json.dumps({"error": str(exc)}).encode("utf-8"),
                        )
                    except OSError:
                        pass

        server = ThreadingHTTPServer((self.host, self.port), _Handler)
        server.daemon_threads = True
        self.port = server.server_address[1]
        self._server = server
        self._thread = threading.Thread(
            target=server.serve_forever,
            name=f"repro-metrics-{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down (idempotent; safe if never started)."""
        server = self._server
        if server is None:
            return
        server.shutdown()
        server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        self._server = None
        self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def fetch_statusz(endpoint: str, *, timeout: float = 2.0) -> dict:
    """GET and decode ``/statusz`` from ``host:port`` (or a full URL).

    Raises ``OSError`` when the endpoint is unreachable and
    ``ValueError`` when the body is not a JSON object.
    """
    base = endpoint if "://" in endpoint else f"http://{endpoint}"
    with urllib.request.urlopen(f"{base}/statusz", timeout=timeout) as response:
        body = response.read().decode("utf-8")
    payload = json.loads(body)
    if not isinstance(payload, dict):
        raise ValueError(f"{endpoint}: /statusz did not return a JSON object")
    return payload


# ----------------------------------------------------------------------
# The shared status panel (repro status + repro top)
# ----------------------------------------------------------------------

def human_bytes(n) -> str:
    """``n`` bytes as B/KiB/MiB/GiB with one decimal."""
    n = float(n)
    for unit in ("B", "KiB", "MiB"):
        if abs(n) < 1024:
            return f"{n:.0f}{unit}" if unit == "B" else f"{n:.1f}{unit}"
        n /= 1024
    return f"{n:.1f}GiB"


def latency_line(summary) -> str:
    """One line of latency percentiles from a histogram summary dict."""
    if not summary:
        return "(no samples yet)"
    return (
        f"n={summary['count']} p50={summary['p50'] * 1e3:.1f}ms "
        f"p90={summary['p90'] * 1e3:.1f}ms p99={summary['p99'] * 1e3:.1f}ms "
        f"max={summary['max'] * 1e3:.1f}ms"
    )


def _queue_lines(queue: dict, lines: list[str]) -> None:
    core = ("jobs", "pending", "leased", "done", "failed")
    parts = [f"{key}={queue.get(key, 0)}" for key in core if key in queue]
    for key in sorted(set(queue) - set(core)):
        parts.append(f"{key}={queue[key]}")
    lines.append("  queue   : " + " ".join(parts))
    shards = sum(int(queue.get(k, 0)) for k in ("pending", "leased", "done", "failed"))
    done = int(queue.get("done", 0))
    if shards:
        bar = fill_bar(done, shards, 24) or ""
        lines.append(
            f"  progress: [{bar:<24}] {done}/{shards} shard(s) done"
        )


def _metrics_lines(metrics: dict, lines: list[str]) -> None:
    lines.append(
        "  traffic : "
        f"submits={metrics.get('submits', 0)} "
        f"shards={metrics.get('shards_submitted', 0)} "
        f"leases={metrics.get('leases', 0)} "
        f"completes={metrics.get('completes', 0)} "
        f"requeues={metrics.get('requeues', 0)} "
        f"heartbeats={metrics.get('heartbeats', 0)} "
        f"errors={metrics.get('worker_errors', 0)}"
    )
    uptime = metrics.get("uptime_s")
    if uptime and uptime > 0:
        lines.append(
            "  rates   : "
            f"{metrics.get('leases', 0) / uptime:.2f} lease/s "
            f"{metrics.get('completes', 0) / uptime:.2f} complete/s "
            f"{metrics.get('requeues', 0) / uptime:.2f} requeue/s "
            f"(uptime {uptime:.0f}s)"
        )
    for label, key in (("wait", "wait_s"), ("exec", "exec_s")):
        summary = metrics.get(key)
        line = f"  {label:8}: {latency_line(summary)}"
        if summary:
            line += f" [{histogram_bar(summary, 16)}]"
        lines.append(line)
    workers = metrics.get("workers") or {}
    peak_tp = max(
        (float(s.get("throughput", 0.0)) for s in workers.values()), default=0.0
    )
    for worker_id, stats in sorted(workers.items()):
        tp = float(stats.get("throughput", 0.0))
        bar = fill_bar(tp, peak_tp, 10)
        line = (
            f"  {worker_id:8}: completed={stats.get('completed', 0)} "
            f"busy={stats.get('busy_s', 0.0):.2f}s "
            f"runs={stats.get('runs', 0)} rounds={stats.get('rounds', 0)} "
            f"throughput={tp:.2f} shard/s"
        )
        rss = stats.get("max_rss")
        if rss:
            line += f" rss={human_bytes(rss)}"
        if bar:
            line += f" [{bar:<10}]"
        lines.append(line)


def render_status_panel(status: dict, *, title=None, stale_s=None) -> str:
    """Format one ``/statusz`` frame (or adapted broker reply) as a panel.

    The one layout both ``repro status`` and ``repro top`` print.  All
    sections are optional: ``queue`` (ledger counts + progress bar),
    ``metrics`` (a :class:`~repro.distributed.broker.QueueMetrics`
    snapshot: traffic, rates, wait/exec percentiles with
    :func:`histogram_bar`, per-worker throughput/RSS with
    :func:`fill_bar`), ``cache``, ``breakers``, ``counters``,
    ``resources`` and ``health``.  ``stale_s`` marks the panel as
    rendered from the last reachable frame.
    """
    role = status.get("role", "endpoint")
    addr = status.get("address") or status.get("endpoint") or ""
    head = title if title is not None else f"{role} {addr}".strip()
    if status.get("pid") is not None:
        head += f" (pid {status['pid']})"
    if stale_s is not None:
        head += f"  [STALE {stale_s:.1f}s — endpoint unreachable]"
    lines = [head]
    health = status.get("health")
    if health is not None and not health.get("ok", True):
        detail = health.get("detail") or health
        lines.append(f"  health  : DEGRADED ({detail})")
    if "queue" in status:
        _queue_lines(status["queue"], lines)
    if status.get("metrics"):
        _metrics_lines(status["metrics"], lines)
    cache = status.get("cache")
    if cache is not None:
        if not cache.get("enabled"):
            lines.append("  cache   : disabled (REPRO_CACHE_DIR)")
        else:
            lines.append(
                f"  cache   : {cache.get('entries', 0)} entr(ies), "
                f"{cache.get('bytes', 0)} bytes at {cache.get('path', '?')}"
            )
    breakers = status.get("breakers")
    if breakers:
        rendered = " ".join(f"{k}={v}" for k, v in sorted(breakers.items()))
        lines.append(f"  breakers: {rendered}")
    counters = status.get("counters")
    if counters:
        rendered = " ".join(
            f"{k}={int(v)}" for k, v in sorted(counters.items())
        )
        lines.append(f"  counters: {rendered}")
    resources = status.get("resources")
    if resources:
        parts = []
        if "rss_bytes" in resources:
            parts.append(f"rss={human_bytes(resources['rss_bytes'])}")
        if "max_rss_bytes" in resources:
            parts.append(f"peak={human_bytes(resources['max_rss_bytes'])}")
        if "cpu_user_s" in resources:
            parts.append(
                f"cpu={resources['cpu_user_s']:.1f}u/"
                f"{resources.get('cpu_system_s', 0.0):.1f}s"
            )
        if "open_fds" in resources:
            parts.append(f"fds={resources['open_fds']}")
        gcs = resources.get("gc_collections")
        if gcs:
            parts.append("gc=" + "/".join(str(c) for c in gcs))
        if parts:
            lines.append("  process : " + " ".join(parts))
    return "\n".join(lines)
