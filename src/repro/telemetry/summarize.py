"""Trace analysis: turn JSONL telemetry streams into a text report.

The consumer side of :mod:`repro.telemetry`: ``repro trace summarize
PATH...`` loads the records a run emitted (engine spans, shard spans,
per-round points, histograms, lifecycle counters — possibly from
several processes and several per-host files) and renders

* the **span tree** — every span with wall/CPU durations and its
  end-of-span fields, children indented under parents (deterministic
  span ids plus the cross-process trace context are what stitch
  worker- and broker-process spans under the dispatching run's span);
* the **per-hop breakdown** — spans grouped by name (client engine,
  broker job, worker shards) with process counts and wall totals,
  next to the broker's queue wait/exec histograms;
* the **counters** — summed per name across processes;
* the **histograms** — count/mean/p50/p90/p99/max per name plus a
  coarse ASCII distribution, which is where per-round timing skew
  ("hot rounds") becomes visible at a glance.

Spans whose parent never appears in the stream (a worker file
summarized without its client's file, say) are *orphans*: they are
kept as extra roots and reported explicitly, never dropped.

Everything here is pure post-processing over the record dicts; it
never imports the engine, so traces can be summarised on machines
without the simulation stack warmed up.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .core import format_gauge_key, summarize_values
from .sinks import load_jsonl

__all__ = [
    "SpanNode",
    "TraceSummary",
    "load_trace",
    "load_traces",
    "summarize_trace",
    "render_trace",
    "histogram_bar",
    "fill_bar",
]


@dataclass
class SpanNode:
    """One reconstructed span: identity, timings, and children."""

    span_id: str
    name: str = "?"
    parent_id: str | None = None
    pid: int | None = None
    started: float | None = None
    wall_s: float | None = None
    cpu_s: float | None = None
    fields: dict = field(default_factory=dict)
    children: list["SpanNode"] = field(default_factory=list)
    points: int = 0


@dataclass
class TraceSummary:
    """A digested trace: span roots plus aggregated metrics.

    ``orphans`` lists spans whose recorded parent id never appeared in
    the stream — they are *also* present in ``roots`` (reported, not
    dropped).  ``hops`` groups spans by name: span count, distinct
    pids, and total/mean wall seconds per hop.
    """

    records: int
    pids: list[int]
    roots: list[SpanNode]
    counters: dict[str, float]
    histograms: dict[str, dict]
    points: dict[str, int]
    orphans: list[SpanNode] = field(default_factory=list)
    hops: dict[str, dict] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)


def load_trace(path) -> list[dict]:
    """Read a JSONL trace file into a record list (validating as it goes)."""
    return list(load_jsonl(path))


def load_traces(paths) -> list[dict]:
    """Concatenate several JSONL trace files into one record list.

    The multi-host entry point: each process (client, broker, workers
    on other machines) appends to its own file, and summarizing their
    concatenation stitches one tree via the shared deterministic span
    ids.  A missing file raises ``OSError``, a corrupt line the
    line-numbered ``ValueError`` from
    :func:`~repro.telemetry.sinks.load_jsonl`, and an *empty* file an
    explicit ``ValueError`` naming it — an empty trace is always an
    operator error (wrong path, tracing never enabled), never a report.
    """
    records: list[dict] = []
    for path in paths:
        loaded = load_trace(path)
        if not loaded:
            raise ValueError(f"{path}: trace file is empty (no records)")
        records.extend(loaded)
    return records


def summarize_trace(records) -> TraceSummary:
    """Reconstruct spans and aggregate metrics from raw records."""
    spans: dict[str, SpanNode] = {}
    counters: dict[str, float] = {}
    histograms: dict[str, list[float]] = {}
    points: dict[str, int] = {}
    gauges: dict[str, float] = {}
    pids: set[int] = set()

    def node(span_id: str) -> SpanNode:
        existing = spans.get(span_id)
        if existing is None:
            existing = spans[span_id] = SpanNode(span_id)
        return existing

    for record in records:
        kind = record.get("kind")
        name = str(record.get("name", "?"))
        pid = record.get("pid")
        if pid is not None:
            pids.add(int(pid))
        if kind == "span-start":
            span = node(str(record["span"]))
            span.name = name
            span.parent_id = record.get("parent")
            span.pid = pid
            span.started = record.get("ts")
            span.fields.update(record.get("fields") or {})
        elif kind == "span-end":
            span = node(str(record["span"]))
            span.name = name
            if span.pid is None:
                span.pid = pid
            if span.parent_id is None:
                span.parent_id = record.get("parent")
            span.wall_s = record.get("wall_s")
            span.cpu_s = record.get("cpu_s")
            span.fields.update(record.get("fields") or {})
        elif kind == "point":
            points[name] = points.get(name, 0) + 1
            parent = record.get("span")
            if parent is not None and parent in spans:
                spans[parent].points += 1
        elif kind == "counter":
            counters[name] = counters.get(name, 0) + float(record.get("value", 0))
        elif kind == "histogram":
            histograms.setdefault(name, []).append(float(record.get("value", 0)))
        elif kind == "gauge":
            labels = record.get("labels") or {}
            key = name if not labels else format_gauge_key(
                name, tuple(sorted((str(k), str(v)) for k, v in labels.items()))
            )
            gauges[key] = float(record.get("value", 0))

    roots: list[SpanNode] = []
    orphans: list[SpanNode] = []
    for span in spans.values():
        parent = spans.get(span.parent_id) if span.parent_id else None
        if parent is None or parent is span:
            roots.append(span)
            if span.parent_id and parent is not span:
                # The parent id is known but its span never appeared in
                # the stream (partial multi-host collection): keep the
                # subtree as a root and flag it, never drop it.
                orphans.append(span)
        else:
            parent.children.append(span)
    ordering = {id(s): i for i, s in enumerate(spans.values())}
    for span in spans.values():
        span.children.sort(key=lambda s: (s.started or 0.0, ordering[id(s)]))
    roots.sort(key=lambda s: (s.started or 0.0, ordering[id(s)]))

    hops: dict[str, dict] = {}
    for span in spans.values():
        hop = hops.setdefault(
            span.name, {"spans": 0, "pids": set(), "wall": [], "orphans": 0}
        )
        hop["spans"] += 1
        if span.pid is not None:
            hop["pids"].add(int(span.pid))
        if span.wall_s is not None:
            hop["wall"].append(float(span.wall_s))
    for span in orphans:
        hops[span.name]["orphans"] += 1
    hop_summary = {
        name: {
            "spans": hop["spans"],
            "pids": len(hop["pids"]),
            "orphans": hop["orphans"],
            "wall_total_s": sum(hop["wall"]) if hop["wall"] else None,
            "wall_mean_s": (
                sum(hop["wall"]) / len(hop["wall"]) if hop["wall"] else None
            ),
        }
        for name, hop in sorted(hops.items())
    }

    return TraceSummary(
        records=len(records),
        pids=sorted(pids),
        roots=roots,
        counters=counters,
        histograms={
            name: summarize_values(values)
            for name, values in histograms.items()
        },
        points=points,
        orphans=orphans,
        hops=hop_summary,
        gauges=gauges,
    )


def _format_seconds(value) -> str:
    if value is None:
        return "?"
    if value < 1e-3:
        return f"{value * 1e6:.0f}us"
    if value < 1.0:
        return f"{value * 1e3:.1f}ms"
    return f"{value:.2f}s"


def _format_fields(fields: dict, limit: int = 6) -> str:
    shown = []
    for key in sorted(fields):
        value = fields[key]
        if isinstance(value, float):
            value = f"{value:.4g}"
        shown.append(f"{key}={value}")
        if len(shown) >= limit:
            break
    return " ".join(shown)


def _render_span(span: SpanNode, depth: int, lines: list[str]) -> None:
    indent = "  " * depth
    timing = f"wall={_format_seconds(span.wall_s)} cpu={_format_seconds(span.cpu_s)}"
    extras = _format_fields(span.fields)
    tail = f"  [{span.points} round events]" if span.points else ""
    lines.append(
        f"{indent}- {span.name} ({timing})"
        + (f"  {extras}" if extras else "")
        + tail
    )
    for child in span.children:
        _render_span(child, depth + 1, lines)


def histogram_bar(summary: dict, width: int = 24) -> str:
    """A crude density bar: where the mass sits between min and max.

    ``5``/``9``/``+`` mark p50/p90/p99 between the distribution's min
    and max.  Shared with the BENCH trend report
    (:func:`repro.telemetry.compare.render_trends`).
    """
    lo, hi = summary["min"], summary["max"]
    if hi <= lo:
        return "#" * width
    marks = []
    for q in ("p50", "p90", "p99"):
        pos = (summary[q] - lo) / (hi - lo)
        marks.append(min(width - 1, max(0, int(pos * (width - 1)))))
    bar = ["."] * width
    for pos, glyph in zip(marks, "59+"):
        bar[pos] = glyph
    return "".join(bar)


def fill_bar(value: float, max_value: float, width: int = 24) -> str:
    """A proportional fill bar: ``value`` as a fraction of ``max_value``.

    The magnitude sibling of :func:`histogram_bar`, used by the BENCH
    trend tables to compare successive entries' headline seconds.
    """
    if max_value <= 0 or value is None or value <= 0:
        return ""
    frac = min(1.0, float(value) / float(max_value))
    return "#" * max(1, int(round(frac * width)))


def render_trace(records) -> str:
    """Render the full text report for a record list (or a trace path)."""
    if isinstance(records, (str, bytes)) or hasattr(records, "__fspath__"):
        records = load_trace(records)
    summary = summarize_trace(records)
    lines = [
        f"trace: {summary.records} records from "
        f"{len(summary.pids)} process(es)"
    ]

    lines.append("")
    lines.append("spans:")
    if summary.roots:
        for root in summary.roots:
            _render_span(root, 1, lines)
    else:
        lines.append("  (none)")

    if summary.orphans:
        lines.append("")
        lines.append(
            f"orphan spans ({len(summary.orphans)} whose parent never "
            "appeared in the stream — summarized as extra roots):"
        )
        for span in summary.orphans:
            lines.append(
                f"  - {span.name} (span={span.span_id} "
                f"parent={span.parent_id} pid={span.pid})"
            )

    if summary.hops:
        lines.append("")
        lines.append("per-hop breakdown:")
        for name, hop in summary.hops.items():
            wall = (
                f"wall total={_format_seconds(hop['wall_total_s'])} "
                f"mean={_format_seconds(hop['wall_mean_s'])}"
                if hop["wall_total_s"] is not None
                else "wall=?"
            )
            lines.append(
                f"  {name:28} spans={hop['spans']:<4} "
                f"pids={hop['pids']:<3} {wall}"
            )
        for label, key in (("queue wait", "broker.wait.seconds"),
                           ("queue exec", "broker.exec.seconds")):
            stats = summary.histograms.get(key)
            if stats:
                lines.append(
                    f"  {label:28} n={stats['count']:<4} "
                    f"p50={stats['p50']:.4g} p90={stats['p90']:.4g} "
                    f"p99={stats['p99']:.4g}"
                )

    if summary.points:
        lines.append("")
        lines.append("events:")
        for name in sorted(summary.points):
            lines.append(f"  {name:32} x{summary.points[name]}")

    if summary.counters:
        lines.append("")
        lines.append("counters:")
        for name in sorted(summary.counters):
            value = summary.counters[name]
            text = f"{value:g}"
            lines.append(f"  {name:32} {text}")

    if summary.gauges:
        lines.append("")
        lines.append("gauges (last value seen):")
        for name in sorted(summary.gauges):
            lines.append(f"  {name:32} {summary.gauges[name]:g}")

    if summary.histograms:
        lines.append("")
        lines.append("histograms (5=p50 9=p90 +=p99):")
        for name in sorted(summary.histograms):
            stats = summary.histograms[name]
            if stats is None:
                continue
            lines.append(
                f"  {name:28} n={stats['count']:<6} "
                f"mean={stats['mean']:.4g} p50={stats['p50']:.4g} "
                f"p90={stats['p90']:.4g} p99={stats['p99']:.4g} "
                f"max={stats['max']:.4g}"
            )
            lines.append(f"  {'':28} [{histogram_bar(stats)}]")

    return "\n".join(lines)
