"""The structured telemetry core: spans, counters, histograms, registry.

Everything the repo's execution stack reports about itself flows
through one process-local :class:`Telemetry` registry.  Design rules,
in the order they mattered:

* **Never perturb results.**  Instrumentation only reads process
  state (occupancy masks, counts, clocks) — it draws no randomness
  and mutates nothing the engine computes with.  The parity tests in
  ``tests/telemetry`` pin this: full tracing on or off, every
  engine/sharded/distributed output is bit-identical.
* **Disabled means one branch.**  The default sink is
  :data:`~repro.telemetry.sinks.NULL_SINK`; :attr:`Telemetry.enabled`
  is an identity check against it, so hot paths guard with
  ``if tel.enabled:`` and pay nothing else when tracing is off.
* **Deterministic span identity.**  :func:`span_id_from` hashes
  canonical JSON of its parts, and shard spans derive their parts
  from the shard's spawned :class:`~numpy.random.SeedSequence`
  (entropy + spawn key — which encodes the shard index) — so the same
  run produces the same span ids on every machine, worker count, and
  arrival order, and traces from different processes stitch together.

Records are flat JSON-able dicts (see :mod:`repro.telemetry.sinks`
for shapes); ``repro trace summarize`` and
:mod:`repro.telemetry.summarize` consume them.

Environment knobs: ``REPRO_TELEMETRY`` names a JSONL trace path
(empty/``0``/``off`` disables), ``REPRO_TELEMETRY_SAMPLE`` sets the
per-round sampling stride (default 1: every round).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import os
import threading
import time

from .sinks import NULL_SINK, JsonlSink

__all__ = [
    "Telemetry",
    "Span",
    "TraceContext",
    "span_id_from",
    "seed_id_parts",
    "format_gauge_key",
    "get_telemetry",
    "configure",
    "configure_from_env",
    "TELEMETRY_ENV_VAR",
    "TELEMETRY_SAMPLE_ENV_VAR",
]

#: Environment variable naming the JSONL trace path (CLI ``--telemetry``
#: overrides it; empty/``0``/``off`` disables).
TELEMETRY_ENV_VAR = "REPRO_TELEMETRY"

#: Environment variable setting the per-round event sampling stride.
TELEMETRY_SAMPLE_ENV_VAR = "REPRO_TELEMETRY_SAMPLE"


def _canonical_part(part):
    """Coerce one id part into a canonical JSON-able value."""
    if part is None or isinstance(part, (bool, int, str)):
        return part
    if isinstance(part, float):
        return repr(part)
    if isinstance(part, (list, tuple)):
        return [_canonical_part(p) for p in part]
    return str(part)


def span_id_from(*parts) -> str:
    """A deterministic 16-hex-digit span id from canonical ``parts``.

    Equal parts give equal ids on every machine and process — the
    property that lets a sharded run's spans be named before the
    shards are dispatched, and lets traces from worker processes be
    stitched under the parent's span tree.
    """
    payload = json.dumps(
        [_canonical_part(p) for p in parts],
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:16]


def seed_id_parts(seed) -> list:
    """Canonical id parts of a :class:`numpy.random.SeedSequence`.

    Entropy plus spawn key: the spawn key of a shard seed ends in the
    shard index (:func:`repro.stats.rng.spawn_seeds` spawns children
    ``0..k-1``), so these parts realise the "(run seed, shard index)"
    half of the deterministic span-id contract; the round index is
    carried by the per-round records nested under the span.
    """
    entropy = getattr(seed, "entropy", None)
    spawn_key = getattr(seed, "spawn_key", ())
    if isinstance(entropy, (list, tuple)):
        entropy = [int(e) for e in entropy]
    elif entropy is not None:
        entropy = int(entropy)
    return [entropy, [int(k) for k in spawn_key]]


@dataclasses.dataclass(frozen=True)
class TraceContext:
    """The cross-process half of a trace: trace id + parent span id.

    A client installs one around ``run_sharded`` (trace id derived
    deterministically from the master seed via :func:`span_id_from` /
    :func:`seed_id_parts`); it rides submit/lease/complete frames as an
    optional ``trace`` wire key (see
    :func:`repro.distributed.wire.attach_trace` — byte-identical frames
    when absent), and the broker and workers install it so their spans
    parent under the client's span tree.
    """

    #: Deterministic id shared by every record of one stitched trace.
    trace_id: str
    #: Span id remote spans should parent under (None at the root).
    parent_span_id: str | None = None

    def to_wire(self) -> dict:
        """The JSON-able wire form (the optional ``trace`` frame key)."""
        wire = {"id": self.trace_id}
        if self.parent_span_id is not None:
            wire["parent"] = self.parent_span_id
        return wire

    @staticmethod
    def from_wire(obj) -> "TraceContext | None":
        """Decode a wire dict (None / malformed input gives None)."""
        if not isinstance(obj, dict):
            return None
        trace_id = obj.get("id")
        if not isinstance(trace_id, str) or not trace_id:
            return None
        parent = obj.get("parent")
        if parent is not None and not isinstance(parent, str):
            parent = None
        return TraceContext(trace_id=trace_id, parent_span_id=parent)


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (q in [0, 1])."""
    if not sorted_values:
        return math.nan
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[rank - 1]


class Span:
    """One timed region of a trace, usable as a context manager.

    Spans record wall and CPU durations (``perf_counter`` /
    ``process_time``) and emit ``span-start`` / ``span-end`` records.
    :meth:`annotate` attaches fields that are only known at the end
    (rounds run, shards merged) to the ``span-end`` record.
    """

    __slots__ = (
        "telemetry",
        "name",
        "span_id",
        "parent_id",
        "fields",
        "wall_s",
        "cpu_s",
        "_wall0",
        "_cpu0",
    )

    def __init__(self, telemetry: "Telemetry", name: str, span_id: str, parent_id, fields: dict):
        self.telemetry = telemetry
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.fields = fields
        self.wall_s: float | None = None
        self.cpu_s: float | None = None
        self._wall0 = 0.0
        self._cpu0 = 0.0

    def annotate(self, **fields) -> None:
        """Attach end-of-span fields (merged into the span-end record)."""
        self.fields.update(fields)

    def __enter__(self) -> "Span":
        self.telemetry._enter_span(self)
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        self.telemetry._record(
            "span-start",
            self.name,
            span=self.span_id,
            parent=self.parent_id,
            fields=dict(self.fields),
        )
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.wall_s = time.perf_counter() - self._wall0
        self.cpu_s = time.process_time() - self._cpu0
        self.telemetry._exit_span(self)
        fields = dict(self.fields)
        if exc_type is not None:
            fields["error"] = exc_type.__name__
        self.telemetry._record(
            "span-end",
            self.name,
            span=self.span_id,
            parent=self.parent_id,
            wall_s=self.wall_s,
            cpu_s=self.cpu_s,
            fields=fields,
        )


class Telemetry:
    """Process-local registry: a sink plus aggregated counters/histograms.

    Counters and histograms aggregate in memory on every call — they
    are cheap and rare (per round or per shard, never per vertex) and
    feed :meth:`snapshot` even without a sink.  *Records* (the JSONL
    stream) are only produced when a real sink is configured; hot
    paths should guard bulk instrumentation with :attr:`enabled`.

    ``sample_every`` is the per-round sampling stride: engine round
    events fire only when ``sampled(t)`` is true (span and lifecycle
    records always fire — they are O(shards), not O(rounds)).
    """

    def __init__(self, sink=None, *, sample_every: int = 1) -> None:
        self.sink = NULL_SINK if sink is None else sink
        self.sample_every = max(1, int(sample_every))
        self._counters: dict[str, float] = {}
        self._histograms: dict[str, list[float]] = {}
        self._gauges: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
        self._local = threading.local()
        self._lock = threading.Lock()
        self._anon_spans = 0
        self._context: TraceContext | None = None

    # -- state ----------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """True iff a real sink is configured (one identity check)."""
        return self.sink is not NULL_SINK

    def sampled(self, t: int) -> bool:
        """Whether round ``t`` falls on the sampling stride."""
        return t % self.sample_every == 0

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_span_id(self) -> str | None:
        """The innermost open span's id in this thread (None outside)."""
        stack = self._stack()
        return stack[-1].span_id if stack else None

    def install_context(self, context: TraceContext | None) -> TraceContext | None:
        """Install (or clear) the process trace context; returns the prior one.

        Restore the returned value in a ``finally`` block.  While a
        context is installed every record carries its trace id, and
        spans opened with no local parent fall back to
        ``context.parent_span_id`` — this is how a remote worker's
        ``shard.run`` span stitches under the client's tree.
        """
        previous = self._context
        self._context = context
        return previous

    def current_context(self) -> TraceContext | None:
        """The context a cross-process hop should carry right now.

        With a context installed, the trace id is preserved and the
        parent advanced to the innermost open span; with only local
        spans open, a fresh context rooted at the outermost span is
        derived; with neither, None (nothing to propagate).
        """
        parent = self.current_span_id()
        context = self._context
        if context is not None:
            return TraceContext(
                trace_id=context.trace_id,
                parent_span_id=parent or context.parent_span_id,
            )
        stack = self._stack()
        if stack:
            return TraceContext(trace_id=stack[0].span_id, parent_span_id=parent)
        return None

    def _enter_span(self, span: Span) -> None:
        self._stack().append(span)

    def _exit_span(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()

    # -- emission -------------------------------------------------------
    def _record(self, kind: str, name: str, **extra) -> None:
        if not self.enabled:
            return
        record = {"kind": kind, "name": name, "ts": time.time(), "pid": os.getpid()}
        if self._context is not None:
            record["trace"] = self._context.trace_id
        record.update(extra)
        self.sink.write(record)

    def span(self, name: str, *, id_parts=None, **fields) -> Span:
        """Open a span (use as a context manager).

        ``id_parts`` makes the id deterministic via
        :func:`span_id_from`; without them the id derives from the
        parent span and a process-local counter (stable within one
        process, which is all an unseeded caller can promise).
        """
        parent = self.current_span_id()
        if parent is None and self._context is not None:
            parent = self._context.parent_span_id
        if id_parts is not None:
            sid = span_id_from(name, *id_parts)
        else:
            with self._lock:
                self._anon_spans += 1
                sid = span_id_from(name, parent, self._anon_spans)
        return Span(self, name, sid, parent, dict(fields))

    def span_started(
        self, name: str, span_id: str, parent_id=None, trace_id=None, **fields
    ) -> None:
        """Emit a ``span-start`` record with explicit identity.

        For lifecycles that outlive any one call frame (the broker's
        per-job span opens on submit and closes on the terminal state
        transition), where the context-manager :meth:`span` cannot be
        used.  Pair with :meth:`span_finished` on the same ids.
        ``trace_id`` stamps the record for emitters that know the trace
        they belong to without installing a process context (the broker
        serves many concurrent traces from one thread).
        """
        extra = {"span": span_id, "parent": parent_id, "fields": dict(fields)}
        if trace_id is not None:
            extra["trace"] = trace_id
        self._record("span-start", name, **extra)

    def span_finished(
        self,
        name: str,
        span_id: str,
        parent_id=None,
        trace_id=None,
        *,
        wall_s: float | None = None,
        cpu_s: float | None = None,
        **fields,
    ) -> None:
        """Emit the matching ``span-end`` record for :meth:`span_started`."""
        extra = {
            "span": span_id,
            "parent": parent_id,
            "wall_s": wall_s,
            "cpu_s": cpu_s,
            "fields": dict(fields),
        }
        if trace_id is not None:
            extra["trace"] = trace_id
        self._record("span-end", name, **extra)

    def event(self, name: str, **fields) -> None:
        """Emit one point-in-time record under the current span."""
        self._record("point", name, span=self.current_span_id(), fields=fields)

    def count(self, name: str, value: float = 1) -> float:
        """Bump a monotonic counter; returns the new total.

        Aggregates even when disabled (so ``repro status`` and job
        summaries can report cache hit/miss counts without a sink);
        emits a ``counter`` record only when enabled.
        """
        with self._lock:
            total = self._counters.get(name, 0) + value
            self._counters[name] = total
        self._record(
            "counter", name, span=self.current_span_id(), value=value, total=total
        )
        return total

    def observe(self, name: str, value: float) -> None:
        """Add one observation to a histogram (and record it if enabled)."""
        value = float(value)
        with self._lock:
            self._histograms.setdefault(name, []).append(value)
        self._record(
            "histogram", name, span=self.current_span_id(), value=value
        )

    def gauge(self, name: str, value: float, **labels) -> None:
        """Set a point-in-time gauge (last write wins per label set).

        Gauges aggregate even when disabled, like counters — they feed
        the ``/metrics`` exporter and :meth:`snapshot` without a sink.
        ``labels`` distinguish series of the same name (e.g. a gauge
        per circuit-breaker key); a ``gauge`` record is emitted only
        when a sink is configured.
        """
        value = float(value)
        label_items = tuple(sorted((str(k), str(v)) for k, v in labels.items()))
        with self._lock:
            self._gauges[(name, label_items)] = value
        extra = {"span": self.current_span_id(), "value": value}
        if labels:
            extra["labels"] = {str(k): str(v) for k, v in labels.items()}
        self._record("gauge", name, **extra)

    # -- aggregation ----------------------------------------------------
    def counters(self) -> dict[str, float]:
        """A copy of the counter totals."""
        with self._lock:
            return dict(self._counters)

    def gauges(self) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
        """A copy of the gauge table, keyed ``(name, sorted label items)``."""
        with self._lock:
            return dict(self._gauges)

    def histogram_summary(self, name: str) -> dict | None:
        """Count/mean/min/max and p50/p90/p99 of one histogram."""
        with self._lock:
            values = list(self._histograms.get(name, ()))
        return summarize_values(values)

    def snapshot(self) -> dict:
        """Counters, gauges and histogram summaries (JSON-able)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = {k: list(v) for k, v in self._histograms.items()}
        return {
            "counters": counters,
            "gauges": {
                format_gauge_key(name, labels): value
                for (name, labels), value in gauges.items()
            },
            "histograms": {
                name: summarize_values(values)
                for name, values in histograms.items()
            },
        }

    def reset(self) -> None:
        """Clear aggregated counters/gauges/histograms (sink untouched)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def flush(self) -> None:
        """Flush the sink."""
        self.sink.flush()


def format_gauge_key(name: str, labels: tuple[tuple[str, str], ...]) -> str:
    """A human/JSON-friendly gauge key: ``name`` or ``name{k=v,...}``."""
    if not labels:
        return name
    rendered = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{rendered}}}"


def summarize_values(values: list[float]) -> dict | None:
    """Summary statistics of a value list (None when empty)."""
    if not values:
        return None
    ordered = sorted(values)
    return {
        "count": len(ordered),
        "mean": sum(ordered) / len(ordered),
        "min": ordered[0],
        "max": ordered[-1],
        "p50": _percentile(ordered, 0.50),
        "p90": _percentile(ordered, 0.90),
        "p99": _percentile(ordered, 0.99),
    }


# ----------------------------------------------------------------------
# The process-local registry
# ----------------------------------------------------------------------
_GLOBAL = Telemetry()


def get_telemetry() -> Telemetry:
    """The process-local registry every instrumented module consults."""
    return _GLOBAL


def configure(sink=None, *, sample_every: int | None = None) -> Telemetry:
    """Replace the global registry's sink (None disables tracing).

    Aggregated counters/histograms survive reconfiguration only in the
    sense that a fresh registry starts empty — ``configure`` installs
    a new :class:`Telemetry`, which is what tests rely on for
    isolation.  Returns the new registry.
    """
    global _GLOBAL
    stride = 1 if sample_every is None else sample_every
    _GLOBAL = Telemetry(sink, sample_every=stride)
    return _GLOBAL


def configure_from_env(path=None) -> Telemetry:
    """Configure from ``REPRO_TELEMETRY`` / ``REPRO_TELEMETRY_SAMPLE``.

    ``path`` (the CLI ``--telemetry`` value) overrides the environment
    variable.  Empty, ``0`` and ``off`` disable tracing.  Returns the
    (re)configured global registry; when neither source names a path
    the registry is left exactly as it is, so library callers can
    configure programmatically without the environment fighting them.
    """
    spec = path if path is not None else os.environ.get(TELEMETRY_ENV_VAR)
    if spec is None:
        return _GLOBAL
    stride_env = os.environ.get(TELEMETRY_SAMPLE_ENV_VAR, "").strip()
    try:
        stride = int(stride_env) if stride_env else 1
    except ValueError:
        raise ValueError(
            f"{TELEMETRY_SAMPLE_ENV_VAR} must be a positive integer, "
            f"got {stride_env!r}"
        ) from None
    if str(spec).strip().lower() in ("", "0", "off"):
        return configure(None, sample_every=stride)
    return configure(JsonlSink(spec), sample_every=stride)
