"""Numba backend: fused neighbour-sample + absorb kernels over CSR.

The numpy kernels in :mod:`repro.engine.rules` spend their rounds in
fancy-index temporaries: ``np.repeat`` expansions of the actor list,
gathered degree/offset arrays, ``take_along_axis`` pick matrices.  The
``@njit`` kernels here walk ``indptr`` / ``indices`` / ``degrees``
directly and absorb each sampled neighbour into the next-state mask in
the same pass — one loop, no intermediates.

Bit-identity contract
---------------------
Randomness never enters the compiled code.  Every uniform block is
drawn from the caller's :class:`numpy.random.Generator` *before* the
kernel runs, with exactly the sizes and order the numpy kernels use
(branching counts first, then neighbour uniforms, then lazy coins,
then any second-selection coins), and the kernels reproduce the numpy
index arithmetic ``indices[indptr[v] + int(u * degree[v])]`` in IEEE
double precision with ``fastmath`` off.  The compiled and numpy
backends are therefore **bit-identical** — pinned per rule by
``tests/kernels/test_numba_parity.py``.

Degenerate inputs (degree-zero vertices on churned snapshots, the BIPS
``"single"`` discipline) fall back to the numpy kernel *per call*;
because the numpy path consumes the identical draws, a run that mixes
compiled and fallback rounds is still bit-identical end to end.

The import is guarded: without numba this module loads fine,
:data:`AVAILABLE` is False, and the dispatch layer never binds it.
"""

from __future__ import annotations

import numpy as np

__all__ = ["AVAILABLE", "cobra_stepper", "bips_stepper"]

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit as _njit

    AVAILABLE = True
except ImportError:  # the container default: numpy-only
    AVAILABLE = False

    def _njit(*args, **kwargs):
        """No-op decorator stand-in so kernel defs parse without numba."""
        if args and callable(args[0]):
            return args[0]

        def wrap(fn):
            return fn

        return wrap


_EMPTY_F64 = np.empty(0, dtype=np.float64)


@_njit(cache=True, nogil=True)
def _cobra_scatter(
    indptr, indices, degrees, movers, counts, u_nbr, u_lazy, lazy, nxt
):  # pragma: no cover - compiled; parity-tested under numba
    """Fused COBRA round: walk the mover mask row-major, sampling
    ``counts[i]`` neighbours per mover from the pre-drawn uniforms and
    scattering them into ``nxt``.

    Consumes ``u_nbr`` (and ``u_lazy`` when ``lazy``) in exactly the
    order the numpy kernel does: movers enumerated row-major, each
    mover's selections consecutive.
    """
    runs, n = movers.shape
    i = 0  # mover index into counts
    k = 0  # draw index into u_nbr / u_lazy
    for r in range(runs):
        for v in range(n):
            if movers[r, v]:
                base = indptr[v]
                d = degrees[v]
                for _ in range(counts[i]):
                    t = indices[base + np.int64(u_nbr[k] * d)]
                    if lazy and u_lazy[k] < 0.5:
                        t = v
                    nxt[r, t] = True
                    k += 1
                i += 1


@_njit(cache=True, nogil=True)
def _bips_gather(
    indptr, indices, degrees, infected, u_nbr, u_lazy, lazy, out, first
):  # pragma: no cover - compiled; parity-tested under numba
    """Fused BIPS selection: every (run, vertex) samples one neighbour
    from the pre-drawn uniforms and absorbs its infection bit.

    ``first`` writes ``out`` outright; otherwise infected picks OR in
    (the ``fixed_b > 1`` extra selections).
    """
    runs, n = infected.shape
    k = 0
    for r in range(runs):
        for v in range(n):
            t = indices[indptr[v] + np.int64(u_nbr[k] * degrees[v])]
            if lazy and u_lazy[k] < 0.5:
                t = v
            hit = infected[r, t]
            if first:
                out[r, v] = hit
            elif hit:
                out[r, v] = True
            k += 1


@_njit(cache=True, nogil=True)
def _bips_second(
    indptr, indices, degrees, infected, u_nbr, u_lazy, lazy, u_second, p2, out
):  # pragma: no cover - compiled; parity-tested under numba
    """Fused Bernoulli second selection: the pick uniforms draw first
    (mirroring the numpy order), then the participation coin gates the
    absorb."""
    runs, n = infected.shape
    k = 0
    for r in range(runs):
        for v in range(n):
            t = indices[indptr[v] + np.int64(u_nbr[k] * degrees[v])]
            if lazy and u_lazy[k] < 0.5:
                t = v
            if infected[r, t] and u_second[k] < p2:
                out[r, v] = True
            k += 1


def cobra_stepper(rule):
    """Build a compiled drop-in for ``CobraRule.step`` (bit-identical).

    The returned callable has the ``step(graph, state, alive, rng)``
    signature; draw order matches the numpy kernel (counts, neighbour
    uniforms, lazy coins), so the two backends share one stream.
    """
    policy, lazy = rule.policy, bool(rule.lazy)

    def step(graph, state, alive, rng):
        """One fused branching round (numpy draws, compiled scatter)."""
        work = state & alive[:, None]
        if graph.dmin == 0:
            can_move = graph.degrees > 0
            movers = work & can_move[None, :]
            stranded = work & ~can_move[None, :]
        else:
            movers, stranded = work, None
        counts = policy.draw_counts(int(np.count_nonzero(movers)), rng)
        total = int(counts.sum())
        u_nbr = rng.random(total)
        u_lazy = rng.random(total) if lazy else _EMPTY_F64
        nxt = np.zeros_like(state)
        _cobra_scatter(
            graph.indptr, graph.indices, graph.degrees,
            movers, counts, u_nbr, u_lazy, lazy, nxt,
        )
        if stranded is not None:
            nxt |= stranded
        return nxt

    return step


def bips_stepper(rule):
    """Build a compiled drop-in for batch ``BipsRule.step`` (bit-identical).

    Fuses the tile + pick + ``take_along_axis`` program into one CSR
    walk per selection.  Degree-zero snapshots and the ``"single"``
    discipline fall back to the numpy kernel per call (same draws, so
    mixed runs stay bit-identical).
    """
    policy, source, lazy = rule.policy, int(rule.source), bool(rule.lazy)

    def step(graph, state, alive, rng):
        """One fused infection round (numpy draws, compiled gather)."""
        if rule.discipline != "batch" or graph.dmin == 0:
            return rule.step(graph, state, alive, rng)
        runs, n = state.shape
        total = runs * n
        args = (graph.indptr, graph.indices, graph.degrees, state)
        nxt = np.empty_like(state)
        u_nbr = rng.random(total)
        u_lazy = rng.random(total) if lazy else _EMPTY_F64
        _bips_gather(*args, u_nbr, u_lazy, lazy, nxt, True)
        fixed_b = policy.fixed_selection_count()
        if fixed_b is not None:
            for _ in range(fixed_b - 1):
                u_nbr = rng.random(total)
                u_lazy = rng.random(total) if lazy else _EMPTY_F64
                _bips_gather(*args, u_nbr, u_lazy, lazy, nxt, False)
        else:
            p2 = policy.second_selection_probability()
            if p2 > 0.0:
                u_nbr = rng.random(total)
                u_lazy = rng.random(total) if lazy else _EMPTY_F64
                u_second = rng.random(total)
                _bips_second(*args, u_nbr, u_lazy, lazy, u_second, p2, nxt)
        nxt[:, source] = True
        return np.where(alive[:, None], nxt, state)

    return step
