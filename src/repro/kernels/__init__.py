"""Compiled kernel tier: dispatched per-round backends for the engine.

The per-round hot loops in :mod:`repro.engine.rules` are numpy index
programs over the CSR arrays.  This package puts faster backends
behind the *same* ``SpreadRule.step`` interface, chosen per rule ×
graph size by a dispatch layer with numpy as the always-available
fallback:

* ``numpy`` — the reference kernels, always available;
* ``numba`` — fused neighbour-sample + absorb ``@njit`` kernels for
  :class:`~repro.engine.rules.CobraRule` and batch-discipline
  :class:`~repro.engine.rules.BipsRule` that walk the CSR arrays
  directly.  Randomness is drawn from the *same*
  :class:`numpy.random.Generator` stream in the same order as the
  numpy kernels, so results are **bit-identical**.  Optional: the
  import is guarded and the backend simply reports unavailable when
  numba is not installed;
* ``bitplane`` — push/pull/push–pull gossip with the informed sets of
  8–64 runs packed per machine word (extending
  :class:`~repro.engine.rules.FloodingRule`'s bit-parallel trick to
  the randomised baselines).  Draws are shared per word, so results
  are **distribution-equivalent** per run, not bit-identical — see
  :mod:`repro.kernels.bitplane` for the exact equivalence class.
  Never chosen automatically; request it explicitly.

Selection: ``SpreadEngine.run/run_sharded/run_distributed`` accept
``backend=``, the CLI accepts ``--kernel-backend``, and the
``REPRO_KERNEL_BACKEND`` environment variable (``numpy`` / ``numba`` /
``auto``, plus explicit ``bitplane``) forces a choice process-wide.
The chosen backend is recorded in ``SpreadResult.meta`` and counted by
the ``kernel.dispatch`` telemetry counters.
"""

from .bitplane import BitPullRule, BitPushPullRule, BitPushRule
from .dispatch import (
    ENV_VAR,
    KernelBackend,
    KernelBinding,
    backend_available,
    backend_names,
    kernel_contract,
    register_backend,
    requested_backend,
    resolve,
)

__all__ = [
    # dispatch
    "ENV_VAR",
    "KernelBackend",
    "KernelBinding",
    "backend_available",
    "backend_names",
    "kernel_contract",
    "register_backend",
    "requested_backend",
    "resolve",
    # bit-plane gossip rules
    "BitPushRule",
    "BitPullRule",
    "BitPushPullRule",
]
