"""Backend dispatch: choose a per-round kernel for a rule × graph size.

The engine asks this module, once per :meth:`SpreadEngine.run`, for a
:class:`KernelBinding` — the rule object to drive, the ``step``
callable to call each round, optional pack/unpack converters for the
state representation, and the equivalence contract the backend honours
(``"bit-identical"`` or ``"distribution"``).

Backends register in a module-level table (:func:`register_backend`);
the built-ins are

``numpy``
    The reference kernels — :meth:`SpreadRule.step` itself.  Always
    available, supports every rule, trivially bit-identical.
``numba``
    Fused CSR kernels from :mod:`repro.kernels.numba_backend` for
    :class:`~repro.engine.rules.CobraRule` and batch-discipline
    :class:`~repro.engine.rules.BipsRule`.  Bit-identical (draws come
    from the caller's Generator in numpy order).  Reports unavailable
    when numba is not installed.
``bitplane``
    :mod:`repro.kernels.bitplane` push/pull/push–pull with 8–64 runs
    packed per word.  Distribution-equivalent per run only, so it is
    **never chosen automatically** — request it explicitly.

Selection order: the ``requested`` parameter (threaded from
``backend=`` on the engine entry points and ``--kernel-backend`` on
the CLI) wins, else the ``REPRO_KERNEL_BACKEND`` environment variable,
else ``"auto"``.  ``auto`` picks numba when it is available, supports
the rule, and the graph is large enough to amortise call overhead
(``n >= AUTO_NUMBA_MIN_N``); otherwise numpy.  Forcing an unknown
backend raises :class:`ValueError`; forcing one that is not installed
raises :class:`RuntimeError`; forcing one that does not support the
rule raises :class:`ValueError` — auto never raises.

Every resolution increments the ``kernel.dispatch`` telemetry counter
plus a per-backend ``kernel.dispatch.<name>`` counter.
"""

from __future__ import annotations

import os
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from ..engine.rules import BipsRule, CobraRule, PullRule, PushPullRule, PushRule, SpreadRule
from ..telemetry import get_telemetry
from . import numba_backend
from .bitplane import BitPullRule, BitPushPullRule, BitPushRule

__all__ = [
    "ENV_VAR",
    "AUTO_NUMBA_MIN_N",
    "KernelBackend",
    "KernelBinding",
    "backend_available",
    "backend_names",
    "kernel_contract",
    "register_backend",
    "requested_backend",
    "resolve",
]

#: Environment variable forcing a backend process-wide.
ENV_VAR = "REPRO_KERNEL_BACKEND"

#: ``auto`` only prefers numba at or above this vertex count — below it
#: the numpy kernels win on call overhead anyway.
AUTO_NUMBA_MIN_N = 4096


@dataclass(frozen=True)
class KernelBinding:
    """A resolved backend choice for one engine run.

    ``rule`` is the rule object the engine should drive (usually the
    caller's rule; the bitplane backend substitutes a packed twin) and
    ``step`` the per-round callable with the ``SpreadRule.step``
    signature.  ``pack``/``unpack`` convert between the caller's
    ``(R, n)`` boolean state and the backend's representation — both
    identity (``None``) except for bitplane.  ``contract`` is
    ``"bit-identical"`` or ``"distribution"`` (see the backend docs).
    """

    backend: str
    rule: SpreadRule
    step: Callable[..., np.ndarray]
    contract: str
    pack: Callable[[np.ndarray], np.ndarray] | None = None
    unpack: Callable[[np.ndarray], np.ndarray] | None = None


class KernelBackend:
    """Base class for registrable kernel backends.

    Subclasses say whether they are installed (:meth:`available`),
    which rules they accelerate (:meth:`supports`), and how to build a
    :class:`KernelBinding` for a supported rule (:meth:`bind`).
    ``auto_eligible`` marks backends ``auto`` may pick; backends with a
    weaker-than-bit-identical contract keep it False.
    """

    name: str = ""
    contract: str = "bit-identical"
    auto_eligible: bool = True

    def available(self) -> bool:
        """Whether the backend's dependencies are importable here."""
        return True

    def supports(self, rule: SpreadRule) -> bool:
        """Whether this backend accelerates ``rule``."""
        raise NotImplementedError

    def bind(self, rule: SpreadRule, *, n: int, runs: int) -> KernelBinding:
        """Build the binding for a supported rule on an ``n``-vertex graph."""
        raise NotImplementedError


class _NumpyBackend(KernelBackend):
    """The reference backend: the rule's own ``step``, unchanged."""

    name = "numpy"

    def supports(self, rule: SpreadRule) -> bool:
        """Every rule runs on its own numpy kernel."""
        return True

    def bind(self, rule: SpreadRule, *, n: int, runs: int) -> KernelBinding:
        """Bind the rule to itself."""
        return KernelBinding(
            backend=self.name, rule=rule, step=rule.step, contract=self.contract
        )


class _NumbaBackend(KernelBackend):
    """Fused ``@njit`` CSR kernels for COBRA and batch BIPS."""

    name = "numba"

    def available(self) -> bool:
        """True when numba imported (read dynamically for test patching)."""
        return bool(numba_backend.AVAILABLE)

    def supports(self, rule: SpreadRule) -> bool:
        """COBRA always; BIPS only under the batch absorb discipline."""
        if isinstance(rule, CobraRule):
            return True
        return isinstance(rule, BipsRule) and rule.discipline == "batch"

    def bind(self, rule: SpreadRule, *, n: int, runs: int) -> KernelBinding:
        """Wrap the rule with its fused stepper (state layout unchanged)."""
        if isinstance(rule, CobraRule):
            step = numba_backend.cobra_stepper(rule)
        else:
            step = numba_backend.bips_stepper(rule)
        return KernelBinding(
            backend=self.name, rule=rule, step=step, contract=self.contract
        )


class _BitplaneBackend(KernelBackend):
    """Word-packed push/pull/push–pull (distribution-equivalent only)."""

    name = "bitplane"
    contract = "distribution"
    auto_eligible = False

    def supports(self, rule: SpreadRule) -> bool:
        """The three uniform-gossip baselines pack; nothing else does."""
        return isinstance(rule, (PushRule, PullRule, PushPullRule))

    def bind(self, rule: SpreadRule, *, n: int, runs: int) -> KernelBinding:
        """Substitute the packed twin rule plus pack/unpack converters."""
        if isinstance(rule, PushPullRule):
            brule: SpreadRule = BitPushPullRule(runs)
        elif isinstance(rule, PullRule):
            brule = BitPullRule(runs)
        else:
            brule = BitPushRule(runs, fanout=rule.fanout)
        return KernelBinding(
            backend=self.name,
            rule=brule,
            step=brule.step,
            contract=self.contract,
            pack=brule.pack,
            unpack=lambda state, _b=brule, _n=n: _b.occupancy(state, _n),
        )


_REGISTRY: dict[str, KernelBackend] = {}


def register_backend(backend: KernelBackend) -> None:
    """Register ``backend`` under its name (replacing any previous one)."""
    if not backend.name:
        raise ValueError("backend must have a non-empty name")
    _REGISTRY[backend.name] = backend


register_backend(_NumpyBackend())
register_backend(_NumbaBackend())
register_backend(_BitplaneBackend())


def backend_names() -> tuple[str, ...]:
    """All registered backend names, registration order."""
    return tuple(_REGISTRY)


def backend_available(name: str) -> bool:
    """Whether ``name`` is registered and its dependencies import."""
    backend = _REGISTRY.get(name)
    return backend is not None and backend.available()


def kernel_contract(name: str) -> str:
    """The equivalence contract of backend ``name``
    (``"bit-identical"`` or ``"distribution"``)."""
    return _REGISTRY[name].contract


def requested_backend(requested: str | None = None) -> str | None:
    """Normalise the caller's backend request.

    The explicit ``requested`` parameter wins; otherwise the
    ``REPRO_KERNEL_BACKEND`` environment variable; otherwise None
    (meaning: nobody asked — resolve as ``auto`` and leave no trace in
    ``SpreadResult.meta``).
    """
    value = requested if requested is not None else os.environ.get(ENV_VAR)
    if value is None:
        return None
    value = value.strip().lower()
    return value or None


def resolve(
    rule: SpreadRule,
    *,
    n: int,
    runs: int,
    requested: str | None = None,
) -> KernelBinding:
    """Pick the backend for one engine run and build its binding.

    ``requested`` is an already-normalised name (pass it through
    :func:`requested_backend`) or None/"auto" for automatic selection.
    Automatic selection never fails: it prefers an available,
    auto-eligible compiled backend that supports the rule when
    ``n >= AUTO_NUMBA_MIN_N`` and ``runs >= 1``, else numpy.  A forced
    backend must exist (:class:`ValueError`), be available
    (:class:`RuntimeError`) and support the rule (:class:`ValueError`).
    """
    req = requested or "auto"
    if req == "auto":
        choice = _REGISTRY["numpy"]
        if runs >= 1 and n >= AUTO_NUMBA_MIN_N:
            for backend in _REGISTRY.values():
                if (
                    backend.auto_eligible
                    and backend.name != "numpy"
                    and backend.available()
                    and backend.supports(rule)
                ):
                    choice = backend
                    break
    else:
        choice = _REGISTRY.get(req)
        if choice is None:
            raise ValueError(
                f"unknown kernel backend {req!r}; known: "
                f"{', '.join(backend_names())} (or 'auto')"
            )
        if not choice.available():
            raise RuntimeError(
                f"kernel backend {req!r} is not available here "
                f"(is its dependency installed?)"
            )
        if not choice.supports(rule):
            raise ValueError(
                f"kernel backend {req!r} does not support rule "
                f"{type(rule).__name__}"
            )
        if runs < 1 and choice.name != "numpy":
            # Zero-run states carry no work; the packed backends cannot
            # even represent them, so fall back to the reference kernel.
            choice = _REGISTRY["numpy"]
    telemetry = get_telemetry()
    telemetry.count("kernel.dispatch")
    telemetry.count(f"kernel.dispatch.{choice.name}")
    return choice.bind(rule, n=n, runs=runs)
