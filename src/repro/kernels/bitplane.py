"""Bit-plane gossip: push/pull rules packed 8–64 runs per machine word.

:class:`~repro.engine.rules.FloodingRule` already advances ``R`` runs
8-per-byte by packing the informed sets into uint8 bitplanes.  This
module extends the trick to the *randomised* gossip baselines — push,
pull and push–pull — where it was blocked by the shared-draw subtlety:
a bit-parallel round cannot draw one neighbour per (run, vertex)
without unpacking, so the draws must be shared across the runs of a
word.

Equivalence class (the resolution of that subtlety)
---------------------------------------------------
Draws are made **per word**: each round, every acting vertex draws one
uniform neighbour per word of runs (a word is ``word_bits`` runs,
8–64), and all runs packed into that word share the draw.

* **Per run, the marginal law is exact.**  Within any single run, every
  informed vertex still pushes to (every uninformed vertex still pulls
  from) one independently-uniform neighbour per round, because the
  shared draw never depends on the state of any run.  Cover/broadcast
  time samples from a bit-plane rule are therefore distributed
  identically to the numpy rule's — pinned by the KS tests in
  ``tests/kernels/test_bitplane.py``.
* **Across runs, words correlate.**  Runs inside one word see the same
  neighbour choices, so they are *not* independent of each other (runs
  in different words are).  Estimator variance over ``R`` runs is that
  of ``R / word_bits`` independent blocks; use more words, or the
  numpy backend, when cross-run independence matters.
* **Not bit-identical.**  The draw stream differs from the numpy
  kernels by construction; only distribution-level comparisons are
  meaningful across this backend boundary.

Finished runs freeze exactly as in the numpy rules: contributions and
newly-learned bits are masked by the packed ``alive`` vector, so a run
that met its completion criterion stops spreading even while its word
mates continue.

These are ordinary :class:`~repro.engine.rules.SpreadRule` objects and
can be driven directly, but the intended entry point is the dispatch
layer (``SpreadEngine.run(..., backend="bitplane")``), which packs the
caller's ``(R, n)`` boolean state, substitutes the bit-plane rule, and
unpacks the final state — see :mod:`repro.kernels.dispatch`.
"""

from __future__ import annotations

import numpy as np

from ..engine.caps import process_round_cap
from ..engine.rules import SpreadRule

__all__ = ["BitPushRule", "BitPullRule", "BitPushPullRule", "WORD_BITS_CHOICES"]

#: Legal ``word_bits`` values: runs sharing one draw per acting vertex.
WORD_BITS_CHOICES = (8, 16, 32, 64)


class _BitGossipRule(SpreadRule):
    """Shared machinery for the bit-packed gossip rules.

    State is a ``(ceil(R / 8), n)`` uint8 array of informed bitplanes
    (run ``r`` lives in bit ``r % 8`` of plane ``r // 8``, the
    ``np.packbits(..., bitorder="little")`` layout FloodingRule uses).
    ``word_bits`` groups consecutive planes into draw-sharing words of
    8–64 runs; see the module docstring for the equivalence class.
    """

    completion_basis = "state"
    state_arrays = 1  # packed bits: n/4 bytes per run in state

    def __init__(self, runs: int = 1, *, word_bits: int = 64) -> None:
        if runs < 1:
            raise ValueError("need at least one run")
        if word_bits not in WORD_BITS_CHOICES:
            raise ValueError(
                f"word_bits must be one of {WORD_BITS_CHOICES}, got {word_bits}"
            )
        self.runs = int(runs)
        self.word_bits = int(word_bits)
        planes = (self.runs + 7) // 8
        per_word = self.word_bits // 8
        self._groups = [
            (lo, min(lo + per_word, planes)) for lo in range(0, planes, per_word)
        ]
        # Bits beyond `runs` in the last plane are permanent zeros; mask
        # them out of "who still asks" queries so phantom runs never
        # drive draws.
        mask = np.full(planes, 0xFF, dtype=np.uint8)
        if self.runs % 8:
            mask[-1] = (1 << (self.runs % 8)) - 1
        mask.setflags(write=False)
        self._run_mask = mask

    # -- packing --------------------------------------------------------
    def pack(self, mask: np.ndarray) -> np.ndarray:
        """Pack an ``(R, n)`` boolean informed mask into rule state."""
        if mask.shape[0] != self.runs:
            raise ValueError(f"mask must have {self.runs} rows")
        return np.packbits(mask, axis=0, bitorder="little")

    def runs_of(self, state: np.ndarray) -> int:
        """The run count is fixed at construction (bits hide ``R``)."""
        return self.runs

    def _gate(self, alive: np.ndarray) -> np.ndarray:
        """Pack the per-run alive flags into one byte per plane."""
        return np.packbits(alive, bitorder="little")

    # -- SpreadRule API -------------------------------------------------
    def occupancy(self, state: np.ndarray, n: int) -> np.ndarray:
        """Unpack the informed bitplanes into an ``(R, n)`` boolean mask."""
        return np.unpackbits(
            state, axis=0, count=self.runs, bitorder="little"
        ).view(bool)

    def finished(self, state: np.ndarray) -> np.ndarray:
        """All-vertices completion evaluated on the packed bitplanes."""
        cols = np.bitwise_and.reduce(state, axis=1)
        return np.unpackbits(cols, count=self.runs, bitorder="little").view(bool)

    def default_cap(self, graph) -> int:
        """Shared epidemic cap (see :func:`process_round_cap`)."""
        return process_round_cap(graph.n, graph.m, graph.dmax)

    # -- word-level halves ----------------------------------------------
    @staticmethod
    def _scatter_or(
        dst: np.ndarray,
        vals: np.ndarray,
        targets: np.ndarray,
    ) -> None:
        """OR the columns of ``vals`` into ``dst`` at (possibly
        duplicated) target columns.

        Sort-and-``reduceat``: duplicates are OR-combined per unique
        target before one vectorised scatter, avoiding the per-element
        ``ufunc.at`` path.
        """
        order = np.argsort(targets, kind="stable")
        ts = targets[order]
        vs = vals[:, order]
        starts = np.nonzero(np.concatenate([[True], ts[1:] != ts[:-1]]))[0]
        dst[:, ts[starts]] |= np.bitwise_or.reduceat(vs, starts, axis=1)

    def _push_word(
        self,
        graph,
        planes: np.ndarray,
        gate: np.ndarray,
        degpos: np.ndarray,
        nxt: np.ndarray,
        rng: np.random.Generator,
        fanout: int,
    ) -> None:
        """One push half for one word: alive informed bits scatter out."""
        vals = planes & gate[:, None]
        sources = np.nonzero(vals.any(axis=0) & degpos)[0]
        if sources.size == 0:
            return
        vals = vals[:, sources]
        for _ in range(fanout):
            targets = graph.sample_neighbors(sources, rng)
            self._scatter_or(nxt, vals, targets)

    def _pull_word(
        self,
        graph,
        planes: np.ndarray,
        gate: np.ndarray,
        run_mask: np.ndarray,
        degpos: np.ndarray,
        nxt: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        """One pull half for one word: alive uninformed bits gather in."""
        asks = (~planes & run_mask[:, None]) & gate[:, None]
        askers = np.nonzero(asks.any(axis=0) & degpos)[0]
        if askers.size == 0:
            return
        answers = graph.sample_neighbors(askers, rng)
        nxt[:, askers] |= planes[:, answers] & gate[:, None]


class BitPushRule(_BitGossipRule):
    """Bit-packed push gossip: per word, every vertex holding an alive
    informed bit pushes all those bits to ``fanout`` shared uniform
    neighbours per round.

    Distribution-equivalent to :class:`~repro.engine.rules.PushRule`
    per run; runs within one ``word_bits`` word share draws (see the
    module docstring).
    """

    def __init__(
        self, runs: int = 1, *, fanout: int = 1, word_bits: int = 64
    ) -> None:
        super().__init__(runs, word_bits=word_bits)
        if fanout < 1:
            raise ValueError("fanout must be >= 1")
        self.fanout = int(fanout)

    def step(
        self,
        graph,
        state: np.ndarray,
        alive: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """One shared-draw push round over every word of runs."""
        nxt = state.copy()
        gate = self._gate(alive)
        degpos = graph.degrees > 0
        for lo, hi in self._groups:
            self._push_word(
                graph, state[lo:hi], gate[lo:hi], degpos, nxt[lo:hi], rng,
                self.fanout,
            )
        return nxt


class BitPullRule(_BitGossipRule):
    """Bit-packed pull gossip: per word, every vertex missing an alive
    informed bit asks one shared uniform neighbour and copies whatever
    informed bits the neighbour holds.

    Distribution-equivalent to :class:`~repro.engine.rules.PullRule`
    per run; runs within one ``word_bits`` word share draws (see the
    module docstring).
    """

    def step(
        self,
        graph,
        state: np.ndarray,
        alive: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """One shared-draw pull round over every word of runs."""
        nxt = state.copy()
        gate = self._gate(alive)
        degpos = graph.degrees > 0
        for lo, hi in self._groups:
            self._pull_word(
                graph, state[lo:hi], gate[lo:hi], self._run_mask[lo:hi],
                degpos, nxt[lo:hi], rng,
            )
        return nxt


class BitPushPullRule(_BitGossipRule):
    """Bit-packed push–pull gossip: per word, the push half draws first
    and the pull half second, both reading the start-of-round planes —
    mirroring :class:`~repro.engine.rules.PushPullRule`'s simultaneity.

    Distribution-equivalent to the numpy rule per run; runs within one
    ``word_bits`` word share draws (see the module docstring).
    """

    def step(
        self,
        graph,
        state: np.ndarray,
        alive: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """One shared-draw push + pull round over every word of runs."""
        nxt = state.copy()
        gate = self._gate(alive)
        degpos = graph.degrees > 0
        for lo, hi in self._groups:
            self._push_word(
                graph, state[lo:hi], gate[lo:hi], degpos, nxt[lo:hi], rng, 1
            )
            self._pull_word(
                graph, state[lo:hi], gate[lo:hi], self._run_mask[lo:hi],
                degpos, nxt[lo:hi], rng,
            )
        return nxt
