"""Seed-for-seed regression: engine wrappers vs the pre-engine loops.

Each ``_legacy_*`` function below is the pre-refactor implementation
(PR 1 state) reduced to its essentials.  Every refactored wrapper must
reproduce its legacy counterpart bit-for-bit under identical
generators — the engine kernels are the historical inner loops, so any
drift here means the refactor changed the process.

The single intentional exception: ``random_walk_cover_time``'s legacy
implementation drew its uniforms in blocks of 4096 (an implementation
detail, not process semantics); its reference here is the equivalent
per-step ``sample_neighbors`` loop, which is what the engine preserves.
"""

import numpy as np
import pytest

from repro.baselines import (
    multi_walk_cover_time,
    pull_broadcast_time,
    push_broadcast_time,
    push_pull_broadcast_time,
    random_walk_cover_time,
)
from repro.baselines.flooding import flooding_broadcast_time
from repro.core import BipsProcess, CobraProcess
from repro.core.branching import FixedBranching, make_policy
from repro.dynamics import (
    ChurnSequence,
    DynamicBipsProcess,
    DynamicCobraProcess,
    RewiringSequence,
)
from repro.graphs import cycle_graph, petersen_graph, random_regular_graph
from repro.graphs.properties import eccentricity


@pytest.fixture(scope="module")
def expander():
    return random_regular_graph(48, 4, rng=17)


def _legacy_select(graph, actors, rng, lazy):
    targets = graph.sample_neighbors(actors, rng)
    if lazy:
        stay = rng.random(actors.shape[0]) < 0.5
        targets = np.where(stay, actors, targets)
    return targets


# ----------------------------------------------------------------------
# Legacy COBRA
# ----------------------------------------------------------------------
def _legacy_cobra_run(graph, policy, lazy, start, rng, cap):
    active = np.array([start], dtype=np.int64)
    hit = np.full(graph.n, -1, dtype=np.int64)
    hit[active] = 0
    uncovered = graph.n - 1
    t = 0
    while uncovered > 0 and t < cap:
        t += 1
        counts = policy.draw_counts(active.shape[0], rng)
        actors = np.repeat(active, counts)
        active = np.unique(_legacy_select(graph, actors, rng, lazy))
        fresh = active[hit[active] < 0]
        hit[fresh] = t
        uncovered -= fresh.shape[0]
    return (t if uncovered == 0 else -1), hit


def _legacy_cobra_run_batch(graph, policy, lazy, starts, rng, cap):
    runs = starts.shape[0]
    active = np.zeros((runs, graph.n), dtype=bool)
    active[np.arange(runs), starts] = True
    visited = active.copy()
    remaining = np.full(runs, graph.n - 1, dtype=np.int64)
    cover_times = np.full(runs, -1, dtype=np.int64)
    cover_times[remaining == 0] = 0
    next_active = np.zeros_like(active)
    t = 0
    while np.any(cover_times < 0) and t < cap:
        t += 1
        alive = cover_times < 0
        work = active & alive[:, None]
        rows, verts = np.nonzero(work)
        counts = policy.draw_counts(verts.shape[0], rng)
        rows_rep = np.repeat(rows, counts)
        actors = np.repeat(verts, counts)
        targets = _legacy_select(graph, actors, rng, lazy)
        next_active[:] = False
        next_active[rows_rep, targets] = True
        fresh = next_active & ~visited
        visited |= fresh
        remaining -= fresh.sum(axis=1)
        cover_times[alive & (remaining == 0)] = t
        active, next_active = next_active, active
    return cover_times


class TestCobraEquivalence:
    @pytest.mark.parametrize("branching,lazy", [(2, False), (3, True), (1.5, False)])
    def test_run(self, expander, branching, lazy):
        policy = make_policy(branching)
        for seed in range(4):
            t_ref, hit_ref = _legacy_cobra_run(
                expander, policy, lazy, 0, np.random.default_rng(seed), 10_000
            )
            res = CobraProcess(expander, branching, lazy=lazy).run(
                0, np.random.default_rng(seed)
            )
            assert res.cover_time == t_ref
            assert np.array_equal(res.hit_times, hit_ref)

    @pytest.mark.parametrize("branching,lazy", [(2, False), (1.5, True)])
    def test_run_batch(self, expander, branching, lazy):
        policy = make_policy(branching)
        starts = np.arange(9, dtype=np.int64)
        ref = _legacy_cobra_run_batch(
            expander, policy, lazy, starts, np.random.default_rng(5), 10_000
        )
        res = CobraProcess(expander, branching, lazy=lazy).run_batch(
            starts, np.random.default_rng(5)
        )
        assert np.array_equal(res.cover_times, ref)


# ----------------------------------------------------------------------
# Legacy BIPS
# ----------------------------------------------------------------------
def _legacy_bips_step(graph, policy, lazy, source, infected, rng):
    n = graph.n
    all_vertices = np.arange(n, dtype=np.int64)
    pick = _legacy_select(graph, all_vertices, rng, lazy)
    nxt = infected[pick]
    if isinstance(policy, FixedBranching) and policy.b >= 2:
        for _ in range(policy.b - 1):
            pick = _legacy_select(graph, all_vertices, rng, lazy)
            nxt |= infected[pick]
    else:
        p2 = policy.second_selection_probability()
        if p2 > 0.0:
            second = rng.random(n) < p2
            actors = all_vertices[second]
            pick2 = _legacy_select(graph, actors, rng, lazy)
            nxt[actors] |= infected[pick2]
    nxt[source] = True
    return nxt


def _legacy_bips_run(graph, policy, lazy, source, rng, cap):
    infected = np.zeros(graph.n, dtype=bool)
    infected[source] = True
    sizes = [1]
    t = 0
    while not infected.all() and t < cap:
        t += 1
        infected = _legacy_bips_step(graph, policy, lazy, source, infected, rng)
        sizes.append(int(infected.sum()))
    return (t if infected.all() else -1), np.asarray(sizes, dtype=np.int64)


def _legacy_bips_run_batch(graph, policy, lazy, source, runs, rng, cap):
    n = graph.n
    all_vertices = np.arange(n, dtype=np.int64)
    infected = np.zeros((runs, n), dtype=bool)
    infected[:, source] = True
    times = np.full(runs, -1, dtype=np.int64)
    t = 0
    while np.any(times < 0) and t < cap:
        t += 1
        alive = times < 0
        verts_tile = np.tile(all_vertices, runs)
        pick = _legacy_select(graph, verts_tile, rng, lazy).reshape(runs, n)
        nxt = np.take_along_axis(infected, pick, axis=1)
        if isinstance(policy, FixedBranching):
            for _ in range(policy.b - 1):
                pick = _legacy_select(graph, verts_tile, rng, lazy).reshape(runs, n)
                nxt |= np.take_along_axis(infected, pick, axis=1)
        else:
            p2 = policy.second_selection_probability()
            if p2 > 0.0:
                pick = _legacy_select(graph, verts_tile, rng, lazy).reshape(runs, n)
                second = rng.random((runs, n)) < p2
                nxt |= np.take_along_axis(infected, pick, axis=1) & second
        nxt[:, source] = True
        infected = np.where(alive[:, None], nxt, infected)
        times[alive & infected.all(axis=1)] = t
    return times


class TestBipsEquivalence:
    @pytest.mark.parametrize("branching,lazy", [(2, False), (3, False), (1.5, True)])
    def test_run(self, expander, branching, lazy):
        policy = make_policy(branching)
        for seed in range(4):
            t_ref, sizes_ref = _legacy_bips_run(
                expander, policy, lazy, 0, np.random.default_rng(seed), 10_000
            )
            res = BipsProcess(expander, 0, branching, lazy=lazy).run(
                np.random.default_rng(seed)
            )
            assert res.infection_time == t_ref
            assert np.array_equal(res.sizes, sizes_ref)

    @pytest.mark.parametrize("branching,lazy", [(2, False), (1, False), (1.5, True)])
    def test_run_batch(self, expander, branching, lazy):
        policy = make_policy(branching)
        ref = _legacy_bips_run_batch(
            expander, policy, lazy, 0, 7, np.random.default_rng(9), 10_000
        )
        res = BipsProcess(expander, 0, branching, lazy=lazy).run_batch(
            7, np.random.default_rng(9)
        )
        assert np.array_equal(res.infection_times, ref)


# ----------------------------------------------------------------------
# Legacy gossip baselines (single runs; the samplers are now batched)
# ----------------------------------------------------------------------
def _legacy_push_time(graph, start, rng, fanout, cap):
    informed = np.zeros(graph.n, dtype=bool)
    informed[start] = True
    t = 0
    while int(informed.sum()) < graph.n and t < cap:
        t += 1
        senders = np.repeat(np.nonzero(informed)[0], fanout)
        informed[graph.sample_neighbors(senders, rng)] = True
    return t


def _legacy_pull_time(graph, start, rng, cap):
    informed = np.zeros(graph.n, dtype=bool)
    informed[start] = True
    t = 0
    while int(informed.sum()) < graph.n and t < cap:
        t += 1
        askers = np.nonzero(~informed)[0]
        answers = graph.sample_neighbors(askers, rng)
        informed[askers] |= informed[answers]
    return t


def _legacy_push_pull_time(graph, start, rng, cap):
    informed = np.zeros(graph.n, dtype=bool)
    informed[start] = True
    t = 0
    while int(informed.sum()) < graph.n and t < cap:
        t += 1
        before = informed.copy()
        senders = np.nonzero(before)[0]
        askers = np.nonzero(~before)[0]
        pushed = graph.sample_neighbors(senders, rng)
        answers = graph.sample_neighbors(askers, rng)
        informed[pushed] = True
        informed[askers] |= before[answers]
    return t


def _legacy_multi_walk_time(graph, k, start, rng, lazy, cap):
    positions = np.full(k, start, dtype=np.int64)
    seen = np.zeros(graph.n, dtype=bool)
    seen[positions] = True
    remaining = graph.n - int(seen.sum())
    t = 0
    while remaining > 0 and t < cap:
        t += 1
        nxt = graph.sample_neighbors(positions, rng)
        if lazy:
            stay = rng.random(k) < 0.5
            nxt = np.where(stay, positions, nxt)
        positions = nxt
        seen[positions] = True
        remaining = graph.n - int(seen.sum())
    return t


class TestBaselineEquivalence:
    def test_push(self, expander):
        for seed, fanout in ((0, 1), (1, 2), (2, 1)):
            ref = _legacy_push_time(expander, 3, np.random.default_rng(seed), fanout, 10_000)
            new = push_broadcast_time(
                expander, 3, rng=np.random.default_rng(seed), fanout=fanout
            )
            assert new == ref

    def test_pull(self, expander):
        for seed in range(3):
            ref = _legacy_pull_time(expander, 1, np.random.default_rng(seed), 10_000)
            new = pull_broadcast_time(expander, 1, rng=np.random.default_rng(seed))
            assert new == ref

    def test_push_pull(self, expander):
        for seed in range(3):
            ref = _legacy_push_pull_time(expander, 2, np.random.default_rng(seed), 10_000)
            new = push_pull_broadcast_time(expander, 2, rng=np.random.default_rng(seed))
            assert new == ref

    def test_multi_walk(self, expander):
        for seed, k, lazy in ((0, 4, False), (1, 7, True), (2, 1, False)):
            ref = _legacy_multi_walk_time(
                expander, k, 0, np.random.default_rng(seed), lazy, 100_000
            )
            new = multi_walk_cover_time(
                expander, k, 0, rng=np.random.default_rng(seed), lazy=lazy
            )
            assert new == ref

    def test_random_walk_matches_per_step_reference(self):
        # Reference: one sample_neighbors draw per step (the engine's
        # stream; the historical block-drawing loop is not preserved).
        g = petersen_graph()
        for seed in range(3):
            ref = _legacy_multi_walk_time(
                g, 1, 0, np.random.default_rng(seed), False, 100_000
            )
            new = random_walk_cover_time(g, 0, rng=np.random.default_rng(seed))
            assert new == ref

    def test_flooding_equals_eccentricity(self, expander):
        for start in (0, 7, 23):
            assert flooding_broadcast_time(expander, start) == eccentricity(
                expander, start
            )


# ----------------------------------------------------------------------
# Legacy dynamic runners
# ----------------------------------------------------------------------
def _legacy_dynamic_cobra_run(sequence, start, rng, cap):
    """The PR 1 dynamic COBRA loop built on the static ``step`` kernel."""
    n = sequence.n
    active = np.array([start], dtype=np.int64)
    hit = np.full(n, -1, dtype=np.int64)
    hit[active] = 0
    uncovered = n - 1
    t = 0
    while uncovered > 0 and t < cap:
        graph = sequence.graph_at(t)
        proc = CobraProcess(graph, 2, validate=False)
        stranded = graph.degrees[active] == 0
        if not stranded.any():
            active = proc.step(active, rng)
        else:
            movers = active[~stranded]
            if movers.size == 0:
                active = active.copy()
            else:
                active = np.union1d(proc.step(movers, rng), active[stranded])
        t += 1
        fresh = active[hit[active] < 0]
        hit[fresh] = t
        uncovered -= fresh.shape[0]
    return (t if uncovered == 0 else -1), hit


def _legacy_dynamic_bips_step(graph, policy, source, infected, rng):
    """The PR 1 isolated-vertex fallback round (b = 2, non-lazy)."""
    if graph.dmin >= 1:
        return _legacy_bips_step(graph, policy, False, source, infected, rng)
    live = np.nonzero(graph.degrees > 0)[0]
    nxt = np.zeros(graph.n, dtype=bool)
    if live.size:
        pick = _legacy_select(graph, live, rng, False)
        nxt[live] = infected[pick]
        for _ in range(policy.b - 1):
            pick = _legacy_select(graph, live, rng, False)
            nxt[live] |= infected[pick]
    nxt[source] = True
    return nxt


def _legacy_dynamic_bips_run(sequence, source, rng, cap):
    n = sequence.n
    policy = FixedBranching(2)
    infected = np.zeros(n, dtype=bool)
    infected[source] = True
    t = 0
    while not infected.all() and t < cap:
        graph = sequence.graph_at(t)
        infected = _legacy_dynamic_bips_step(graph, policy, source, infected, rng)
        t += 1
    return (t if infected.all() else -1), infected


class TestDynamicEquivalence:
    def test_dynamic_cobra_rewiring(self, expander):
        for seed in range(3):
            seq_a = RewiringSequence(expander, 6, seed=31)
            seq_b = RewiringSequence(expander, 6, seed=31)
            t_ref, hit_ref = _legacy_dynamic_cobra_run(
                seq_a, 0, np.random.default_rng(seed), 10_000
            )
            res = DynamicCobraProcess(seq_b).run(0, np.random.default_rng(seed))
            assert res.cover_time == t_ref
            assert np.array_equal(res.hit_times, hit_ref)

    def test_dynamic_bips_churn(self, expander):
        # Churn snapshots contain isolated vertices: exercises the
        # degree-restricted kernel path.
        for seed in range(3):
            seq_a = ChurnSequence(expander, 0.15, 0.5, seed=41)
            seq_b = ChurnSequence(expander, 0.15, 0.5, seed=41)
            t_ref, infected_ref = _legacy_dynamic_bips_run(
                seq_a, 0, np.random.default_rng(seed), 500
            )
            res = DynamicBipsProcess(seq_b, 0).run(
                np.random.default_rng(seed), max_rounds=500
            )
            assert res.infection_time == t_ref
            # The final masks agree even when the cap is hit: the whole
            # 500-round trajectory is stream-identical.
            assert np.array_equal(res.final_infected, infected_ref)

    def test_dynamic_cycle(self):
        cycle = cycle_graph(21)
        seq_a = RewiringSequence(cycle, 4, seed=5)
        seq_b = RewiringSequence(cycle, 4, seed=5)
        t_ref, _ = _legacy_dynamic_cobra_run(
            seq_a, 3, np.random.default_rng(11), 10_000
        )
        res = DynamicCobraProcess(seq_b).run(3, np.random.default_rng(11))
        assert res.cover_time == t_ref
