"""Engine-layer unit tests: topology adapters, caps, rules, batching."""

import numpy as np
import pytest

from repro.baselines import (
    flooding_broadcast_times,
    push_pull_broadcast_samples,
)
from repro.core import BipsProcess, CobraProcess
from repro.core.bips import default_infection_cap
from repro.core.branching import BernoulliBranching, FixedBranching
from repro.core.cobra import default_round_cap
from repro.dynamics import (
    DynamicBipsProcess,
    DynamicCobraProcess,
    FrozenSequence,
    RewiringSequence,
    batch_seed_pair,
    dynamic_cover_time_batch,
    dynamic_infection_time_batch,
)
from repro.engine import (
    BipsRule,
    CobraRule,
    FloodingRule,
    PullRule,
    PushRule,
    SpreadEngine,
    StaticTopology,
    WalkRule,
    as_topology,
    process_round_cap,
    walk_round_cap,
)
from repro.graphs import Graph, cycle_graph, petersen_graph, random_regular_graph
from repro.graphs.properties import eccentricity
from repro.parallel import plan_batches_for


@pytest.fixture(scope="module")
def expander():
    return random_regular_graph(40, 4, rng=2)


class TestTopology:
    def test_static_wraps_graph(self, expander):
        topo = as_topology(expander)
        assert isinstance(topo, StaticTopology)
        assert topo.n == expander.n
        assert topo.graph_at(0) is expander
        assert topo.graph_at(99) is expander

    def test_sequence_passthrough(self, expander):
        seq = FrozenSequence(expander)
        assert as_topology(seq) is seq

    def test_rejects_junk(self):
        with pytest.raises(TypeError, match="graph-sequence"):
            as_topology(42)


class TestCaps:
    """Satellite: one cap helper serves every engine (no more drift)."""

    def test_core_caps_delegate(self, expander):
        expected = process_round_cap(expander.n, expander.m, expander.dmax)
        assert default_round_cap(expander) == expected
        assert default_infection_cap(expander) == expected

    def test_gossip_caps_agree_with_core(self, expander):
        # push/pull previously hand-rolled a different (smaller) formula.
        for rule in (PushRule(), PullRule(), BipsRule(FixedBranching(2), 0)):
            assert rule.default_cap(expander) == default_round_cap(expander)
        assert CobraRule(FixedBranching(2)).default_cap(expander) == (
            default_round_cap(expander)
        )

    def test_walk_cap_distinct(self, expander):
        assert WalkRule(1).default_cap(expander) == walk_round_cap(
            expander.n, expander.dmax
        )

    def test_flooding_cap_is_n(self, expander):
        assert FloodingRule().default_cap(expander) == expander.n

    def test_dynamic_flooding_cap_generous(self, expander):
        # Under churn a vertex can be absent past round n, so reflood
        # mode gets the epidemic cap rather than the eccentricity one.
        assert FloodingRule(reflood=True).default_cap(expander) == (
            default_round_cap(expander)
        )


class TestPlanBatchesWiring:
    """Satellite: plan_batches accounts the rule's declared arrays."""

    def test_rule_footprints_declared(self):
        assert BipsRule(FixedBranching(2), 0).state_arrays > CobraRule(
            FixedBranching(2)
        ).state_arrays

    def test_heavier_rule_gets_smaller_batches(self):
        n = 1024 * 1024
        budget = 64 * 1024 * 1024
        cobra = plan_batches_for(
            CobraRule(FixedBranching(2)), 32, n, budget_bytes=budget
        )
        bips = plan_batches_for(
            BipsRule(FixedBranching(2), 0), 32, n, budget_bytes=budget
        )
        assert sum(cobra) == sum(bips) == 32
        assert max(bips) < max(cobra)

    def test_defaults_to_four_arrays(self):
        class Bare:
            pass

        from repro.parallel import plan_batches

        assert plan_batches_for(Bare(), 10, 100) == plan_batches(10, 100)


class TestRuleValidation:
    def test_bips_discipline_validated(self):
        with pytest.raises(ValueError, match="discipline"):
            BipsRule(FixedBranching(2), 0, discipline="triple")

    def test_bips_single_requires_one_run(self, expander):
        rule = BipsRule(FixedBranching(2), 0, discipline="single")
        state = np.zeros((2, expander.n), dtype=bool)
        with pytest.raises(ValueError, match="R == 1"):
            rule.step(expander, state, np.ones(2, bool), np.random.default_rng(0))

    def test_walk_needs_walker(self):
        with pytest.raises(ValueError, match="walker"):
            WalkRule(0)

    def test_push_fanout_validated(self):
        with pytest.raises(ValueError, match="fanout"):
            PushRule(0)

    def test_frontier_flooding_rejects_dynamic_topology(self, expander):
        # Frontier-only flooding is wrong when interior vertices can
        # gain new neighbours; the engine enforces reflood=True there.
        seq = FrozenSequence(expander)
        with pytest.raises(ValueError, match="reflood"):
            SpreadEngine(FloodingRule(runs=2), seq)
        engine = SpreadEngine(FloodingRule(runs=2, reflood=True), seq)
        rule = engine.rule
        mask = np.zeros((2, expander.n), dtype=bool)
        mask[:, 0] = True
        res = engine.run(rule.pack(mask), np.random.default_rng(0))
        assert res.all_finished


class TestEngineLoop:
    def test_result_properties(self, expander):
        engine = SpreadEngine(CobraRule(FixedBranching(2)), expander)
        state = np.zeros((3, expander.n), dtype=bool)
        state[:, 0] = True
        res = engine.run(state, np.random.default_rng(0))
        assert res.all_finished
        assert res.finished_fraction() == 1.0
        assert res.rounds_run == res.finish_times.max()

    def test_cap_leaves_unfinished(self):
        g = cycle_graph(64)
        engine = SpreadEngine(CobraRule(FixedBranching(2)), g)
        state = np.zeros((2, 64), dtype=bool)
        state[:, 0] = True
        res = engine.run(state, np.random.default_rng(0), max_rounds=2)
        assert not res.all_finished
        assert res.rounds_run == 2
        assert np.all(res.finish_times == -1)

    def test_initial_state_not_mutated(self, expander):
        engine = SpreadEngine(BipsRule(FixedBranching(2), 0), expander)
        state = np.zeros((2, expander.n), dtype=bool)
        state[:, 0] = True
        before = state.copy()
        engine.run(state, np.random.default_rng(1))
        assert np.array_equal(state, before)

    def test_on_round_sees_every_round(self, expander):
        engine = SpreadEngine(BipsRule(FixedBranching(2), 0), expander)
        state = np.zeros((1, expander.n), dtype=bool)
        state[:, 0] = True
        seen = []
        res = engine.run(
            state,
            np.random.default_rng(2),
            on_round=lambda t, g, s: seen.append((t, int(s.sum()))),
        )
        assert [t for t, _ in seen] == list(range(res.rounds_run))

    def test_bernoulli_rule_through_engine(self, expander):
        engine = SpreadEngine(CobraRule(BernoulliBranching(0.5)), expander)
        state = np.zeros((4, expander.n), dtype=bool)
        state[:, 0] = True
        res = engine.run(state, np.random.default_rng(3))
        assert res.all_finished


class TestBatchedDynamicRunner:
    """ROADMAP satellite: R dynamic runs share one topology realisation."""

    def test_cobra_run_batch_shapes(self, expander):
        seq = RewiringSequence(expander, 6, seed=1)
        res = DynamicCobraProcess(seq).run_batch(
            np.zeros(8, dtype=np.int64), np.random.default_rng(0), track_hits=True
        )
        assert res.cover_times.shape == (8,)
        assert res.all_covered
        assert res.hit_times.shape == (8, expander.n)
        assert np.all(res.hit_times.max(axis=1) == res.cover_times)

    def test_bips_run_batch_shapes(self, expander):
        seq = RewiringSequence(expander, 6, seed=2)
        res = DynamicBipsProcess(seq, 0).run_batch(
            5, np.random.default_rng(1), record_sizes=True
        )
        assert res.infection_times.shape == (5,)
        assert res.all_infected
        assert res.sizes.shape[0] == 5
        assert np.all(res.sizes[:, 0] == 1)

    def test_frozen_batch_equals_static_batch(self, expander):
        # The engine-level frozen anchor: same rule, same stream.
        starts = np.zeros(6, dtype=np.int64)
        frozen = DynamicCobraProcess(FrozenSequence(expander)).run_batch(
            starts, np.random.default_rng(7)
        )
        static = CobraProcess(expander).run_batch(starts, np.random.default_rng(7))
        assert np.array_equal(frozen.cover_times, static.cover_times)

        frozen_b = DynamicBipsProcess(FrozenSequence(expander), 0).run_batch(
            6, np.random.default_rng(8)
        )
        static_b = BipsProcess(expander, 0).run_batch(6, np.random.default_rng(8))
        assert np.array_equal(frozen_b.infection_times, static_b.infection_times)

    def test_batch_samplers_deterministic(self, expander):
        factory = lambda topo: RewiringSequence(expander, 8, seed=topo)  # noqa: E731
        a = dynamic_cover_time_batch(factory, 10, seed=42)
        b = dynamic_cover_time_batch(factory, 10, seed=42)
        c = dynamic_cover_time_batch(factory, 10, seed=43)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)
        ia = dynamic_infection_time_batch(factory, 6, seed=5)
        ib = dynamic_infection_time_batch(factory, 6, seed=5)
        assert np.array_equal(ia, ib)

    def test_batch_sampler_raises_on_cap(self):
        stranded = Graph(3, [(0, 1)], name="stranded")
        with pytest.raises(RuntimeError, match="round cap"):
            dynamic_cover_time_batch(
                FrozenSequence(stranded), 4, seed=0, max_rounds=5
            )

    def test_batch_seed_pair_published(self):
        topo, proc = batch_seed_pair(123)
        topo2, proc2 = batch_seed_pair(123)
        assert np.array_equal(
            topo.generate_state(2), topo2.generate_state(2)
        )
        assert np.array_equal(proc.generate_state(2), proc2.generate_state(2))


class TestBatchedBaselines:
    def test_flooding_batch_equals_eccentricities(self, expander):
        starts = np.array([0, 5, 11, 23], dtype=np.int64)
        times = flooding_broadcast_times(expander, starts)
        assert times.tolist() == [eccentricity(expander, int(s)) for s in starts]

    def test_flooding_batch_validation(self, expander):
        with pytest.raises(ValueError):
            flooding_broadcast_times(expander, np.empty(0, dtype=np.int64))
        with pytest.raises(ValueError):
            flooding_broadcast_times(expander, np.array([expander.n]))

    def test_push_pull_samples(self):
        g = petersen_graph()
        s = push_pull_broadcast_samples(g, runs=12, rng=3)
        assert s.shape == (12,)
        assert np.all(s >= 1)

    def test_batched_gossip_matches_single_distribution(self, expander):
        # Batched sampler vs single-run loop: same distribution.
        from repro.baselines import push_broadcast_samples, push_broadcast_time

        batch = push_broadcast_samples(expander, runs=120, rng=5)
        single = np.array(
            [
                push_broadcast_time(expander, rng=np.random.default_rng(900 + i))
                for i in range(120)
            ]
        )
        se = np.sqrt(batch.var(ddof=1) / 120 + single.var(ddof=1) / 120)
        assert abs(batch.mean() - single.mean()) < 4 * se

    def test_isolated_vertices_in_batch_bips(self):
        # dmin == 0 batch path: isolated vertices stay uninfected.
        g = Graph(4, [(0, 1)], name="pair-plus-isolated")
        seq = FrozenSequence(g)
        res = DynamicBipsProcess(seq, 0).run_batch(
            3, np.random.default_rng(0), max_rounds=30, completion="all-active"
        )
        assert res.all_infected  # {0, 1} is the present set
