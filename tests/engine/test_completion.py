"""Completion criteria: unit semantics, property tests, churn behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.branching import FixedBranching
from repro.dynamics import (
    ChurnSequence,
    DynamicBipsProcess,
    DynamicCobraProcess,
    FrozenSequence,
    dynamic_infection_time_batch,
)
from repro.engine import (
    AllActive,
    AllVertices,
    CobraRule,
    SpreadEngine,
    TargetHit,
    make_completion,
)
from repro.graphs import Graph, complete_graph, path_graph, random_regular_graph


def _graph_with_isolated(n, present):
    """A path over the ``present`` vertices; the rest have degree zero."""
    edges = list(zip(present[:-1], present[1:]))
    return Graph(n, edges)


class TestMakeCompletion:
    def test_strings(self):
        assert isinstance(make_completion("all-vertices"), AllVertices)
        assert isinstance(make_completion("all-active"), AllActive)
        assert isinstance(make_completion("target-hit", target=3), TargetHit)

    def test_passthrough(self):
        crit = AllActive()
        assert make_completion(crit) is crit

    def test_target_required(self):
        with pytest.raises(ValueError, match="target"):
            make_completion("target-hit")

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown completion"):
            make_completion("some-vertices")


@st.composite
def _basis_and_present(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    runs = draw(st.integers(min_value=1, max_value=5))
    basis = np.array(
        draw(
            st.lists(
                st.lists(st.booleans(), min_size=n, max_size=n),
                min_size=runs,
                max_size=runs,
            )
        ),
        dtype=bool,
    )
    present = draw(
        st.lists(st.integers(0, n - 1), min_size=2, max_size=n, unique=True)
    )
    return basis, sorted(present), n


class TestCriteriaProperties:
    @given(_basis_and_present())
    @settings(max_examples=60, deadline=None)
    def test_all_vertices_is_row_all(self, case):
        basis, present, n = case
        g = _graph_with_isolated(n, present)
        done = AllVertices().done(basis, g)
        assert np.array_equal(done, basis.all(axis=1))
        # The remaining fast path agrees with the direct evaluation.
        remaining = n - basis.sum(axis=1)
        assert np.array_equal(AllVertices().done(basis, g, remaining), done)

    @given(_basis_and_present())
    @settings(max_examples=60, deadline=None)
    def test_all_active_ignores_departed(self, case):
        basis, present, n = case
        g = _graph_with_isolated(n, present)
        done = AllActive().done(basis, g)
        expected = np.array(
            [all(row[v] for v in present) for row in basis], dtype=bool
        )
        assert np.array_equal(done, expected)

    @given(_basis_and_present())
    @settings(max_examples=60, deadline=None)
    def test_all_vertices_implies_all_active(self, case):
        basis, present, n = case
        g = _graph_with_isolated(n, present)
        av = AllVertices().done(basis, g)
        aa = AllActive().done(basis, g)
        assert np.all(aa[av])  # all-vertices done => all-active done

    @given(_basis_and_present(), st.integers(0, 11))
    @settings(max_examples=60, deadline=None)
    def test_target_hit_is_column(self, case, target_raw):
        basis, present, n = case
        target = target_raw % n
        g = _graph_with_isolated(n, present)
        done = TargetHit(target).done(basis, g)
        assert np.array_equal(done, basis[:, target])

    def test_all_active_empty_snapshot(self):
        g = Graph(4, [])  # every vertex departed
        basis = np.zeros((3, 4), dtype=bool)
        assert AllActive().done(basis, g).all()


class TestEngineTargetHit:
    def test_finish_equals_hit_time(self):
        g = path_graph(6)
        engine = SpreadEngine(CobraRule(FixedBranching(2)), g, "target-hit", target=5)
        state = np.zeros((4, 6), dtype=bool)
        state[:, 0] = True
        res = engine.run(state, np.random.default_rng(0), track_hits=True)
        assert res.all_finished
        assert np.array_equal(res.finish_times, res.hit_times[:, 5])
        assert np.all(res.finish_times >= 5)  # distance lower bound

    def test_target_at_start_is_zero(self):
        g = path_graph(4)
        engine = SpreadEngine(CobraRule(FixedBranching(2)), g, "target-hit", target=2)
        state = np.zeros((2, 4), dtype=bool)
        state[:, 2] = True
        res = engine.run(state, np.random.default_rng(0))
        assert np.array_equal(res.finish_times, [0, 0])


class TestChurnAwareCompletion:
    """ROADMAP satellite: under churn, all-active is the reachable target."""

    def test_bips_all_active_completes_where_all_vertices_cannot(self):
        base = complete_graph(24)
        # Stationary presence ~ rejoin/(leave+rejoin) = 0.25: all 24
        # present at once is astronomically unlikely, so the
        # all-vertices target is unreachable within the cap while the
        # all-active target completes quickly.
        seq = ChurnSequence(base, leave=0.6, rejoin=0.2, seed=3)
        proc = DynamicBipsProcess(seq, 0)
        res_active = proc.run(
            np.random.default_rng(1), max_rounds=400, completion="all-active"
        )
        assert res_active.infected_all
        assert res_active.infection_time >= 0

        seq2 = ChurnSequence(base, leave=0.6, rejoin=0.2, seed=3)
        proc2 = DynamicBipsProcess(seq2, 0)
        res_all = proc2.run(
            np.random.default_rng(1), max_rounds=400, completion="all-vertices"
        )
        assert not res_all.infected_all

    def test_cobra_all_active_no_later_than_all_vertices(self):
        base = random_regular_graph(32, 4, rng=7)
        for seed in range(3):
            seq_a = ChurnSequence(base, leave=0.2, rejoin=0.5, seed=9)
            seq_b = ChurnSequence(base, leave=0.2, rejoin=0.5, seed=9)
            t_active = DynamicCobraProcess(seq_a).run(
                0, np.random.default_rng(seed), completion="all-active"
            )
            t_all = DynamicCobraProcess(seq_b).run(
                0, np.random.default_rng(seed), completion="all-vertices"
            )
            assert t_active.covered and t_all.covered
            # Identical trajectories until the earlier stop: all-active
            # can only finish earlier or at the same round.
            assert t_active.cover_time <= t_all.cover_time

    def test_all_active_equals_all_vertices_on_static(self):
        g = random_regular_graph(24, 3, rng=1)
        frozen_a, frozen_b = FrozenSequence(g), FrozenSequence(g)
        a = DynamicCobraProcess(frozen_a).run(
            0, np.random.default_rng(4), completion="all-active"
        )
        b = DynamicCobraProcess(frozen_b).run(
            0, np.random.default_rng(4), completion="all-vertices"
        )
        assert a.cover_time == b.cover_time

    def test_batched_all_active_sampler(self):
        base = complete_graph(16)
        factory = lambda topo: ChurnSequence(  # noqa: E731
            base, leave=0.5, rejoin=0.25, seed=topo
        )
        times = dynamic_infection_time_batch(
            factory, 6, seed=11, max_rounds=500, completion="all-active"
        )
        assert times.shape == (6,)
        assert np.all(times >= 0)
