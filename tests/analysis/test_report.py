"""Report-generation tests."""

import pytest

from repro.analysis import PAPER_CLAIMS, generate_report, render_experiment_section
from repro.experiments import (
    Check,
    ExperimentConfig,
    ExperimentResult,
    Table,
    run_experiment,
)


class TestPaperClaims:
    def test_all_experiments_covered(self):
        from repro.experiments import EXPERIMENTS

        assert sorted(PAPER_CLAIMS) == sorted(EXPERIMENTS)

    def test_claims_have_content(self):
        for claim in PAPER_CLAIMS.values():
            assert claim.anchor
            assert claim.claim
            assert claim.shape_criterion


class TestRenderSection:
    def test_section_structure(self):
        result = run_experiment("E4", ExperimentConfig(scale="smoke"))
        text = render_experiment_section(result)
        assert text.startswith("## E4")
        assert "**Paper claim.**" in text
        assert "**Verdicts.**" in text
        assert "✅" in text

    def test_failed_check_rendered(self):
        t = Table(title="demo")
        t.add_row(x=1)
        result = ExperimentResult(
            experiment_id="E1",
            title="demo",
            tables=[t],
            checks=[Check("bad", False, "it broke")],
            notes=["note"],
        )
        text = render_experiment_section(result)
        assert "❌ bad — it broke" in text
        assert "**Notes.**" in text


class TestGenerateReport:
    def test_smoke_report_subset(self):
        config = ExperimentConfig(scale="smoke")
        text = generate_report(config, experiment_ids=["E4", "E10"])
        assert "# EXPERIMENTS" in text
        assert "## E4" in text and "## E10" in text
        assert "| E4 |" in text  # summary row
        assert "PASS" in text

    def test_precomputed_results_used(self):
        result = run_experiment("E4", ExperimentConfig(scale="smoke"))
        text = generate_report(
            ExperimentConfig(scale="smoke"),
            experiment_ids=["E4"],
            results={"E4": result},
        )
        assert "## E4" in text
