"""ASCII chart tests."""

import numpy as np
import pytest

from repro.analysis import ascii_line_chart, render_ensemble
from repro.core import bips_size_ensemble
from repro.graphs import cycle_graph


class TestLineChart:
    def test_basic_render(self):
        xs = np.arange(10)
        out = ascii_line_chart(xs, {"linear": xs.astype(float)}, width=40, height=8)
        lines = out.splitlines()
        assert len(lines) == 8 + 3  # grid + axis + xlabels + legend
        assert "* linear" in lines[-1]
        assert "*" in out

    def test_values_scaled_to_extremes(self):
        xs = np.arange(5)
        ys = np.array([0.0, 1.0, 2.0, 3.0, 4.0])
        out = ascii_line_chart(xs, {"y": ys}, width=20, height=5)
        top_row = out.splitlines()[0]
        bottom_row = out.splitlines()[4]
        assert top_row.strip().startswith("4.00")
        assert "*" in top_row and "*" in bottom_row

    def test_constant_curve_no_crash(self):
        xs = np.arange(6)
        out = ascii_line_chart(xs, {"flat": np.full(6, 3.0)})
        assert "*" in out

    def test_multiple_curves_distinct_markers(self):
        xs = np.arange(8).astype(float)
        out = ascii_line_chart(xs, {"a": xs, "b": xs[::-1].astype(float)})
        assert "* a" in out and ". b" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_line_chart([1.0], {"y": np.array([1.0])})
        with pytest.raises(ValueError):
            ascii_line_chart([1.0, 2.0], {"y": np.array([1.0])})
        xs = np.arange(4).astype(float)
        too_many = {f"c{i}": xs for i in range(9)}
        with pytest.raises(ValueError):
            ascii_line_chart(xs, too_many)


class TestRenderEnsemble:
    def test_contains_label_and_band(self):
        ens = bips_size_ensemble(cycle_graph(9), runs=15, seed=1)
        out = render_ensemble(ens)
        assert "bips-sizes:cycle-9" in out
        assert "q95" in out and "q05" in out and "mean" in out


class TestTrajectoryCli:
    def test_bips_chart(self, capsys):
        from repro.cli import main

        assert main(["trajectory", "cycle-9", "--runs", "10"]) == 0
        out = capsys.readouterr().out
        assert "bips-sizes" in out

    def test_cobra_chart(self, capsys):
        from repro.cli import main

        assert (
            main(
                ["trajectory", "complete-12", "--process", "cobra", "--runs", "8"]
            )
            == 0
        )
        assert "cobra-coverage" in capsys.readouterr().out
