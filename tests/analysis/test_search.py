"""Worst-case search tests."""

import pytest

from repro.analysis import normalized_cover, worst_case_search
from repro.graphs import barbell_graph, complete_graph, path_graph


class TestObjective:
    def test_normalized_cover_positive(self):
        assert normalized_cover(complete_graph(16), runs=10, rng=1) > 0

    def test_known_families_below_one(self):
        # Known adversarial families sit well below ratio 1.
        for g in (path_graph(64), barbell_graph(8)):
            assert normalized_cover(g, runs=12, rng=2) < 1.5


class TestSearch:
    def test_search_improves_or_holds(self):
        res = worst_case_search(10, steps=30, runs_per_eval=8, seed=3)
        assert res.best_graph.is_connected()
        assert res.best_graph.n == 10
        assert res.steps_taken == 30
        # Hill-climb never ends below a fair re-estimate of the start;
        # allow MC noise.
        assert res.best_objective > 0.3 * res.initial_objective

    def test_search_does_not_strain_conjecture(self):
        # The headline scientific observation: local search cannot push
        # the ratio anywhere near super-logarithmic territory.
        res = worst_case_search(12, steps=50, runs_per_eval=8, seed=4)
        assert not res.conjecture_strained
        assert res.best_objective < 2.0

    def test_seeded_determinism(self):
        a = worst_case_search(8, steps=15, runs_per_eval=6, seed=5)
        b = worst_case_search(8, steps=15, runs_per_eval=6, seed=5)
        assert a.best_graph == b.best_graph
        assert a.best_objective == b.best_objective

    def test_initial_graph_accepted(self):
        init = barbell_graph(5)
        res = worst_case_search(
            10, steps=10, runs_per_eval=6, seed=6, initial=init
        )
        assert res.best_graph.n == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            worst_case_search(3)
        with pytest.raises(ValueError):
            worst_case_search(10, initial=path_graph(5))
