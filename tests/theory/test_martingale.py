"""Concentration-inequality machinery tests."""

import numpy as np
import pytest

from repro.theory import (
    azuma_tail_bound,
    check_azuma_on_paths,
    corollary22_bound,
    empirical_sup_tail,
    synthetic_supermartingale_paths,
)


class TestBoundFormulas:
    def test_azuma_values(self):
        assert azuma_tail_bound(2.0) == pytest.approx(np.exp(-2.0))
        with pytest.raises(ValueError):
            azuma_tail_bound(0.0)

    def test_corollary22_value(self):
        val = corollary22_bound(2.0, 0.5, 16)
        expected = 16 * np.exp(-1.0) + 64 * np.exp(-0.25 * 16 / 4)
        assert val == pytest.approx(expected)

    def test_corollary22_validation(self):
        with pytest.raises(ValueError):
            corollary22_bound(-1.0, 0.5, 4)
        with pytest.raises(ValueError):
            corollary22_bound(1.0, 1.5, 4)
        with pytest.raises(ValueError):
            corollary22_bound(1.0, 0.5, 0)

    def test_corollary22_decreasing_in_delta(self):
        assert corollary22_bound(4.0, 0.5, 64) < corollary22_bound(2.0, 0.5, 64)


class TestEmpiricalSupTail:
    def test_deterministic_flat_paths(self):
        # All-zero increments: S_q = 0 never exceeds a positive threshold.
        paths = np.zeros((10, 50))
        assert empirical_sup_tail(paths, delta=1.0, alpha=0.5, q0=5) == 0.0

    def test_deterministic_rising_paths(self):
        # Constant +1 increments: S_q = q > alpha (q - q0) + delta sqrt(q0)
        # eventually, so every path exceeds.
        paths = np.ones((4, 100))
        assert empirical_sup_tail(paths, delta=1.0, alpha=0.5, q0=4) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            empirical_sup_tail(np.zeros(5), 1.0, 0.5, 1)
        with pytest.raises(ValueError):
            empirical_sup_tail(np.zeros((2, 5)), 1.0, 0.5, 10)


class TestSyntheticPaths:
    def test_rademacher_bounded_and_centered(self, rng):
        paths = synthetic_supermartingale_paths(200, 100, rng)
        assert set(np.unique(paths).tolist()) <= {-1.0, 1.0}
        assert abs(paths.mean()) < 0.05

    def test_negative_drift(self, rng):
        paths = synthetic_supermartingale_paths(500, 200, rng, drift=-0.2)
        assert paths.mean() == pytest.approx(-0.2, abs=0.02)

    def test_uniform_kind(self, rng):
        paths = synthetic_supermartingale_paths(
            300, 100, rng, drift=-0.05, kind="uniform"
        )
        assert np.all(np.abs(paths) <= 1.0)
        assert paths.mean() <= 0.0

    def test_positive_drift_rejected(self, rng):
        with pytest.raises(ValueError):
            synthetic_supermartingale_paths(10, 10, rng, drift=0.1)

    def test_unknown_kind(self, rng):
        with pytest.raises(ValueError):
            synthetic_supermartingale_paths(10, 10, rng, kind="cauchy")


class TestInequalitiesHold:
    def test_azuma_on_rademacher(self, rng):
        # Monte-Carlo check of Lemma 2.1 itself.
        paths = synthetic_supermartingale_paths(4000, 256, rng)
        sums = paths.sum(axis=1)
        for delta in (1.0, 2.0, 3.0):
            emp = float(np.mean(sums > delta * np.sqrt(256)))
            assert emp <= azuma_tail_bound(delta) + 0.01

    def test_corollary22_grid_holds(self, rng):
        paths = synthetic_supermartingale_paths(2000, 256, rng)
        checks = check_azuma_on_paths(
            paths, deltas=(3.0, 5.0), alphas=(0.5, 1.0), q0s=(16, 64)
        )
        assert len(checks) == 8
        assert all(c.holds for c in checks)

    def test_check_respects_horizon(self, rng):
        paths = synthetic_supermartingale_paths(100, 20, rng)
        checks = check_azuma_on_paths(paths, q0s=(8, 64))
        assert all(c.q0 == 8 for c in checks)  # q0=64 beyond horizon skipped
