"""Mean-field predictor tests, including agreement with simulation."""

import numpy as np
import pytest

from repro.core import BipsProcess, CobraProcess
from repro.graphs import complete_graph
from repro.theory import (
    bips_complete_expected_next,
    bips_complete_meanfield_trajectory,
    cobra_complete_expected_next,
    cobra_complete_meanfield_trajectory,
    meanfield_rounds_to_cover,
)


class TestCobraMap:
    def test_single_particle_stays_single(self):
        # k = 1, b = 1... with b=2: E|C_1| = n(1-(1-1/(n-1))^2) ~ 2.
        val = cobra_complete_expected_next(1, 100, b=2)
        assert 1.9 < val < 2.1

    def test_early_doubling(self):
        # Small k: growth factor approaches b.
        val = cobra_complete_expected_next(5, 10_000, b=2)
        assert val == pytest.approx(10.0, rel=0.01)

    def test_fixed_point_near_0797(self):
        # x = 1 - e^{-2x} has root ~0.7968 for b = 2.
        traj = cobra_complete_meanfield_trajectory(10_000, t_max=200)
        assert traj[-1] / 10_000 == pytest.approx(0.7968, abs=0.01)

    def test_range_validation(self):
        with pytest.raises(ValueError):
            cobra_complete_expected_next(-1, 10)

    def test_matches_simulation(self):
        # Mean |C_t| from simulation vs the occupancy map on K_64.
        n = 64
        g = complete_graph(n)
        proc = CobraProcess(g)
        rounds = 8
        sums = np.zeros(rounds + 1)
        runs = 300
        rng = np.random.default_rng(3)
        for _ in range(runs):
            active = np.array([0])
            sums[0] += 1
            for t in range(1, rounds + 1):
                active = proc.step(active, rng)
                sums[t] += active.shape[0]
        means = sums / runs
        traj = cobra_complete_meanfield_trajectory(n, t_max=rounds)
        # Occupancy map ignores O(k/n^2) self-exclusion: 5% tolerance.
        for t in range(rounds + 1):
            assert means[t] == pytest.approx(traj[t], rel=0.07), f"t={t}"


class TestBipsMap:
    def test_logistic_shape(self):
        # Fraction map x -> 1 - (1-x)^2 at rho=1, ignoring the source.
        val = bips_complete_expected_next(50, 101, rho=1.0)
        frac = 0.5
        assert val == pytest.approx(1 + 100 * (1 - (1 - frac) ** 2), rel=0.01)

    def test_rho_slows(self):
        full = bips_complete_meanfield_trajectory(1000, rho=1.0, t_max=20)
        half = bips_complete_meanfield_trajectory(1000, rho=0.5, t_max=20)
        assert full[10] > half[10]

    def test_saturates_at_n(self):
        traj = bips_complete_meanfield_trajectory(500, t_max=100)
        assert traj[-1] == pytest.approx(500, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            bips_complete_expected_next(0, 10)

    def test_matches_simulation(self):
        # Larger n: the mean-field map is exact only as n -> infinity
        # (Jensen-gap at mid-trajectory shrinks with concentration).
        n = 256
        g = complete_graph(n)
        proc = BipsProcess(g, 0)
        rounds = 10
        runs = 200
        rng = np.random.default_rng(5)
        sums = np.zeros(rounds + 1)
        for _ in range(runs):
            infected = np.zeros(n, dtype=bool)
            infected[0] = True
            sums[0] += 1
            for t in range(1, rounds + 1):
                infected = proc.step(infected, rng)
                sums[t] += infected.sum()
        means = sums / runs
        traj = bips_complete_meanfield_trajectory(n, t_max=rounds)
        for t in range(rounds + 1):
            assert means[t] == pytest.approx(traj[t], rel=0.10), f"t={t}"


class TestRoundsToCover:
    def test_logarithmic_growth(self):
        # Θ(log n): doubling n adds O(1) rounds.
        r1 = meanfield_rounds_to_cover(2**10)
        r2 = meanfield_rounds_to_cover(2**16)
        assert r2 > r1
        assert r2 - r1 <= 2 * (16 - 10)

    def test_matches_simulated_cover_scale(self):
        from repro.core import cover_time_samples

        n = 256
        predicted = meanfield_rounds_to_cover(n, fraction=0.99)
        measured = cover_time_samples(complete_graph(n), runs=50, rng=6).mean()
        # Same scale (the mean-field 99%-coverage round vs full cover).
        assert 0.4 * measured <= predicted <= 2.5 * measured

    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            meanfield_rounds_to_cover(100, fraction=1.0)
