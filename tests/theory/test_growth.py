"""Growth-lemma formula tests."""

import numpy as np
import pytest

from repro.theory import (
    cor52_candidate_bound,
    expected_growth_curve,
    lemma41_growth_bound,
    lemma42_growth_bound,
    lemma54_schedule,
)


class TestLemma41:
    def test_value(self):
        # |A| = 10, n = 100, lambda = 0.5: 10 (1 + 0.75 * 0.9) = 16.75.
        assert lemma41_growth_bound(10, 100, 0.5) == pytest.approx(16.75)

    def test_no_growth_at_full(self):
        assert lemma41_growth_bound(100, 100, 0.3) == pytest.approx(100.0)

    def test_growth_positive_below_full(self):
        for size in (1, 10, 50, 99):
            assert lemma41_growth_bound(size, 100, 0.5) > size

    def test_validation(self):
        with pytest.raises(ValueError):
            lemma41_growth_bound(10, 100, 1.0)
        with pytest.raises(ValueError):
            lemma41_growth_bound(200, 100, 0.5)


class TestLemma42:
    def test_rho_one_matches_lemma41(self):
        assert lemma42_growth_bound(10, 100, 0.5, 1.0) == pytest.approx(
            lemma41_growth_bound(10, 100, 0.5)
        )

    def test_rho_scales_growth(self):
        g_full = lemma42_growth_bound(10, 100, 0.5, 1.0) - 10
        g_half = lemma42_growth_bound(10, 100, 0.5, 0.5) - 10
        assert g_half == pytest.approx(g_full / 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            lemma42_growth_bound(10, 100, 0.5, 0.0)


class TestCorollary52:
    def test_value(self):
        assert cor52_candidate_bound(20, 100, 0.6) == pytest.approx(4.0)

    def test_requires_half(self):
        with pytest.raises(ValueError):
            cor52_candidate_bound(60, 100, 0.5)


class TestLemma54Schedule:
    def test_structure(self):
        s = lemma54_schedule(1024, 8, 0.5)
        assert s.kappas[0] == pytest.approx(s.kappa0)
        assert s.rounds[0] == pytest.approx(8 * 8 * s.kappa0)
        # Doubling targets.
        ratios = s.kappas[1:] / s.kappas[:-1]
        assert np.allclose(ratios, 2.0)
        # Linear round increments of 16 r / gap.
        diffs = np.diff(s.rounds)
        assert np.allclose(diffs, 16 * 8 / 0.5)
        # Terminates at >= n/4.
        assert s.kappas[-1] >= 1024 / 4

    def test_kappa0_formula(self):
        import math

        s = lemma54_schedule(256, 4, 0.25, c_prime=2.0)
        expected = 1 / 0.25 + (2.0 * 4 / 4) * math.log(256)
        assert s.kappa0 == pytest.approx(expected)

    def test_kappa0_capped_at_n(self):
        s = lemma54_schedule(16, 3, 0.01)
        assert s.kappa0 == 16.0
        assert len(s.kappas) == 1  # already >= n/4

    def test_gap_validated(self):
        with pytest.raises(ValueError):
            lemma54_schedule(100, 3, 0.0)

    def test_total_rounds(self):
        s = lemma54_schedule(1024, 8, 0.5)
        assert s.total_rounds == pytest.approx(s.rounds[-1])


class TestGrowthCurve:
    def test_monotone_and_capped(self):
        curve = expected_growth_curve(100, 0.5, t_max=100)
        assert curve[0] == 1.0
        assert np.all(np.diff(curve) >= -1e-12)
        assert np.all(curve <= 100.0)
        assert curve[-1] == pytest.approx(100.0, abs=1.0)

    def test_smaller_gap_slower(self):
        fast = expected_growth_curve(100, 0.1, t_max=30)
        slow = expected_growth_curve(100, 0.95, t_max=30)
        assert fast[15] > slow[15]

    def test_rho_slows(self):
        full = expected_growth_curve(100, 0.5, rho=1.0, t_max=30)
        half = expected_growth_curve(100, 0.5, rho=0.5, t_max=30)
        assert full[10] > half[10]
