"""Bound-formula tests: values, monotonicity, orderings, error handling."""

import math

import pytest

from repro.theory import (
    bound_podc16_regular,
    bound_spaa13_complete,
    bound_spaa13_expander,
    bound_spaa13_grid,
    bound_spaa16_general,
    bound_spaa16_grid,
    bound_spaa16_regular,
    bound_spaa17_general,
    bound_spaa17_regular,
    cor51_round_schedule,
    cor53_delta,
    gap_condition_holds,
    hypercube_ladder,
    lemma31_round_schedule,
    lower_bound_cover,
    rho_scaled,
)


class TestLowerBound:
    def test_log_dominates_on_complete(self):
        assert lower_bound_cover(1024, 1) == 10.0

    def test_diameter_dominates_on_path(self):
        assert lower_bound_cover(64, 63) == 63.0

    def test_tiny(self):
        assert lower_bound_cover(2, 1) == 1.0


class TestMainBounds:
    def test_general_value(self):
        # m + dmax^2 ln n at n=e^2 (~7.39): exact arithmetic check.
        val = bound_spaa17_general(100, 50, 4)
        assert val == pytest.approx(50 + 16 * math.log(100))

    def test_general_constant_scales(self):
        assert bound_spaa17_general(10, 5, 2, constant=3.0) == pytest.approx(
            3 * bound_spaa17_general(10, 5, 2)
        )

    def test_general_is_o_n2_logn(self):
        # m <= n^2/2 so bound <= (n^2/2 + n^2 ln n).
        n = 64
        val = bound_spaa17_general(n, n * (n - 1) // 2, n - 1)
        assert val <= n**2 * (1 + math.log(n))

    def test_regular_value(self):
        val = bound_spaa17_regular(100, 4, 0.5)
        assert val == pytest.approx((4 / 0.5 + 16) * math.log(100))

    def test_regular_needs_positive_gap(self):
        with pytest.raises(ValueError):
            bound_spaa17_regular(10, 3, 0.0)

    def test_regular_monotone_in_gap(self):
        assert bound_spaa17_regular(100, 4, 0.1) > bound_spaa17_regular(
            100, 4, 0.9
        )


class TestComparisonBounds:
    def test_podc16(self):
        assert bound_podc16_regular(100, 0.5) == pytest.approx(
            8 * math.log(100)
        )
        with pytest.raises(ValueError):
            bound_podc16_regular(10, -0.1)

    def test_spaa16_regular(self):
        assert bound_spaa16_regular(100, 2, 0.5) == pytest.approx(
            (16 / 0.25) * math.log(100) ** 2
        )
        with pytest.raises(ValueError):
            bound_spaa16_regular(10, 3, 0.0)

    def test_spaa16_general_vs_spaa17(self):
        # The paper's improvement: for large n, n^2 log n << n^{11/4} log n.
        n = 4096
        assert bound_spaa17_general(n, n**2 // 2, n - 1) < bound_spaa16_general(n)

    def test_grid_bounds(self):
        assert bound_spaa16_grid(256, 2) == pytest.approx(4 * 16.0)
        assert bound_spaa13_grid(256, 2, polylog_power=0.0) == pytest.approx(16.0)
        with pytest.raises(ValueError):
            bound_spaa16_grid(10, 0)

    def test_spaa13_values(self):
        assert bound_spaa13_complete(math.e**2) == pytest.approx(2.0)
        assert bound_spaa13_expander(math.e**2) == pytest.approx(4.0)


class TestImprovementRegimes:
    def test_regular_beats_podc16_when_gap_small_vs_r(self):
        # 1 - lambda = o(1/sqrt(r)): paper's stated improvement regime.
        n, r, gap = 10**6, 100, 0.01  # gap << 1/sqrt(r) = 0.1
        assert bound_spaa17_regular(n, r, gap) < bound_podc16_regular(n, gap)

    def test_podc16_beats_regular_when_gap_large(self):
        n, r, gap = 10**6, 100, 0.9
        assert bound_podc16_regular(n, gap) < bound_spaa17_regular(n, r, gap)

    def test_cheeger_link_dominance(self):
        # Via 1 - lambda >= phi^2/2, the new regular bound dominates the
        # SPAA'16 conductance bound: check at the linked values.
        n, r, phi = 10**4, 8, 0.05
        gap = phi**2 / 2
        assert bound_spaa17_regular(n, r, gap) <= bound_spaa16_regular(n, r, phi)


class TestSchedules:
    def test_lemma31(self):
        assert lemma31_round_schedule(10, 3, 100, c_prime=2.0) == pytest.approx(
            40 + 2 * 9 * math.log(100)
        )

    def test_cor51(self):
        assert cor51_round_schedule(5, 3, 100) == pytest.approx(
            60 + 9 * math.log(100)
        )

    def test_cor53(self):
        assert cor53_delta(5, 2.0, 3, 100) == pytest.approx(
            cor51_round_schedule(5, 3, 100) / 2.0
        )
        with pytest.raises(ValueError):
            cor53_delta(5, 0.5, 3, 100)

    def test_rho_scaling(self):
        assert rho_scaled(100.0, 0.5) == pytest.approx(400.0)
        assert rho_scaled(100.0, 1.0) == pytest.approx(100.0)
        with pytest.raises(ValueError):
            rho_scaled(10.0, 0.0)


class TestGapCondition:
    def test_holds_for_expander(self):
        assert gap_condition_holds(1024, 0.5)

    def test_fails_for_tiny_gap(self):
        assert not gap_condition_holds(1024, 1e-4)


class TestHypercubeLadder:
    def test_ordering_at_all_dims(self):
        for d in range(4, 16):
            ladder = hypercube_ladder(d)
            assert ladder.ordering_correct(), f"d={d}"

    def test_growth_rates(self):
        # spaa16/spaa17 ratio grows like log^5 n: ladder at d and 2d.
        l1, l2 = hypercube_ladder(6), hypercube_ladder(12)
        assert (l2.spaa16 / l2.spaa17) > (l1.spaa16 / l1.spaa17)

    def test_n_matches(self):
        assert hypercube_ladder(7).n == 128

    def test_min_dim(self):
        with pytest.raises(ValueError):
            hypercube_ladder(1)


class TestRestartArgument:
    def test_value(self):
        from repro.theory import restart_expectation_bound

        assert restart_expectation_bound(100.0, 0.5) == pytest.approx(200.0)
        assert restart_expectation_bound(100.0, 0.0) == pytest.approx(100.0)

    def test_validation(self):
        from repro.theory import restart_expectation_bound

        with pytest.raises(ValueError):
            restart_expectation_bound(0.0, 0.1)
        with pytest.raises(ValueError):
            restart_expectation_bound(10.0, 1.0)

    def test_empirical_consistency(self):
        # The bound must dominate the directly-measured expectation:
        # pick a horizon, measure the window failure probability, and
        # check E[cover] <= horizon / (1 - p_fail).
        import numpy as np

        from repro.core import cover_time_samples
        from repro.graphs import cycle_graph
        from repro.theory import restart_expectation_bound

        g = cycle_graph(15)
        samples = cover_time_samples(g, runs=300, rng=8)
        horizon = float(np.quantile(samples, 0.75))
        p_fail = float(np.mean(samples > horizon))
        bound = restart_expectation_bound(horizon, p_fail)
        assert samples.mean() <= bound
