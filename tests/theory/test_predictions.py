"""Family-prediction lookup tests."""

import math

import pytest

from repro.theory import PREDICTIONS, prediction_for


class TestLookup:
    def test_known_families_present(self):
        for family in ("complete", "hypercube", "torus-2d", "torus-3d", "cycle"):
            pred = prediction_for(family)
            assert pred.family == family

    def test_unknown_family(self):
        with pytest.raises(KeyError, match="known"):
            prediction_for("mystery-graph")

    def test_polylog_families_have_zero_power(self):
        for pred in PREDICTIONS.values():
            if pred.polylog_only:
                assert pred.power_of_n == 0.0

    def test_torus_powers(self):
        assert prediction_for("torus-2d").power_of_n == pytest.approx(0.5)
        assert prediction_for("torus-3d").power_of_n == pytest.approx(1 / 3)


class TestPredictedValue:
    def test_complete_is_log(self):
        pred = prediction_for("complete")
        assert pred.predicted_value(math.e**3) == pytest.approx(3.0)

    def test_constant_scales(self):
        pred = prediction_for("torus-2d")
        assert pred.predicted_value(100, constant=2.0) == pytest.approx(
            2 * pred.predicted_value(100)
        )

    def test_sources_cite_papers(self):
        for pred in PREDICTIONS.values():
            assert any(
                key in pred.source
                for key in ("SPAA", "PODC", "Dutta", "Mitzenmacher", "this paper",
                            "Theorem", "diameter", "Cooper")
            )
