"""JobCheckpoint and checkpointed local execution unit tests.

The manifest contract: atomic saves, plan-keyed resume (a manifest for
a different shard plan must start fresh, never resume wrong), and
``execute_shards_checkpointed`` serving completed shards from the
content-addressed cache bit-identically.
"""

import json

import numpy as np
import pytest

from repro.core.branching import make_policy
from repro.distributed import ResultCache
from repro.engine import CobraRule, SpreadEngine
from repro.graphs import hypercube_graph
from repro.parallel import ShardTask
from repro.resilience import JobCheckpoint, execute_shards_checkpointed
from repro.stats import spawn_seeds
from repro.telemetry import get_telemetry


class TestManifest:
    def test_save_and_reopen_resumes(self, tmp_path):
        path = tmp_path / "job.json"
        manifest = JobCheckpoint(path, ["k0", "k1", "k2"])
        manifest.mark_done(1)
        manifest.save()
        reopened = JobCheckpoint.open(path, ["k0", "k1", "k2"])
        assert reopened.done_indices() == [1]
        assert reopened.pending() == [0, 2]
        assert not reopened.complete

    def test_mismatched_plan_starts_fresh(self, tmp_path):
        path = tmp_path / "job.json"
        manifest = JobCheckpoint(path, ["k0", "k1"])
        manifest.mark_done(0)
        manifest.save()
        other = JobCheckpoint.open(path, ["different", "plan"])
        assert other.done_indices() == []

    def test_torn_manifest_starts_fresh(self, tmp_path):
        path = tmp_path / "job.json"
        path.write_text('{"v": 1, "kind": "checkpoint", "keys": [')
        manifest = JobCheckpoint.open(path, ["k0"])
        assert manifest.done_indices() == []

    def test_out_of_range_done_indices_dropped(self, tmp_path):
        path = tmp_path / "job.json"
        path.write_text(json.dumps({
            "v": 1, "kind": "checkpoint", "keys": ["k0", "k1"],
            "done": [0, 5, -1, "junk"],
        }))
        manifest = JobCheckpoint.open(path, ["k0", "k1"])
        assert manifest.done_indices() == [0]

    def test_save_is_atomic_no_temp_left(self, tmp_path):
        path = tmp_path / "deep" / "job.json"
        manifest = JobCheckpoint(path, ["k0"])
        manifest.mark_done(0)
        manifest.save()
        assert manifest.complete
        leftovers = [p for p in path.parent.iterdir() if p != path]
        assert leftovers == []
        assert json.loads(path.read_text())["done"] == [0]

    def test_resume_counter(self, tmp_path):
        tel = get_telemetry()
        path = tmp_path / "job.json"
        JobCheckpoint(path, ["k0"]).save()
        before = tel.counters().get("checkpoint.resumes", 0)
        JobCheckpoint.open(path, ["k0"])
        assert tel.counters().get("checkpoint.resumes", 0) == before + 1


def _tasks(runs=12, max_shard=4):
    graph = hypercube_graph(4)
    rule = CobraRule(make_policy(2))
    engine = SpreadEngine(rule, graph)
    state = np.zeros((runs, graph.n), dtype=bool)
    state[:, 0] = True
    sizes = [max_shard] * (runs // max_shard)
    bounds = np.concatenate([[0], np.cumsum(sizes)])
    return [
        ShardTask(
            rule=rule,
            topology=graph,
            completion=engine.completion,
            state=state[lo:hi],
            seed=s,
            track_hits=True,
        )
        for lo, hi, s in zip(
            bounds[:-1], bounds[1:], spawn_seeds(99, len(sizes))
        )
    ]


class TestExecuteCheckpointed:
    def test_requires_cache(self, tmp_path):
        with pytest.raises(ValueError, match="needs a result cache"):
            execute_shards_checkpointed(
                _tasks(), cache=None, checkpoint=tmp_path / "m.json"
            )

    def test_matches_plain_execution_and_resumes(self, tmp_path):
        from repro.parallel import execute_shards

        tel = get_telemetry()
        tasks = _tasks()
        reference = execute_shards(list(tasks), workers=1)
        store = ResultCache(tmp_path / "cache", max_bytes=None)
        manifest_path = tmp_path / "m.json"
        first = execute_shards_checkpointed(
            list(tasks), cache=store, checkpoint=manifest_path
        )
        for got, want in zip(first, reference):
            assert np.array_equal(got.finish_times, want.finish_times)
            assert np.array_equal(got.final_state, want.final_state)
        # Second invocation: everything from cache, nothing recomputed.
        hits_before = tel.counters().get("client.cache.hits", 0)
        second = execute_shards_checkpointed(
            list(tasks), cache=store, checkpoint=manifest_path
        )
        assert tel.counters().get("client.cache.hits", 0) == hits_before + len(
            tasks
        )
        for got, want in zip(second, reference):
            assert np.array_equal(got.finish_times, want.finish_times)
            assert np.array_equal(got.final_state, want.final_state)

    def test_partial_manifest_recomputes_only_pending(self, tmp_path):
        from repro.distributed.wire import encode_result, encode_task, task_key
        from repro.parallel import execute_shards, run_shard

        tel = get_telemetry()
        tasks = list(_tasks())
        reference = execute_shards(list(tasks), workers=1)
        keys = [task_key(encode_task(t)) for t in tasks]
        store = ResultCache(tmp_path / "cache", max_bytes=None)
        # Pre-seed shard 0 as if a previous run completed it.
        store.put(keys[0], encode_result(run_shard(tasks[0])))
        manifest = JobCheckpoint(tmp_path / "m.json", keys)
        manifest.mark_done(0)
        manifest.save()
        hits_before = tel.counters().get("client.cache.hits", 0)
        got = execute_shards_checkpointed(
            list(tasks), cache=store, checkpoint=tmp_path / "m.json"
        )
        assert tel.counters().get("client.cache.hits", 0) == hits_before + 1
        for result, want in zip(got, reference):
            assert np.array_equal(result.finish_times, want.finish_times)
            assert np.array_equal(result.final_state, want.final_state)

    def test_evicted_cache_entry_recomputes(self, tmp_path):
        # A done-marked shard whose cache entry vanished must recompute
        # rather than crash or return None.
        from repro.distributed.wire import encode_task, task_key

        tasks = list(_tasks())
        keys = [task_key(encode_task(t)) for t in tasks]
        store = ResultCache(tmp_path / "cache", max_bytes=None)
        manifest = JobCheckpoint(tmp_path / "m.json", keys)
        manifest.mark_done(0)  # marked done, but nothing in the cache
        manifest.save()
        got = execute_shards_checkpointed(
            list(tasks), cache=store, checkpoint=tmp_path / "m.json"
        )
        assert all(r is not None for r in got)

    def test_pool_path_matches_serial(self, tmp_path):
        tasks = list(_tasks())
        store_a = ResultCache(tmp_path / "a", max_bytes=None)
        store_b = ResultCache(tmp_path / "b", max_bytes=None)
        serial = execute_shards_checkpointed(
            list(tasks), workers=1, cache=store_a,
            checkpoint=tmp_path / "ma.json",
        )
        pooled = execute_shards_checkpointed(
            list(tasks), workers=3, cache=store_b,
            checkpoint=tmp_path / "mb.json",
        )
        for got, want in zip(pooled, serial):
            assert np.array_equal(got.finish_times, want.finish_times)
            assert np.array_equal(got.final_state, want.final_state)


class TestRunShardedCheckpoint:
    def test_run_sharded_checkpoint_resume_identical(self, tmp_path):
        # The engine-level path: an interrupted run_sharded resumed at
        # the same manifest must be bit-identical to the uninterrupted
        # one — and the resumed run must come from cache.
        graph = hypercube_graph(4)
        rule = CobraRule(make_policy(2))
        engine = SpreadEngine(rule, graph)
        state = np.zeros((10, graph.n), dtype=bool)
        state[:, 0] = True
        reference = engine.run_sharded(
            state, 5, workers=1, max_shard=4, track_hits=True
        )
        store = ResultCache(tmp_path / "cache", max_bytes=None)
        kwargs = dict(
            workers=1, max_shard=4, track_hits=True, cache=store,
            checkpoint=str(tmp_path / "m.json"),
        )
        first = engine.run_sharded(state, 5, **kwargs)
        tel = get_telemetry()
        hits_before = tel.counters().get("client.cache.hits", 0)
        second = engine.run_sharded(state, 5, **kwargs)
        assert tel.counters().get("client.cache.hits", 0) > hits_before
        for got in (first, second):
            assert got.rounds_run == reference.rounds_run
            assert np.array_equal(got.finish_times, reference.finish_times)
            assert np.array_equal(got.hit_times, reference.hit_times)
            assert np.array_equal(got.final_state, reference.final_state)
