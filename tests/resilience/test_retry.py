"""RetryPolicy and CircuitBreaker unit tests (no sockets, no sleeps).

Backoff schedules are asserted to be deterministic in the seed (two
policies given the same seed produce identical delays — the property
that makes chaos runs replayable) and the breaker state machine is
driven with a fake clock.
"""

import pytest

from repro.resilience import (
    CircuitBreaker,
    RetryError,
    RetryPolicy,
    breaker_for,
    reset_breakers,
)
from repro.telemetry import get_telemetry


class TestDelaySchedule:
    def test_deterministic_in_seed(self):
        policy = RetryPolicy(base_delay_s=0.1, max_delay_s=2.0)
        a = [policy.delay_s(k, seed=42) for k in range(1, 6)]
        b = [RetryPolicy(base_delay_s=0.1, max_delay_s=2.0).delay_s(k, seed=42)
             for k in range(1, 6)]
        assert a == b

    def test_seed_changes_jitter(self):
        policy = RetryPolicy()
        assert [policy.delay_s(k, seed=1) for k in range(1, 5)] != [
            policy.delay_s(k, seed=2) for k in range(1, 5)
        ]

    def test_exponential_growth_capped(self):
        policy = RetryPolicy(
            base_delay_s=0.1, max_delay_s=0.4, multiplier=2.0, jitter=0.0
        )
        assert [policy.delay_s(k) for k in range(1, 5)] == pytest.approx(
            [0.1, 0.2, 0.4, 0.4]
        )

    def test_jitter_bounds(self):
        policy = RetryPolicy(base_delay_s=1.0, max_delay_s=1.0, jitter=0.5)
        for seed in range(30):
            d = policy.delay_s(1, seed=seed)
            assert 0.5 <= d <= 1.5


class TestRun:
    def test_succeeds_after_transient_failures(self):
        sleeps = []
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise ConnectionError("transient")
            return "ok"

        policy = RetryPolicy(attempts=4, base_delay_s=0.01, jitter=0.0)
        assert policy.run(flaky, sleep=sleeps.append) == "ok"
        assert calls["n"] == 3
        assert len(sleeps) == 2

    def test_exhaustion_raises_retry_error_chaining_last(self):
        def dead():
            raise ConnectionRefusedError("nope")

        policy = RetryPolicy(attempts=3, base_delay_s=0.01)
        with pytest.raises(RetryError) as err:
            policy.run(dead, what="dial broker", sleep=lambda _s: None)
        assert err.value.attempts == 3
        assert isinstance(err.value.last, ConnectionRefusedError)
        assert "dial broker" in str(err.value)
        assert isinstance(err.value, ConnectionError)  # catchable as such

    def test_non_retryable_propagates_immediately(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise ValueError("logic bug")

        with pytest.raises(ValueError):
            RetryPolicy(attempts=5).run(broken, sleep=lambda _s: None)
        assert calls["n"] == 1

    def test_attempts_one_means_no_retry(self):
        calls = {"n": 0}

        def dead():
            calls["n"] += 1
            raise ConnectionError("x")

        with pytest.raises(RetryError):
            RetryPolicy(attempts=1).run(dead, sleep=lambda _s: None)
        assert calls["n"] == 1

    def test_budget_stops_early(self):
        calls = {"n": 0}

        def dead():
            calls["n"] += 1
            raise ConnectionError("x")

        policy = RetryPolicy(
            attempts=10, base_delay_s=1.0, multiplier=1.0, jitter=0.0,
            budget_s=2.5,
        )
        with pytest.raises(RetryError):
            policy.run(dead, sleep=lambda _s: None)
        # Two 1.0s sleeps fit the 2.5s budget; the third would blow it,
        # so exactly 3 calls happen.
        assert calls["n"] == 3

    def test_on_retry_callback_and_counter(self):
        tel = get_telemetry()
        before = tel.counters().get("retry.retries", 0)
        seen = []

        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 2:
                raise ConnectionError("once")
            return 1

        RetryPolicy(attempts=3, base_delay_s=0.01).run(
            flaky,
            sleep=lambda _s: None,
            on_retry=lambda attempt, delay, err: seen.append(
                (attempt, type(err))
            ),
        )
        assert seen == [(1, ConnectionError)]
        assert tel.counters().get("retry.retries", 0) == before + 1


class TestCircuitBreaker:
    def _breaker(self, **kw):
        clock = {"t": 0.0}
        kw.setdefault("failure_threshold", 3)
        kw.setdefault("cooldown_s", 10.0)
        breaker = CircuitBreaker("test", clock=lambda: clock["t"], **kw)
        return breaker, clock

    def test_trips_after_consecutive_failures(self):
        breaker, _clock = self._breaker()
        for _ in range(2):
            breaker.record_failure()
            assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_success_resets_failure_run(self):
        breaker, _clock = self._breaker()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_admits_single_probe(self):
        breaker, clock = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        clock["t"] = 11.0
        assert breaker.state == "half-open"
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # but only one

    def test_probe_success_closes(self):
        breaker, clock = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        clock["t"] = 11.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_probe_failure_restarts_cooldown(self):
        breaker, clock = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        clock["t"] = 11.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        clock["t"] = 20.0  # 9s after reopening: still cooling down
        assert not breaker.allow()
        clock["t"] = 21.5
        assert breaker.allow()

    def test_registry_returns_same_instance(self):
        reset_breakers()
        try:
            a = breaker_for("127.0.0.1:7603")
            b = breaker_for("127.0.0.1:7603")
            c = breaker_for("127.0.0.1:9999")
            assert a is b
            assert a is not c
        finally:
            reset_breakers()
