"""End-to-end chaos acceptance: the fault matrix and recovery drills.

This drives the same harness as ``repro chaos``: every fault class runs
serial/sharded/distributed and must be bit-identical to the fault-free
reference; a dead broker degrades to local execution; a client killed
mid-job resumes from its checkpoint without recomputing finished
shards.
"""

import pytest

from repro.resilience import chaos
from repro.resilience.chaos import (
    FAULT_CLASSES,
    chaos_case,
    checkpoint_drill,
    fallback_drill,
    format_report,
)


@pytest.mark.parametrize("fault", FAULT_CLASSES)
def test_fault_class_matrix(fault):
    report = chaos_case(fault, seed=0)
    assert report == {"serial": True, "sharded": True, "distributed": True}


def test_fallback_local_on_dead_broker():
    report = fallback_drill(seed=0)
    assert report["ok"]
    assert report["fallbacks"] >= 1


def test_killed_client_resumes_from_checkpoint():
    report = checkpoint_drill(seed=0)
    assert report["crashed"], "the injected client crash must fire"
    assert report["resumed_from_cache"] >= 2, (
        "resume must serve checkpointed shards from cache, not recompute"
    )
    assert report["ok"]


def test_smoke_report_shape():
    report = chaos.run_chaos_smoke(seed=2)
    assert report["ok"]
    assert set(report["cases"]) == {
        "worker-kill",
        "frame-drop",
        "fallback-local",
        "checkpoint-resume",
    }
    text = format_report(report)
    assert "ALL GREEN" in text
    assert "checkpoint-resume" in text
